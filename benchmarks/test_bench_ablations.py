"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation perturbs one architectural lever of the hybrid design and
verifies the direction of the effect on the paper's metrics:

* N:M pattern sweep (1:16 .. 4:8) — storage/EDP trade-off,
* MRAM write-energy sweep — why the backbone must be frozen,
* activation-bus width sweep — where the dense baselines saturate,
* hybrid vs single-technology designs at matched update scope.
"""

import dataclasses

import pytest

from repro.core.designs import DenseCIMDesign, HybridSparseDesign
from repro.energy.tech import DEFAULT_TECH, MRAMPESpec, TechnologyModel
from repro.sparsity import NMPattern


class TestPatternSweep:
    PATTERNS = [NMPattern(1, 16), NMPattern(1, 8), NMPattern(1, 4),
                NMPattern(2, 4)]

    def test_bench_pattern_sweep(self, benchmark, workload):
        def sweep():
            return {str(p): HybridSparseDesign(p).area(workload).total_mm2
                    for p in self.PATTERNS}
        areas = benchmark(sweep)
        assert len(areas) == 4

    def test_area_monotone_in_density(self, workload):
        areas = [HybridSparseDesign(p).area(workload).total_mm2
                 for p in self.PATTERNS]
        # density: 1/16 < 1/8 < 1/4 < 1/2 -> area strictly increasing
        assert areas == sorted(areas)

    def test_training_energy_monotone_in_density(self, workload):
        energies = [HybridSparseDesign(p).training_step(workload).energy_j
                    for p in self.PATTERNS]
        assert energies == sorted(energies)


class TestWriteEnergyAblation:
    """If MRAM writes were as cheap as SRAM's, freezing the backbone would
    stop mattering for write *energy* — but the latency penalty remains the
    dominant term, so MRAM FT-all stays far worse: the hybrid's case rests
    on both asymmetries."""

    def _tech_with_mram_write(self, pj_per_bit):
        mram = dataclasses.replace(DEFAULT_TECH.mram,
                                   write_energy_pj_per_bit=pj_per_bit)
        return TechnologyModel(sram=DEFAULT_TECH.sram, mram=mram,
                               global_blocks=DEFAULT_TECH.global_blocks)

    def test_write_energy_scales_training_cost(self, workload):
        cheap = DenseCIMDesign(
            "mram", "all", tech=self._tech_with_mram_write(0.002))
        expensive = DenseCIMDesign(
            "mram", "all", tech=self._tech_with_mram_write(0.48))
        e_cheap = cheap.training_step(workload).energy.write_pj
        e_exp = expensive.training_step(workload).energy.write_pj
        assert e_exp == pytest.approx(240 * e_cheap, rel=0.01)

    def test_latency_asymmetry_dominates_edp(self, workload):
        """Even with free writes, MRAM in-place training loses on EDP."""
        free_writes = DenseCIMDesign(
            "mram", "all", tech=self._tech_with_mram_write(1e-6))
        sram = DenseCIMDesign("sram", "all")
        assert free_writes.training_step(workload).edp_js > \
            10 * sram.training_step(workload).edp_js


class TestBusWidthAblation:
    def test_wider_bus_speeds_dense_baseline(self, workload):
        base = DenseCIMDesign("sram", "all")
        t_narrow = base.inference(workload).latency_s

        class WideBus(DenseCIMDesign):
            ACTIVATION_BUS_BITS = 1024

        t_wide = WideBus("sram", "all").inference(workload).latency_s
        assert t_wide < t_narrow

    def test_bench_bus_sweep(self, benchmark, workload):
        def sweep():
            out = {}
            for bits in (64, 128, 256, 512):
                cls = type(f"Bus{bits}", (DenseCIMDesign,),
                           {"ACTIVATION_BUS_BITS": bits})
                out[bits] = cls("sram", "all").inference(workload).latency_s
            return out
        latencies = benchmark(sweep)
        vals = [latencies[b] for b in (64, 128, 256, 512)]
        assert vals == sorted(vals, reverse=True)  # wider -> faster


class TestHybridVsSingleTech:
    """The central design claim: at the RepNet update scope, the hybrid
    beats BOTH single-technology designs on training EDP while also beating
    both on area."""

    def test_bench_design_comparison(self, benchmark, workload):
        def run():
            h = HybridSparseDesign(NMPattern(1, 8))
            s = DenseCIMDesign("sram", "learnable")
            m = DenseCIMDesign("mram", "learnable")
            return {
                "hybrid_edp": h.training_step(workload).edp_js,
                "sram_edp": s.training_step(workload).edp_js,
                "mram_edp": m.training_step(workload).edp_js,
                "hybrid_area": h.area(workload).total_mm2,
                "sram_area": s.area(workload).total_mm2,
                "mram_area": m.area(workload).total_mm2,
            }
        r = benchmark(run)
        assert r["hybrid_edp"] < r["sram_edp"]
        assert r["hybrid_edp"] < r["mram_edp"]
        assert r["hybrid_area"] < r["sram_area"]
        assert r["hybrid_area"] < r["mram_area"]


class TestChannelPermutationAblation:
    """Extension (paper ref [19]): channel permutation before N:M grouping
    recovers saliency that aligned grouping would drop."""

    def test_bench_permutation_search(self, benchmark):
        import numpy as np
        from repro.sparsity import NMPattern, find_channel_permutation

        rng = np.random.default_rng(0)
        sal = np.abs(rng.standard_normal((64, 16)))
        perm, best = benchmark.pedantic(
            lambda: find_channel_permutation(sal, NMPattern(1, 4),
                                             iterations=500,
                                             rng=np.random.default_rng(1)),
            rounds=1, iterations=1)
        assert len(perm) == 64

    def test_permutation_recovers_clustered_saliency(self):
        import numpy as np
        from repro.sparsity import (NMPattern, find_channel_permutation,
                                    retained_saliency)

        rng = np.random.default_rng(2)
        pattern = NMPattern(1, 4)
        # Correlated channels: salient channels cluster in groups.
        sal = np.full((32, 8), 0.01)
        sal[::8] = 5.0
        sal[1::8] = 5.0
        sal[2::8] = 5.0
        sal[3::8] = 5.0   # 4 salient channels aligned in each group of 4
        base = retained_saliency(sal, pattern)
        _, best = find_channel_permutation(sal, pattern, iterations=3000,
                                           restarts=3,
                                           rng=np.random.default_rng(3))
        assert best > base * 1.5
