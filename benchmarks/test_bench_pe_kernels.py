"""Benchmarks of the PE functional kernels (simulator throughput) plus the
sparse-vs-dense architectural ablation at matched workloads.

These are not paper figures; they characterize the reproduction itself and
pin the first-order architectural claims at PE granularity:

* the sparse PE executes ~density x fewer real MACs,
* the sparse PE reads ~density x fewer weight bits,
* CSC storage is density * 1.5 of dense (12-bit pairs vs 8-bit weights).

The PE matmul benches are parametrized over the kernel implementation
(``reference`` per-column loops vs the vectorized ``fast`` plan from
:mod:`repro.core.kernels`), so one run quantifies the simulator speedup at
the paper's geometries.
"""

import numpy as np
import pytest

from repro.core.csc import CSCMatrix
from repro.core.kernels import KERNEL_IMPLEMENTATIONS
from repro.core.mram_pe import MRAMDensePE, MRAMSparsePE
from repro.core.sram_pe import DenseDigitalPE, SRAMSparsePE
from repro.sparsity import NMPattern, compute_nm_mask


def make_sparse(rng, shape, pattern):
    dense = rng.integers(-127, 128, size=shape)
    mask = compute_nm_mask(np.abs(dense).astype(float), pattern, axis=0)
    return (dense * mask).astype(np.int64)


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


@pytest.mark.parametrize("impl", KERNEL_IMPLEMENTATIONS)
@pytest.mark.parametrize("pattern", [NMPattern(1, 4), NMPattern(2, 8),
                                     NMPattern(1, 8)],
                         ids=["1:4", "2:8", "1:8"])
def test_bench_sram_pe_matmul(benchmark, rng, pattern, impl):
    w = make_sparse(rng, (128, 8), pattern)
    x = rng.integers(-128, 128, size=(16, 128))
    pe = SRAMSparsePE(kernel=impl)
    pe.load(w, pattern)
    out = benchmark(pe.matmul, x)
    np.testing.assert_array_equal(out, x @ w)


@pytest.mark.parametrize("impl", KERNEL_IMPLEMENTATIONS)
@pytest.mark.parametrize("pattern", [NMPattern(1, 4), NMPattern(1, 8)],
                         ids=["1:4", "1:8"])
def test_bench_mram_pe_matmul(benchmark, rng, pattern, impl):
    w = make_sparse(rng, (256, 32), pattern)
    x = rng.integers(-128, 128, size=(16, 256))
    pe = MRAMSparsePE(kernel=impl)
    pe.load(w, pattern)
    out = benchmark(pe.matmul, x)
    np.testing.assert_array_equal(out, x @ w)


def test_bench_dense_pe_matmul(benchmark, rng):
    w = rng.integers(-127, 128, size=(128, 8))
    x = rng.integers(-128, 128, size=(16, 128))
    pe = DenseDigitalPE()
    pe.load(w)
    benchmark(pe.matmul, x)


def test_bench_csc_encode(benchmark, rng):
    pattern = NMPattern(1, 4)
    w = make_sparse(rng, (1024, 64), pattern)
    csc = benchmark(CSCMatrix.from_dense, w, pattern)
    assert csc.nnz == int((w != 0).sum())


class TestSparseVsDenseAblation:
    """Matched-workload comparison: the architectural win of sparse PIM."""

    @pytest.mark.parametrize("pattern", [NMPattern(1, 4), NMPattern(1, 8)],
                             ids=["1:4", "1:8"])
    def test_mac_and_read_reduction(self, rng, pattern):
        w = make_sparse(rng, (128, 8), pattern)
        x = rng.integers(-64, 64, size=(8, 128))

        sparse = SRAMSparsePE()
        sparse.load(w, pattern)
        sparse.matmul(x)

        dense = DenseDigitalPE()
        dense.load(w)
        dense.matmul(x)

        mac_ratio = sparse.stats.macs / dense.stats.macs
        assert mac_ratio == pytest.approx(pattern.density, abs=0.05)

    @pytest.mark.parametrize("pattern", [NMPattern(1, 4), NMPattern(1, 8)],
                             ids=["1:4", "1:8"])
    def test_storage_reduction(self, rng, pattern):
        w = make_sparse(rng, (128, 8), pattern)
        csc = CSCMatrix.from_dense(w, pattern)
        ratio = csc.storage_bits(index_bits=4) / csc.dense_storage_bits()
        # 12-bit pairs: density * 1.5
        assert ratio == pytest.approx(pattern.density * 1.5, abs=0.05)

    def test_mram_row_sweep_shrinks_with_sparsity(self, rng):
        dense_w = rng.integers(-127, 128, size=(512, 64))
        mask = compute_nm_mask(np.abs(dense_w).astype(float),
                               NMPattern(1, 8), axis=0)
        sparse_w = (dense_w * mask).astype(np.int64)

        d = MRAMDensePE()
        d.load(dense_w)
        s = MRAMSparsePE()
        s.load(sparse_w, NMPattern(1, 8))
        x = rng.integers(-8, 8, size=(1, 512))
        d.matmul(x)
        s.matmul(x)
        # sparse sweep reads ~1/8 the rows -> far fewer cycles
        assert s.stats.cycles < d.stats.cycles / 4
