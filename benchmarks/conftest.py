"""Shared fixtures for the benchmark harness."""

import pytest

from repro.core.workload import paper_workload


@pytest.fixture(scope="session")
def workload():
    """The paper's evaluation workload (ResNet-50 + Rep-Net @ ImageNet)."""
    return paper_workload()
