"""Benchmark: design-space exploration (Pareto sweep over the levers)."""

import pytest

from repro.core.design_space import explore, pareto_front, sweep
from repro.sparsity import NMPattern


def test_bench_design_space_sweep(benchmark, workload):
    result = benchmark(explore, workload)
    assert result["pareto"], "Pareto front must be non-empty"


class TestDesignSpaceShape:
    @pytest.fixture(scope="class")
    def result(self, workload):
        return explore(workload)

    def test_paper_points_on_or_near_front(self, result):
        """The paper's chosen configurations (1:4, 1:8 at the default bus)
        should be competitive — on the front or dominated only by other
        bus-width variants of themselves."""
        pareto_patterns = {p["pattern"] for p in result["pareto"]}
        assert "1:8" in pareto_patterns or "1:4" in pareto_patterns

    def test_front_spans_tradeoff(self, result):
        """The front covers both the low-area and the high-density ends."""
        front = result["pareto"]
        densities = [p["density"] for p in front]
        areas = [p["area_mm2"] for p in front]
        assert max(densities) > min(densities)
        assert max(areas) > min(areas)

    def test_front_smaller_than_sweep(self, result):
        assert 0 < result["pareto_fraction"] <= 1.0
