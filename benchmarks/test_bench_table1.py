"""Benchmark: regenerate Table 1 (accuracy study).

Runs the paper's accuracy pipeline — backbone pre-training, magnitude N:M
pruning + masked recovery, per-task gradient-calibrated sparse fine-tuning,
INT8 PTQ — at the fast budget, and checks the paper's qualitative shape.

The full-budget run is ``python -m repro.harness.table1`` (about 15 min);
its output is recorded in EXPERIMENTS.md.
"""

import pytest

from repro.harness.table1 import Table1Config, render_table1, run_table1


@pytest.fixture(scope="module")
def table1_result():
    return run_table1(Table1Config.fast())


def test_bench_table1_fast(benchmark):
    """Wall-clock of the fast-budget Table 1 pipeline (single round)."""
    result = benchmark.pedantic(
        lambda: run_table1(Table1Config.fast()), rounds=1, iterations=1)
    assert len(result["rows"]) == 5


class TestTable1Shape:
    """Shape assertions on the fast-budget result (loose: tiny budgets)."""

    def test_rows_complete(self, table1_result):
        for row in table1_result["rows"]:
            assert "backbone@base" in row
            for task in table1_result["tasks"]:
                assert task in row

    def test_dense_beats_chance_everywhere(self, table1_result):
        dense = table1_result["rows"][0]
        # fast config: pets has >= 2 classes -> chance <= 0.5
        for task in table1_result["tasks"]:
            assert dense[task] > 0.2

    def test_render_smoke(self, table1_result):
        out = render_table1(table1_result)
        assert "Table 1" in out
