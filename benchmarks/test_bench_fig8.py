"""Benchmark: regenerate Fig. 8 (continual-learning EDP vs Ours 1:8).

Paper shape being reproduced (log-scale, normalized to Ours 1:8 = 1):
finetune-all >> RepNet-without-sparsity >> Ours; MRAM > SRAM within each
group (write energy/latency asymmetry); span of several decades.
"""

import pytest

from repro.harness.fig8 import build_fig8


@pytest.fixture(scope="module")
def fig8():
    return build_fig8()


def test_bench_fig8(benchmark, workload):
    result = benchmark(build_fig8, workload)
    assert len(result["rows"]) == 6


class TestFig8Shape:
    def _by(self, fig8):
        return {(r["group"], r["design"]): r["edp_rel"] for r in fig8["rows"]}

    def test_ours_is_reference_and_lowest(self, fig8):
        by = self._by(fig8)
        assert by[("RepNet with Sparsity", "Ours (1:8)")] == pytest.approx(1.0)
        ours = max(by[("RepNet with Sparsity", "Ours (1:4)")],
                   by[("RepNet with Sparsity", "Ours (1:8)")])
        others = [v for k, v in by.items() if k[0] != "RepNet with Sparsity"]
        assert ours < min(others)

    def test_group_ordering(self, fig8):
        by = self._by(fig8)
        for design in ("SRAM[29]", "MRAM[30]"):
            assert by[("Finetune All Weight", design)] > \
                by[("RepNet without Sparsity", design)]

    def test_mram_training_penalty(self, fig8):
        by = self._by(fig8)
        assert by[("Finetune All Weight", "MRAM[30]")] > \
            10 * by[("Finetune All Weight", "SRAM[29]")]

    def test_decades_of_span(self, fig8):
        vals = [r["edp_rel"] for r in fig8["rows"]]
        assert max(vals) / min(vals) > 100
