"""Benchmark: regenerate Fig. 7 (inference power & area vs SRAM[29]).

Paper shape being reproduced:
* area: SRAM 1.0 > MRAM 0.48 > Hybrid(1:4) ~0.37 > Hybrid(1:8),
* power (log scale): SRAM highest by >100x; MRAM lowest; hybrids between.
"""

import pytest

from repro.harness.fig7 import build_fig7


@pytest.fixture(scope="module")
def fig7():
    return build_fig7()


def test_bench_fig7(benchmark, workload):
    result = benchmark(build_fig7, workload)
    assert len(result["rows"]) == 4


class TestFig7Shape:
    def test_area_series(self, fig7):
        rels = {r["design"]: r["area_rel"] for r in fig7["rows"]}
        assert rels["SRAM[29]"] == 1.0
        assert rels["MRAM[30]"] == pytest.approx(0.48, abs=0.03)
        assert rels["Hybrid(1:4)"] == pytest.approx(0.37, abs=0.06)
        assert rels["Hybrid(1:8)"] < rels["Hybrid(1:4)"]

    def test_power_series(self, fig7):
        rels = {r["design"]: r["power_rel"] for r in fig7["rows"]}
        assert rels["SRAM[29]"] == 1.0
        # log-scale plot: everything else is orders of magnitude below
        for key in ("MRAM[30]", "Hybrid(1:4)", "Hybrid(1:8)"):
            assert rels[key] < 0.1
        # hybrid sits between SRAM and the MRAM floor
        assert rels["MRAM[30]"] < rels["Hybrid(1:4)"] < rels["SRAM[29]"]

    def test_leakage_split(self, fig7):
        rows = {r["design"]: r for r in fig7["rows"]}
        sram = rows["SRAM[29]"]
        mram = rows["MRAM[30]"]
        # SRAM's leakage share exceeds MRAM's (non-volatile array)...
        assert sram["leakage_rel"] / sram["power_rel"] > \
            mram["leakage_rel"] / mram["power_rel"]
        # ...and in absolute terms SRAM leaks orders of magnitude more.
        assert sram["leakage_rel"] > 100 * mram["leakage_rel"]
