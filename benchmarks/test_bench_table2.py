"""Benchmark: regenerate Table 2 (hardware specs) and verify the leaf values."""

from repro.harness.table2 import build_table2


def test_bench_table2(benchmark):
    result = benchmark(build_table2)
    # Spot-check the published numbers survive the regeneration path.
    assert result["sram_pe"]["Index Decoder"]["area_mm2"] == 0.06
    assert result["mram_pe"]["Adder Tree"]["power_mw"] == 16.3
    assert result["mtj_device"]["resistance_ap_ohm"] == 8759.0


def test_bench_table2_mtj_energy_matches(benchmark):
    """The MTJ compact model lands on the published set/reset energy."""
    result = benchmark(build_table2)
    dev = result["mtj_device"]
    modelled = dev["set_reset_energy_pj_model"]
    paper = dev["set_reset_energy_pj_paper"]
    assert abs(modelled - paper) / paper < 0.25
