"""Tests for the weight-initialization module."""

import numpy as np
import pytest

from repro import nn
from repro.nn import init
from repro.nn.tensor import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(17)


class TestFanComputation:
    def test_linear_fans(self):
        lin = nn.Linear(12, 7)
        fan_in, fan_out = init._fan_in_out(lin.weight)
        assert (fan_in, fan_out) == (12, 7)

    def test_conv_fans(self):
        conv = nn.Conv2d(3, 8, 5)
        fan_in, fan_out = init._fan_in_out(conv.weight)
        assert (fan_in, fan_out) == (3 * 25, 8 * 25)

    def test_unsupported_shape(self):
        p = nn.Parameter(np.zeros(5))
        with pytest.raises(ValueError):
            init._fan_in_out(p)


class TestStrategies:
    def test_kaiming_uniform_bound(self, rng):
        lin = nn.Linear(100, 50)
        init.kaiming_uniform_(lin.weight, rng)
        bound = np.sqrt(6.0 / 100)
        assert np.abs(lin.weight.data).max() <= bound + 1e-6

    def test_kaiming_normal_variance(self, rng):
        lin = nn.Linear(256, 256)
        init.kaiming_normal_(lin.weight, rng)
        expected_std = np.sqrt(2.0 / 256)
        assert lin.weight.data.std() == pytest.approx(expected_std, rel=0.1)

    def test_xavier_uniform_bound(self, rng):
        lin = nn.Linear(64, 32)
        init.xavier_uniform_(lin.weight, rng)
        bound = np.sqrt(6.0 / (64 + 32))
        assert np.abs(lin.weight.data).max() <= bound + 1e-6

    def test_xavier_normal_variance(self, rng):
        lin = nn.Linear(200, 200)
        init.xavier_normal_(lin.weight, rng)
        expected = np.sqrt(2.0 / 400)
        assert lin.weight.data.std() == pytest.approx(expected, rel=0.1)

    def test_orthogonal_rows(self, rng):
        lin = nn.Linear(32, 16)  # weight (16, 32): rows orthonormal
        init.orthogonal_(lin.weight, rng)
        w = lin.weight.data.astype(np.float64)
        gram = w @ w.T
        np.testing.assert_allclose(gram, np.eye(16), atol=1e-5)

    def test_zeros_and_constant(self):
        lin = nn.Linear(4, 4)
        init.zeros_(lin.weight)
        assert (lin.weight.data == 0).all()
        init.constant_(lin.bias, 0.5)
        assert (lin.bias.data == 0.5).all()


class TestInitModel:
    def test_reinitializes_all_layers(self, rng):
        model = nn.Sequential(nn.Conv2d(3, 4, 3), nn.ReLU(), nn.Linear(4, 2))
        before = model.layers[0].weight.data.copy()
        init.init_model(model, "xavier_normal", rng)
        assert not np.array_equal(model.layers[0].weight.data, before)
        assert (model.layers[0].bias.data == 0).all()

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            init.init_model(nn.Linear(2, 2), "magic")

    def test_trains_after_reinit(self, rng):
        """A re-initialized model still learns (smoke)."""
        from repro.nn import functional as F
        X = rng.standard_normal((100, 8)).astype(np.float32)
        y = (X.astype(np.float64) @ rng.standard_normal((8, 2))).argmax(1)
        model = nn.Sequential(nn.Linear(8, 16), nn.ReLU(), nn.Linear(16, 2))
        init.init_model(model, "orthogonal", rng)
        opt = nn.Adam(model.parameters(), lr=0.02)
        for _ in range(50):
            loss = F.cross_entropy(model(Tensor(X)), y)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert F.accuracy(model(Tensor(X)), y) > 0.85
