"""Tests for quantization-aware training (extension over the paper's PTQ)."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.quant import QuantParams
from repro.quant.qat import (FakeQuantize, attach_qat, detach_qat,
                             fake_quantize_ste, finalize_qat)


@pytest.fixture
def rng():
    return np.random.default_rng(99)


class TestSTE:
    def test_forward_on_grid(self, rng):
        x = Tensor(rng.standard_normal(32), requires_grad=True)
        scale = 0.01
        out = fake_quantize_ste(x, scale)
        np.testing.assert_allclose(out.data / scale,
                                   np.round(out.data / scale), atol=1e-9)

    def test_straight_through_gradient(self, rng):
        x = Tensor(rng.standard_normal(16) * 0.1, requires_grad=True)
        out = fake_quantize_ste(x, 0.01)
        out.sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones(16))

    def test_gradient_clipped_outside_range(self):
        x = Tensor(np.array([0.0, 100.0, -100.0]), requires_grad=True)
        out = fake_quantize_ste(x, 0.01)   # range +-1.27
        out.sum().backward()
        np.testing.assert_array_equal(x.grad, [1.0, 0.0, 0.0])

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            fake_quantize_ste(Tensor(np.ones(2)), 0.0)


class TestFakeQuantize:
    def test_scale_refresh(self, rng):
        fq = FakeQuantize(refresh_every=2)
        w = nn.Parameter(rng.standard_normal(8))
        fq(w)
        s1 = fq.scale
        w.data = w.data * 10.0
        fq(w)           # step 1: no refresh yet
        assert fq.scale == s1
        fq(w)           # step 2: refresh
        assert fq.scale > s1

    def test_invalid_refresh(self):
        with pytest.raises(ValueError):
            FakeQuantize(refresh_every=0)


def _model():
    nn.set_seed(3)
    return nn.Sequential(nn.Linear(12, 24), nn.ReLU(), nn.Linear(24, 3))


class TestAttachDetach:
    def test_attach_changes_forward_output(self, rng):
        model = _model()
        x = Tensor(rng.standard_normal((4, 12)))
        ref = model(x).data.copy()
        attach_qat(model)
        out = model(x).data
        assert not np.allclose(out, ref)        # grid rounding visible
        assert np.abs(out - ref).max() < 0.1    # but small

    def test_detach_restores(self, rng):
        model = _model()
        x = Tensor(rng.standard_normal((4, 12)))
        ref = model(x).data.copy()
        attach_qat(model)
        detach_qat(model)
        np.testing.assert_allclose(model(x).data, ref)

    def test_trainable_only_skips_frozen(self):
        model = _model()
        model.layers[0].weight.freeze()
        quantizers = attach_qat(model, trainable_only=True)
        assert len(quantizers) == 1

    def test_finalize_bakes_grid(self, rng):
        model = _model()
        attach_qat(model)
        report = finalize_qat(model)
        assert set(report) == {"layer0.weight", "layer2.weight"}
        for _, mod in model.named_modules():
            if isinstance(mod, nn.Linear):
                params = QuantParams.from_tensor(mod.weight.data)
                np.testing.assert_allclose(
                    mod.weight.data, params.fake_quantize(mod.weight.data),
                    atol=params.scale / 2)
        # wrappers removed
        assert "forward" not in model.layers[0].__dict__


class TestQATTraining:
    def test_qat_trains_through_the_grid(self, rng):
        """Training with STE still converges on separable data."""
        X = rng.standard_normal((150, 12)).astype(np.float32)
        y = (X.astype(np.float64) @ rng.standard_normal((12, 3))).argmax(1)
        model = _model()
        attach_qat(model, refresh_every=8)
        opt = nn.Adam(model.parameters(), lr=0.02)
        for _ in range(80):
            loss = F.cross_entropy(model(Tensor(X)), y)
            opt.zero_grad()
            loss.backward()
            opt.step()
        finalize_qat(model)
        acc = F.accuracy(model(Tensor(X)), y)
        assert acc > 0.9

    def test_qat_at_least_as_good_as_ptq_after_finalize(self, rng):
        """On a task where PTQ hurts, QAT should close (part of) the gap.

        Uses a deliberately wide weight distribution (outlier channel) so
        the per-tensor grid is coarse.
        """
        from repro.quant import quantize_model_ptq
        X = rng.standard_normal((200, 12)).astype(np.float32)
        y = (X.astype(np.float64) @ rng.standard_normal((12, 3))).argmax(1)

        def train(model, qat):
            if qat:
                attach_qat(model, refresh_every=8)
            opt = nn.Adam(model.parameters(), lr=0.02)
            for _ in range(60):
                loss = F.cross_entropy(model(Tensor(X)), y)
                opt.zero_grad()
                loss.backward()
                opt.step()
            if qat:
                finalize_qat(model)
            else:
                # inject an outlier to make PTQ coarse, then PTQ
                model.layers[0].weight.data[0, 0] = 20.0
                quantize_model_ptq(model, per_channel=False)
            return F.accuracy(model(Tensor(X)), y)

        acc_qat = train(_model(), qat=True)
        acc_ptq = train(_model(), qat=False)
        assert acc_qat >= acc_ptq - 0.02
