"""Regression snapshots: lock in the reproduced headline numbers.

These tests pin the exact values the EXPERIMENTS.md tables record (with
small tolerances for floating-point churn), so refactors of the cost models
cannot silently drift the reproduction away from its documented state.  If
a change *intentionally* moves these numbers, update EXPERIMENTS.md and the
snapshots together.
"""

import pytest

from repro.harness.fig7 import build_fig7
from repro.harness.fig8 import build_fig8
from repro.harness.table2 import build_table2

# -------------------------- recorded 2026-07-04 (see EXPERIMENTS.md) -----
FIG7_AREA_REL = {
    "SRAM[29]": 1.000,
    "MRAM[30]": 0.480,
    "Hybrid(1:4)": 0.373,
    "Hybrid(1:8)": 0.218,
}

FIG7_POWER_REL = {
    "SRAM[29]": 1.000,
    "MRAM[30]": 7.46e-3,
    "Hybrid(1:4)": 1.42e-2,
    "Hybrid(1:8)": 9.17e-3,
}

FIG8_EDP_REL = {
    ("Finetune All Weight", "SRAM[29]"): 23.7,
    ("Finetune All Weight", "MRAM[30]"): 3384.0,
    ("RepNet without Sparsity", "SRAM[29]"): 3.17,
    ("RepNet without Sparsity", "MRAM[30]"): 358.0,
    ("RepNet with Sparsity", "Ours (1:4)"): 1.18,
    ("RepNet with Sparsity", "Ours (1:8)"): 1.00,
}


@pytest.fixture(scope="module")
def fig7():
    return build_fig7()


@pytest.fixture(scope="module")
def fig8():
    return build_fig8()


class TestFig7Snapshot:
    def test_area(self, fig7):
        for row in fig7["rows"]:
            expected = FIG7_AREA_REL[row["design"]]
            assert row["area_rel"] == pytest.approx(expected, rel=0.02), \
                row["design"]

    def test_power(self, fig7):
        for row in fig7["rows"]:
            expected = FIG7_POWER_REL[row["design"]]
            assert row["power_rel"] == pytest.approx(expected, rel=0.05), \
                row["design"]


class TestFig8Snapshot:
    def test_edp(self, fig8):
        for row in fig8["rows"]:
            expected = FIG8_EDP_REL[(row["group"], row["design"])]
            assert row["edp_rel"] == pytest.approx(expected, rel=0.05), \
                (row["group"], row["design"])


class TestTable2Snapshot:
    def test_totals(self):
        result = build_table2()
        assert result["sram_pe"]["TOTAL (one 128x96 PE)"]["area_mm2"] == \
            pytest.approx(0.2547, abs=1e-4)
        assert result["mram_pe"]["TOTAL (one 1024x512 PE)"]["power_mw"] == \
            pytest.approx(19.394, abs=1e-3)
        assert result["mtj_device"]["set_reset_energy_pj_model"] == \
            pytest.approx(0.0460, abs=2e-3)
