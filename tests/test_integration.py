"""Cross-module integration tests: algorithm stack -> hardware stack.

These tests exercise the seams the paper's system lives on: a network
trained with the numpy substrate is pruned, quantized, mapped onto the
functional PE simulators, and executed there — with the hardware-path
results checked against the software reference.
"""

import numpy as np
import pytest

from repro import nn
from repro.core import (HybridAccelerator, HybridMapper, SIMTScheduler,
                        extract_repnet_workload)
from repro.nn import functional as F
from repro.nn.functional import im2col
from repro.nn.tensor import Tensor
from repro.quant import QuantParams, quantize_weight_int
from repro.repnet import build_repnet_model
from repro.sparsity import NMPattern, compute_nm_mask


@pytest.fixture
def rng():
    return np.random.default_rng(77)


class TestConvOnAccelerator:
    """A conv layer lowered by im2col runs bit-consistently on the PEs."""

    def test_conv_gemm_matches_software(self, rng):
        pattern = NMPattern(2, 8)
        nn.set_seed(0)
        conv = nn.Conv2d(8, 16, 3, padding=1, bias=False)

        # Prune + quantize the kernel in its GEMM view (in=72, out=16).
        wmat = conv.weight_matrix().T.astype(np.float64)   # (72, 16)
        mask = compute_nm_mask(np.abs(wmat), pattern, axis=0)
        w_int, params = quantize_weight_int(wmat * mask)
        w_int = (w_int * mask).astype(np.int64)

        acc = HybridAccelerator(pattern)
        acc.load_gemm("conv", w_int, learnable=False)

        x = rng.standard_normal((2, 8, 6, 6)).astype(np.float32)
        cols = im2col(x.astype(np.float64), 3, 3, 1, 1)     # (2*36, 72)
        aparams = QuantParams.from_tensor(cols)
        cols_int = aparams.quantize(cols)

        y_hw = acc.gemm("conv", cols_int)
        y_sw = cols_int @ w_int
        np.testing.assert_array_equal(y_hw, y_sw)

        # And the dequantized hardware output tracks the float conv of the
        # pruned+quantized kernel.
        y_float = y_hw * (aparams.scale * params.scale)
        conv.weight.data = (w_int * params.scale).T.reshape(
            conv.weight.shape).astype(np.float32)
        ref = F.conv2d(Tensor(x), conv.weight, stride=1, padding=1)
        ref_flat = ref.data.transpose(0, 2, 3, 1).reshape(-1, 16)
        err = np.abs(y_float - ref_flat).max()
        assert err < 0.05 * np.abs(ref_flat).max() + 0.05


class TestClassifierOnAccelerator:
    """A trained sparse INT8 classifier evaluated entirely on the PEs."""

    def test_hardware_predictions_match_integer_reference(self, rng):
        pattern = NMPattern(2, 8)
        # Train a small 2-layer MLP on separable data.
        X = rng.standard_normal((120, 32)).astype(np.float32)
        W_true = rng.standard_normal((32, 4))
        y = (X.astype(np.float64) @ W_true).argmax(axis=1)

        nn.set_seed(1)
        model = nn.Sequential(nn.Linear(32, 24), nn.ReLU(), nn.Linear(24, 4))
        opt = nn.Adam(model.parameters(), lr=0.02)
        for _ in range(60):
            loss = F.cross_entropy(model(Tensor(X)), y)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert F.accuracy(model(Tensor(X)), y) > 0.9

        # Prune (mask pinned), then briefly fine-tune the masked weights —
        # the paper's recipe — before quantizing and mapping.
        masks = {}
        for layer in (model.layers[0], model.layers[2]):
            mask_t = compute_nm_mask(np.abs(layer.weight.data.T), pattern,
                                     axis=0).T
            layer.weight.data = layer.weight.data * mask_t
            masks[id(layer)] = mask_t
        opt = nn.Adam(model.parameters(), lr=0.01)
        for layer in (model.layers[0], model.layers[2]):
            opt.set_mask(layer.weight, masks[id(layer)])
        for _ in range(40):
            loss = F.cross_entropy(model(Tensor(X)), y)
            opt.zero_grad()
            loss.backward()
            opt.step()

        acc = HybridAccelerator(pattern)
        quant = {}
        for name, layer in (("fc1", model.layers[0]), ("fc2", model.layers[2])):
            w = layer.weight.data.T.astype(np.float64)     # (in, out)
            mask = masks[id(layer)].T
            w_int, p = quantize_weight_int(w)
            acc.load_gemm(name, (w_int * mask).astype(np.int64),
                          learnable=True)
            quant[name] = p

        # Hardware inference: quantize activations per layer, gemm, ReLU.
        b1 = model.layers[0].bias.data
        a1 = QuantParams.from_tensor(X)
        h_int = acc.gemm("fc1", a1.quantize(X))
        h = np.maximum(h_int * (a1.scale * quant["fc1"].scale) + b1, 0.0)
        a2 = QuantParams.from_tensor(h)
        logits_int = acc.gemm("fc2", a2.quantize(h))

        # Integer reference of the exact same pipeline.
        ref1 = a1.quantize(X) @ acc.dense_weight("fc1")
        refh = np.maximum(ref1 * (a1.scale * quant["fc1"].scale) + b1, 0.0)
        ref2 = a2.quantize(refh) @ acc.dense_weight("fc2")
        np.testing.assert_array_equal(logits_int, ref2)

        # The hardware-evaluated model still classifies well.
        hw_acc = (logits_int.argmax(axis=1) == y).mean()
        assert hw_acc > 0.8


class TestWorkloadToSchedule:
    """Model -> workload -> mapping -> schedule is self-consistent."""

    def test_end_to_end_pipeline(self):
        model = build_repnet_model(widths=(8, 16), strides=(1, 2),
                                   repnet_width=4, seed=0)
        model.add_task("t", 5)
        workload = extract_repnet_workload(model, 16)
        pattern = NMPattern(1, 4)

        mapper = HybridMapper(pattern)
        plan = mapper.map_workload(workload)
        sched = SIMTScheduler(plan)
        inf = sched.schedule_inference(workload)
        bwd = sched.schedule_backward(workload)

        assert inf.total_cycles > 0
        assert bwd.total_cycles > 0
        # backward touches only SRAM (learnable) layers
        assert inf.by_kind("mram") > 0
        assert bwd.by_kind("mram") == 0
        # the frozen backbone dominates inference compute here
        assert inf.by_kind("mram") > inf.by_kind("sram") * 0.1

    def test_storage_consistency_with_designs(self):
        """Mapper storage and the analytical design agree on compression."""
        from repro.core import HybridSparseDesign, paper_workload
        w = paper_workload()
        pattern = NMPattern(1, 4)
        mapper_bytes = HybridMapper(pattern).storage_report(w)
        design_bits = HybridSparseDesign(pattern).backbone_compressed_bits(w)
        # mapper includes padding slack; design is the tight bound
        assert mapper_bytes["mram_bytes"] * 8 >= design_bits
        assert mapper_bytes["mram_bytes"] * 8 < design_bits * 1.15
