"""Unit tests for CSC encoding and bit-serial helpers."""

import numpy as np
import pytest

from repro.core.bitserial import (from_partials, plane_weight, to_bit_planes,
                                  weight_bit_planes)
from repro.core.csc import CSCColumn, CSCMatrix, tile_matrix
from repro.sparsity import NMPattern, compute_nm_mask


def sparse_int_matrix(rng, shape, pattern, lo=-127, hi=128):
    dense = rng.integers(lo, hi, size=shape)
    mask = compute_nm_mask(np.abs(dense).astype(float), pattern, axis=0)
    return (dense * mask).astype(np.int64)


@pytest.fixture
def rng():
    return np.random.default_rng(21)


class TestBitSerial:
    def test_roundtrip_random(self, rng):
        x = rng.integers(-128, 128, size=(4, 7))
        planes = to_bit_planes(x, 8)
        assert planes.shape == (8, 4, 7)
        # Recombine planes directly (identity "matmul")
        recombined = sum(plane_weight(b, 8) * planes[b] for b in range(8))
        np.testing.assert_array_equal(recombined, x)

    def test_msb_negative_weight(self):
        assert plane_weight(7, 8) == -128
        assert plane_weight(0, 8) == 1
        assert plane_weight(6, 8) == 64

    def test_range_check(self):
        with pytest.raises(ValueError):
            to_bit_planes(np.array([200]), 8)

    def test_type_check(self):
        with pytest.raises(TypeError):
            to_bit_planes(np.array([1.5]), 8)

    def test_from_partials_matmul_equivalence(self, rng):
        """Bit-plane matmul + recombination == integer matmul."""
        x = rng.integers(-128, 128, size=(3, 16))
        w = rng.integers(-128, 128, size=(16, 5))
        planes = to_bit_planes(x, 8)
        partials = np.stack([planes[b] @ w for b in range(8)])
        np.testing.assert_array_equal(from_partials(partials, 8), x @ w)

    def test_from_partials_shape_check(self):
        with pytest.raises(ValueError):
            from_partials(np.zeros((4, 2)), 8)

    def test_weight_bit_planes(self, rng):
        w = rng.integers(-127, 128, size=(10,))
        planes, sign = weight_bit_planes(w, 8)
        mag = sum((1 << b) * planes[b] for b in range(7))
        np.testing.assert_array_equal(mag * sign, w)


class TestCSC:
    def test_roundtrip(self, rng):
        pattern = NMPattern(2, 8)
        dense = sparse_int_matrix(rng, (64, 10), pattern)
        csc = CSCMatrix.from_dense(dense, pattern)
        np.testing.assert_array_equal(csc.decode(), dense)

    def test_rejects_violating_matrix(self, rng):
        pattern = NMPattern(1, 8)
        dense = rng.integers(1, 5, size=(16, 2))  # fully dense
        with pytest.raises(ValueError):
            CSCMatrix.from_dense(dense, pattern)

    def test_strict_false_accepts_anything(self, rng):
        pattern = NMPattern(1, 8)
        dense = rng.integers(-5, 5, size=(16, 3))
        csc = CSCMatrix.from_dense(dense, pattern, strict=False)
        np.testing.assert_array_equal(csc.decode(), dense)

    def test_rejects_float(self, rng):
        with pytest.raises(TypeError):
            CSCMatrix.from_dense(rng.standard_normal((8, 2)), NMPattern(1, 4))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            CSCMatrix.from_dense(np.zeros(8, dtype=int), NMPattern(1, 4))

    def test_storage_accounting(self, rng):
        pattern = NMPattern(1, 4)
        dense = sparse_int_matrix(rng, (32, 8), pattern)
        csc = CSCMatrix.from_dense(dense, pattern)
        nnz = int((dense != 0).sum())
        assert csc.nnz == nnz
        # pattern-minimal indices (2 bits for m=4) vs the hardware's fixed 4
        assert csc.storage_bits() == nnz * (8 + 2)
        assert csc.storage_bits(index_bits=4) == nnz * 12
        assert csc.dense_storage_bits() == 32 * 8 * 8

    def test_compression_ratio_below_density_budget(self, rng):
        """Compressed bits <= density * (1 + idx overhead) * dense bits."""
        pattern = NMPattern(1, 4)
        dense = sparse_int_matrix(rng, (128, 16), pattern)
        csc = CSCMatrix.from_dense(dense, pattern)
        budget = pattern.density * (8 + 4) / 8
        assert csc.compression_ratio() <= budget + 1e-9

    def test_row_indices(self):
        col = CSCColumn(values=np.array([5, -3]),
                        group_ids=np.array([0, 2]),
                        intra_indices=np.array([1, 3]))
        np.testing.assert_array_equal(col.row_indices(4), [1, 11])

    def test_column_parallel_arrays_check(self):
        with pytest.raises(ValueError):
            CSCColumn(values=np.array([1]), group_ids=np.array([0, 1]),
                      intra_indices=np.array([0]))

    def test_column_nnz_stats(self, rng):
        pattern = NMPattern(1, 4)
        dense = sparse_int_matrix(rng, (16, 5), pattern)
        csc = CSCMatrix.from_dense(dense, pattern)
        assert csc.max_column_nnz() == csc.column_nnz().max()
        assert csc.column_nnz().sum() == csc.nnz

    def test_all_zero_matrix(self):
        csc = CSCMatrix.from_dense(np.zeros((16, 4), dtype=int), NMPattern(1, 4))
        assert csc.nnz == 0
        np.testing.assert_array_equal(csc.decode(), np.zeros((16, 4)))


class TestTileMatrix:
    def test_covers_matrix(self, rng):
        m = rng.integers(0, 9, size=(10, 7))
        tiles = tile_matrix(m, 4, 3)
        rebuilt = np.zeros_like(m)
        for r, c, t in tiles:
            rebuilt[r:r + t.shape[0], c:c + t.shape[1]] = t
        np.testing.assert_array_equal(rebuilt, m)

    def test_invalid_tile_size(self):
        with pytest.raises(ValueError):
            tile_matrix(np.zeros((4, 4)), 0, 2)
