"""Tests for the top-level CLI (python -m repro)."""

import json

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out and "experiments:" in out

    def test_table2_runs(self, capsys):
        assert main(["table2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_fig7_with_json(self, tmp_path, capsys):
        path = tmp_path / "fig7.json"
        assert main(["fig7", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert len(data["rows"]) == 4

    def test_fig8_runs(self, capsys):
        assert main(["fig8"]) == 0
        assert "Fig. 8" in capsys.readouterr().out

    def test_figures_runs(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 7a" in out and "Fig. 8" in out

    def test_endurance_runs(self, capsys):
        assert main(["endurance"]) == 0
        assert "endurance" in capsys.readouterr().out.lower()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_experiment_list_complete(self):
        assert set(EXPERIMENTS) >= {"table1", "table2", "fig7", "fig8",
                                    "figures", "endurance", "ablations",
                                    "dse", "serve", "all", "info"}

    def test_serve_forwards_to_serve_main(self, capsys):
        # --help exercises the forwarding path without binding a socket.
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "python -m repro.serve" in out
        assert "--window-ms" in out
