"""Unit tests for the MRAM sparse PE and dense MRAM baseline simulators."""

import numpy as np
import pytest

from repro.core.mram_pe import (PIPELINE_DEPTH, MRAMDensePE, MRAMPEConfig,
                                MRAMSparsePE)
from repro.sparsity import NMPattern

from .test_csc import sparse_int_matrix


@pytest.fixture
def rng():
    return np.random.default_rng(44)


class TestConfig:
    def test_default_geometry_matches_paper(self):
        cfg = MRAMPEConfig()
        assert cfg.rows == 1024
        assert cfg.row_bits == 512
        assert cfg.array_bits == 1024 * 512
        # 512 bits / (8+4) bits per pair = 42 pairs per row
        assert cfg.pairs_per_row == 42

    def test_too_narrow_row(self):
        with pytest.raises(ValueError):
            MRAMPEConfig(row_bits=8)


class TestLoad:
    def test_write_traffic(self, rng):
        pattern = NMPattern(1, 8)
        w = sparse_int_matrix(rng, (128, 16), pattern)
        pe = MRAMSparsePE()
        pe.load(w, pattern)
        nnz = int((w != 0).sum())
        assert pe.stats.weight_bits_written == nnz * 8
        assert pe.stats.index_bits_written == nnz * 4

    def test_rows_used(self, rng):
        pattern = NMPattern(1, 4)
        w = sparse_int_matrix(rng, (128, 16), pattern)
        pe = MRAMSparsePE()
        pe.load(w, pattern)
        nnz = int((w != 0).sum())
        assert pe.rows_used == int(np.ceil(nnz / 42))

    def test_range_check(self):
        w = np.zeros((8, 2), dtype=np.int64)
        w[0, 0] = -200
        with pytest.raises(ValueError):
            MRAMSparsePE().load(w, NMPattern(1, 4))

    def test_capacity_check(self, rng):
        cfg = MRAMPEConfig(rows=2, row_bits=24)  # 2 pairs/row -> 4 pairs
        pattern = NMPattern(1, 4)
        w = sparse_int_matrix(rng, (64, 4), pattern)
        with pytest.raises(ValueError):
            MRAMSparsePE(cfg).load(w, pattern)


class TestMatmul:
    @pytest.mark.parametrize("pattern", [NMPattern(1, 4), NMPattern(2, 8),
                                         NMPattern(1, 16), NMPattern(4, 16)])
    def test_exactness(self, rng, pattern):
        w = sparse_int_matrix(rng, (96, 20), pattern)
        x = rng.integers(-128, 128, size=(5, 96))
        pe = MRAMSparsePE()
        pe.load(w, pattern)
        np.testing.assert_array_equal(pe.matmul(x), x @ w)

    def test_pipeline_cycle_model(self, rng):
        pattern = NMPattern(1, 4)
        w = sparse_int_matrix(rng, (128, 16), pattern)
        pe = MRAMSparsePE()
        pe.load(w, pattern)
        pe.matmul(rng.integers(-8, 8, size=(3, 128)))
        expected = 3 * (pe.rows_used + PIPELINE_DEPTH - 1) * 8
        assert pe.stats.cycles == expected
        assert pe.stats.pipeline_stalls == 3 * (PIPELINE_DEPTH - 1)

    def test_mux_gathers_counted(self, rng):
        pattern = NMPattern(1, 8)
        w = sparse_int_matrix(rng, (64, 8), pattern)
        pe = MRAMSparsePE()
        pe.load(w, pattern)
        pe.matmul(rng.integers(-8, 8, size=(2, 64)))
        assert pe.stats.mux_ops == 2 * int((w != 0).sum())

    def test_requires_integer_activations(self, rng):
        pattern = NMPattern(1, 4)
        w = sparse_int_matrix(rng, (16, 2), pattern)
        pe = MRAMSparsePE()
        pe.load(w, pattern)
        with pytest.raises(TypeError):
            pe.matmul(rng.standard_normal((1, 16)))

    def test_requires_load(self, rng):
        with pytest.raises(RuntimeError):
            MRAMSparsePE().matmul(rng.integers(0, 2, size=(1, 8)))

    def test_empty_matrix(self):
        pe = MRAMSparsePE()
        pe.load(np.zeros((16, 4), dtype=np.int64), NMPattern(1, 4))
        out = pe.matmul(np.ones((2, 16), dtype=np.int64))
        np.testing.assert_array_equal(out, np.zeros((2, 4)))
        assert pe.stats.cycles == 0  # no occupied rows -> no sweep


class TestDenseMRAM:
    def test_exactness(self, rng):
        w = rng.integers(-127, 128, size=(100, 30))
        x = rng.integers(-64, 64, size=(4, 100))
        pe = MRAMDensePE()
        pe.load(w)
        np.testing.assert_array_equal(pe.matmul(x), x @ w)

    def test_row_sequential_cycles(self, rng):
        pe = MRAMDensePE()
        w = rng.integers(-8, 8, size=(128, 10))   # 1280 weights / 64 = 20 rows
        pe.load(w)
        pe.matmul(rng.integers(-8, 8, size=(1, 128)))
        assert pe.stats.cycles == (20 + PIPELINE_DEPTH - 1) * 8

    def test_capacity(self, rng):
        pe = MRAMDensePE(MRAMPEConfig(rows=2, row_bits=64))
        with pytest.raises(ValueError):
            pe.load(rng.integers(0, 2, size=(100, 10)))

    def test_sparse_beats_dense_on_reads(self, rng):
        """Same sparse matrix: sparse PE reads only non-zeros, dense reads all."""
        pattern = NMPattern(1, 8)
        w = sparse_int_matrix(rng, (128, 16), pattern)
        x = rng.integers(-8, 8, size=(1, 128))

        sparse_pe = MRAMSparsePE()
        sparse_pe.load(w, pattern)
        sparse_pe.matmul(x)

        dense_pe = MRAMDensePE()
        dense_pe.load(w)
        dense_pe.matmul(x)

        assert sparse_pe.stats.weight_bits_read < dense_pe.stats.weight_bits_read
        assert sparse_pe.stats.macs < dense_pe.stats.macs
        assert sparse_pe.stats.cycles < dense_pe.stats.cycles
