"""Self-check: the real ``src/repro`` tree passes its own linter.

This is the test-suite mirror of the CI lint gate — if a change introduces
a dtype/unit/stats/determinism/parity violation (or an unjustified
suppression removal breaks one), it fails here before it fails in CI.
"""

from pathlib import Path

from repro.lint import lint_paths
from repro.lint.cli import EXIT_CLEAN, main

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"


def test_real_tree_is_clean():
    result = lint_paths([str(SRC)])
    assert result.parse_errors == []
    assert result.ok, "lint findings on the real tree:\n" + "\n".join(
        f.format() for f in result.all_findings())
    # The walk must actually have covered the package, not an empty dir.
    assert result.files_checked >= 70


def test_r5_sees_the_real_differential_suite():
    """Kernel parity runs against the on-disk tests/ even when only
    src/repro is linted — the suite lookup walks up from kernels.py."""
    result = lint_paths([str(SRC)], codes=["R5"])
    assert result.ok


def test_cli_gate_matches_ci_invocation(capsys):
    assert main([str(SRC)]) == EXIT_CLEAN
    assert "clean:" in capsys.readouterr().out


def test_real_tree_is_clean_under_dataflow(capsys):
    """The CI gate also runs the opt-in dataflow verifier in strict mode:
    every @width_contract must hold and every pragma must earn its keep."""
    assert main(["--dataflow", "--strict", str(SRC)]) == EXIT_CLEAN
    capsys.readouterr()
