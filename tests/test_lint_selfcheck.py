"""Self-check: the real ``src/repro`` tree passes its own linter.

This is the test-suite mirror of the CI lint gate — if a change introduces
a dtype/unit/stats/determinism/parity violation (or an unjustified
suppression removal breaks one), it fails here before it fails in CI.
"""

from pathlib import Path

from repro.lint import lint_paths
from repro.lint.cli import EXIT_CLEAN, main

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"


def test_real_tree_is_clean():
    result = lint_paths([str(SRC)])
    assert result.parse_errors == []
    assert result.ok, "lint findings on the real tree:\n" + "\n".join(
        f.format() for f in result.all_findings())
    # The walk must actually have covered the package, not an empty dir.
    assert result.files_checked >= 70


def test_r5_sees_the_real_differential_suite():
    """Kernel parity runs against the on-disk tests/ even when only
    src/repro is linted — the suite lookup walks up from kernels.py."""
    result = lint_paths([str(SRC)], codes=["R5"])
    assert result.ok


def test_cli_gate_matches_ci_invocation(capsys):
    assert main([str(SRC)]) == EXIT_CLEAN
    assert "clean:" in capsys.readouterr().out


def test_real_tree_is_clean_under_dataflow(capsys):
    """The CI gate also runs the opt-in dataflow verifier in strict mode:
    every @width_contract must hold and every pragma must earn its keep."""
    assert main(["--dataflow", "--strict", str(SRC)]) == EXIT_CLEAN
    capsys.readouterr()


def test_real_tree_is_clean_under_effects(capsys):
    """The effect verifier in strict mode: every @reentrant contract in
    the DSE/bench/harness hot paths must prove out over the call graph."""
    assert main(["--effects", "--strict", str(SRC)]) == EXIT_CLEAN
    capsys.readouterr()


def test_real_tree_hot_paths_are_contracted():
    """The certification the ROADMAP's sharding/serve items rely on: the
    worker entry point, the per-point evaluator, the cache paths, the
    bench collectors and the harness builders all carry @reentrant."""
    from repro.lint.effects import analyze_project
    from repro.lint.engine import ProjectContext, _parse_paths

    contexts, _ = _parse_paths([str(SRC)])
    analysis = analyze_project(ProjectContext(files=contexts))
    contracted = {s.info.qualname for s in analysis.reentrant_functions()}
    for qualname in (
            "repro.dse.engine._evaluate_record",
            "repro.dse.engine.evaluate_batch",
            "repro.dse.engine.evaluate_one",
            "repro.dse.evaluate.evaluate_config",
            "repro.dse.evaluate.build_tech",
            "repro.dse.cache.DiskCache.lookup",
            "repro.dse.cache.DiskCache.store",
            "repro.bench.runner.collect_model_metrics",
            "repro.bench.runner.collect_dse_metrics",
            "repro.bench.runner.collect_timing_metrics",
            "repro.harness.fig7.build_fig7",
            "repro.harness.fig8.build_fig8",
            "repro.harness.table2.build_table2",
            "repro.harness.ablations.build_ablations",
            "repro.harness.endurance.build_endurance",
            "repro.serve.schemas.error_doc",
            "repro.serve.schemas.validate_evaluate_request",
            "repro.serve.schemas.validate_sweep_request",
            "repro.serve.schemas.build_sweep_spec",
            "repro.serve.schemas.validate_experiment_request",
    ):
        assert qualname in contracted, f"{qualname} lost its contract"
