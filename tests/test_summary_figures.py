"""Tests for the model-summary tool and the ASCII figure rendering."""

import numpy as np
import pytest

from repro import nn
from repro.nn.summary import LayerSummary, format_summary, summarize
from repro.nn.tensor import Tensor


class TestSummary:
    def _model(self):
        nn.set_seed(0)
        return nn.Sequential(
            nn.Conv2d(3, 8, 3, padding=1), nn.BatchNorm2d(8), nn.ReLU(),
            nn.MaxPool2d(2), nn.Conv2d(8, 16, 3, padding=1),
            nn.GlobalAvgPool2d(), nn.Linear(16, 5))

    def test_shapes_match_forward(self):
        model = self._model()
        rows = summarize(model, (3, 16, 16))
        out = model(Tensor(np.zeros((2, 3, 16, 16), dtype=np.float32)))
        assert rows[-1].output_shape == out.shape[1:]

    def test_params_match_model(self):
        model = self._model()
        rows = summarize(model, (3, 16, 16))
        assert sum(r.params for r in rows) == model.num_parameters()

    def test_macs_match_workload_convention(self):
        """Conv MACs = out_ch * OH * OW * in_ch * k^2."""
        model = nn.Sequential(nn.Conv2d(3, 8, 3, padding=1))
        rows = summarize(model, (3, 16, 16))
        assert rows[0].macs == 8 * 16 * 16 * 3 * 9

    def test_trainable_fraction_reported(self):
        model = self._model()
        model.layers[0].weight.freeze()
        rows = summarize(model, (3, 16, 16))
        out = format_summary(rows)
        assert "trainable fraction" in out
        total = sum(r.params for r in rows)
        train = sum(r.trainable_params for r in rows)
        assert train < total

    def test_format_contains_layers(self):
        rows = summarize(self._model(), (3, 16, 16))
        out = format_summary(rows, title="T")
        assert "Conv2d" in out and "Linear" in out and "TOTAL" in out


class TestFigureCharts:
    def test_fig7_chart(self):
        from repro.harness.figures import render_fig7_chart
        out = render_fig7_chart()
        assert "Fig. 7a" in out and "Fig. 7b" in out
        assert "SRAM[29]" in out and "Hybrid(1:8)" in out
        # leakage/read split markers present
        assert "L" in out and "r" in out

    def test_fig8_chart_groups(self):
        from repro.harness.figures import render_fig8_chart
        out = render_fig8_chart()
        assert "[Finetune All Weight]" in out
        assert "[RepNet with Sparsity]" in out

    def test_log_bar_monotone(self):
        from repro.harness.figures import _log_bar
        short = _log_bar(0.01, 0.001, 10.0)
        long = _log_bar(1.0, 0.001, 10.0)
        assert len(long) > len(short) > 0

    def test_log_bar_edge_cases(self):
        from repro.harness.figures import _log_bar
        assert _log_bar(0.0, 0.1, 1.0) == ""
        assert len(_log_bar(5.0, 1.0, 1.0)) > 0  # degenerate span
