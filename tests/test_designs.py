"""Tests for the design-point models: the paper's Fig. 7 / Fig. 8 shapes.

These are the reproduction's headline architecture claims — each test pins
an ordering or rough factor the paper reports.
"""

import pytest

from repro.core.designs import DenseCIMDesign, HybridSparseDesign
from repro.core.workload import paper_workload
from repro.sparsity import NMPattern


@pytest.fixture(scope="module")
def workload():
    return paper_workload()


@pytest.fixture(scope="module")
def designs(workload):
    return {
        "sram": DenseCIMDesign("sram", "all"),
        "mram": DenseCIMDesign("mram", "all"),
        "h14": HybridSparseDesign(NMPattern(1, 4)),
        "h18": HybridSparseDesign(NMPattern(1, 8)),
    }


class TestValidation:
    def test_bad_kind(self):
        with pytest.raises(ValueError):
            DenseCIMDesign("flash")

    def test_bad_scope(self):
        with pytest.raises(ValueError):
            DenseCIMDesign("sram", "some")


class TestArea(object):
    """Fig. 7 right panel: area normalized to SRAM[29]."""

    def test_mram_half_of_sram(self, workload, designs):
        rel = designs["mram"].area(workload).total_mm2 \
            / designs["sram"].area(workload).total_mm2
        assert rel == pytest.approx(0.48, abs=0.03)

    def test_hybrid_14_about_a_third(self, workload, designs):
        rel = designs["h14"].area(workload).total_mm2 \
            / designs["sram"].area(workload).total_mm2
        assert rel == pytest.approx(0.37, abs=0.06)

    def test_area_ordering(self, workload, designs):
        areas = [designs[k].area(workload).total_mm2
                 for k in ("sram", "mram", "h14", "h18")]
        assert areas[0] > areas[1] > areas[2] > areas[3]

    def test_sram_pes_small_fraction_of_hybrid(self, workload, designs):
        """Paper: 'only about 4% of the area is dedicated to SRAM PEs'."""
        report = designs["h14"].area(workload)
        sram_frac = (report.components["sram_pes"]
                     + report.components["sram_storage"]) / report.total_mm2
        # Paper reports ~4%; our Rep-Net fraction (6.6% of weights) and the
        # Table 2 SRAM PE's compute-heavy area land higher, but the SRAM
        # portion must remain a clear minority of the design.
        assert sram_frac < 0.25


class TestPower:
    """Fig. 7 left panel (log scale): inference power normalized to SRAM[29]."""

    def test_sram_highest(self, workload, designs):
        p = {k: d.inference(workload).avg_power_mw
             for k, d in designs.items()}
        assert p["sram"] > 10 * max(p["mram"], p["h14"], p["h18"])

    def test_mram_lowest(self, workload, designs):
        p = {k: d.inference(workload).avg_power_mw
             for k, d in designs.items()}
        assert p["mram"] <= p["h14"]
        assert p["mram"] <= p["h18"] * 1.5  # 1:8 approaches the MRAM floor

    def test_hybrid_between(self, workload, designs):
        """Paper: hybrid power efficiency sits between SRAM and MRAM."""
        p = {k: d.inference(workload).avg_power_mw
             for k, d in designs.items()}
        assert p["mram"] < p["h14"] < p["sram"]

    def test_orders_of_magnitude(self, workload, designs):
        """Log-plot positions: the non-SRAM designs are ~1e-2..1e-3 of SRAM."""
        ref = designs["sram"].inference(workload).avg_power_mw
        for key in ("mram", "h14", "h18"):
            rel = designs[key].inference(workload).avg_power_mw / ref
            assert 1e-4 < rel < 0.1

    def test_sram_leakage_dominated_vs_mram(self, workload, designs):
        """Leakage share must be substantial for SRAM, tiny for MRAM."""
        e_s = designs["sram"].inference(workload).energy
        e_m = designs["mram"].inference(workload).energy
        assert e_s.leakage_pj / e_s.total_pj > 0.2
        assert e_m.leakage_pj / e_m.total_pj < 0.2


class TestEDP:
    """Fig. 8: continual-learning EDP normalized to Ours (1:8)."""

    @pytest.fixture(scope="class")
    def edp(self, workload):
        cfgs = {
            "sram_ft": DenseCIMDesign("sram", "all"),
            "mram_ft": DenseCIMDesign("mram", "all"),
            "sram_rep": DenseCIMDesign("sram", "learnable"),
            "mram_rep": DenseCIMDesign("mram", "learnable"),
            "h14": HybridSparseDesign(NMPattern(1, 4)),
            "h18": HybridSparseDesign(NMPattern(1, 8)),
        }
        return {k: d.training_step(workload).edp_js for k, d in cfgs.items()}

    def test_hybrid_lowest(self, edp):
        """The paper's headline: the hybrid sparse design wins EDP."""
        ours = min(edp["h14"], edp["h18"])
        for key in ("sram_ft", "mram_ft", "sram_rep", "mram_rep"):
            assert edp[key] > ours

    def test_1_8_at_or_below_1_4(self, edp):
        assert edp["h18"] <= edp["h14"]

    def test_finetune_all_worst_per_technology(self, edp):
        assert edp["sram_ft"] > edp["sram_rep"]
        assert edp["mram_ft"] > edp["mram_rep"]

    def test_mram_writes_penalize_training(self, edp):
        """Within each scope, training on MRAM costs orders of magnitude
        more EDP than on SRAM — the reason the backbone is frozen."""
        assert edp["mram_ft"] > 10 * edp["sram_ft"]
        assert edp["mram_rep"] > 10 * edp["sram_rep"]

    def test_log_scale_span(self, edp):
        """The paper's Fig. 8 axis spans ~4 decades; so must ours."""
        span = max(edp.values()) / min(edp.values())
        assert span > 100

    def test_repnet_reduces_edp(self, edp):
        """Moving from full fine-tuning to Rep-Net reduces EDP (paper text)."""
        assert edp["sram_rep"] < edp["sram_ft"]
        assert edp["mram_rep"] < edp["mram_ft"]


class TestTrainingStepDetails:
    def test_include_forward_increases_cost(self, workload):
        d = HybridSparseDesign(NMPattern(1, 8))
        bare = d.training_step(workload)
        full = d.training_step(workload, include_forward=True)
        assert full.latency_s > bare.latency_s
        assert full.energy.total_pj > bare.energy.total_pj

    def test_batch_scales_compute(self, workload):
        d = DenseCIMDesign("sram", "learnable")
        small = d.training_step(workload, batch=8)
        large = d.training_step(workload, batch=64)
        assert large.energy.compute_pj == \
            pytest.approx(8 * small.energy.compute_pj, rel=0.01)

    def test_hybrid_writes_sram_only(self, workload):
        """Hybrid training write energy must be priced at SRAM rates: the
        same bit volume written to MRAM would cost 24x more."""
        d = HybridSparseDesign(NMPattern(1, 4))
        report = d.training_step(workload)
        cost = d.cost
        bits = report.energy.write_pj / cost.e_write_sram_pj_per_bit
        assert bits > 0  # write traffic exists and was priced as SRAM

    def test_perf_report_dict(self, workload):
        r = DenseCIMDesign("sram", "all").inference(workload)
        d = r.as_dict()
        assert d["design"] and d["latency_s"] > 0 and d["total_pj"] > 0


class TestSizing:
    def test_hybrid_pe_pool_from_reference_density(self, workload):
        h14 = HybridSparseDesign(NMPattern(1, 4))
        h18 = HybridSparseDesign(NMPattern(1, 8))
        # pool sized at the 1:8 reference density -> identical for both
        assert h14.sram_compute_pe_count(workload) == \
            h18.sram_compute_pe_count(workload)

    def test_hybrid_storage_shrinks_with_sparsity(self, workload):
        h14 = HybridSparseDesign(NMPattern(1, 4))
        h18 = HybridSparseDesign(NMPattern(1, 8))
        assert h18.backbone_compressed_bits(workload) < \
            h14.backbone_compressed_bits(workload)
        assert h18.mram_array_count(workload) < h14.mram_array_count(workload)
