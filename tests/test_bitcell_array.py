"""Bit-cell-level array tests + cross-validation against the fast PE model."""

import numpy as np
import pytest

from repro.core.bitcell_array import BitCellArray, BitLevelSparsePE
from repro.core.sram_pe import SRAMPEConfig, SRAMSparsePE
from repro.sparsity import NMPattern

from .test_csc import sparse_int_matrix


@pytest.fixture
def rng():
    return np.random.default_rng(111)


class TestBitCellStorage:
    def test_roundtrip_all_values(self):
        array = BitCellArray(SRAMPEConfig(rows=4, lanes=1))
        for w in (-128, -1, 0, 1, 127, -77, 42):
            array.store_pair(0, 0, w, 5)
            assert array.stored_weight(0, 0) == w
            assert array.stored_index(0, 0) == 5

    def test_range_checks(self):
        array = BitCellArray()
        with pytest.raises(ValueError):
            array.store_pair(0, 0, 200, 0)
        with pytest.raises(ValueError):
            array.store_pair(0, 0, 1, 16)

    def test_cycle_and_gating(self):
        """One cycle: only matched-index rows with input bit 1 contribute."""
        cfg = SRAMPEConfig(rows=4, lanes=1)
        array = BitCellArray(cfg)
        array.store_pair(0, 0, 3, 0)    # phase 0
        array.store_pair(1, 0, 5, 1)    # phase 1
        array.store_pair(2, 0, 7, 0)    # phase 0
        bits = np.array([1, 1, 0, 0])
        # phase 0: row0 matches & bit 1 -> +3; row2 matches but bit 0
        assert array.evaluate_cycle(bits, phase=0)[0] == 3
        # phase 1: row1 matches & bit 1 -> +5
        assert array.evaluate_cycle(bits, phase=1)[0] == 5

    def test_cycle_negative_weight(self):
        cfg = SRAMPEConfig(rows=2, lanes=1)
        array = BitCellArray(cfg)
        array.store_pair(0, 0, -100, 0)
        assert array.evaluate_cycle(np.array([1, 0]), phase=0)[0] == -100

    def test_cycle_input_shape_check(self):
        array = BitCellArray(SRAMPEConfig(rows=4, lanes=1))
        with pytest.raises(ValueError):
            array.evaluate_cycle(np.zeros(3), 0)


class TestCrossValidation:
    """The bit-level model and the fast dataflow model must agree exactly."""

    @pytest.mark.parametrize("pattern", [NMPattern(1, 4), NMPattern(2, 8)],
                             ids=["1:4", "2:8"])
    def test_bit_level_equals_fast_model(self, rng, pattern):
        w = sparse_int_matrix(rng, (32, 6), pattern)
        x = rng.integers(-128, 128, size=(3, 32))

        fast = SRAMSparsePE()
        fast.load(w, pattern)
        slow = BitLevelSparsePE()
        slow.load(w, pattern)

        np.testing.assert_array_equal(slow.matmul(x), fast.matmul(x))
        np.testing.assert_array_equal(slow.matmul(x), x @ w)

    def test_bit_level_extreme_operands(self):
        pattern = NMPattern(1, 4)
        w = np.zeros((8, 2), dtype=np.int64)
        w[0, 0] = -128
        w[4, 1] = 127
        x = np.array([[-128, 0, 0, 0, 127, 0, 0, 0]])
        pe = BitLevelSparsePE()
        pe.load(w, pattern)
        np.testing.assert_array_equal(pe.matmul(x), x @ w)

    def test_requires_load(self, rng):
        with pytest.raises(RuntimeError):
            BitLevelSparsePE().matmul(rng.integers(0, 2, size=(1, 8)))

    def test_capacity_check(self, rng):
        pattern = NMPattern(2, 4)
        w = sparse_int_matrix(rng, (128, 40), pattern)
        with pytest.raises(ValueError):
            BitLevelSparsePE().load(w, pattern)
