"""Shutdown races, the bounded job registry, and the submit timeout.

The concurrency verifier (rules R11-R14) proves the lock discipline
statically; these tests drive the *dynamic* half of the contract:

* ``BatchingQueue.shutdown`` racing concurrent submits — every submit
  thread returns (a record, or a clean structured error), never hangs;
* ``JobStore.shutdown`` after queued-then-cancelled jobs — cancelled
  jobs stay cancelled, the executor drains;
* the registry cap — oldest *terminal* jobs pruned at submission, live
  jobs never evicted, the ``pruned`` counter and ``/v1/stats`` exposure;
* ``submit_timeout_s`` — a wedged worker surfaces as ``BatchTimeout``
  (a structured 503 through the API), never a stranded handler thread.
"""

import threading
import time

import pytest

from repro.dse import SMOKE_SPEC
from repro.dse.cache import NullCache
from repro.serve.api import ServeApp
from repro.serve.batching import BatchingQueue, BatchTimeout
from repro.serve.jobs import JobStore


def _config():
    return SMOKE_SPEC.configs()[0]


def _key_of(cfg):
    from repro.dse import config_key, normalize_config
    return config_key(normalize_config(cfg))


class TestBatchingShutdownRace:
    def test_shutdown_racing_submits_never_hangs(self):
        """Submits racing shutdown either complete or fail cleanly."""
        queue = BatchingQueue(cache=NullCache(), window_s=0.005,
                              submit_timeout_s=30.0)
        cfg = _config()
        key = _key_of(cfg)
        n = 8
        barrier = threading.Barrier(n + 1)
        outcomes = [None] * n

        def client(i):
            barrier.wait()
            try:
                record, served, _ = queue.submit(key, dict(cfg))
                outcomes[i] = ("ok", record["key"])
            except RuntimeError as exc:      # includes BatchTimeout
                outcomes[i] = ("error", str(exc))

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(n)]
        for t in threads:
            t.start()
        barrier.wait()
        queue.shutdown()
        for t in threads:
            t.join(timeout=60)
        assert not any(t.is_alive() for t in threads), \
            "a submit thread is stranded after shutdown"
        assert all(o is not None for o in outcomes)
        for kind, detail in outcomes:
            if kind == "ok":
                assert detail == key
            else:
                assert "shut down" in detail or "batch" in detail

    def test_submits_after_shutdown_fail_immediately(self):
        queue = BatchingQueue(cache=NullCache(), window_s=0.005)
        queue.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            queue.submit(_key_of(_config()), dict(_config()))

    def test_shutdown_is_idempotent_and_joins_the_worker(self):
        queue = BatchingQueue(cache=NullCache(), window_s=0.005)
        queue.shutdown()
        queue.shutdown()
        assert not queue._thread.is_alive()


class TestSubmitTimeout:
    def test_wedged_worker_surfaces_as_batch_timeout(self):
        queue = BatchingQueue(cache=NullCache(), window_s=0.005,
                              submit_timeout_s=0.05)
        # Wedge: kill the real worker by closing, then resurrect the
        # accepting state so submit parks on an event nobody will set.
        queue.shutdown()
        with queue._cond:
            queue._closed = False
        started = time.monotonic()
        with pytest.raises(BatchTimeout, match="within"):
            queue.submit(_key_of(_config()), dict(_config()))
        assert time.monotonic() - started < 10.0

    def test_timeout_is_a_structured_503_through_the_api(self):
        app = ServeApp(cache=NullCache(), window_s=0.005)
        try:
            app.queue.shutdown()
            with app.queue._cond:
                app.queue._closed = False
            app.queue.submit_timeout_s = 0.05
            status, doc = app.dispatch(
                "POST", "/v1/evaluate",
                b'{"config": {"pattern": "1:8", "bus_bits": 128, '
                b'"mram_rows": 1024, "weight_bits": 8, '
                b'"device": "nominal"}}')
            assert status == 503
            assert doc["error"]["code"] == "batch-timeout"
        finally:
            app.jobs.shutdown(wait=False)

    def test_stats_expose_the_timeout(self):
        queue = BatchingQueue(cache=NullCache(), submit_timeout_s=7.5)
        try:
            assert queue.stats()["submit_timeout_s"] == 7.5
        finally:
            queue.shutdown()


class TestJobStoreShutdown:
    def test_queued_then_cancelled_jobs_shut_down_clean(self):
        store = JobStore(workers=1)
        release = threading.Event()
        blocker = store.submit("block", {}, "req-0",
                               lambda job: release.wait(30) and {})
        queued = store.submit("later", {}, "req-1", lambda job: {})
        assert store.cancel(queued.id) == "cancelled"
        release.set()
        store.shutdown(wait=True)
        assert store.doc(queued.id)["state"] == "cancelled"
        assert store.doc(blocker.id)["state"] == "done"
        # A cancel that lands first always wins: the runner never ran it.
        assert store.result_doc(queued.id)["result"] is None

    def test_cancel_outcomes(self):
        store = JobStore(workers=1)
        try:
            release = threading.Event()
            job = store.submit("block", {}, "req-0",
                               lambda j: release.wait(30) and {})
            deadline = time.monotonic() + 30
            while store.doc(job.id)["state"] != "running" \
                    and time.monotonic() < deadline:
                time.sleep(0.01)
            assert store.cancel(job.id) == "running"
            assert store.cancel("job-999999") is None
            release.set()
        finally:
            store.shutdown(wait=True)


class TestBoundedRegistry:
    def test_oldest_terminal_jobs_pruned_beyond_cap(self):
        store = JobStore(workers=1, max_jobs=3)
        try:
            for i in range(5):
                job = store.submit(f"j{i}", {}, f"req-{i}", lambda j: {})
                deadline = time.monotonic() + 30
                while store.doc(job.id) is not None \
                        and store.doc(job.id)["state"] != "done" \
                        and time.monotonic() < deadline:
                    time.sleep(0.01)
            counts = store.counts()
            assert counts["max_jobs"] == 3
            assert counts["pruned"] == 2
            jobs = store.list_doc()["jobs"]
            assert len(jobs) == 3
            # Oldest evicted first; the newest three survive.
            assert [j["id"] for j in jobs] == ["job-000003", "job-000004",
                                               "job-000005"]
        finally:
            store.shutdown(wait=True)

    def test_live_jobs_are_never_evicted(self):
        store = JobStore(workers=1, max_jobs=1)
        release = threading.Event()
        try:
            running = store.submit("block", {}, "req-0",
                                   lambda j: release.wait(30) and {})
            queued = store.submit("queued", {}, "req-1", lambda j: {})
            # Both are live (running + queued): over cap, nothing evictable.
            ids = [j["id"] for j in store.list_doc()["jobs"]]
            assert ids == [running.id, queued.id]
            release.set()
        finally:
            release.set()
            store.shutdown(wait=True)

    def test_cap_exposed_in_stats_endpoint(self):
        app = ServeApp(cache=NullCache(), window_s=0.005, max_jobs=17)
        try:
            status, doc = app.dispatch("GET", "/v1/stats")
            assert status == 200
            assert doc["jobs"]["max_jobs"] == 17
            assert doc["jobs"]["pruned"] == 0
        finally:
            app.shutdown()
