"""Tests for the design-space exploration (Pareto sweep)."""

import pytest

from repro.core.design_space import (DesignPoint, explore, pareto_front,
                                     sweep)
from repro.core.workload import paper_workload
from repro.sparsity import NMPattern


@pytest.fixture(scope="module")
def workload():
    return paper_workload()


@pytest.fixture(scope="module")
def points(workload):
    return sweep(workload,
                 patterns=(NMPattern(1, 8), NMPattern(1, 4), NMPattern(2, 4)),
                 bus_widths=(64, 128))


class TestDominance:
    def test_strict_dominance(self):
        a = DesignPoint("1:8", 128, area_mm2=1.0, training_edp_js=1.0,
                        inference_latency_s=1.0, density=0.5)
        b = DesignPoint("1:8", 128, area_mm2=2.0, training_edp_js=2.0,
                        inference_latency_s=2.0, density=0.5)
        assert a.dominates(b)
        assert not b.dominates(a)

    def test_incomparable(self):
        a = DesignPoint("x", 128, 1.0, 2.0, 1.0, 0.5)
        b = DesignPoint("y", 128, 2.0, 1.0, 1.0, 0.5)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_equal_points_do_not_dominate(self):
        a = DesignPoint("x", 128, 1.0, 1.0, 1.0, 0.5)
        b = DesignPoint("x", 128, 1.0, 1.0, 1.0, 0.5)
        assert not a.dominates(b)


class TestSweep:
    def test_all_combinations_evaluated(self, points):
        assert len(points) == 3 * 2
        assert all(p.area_mm2 > 0 and p.training_edp_js > 0 for p in points)

    def test_wider_bus_no_slower(self, points):
        by = {(p.pattern, p.bus_bits): p for p in points}
        for pattern in ("1:8", "1:4", "2:4"):
            assert by[(pattern, 128)].inference_latency_s <= \
                by[(pattern, 64)].inference_latency_s + 1e-12

    def test_density_axis(self, points):
        by = {p.pattern: p.density for p in points}
        assert by["2:4"] > by["1:4"] > by["1:8"]


class TestPareto:
    def test_front_nonempty_subset(self, points):
        front = pareto_front(points)
        assert 0 < len(front) <= len(points)
        ids = {id(p) for p in points}
        assert all(id(p) in ids for p in front)

    def test_front_mutually_nondominated(self, points):
        front = pareto_front(points)
        for a in front:
            for b in front:
                if a is not b:
                    assert not a.dominates(b)

    def test_dominated_points_excluded(self, points):
        front = pareto_front(points)
        outside = [p for p in points if p not in front]
        for p in outside:
            assert any(q.dominates(p) for q in front)

    def test_extremes_on_front(self, points):
        """Min-area and max-density points are always Pareto-optimal."""
        front = pareto_front(points)
        min_area = min(points, key=lambda p: p.area_mm2)
        max_density = max(points, key=lambda p: p.density)
        assert any(p.area_mm2 == min_area.area_mm2 for p in front)
        assert any(p.density == max_density.density for p in front)


class TestExplore:
    def test_structure(self, workload):
        result = explore(workload, patterns=(NMPattern(1, 8), NMPattern(1, 4)),
                         bus_widths=(128,))
        assert set(result) == {"points", "pareto", "pareto_fraction"}
        assert 0 < result["pareto_fraction"] <= 1.0
        assert result["points"][0]["pattern"] in ("1:8", "1:4")
