"""Unit tests for the PEStats counters and report plumbing."""

import numpy as np
import pytest

from repro.core.stats import PEStats


class TestPEStats:
    def test_merge_accumulates(self):
        a = PEStats(cycles=10, macs=100)
        b = PEStats(cycles=5, macs=50, weight_bits_read=8)
        a.merge(b)
        assert a.cycles == 15
        assert a.macs == 150
        assert a.weight_bits_read == 8

    def test_merge_returns_self(self):
        a = PEStats()
        assert a.merge(PEStats(cycles=1)) is a

    def test_add_operator(self):
        c = PEStats(cycles=3) + PEStats(cycles=4)
        assert c.cycles == 7

    def test_scaled_replication(self):
        """SIMT replication: one simulated tile stands for N identical ones."""
        a = PEStats(cycles=10, macs=100, adder_tree_ops=7)
        b = a.scaled(4)
        assert b.cycles == 40 and b.macs == 400 and b.adder_tree_ops == 28
        assert a.cycles == 10  # original untouched

    def test_mac_efficiency(self):
        s = PEStats(macs=25, dense_equivalent_macs=100)
        assert s.mac_efficiency == 0.25
        assert PEStats().mac_efficiency == 0.0

    def test_as_dict_roundtrip(self):
        s = PEStats(cycles=2, mux_ops=9)
        d = s.as_dict()
        assert d["cycles"] == 2 and d["mux_ops"] == 9
        assert set(d) >= {"cycles", "macs", "weight_bits_read",
                          "weight_bits_written", "pipeline_stalls"}


class TestStatsThroughSimulators:
    """Counters stay mutually consistent across a simulated run."""

    def test_sram_pe_counter_relations(self):
        from repro.core.sram_pe import SRAMSparsePE
        from repro.sparsity import NMPattern, compute_nm_mask

        rng = np.random.default_rng(5)
        pattern = NMPattern(1, 4)
        dense = rng.integers(-50, 50, size=(64, 8))
        mask = compute_nm_mask(np.abs(dense).astype(float), pattern, axis=0)
        w = (dense * mask).astype(np.int64)
        pe = SRAMSparsePE()
        pe.load(w, pattern)
        batch = 3
        pe.matmul(rng.integers(-8, 8, size=(batch, 64)))

        nnz = int((w != 0).sum())
        s = pe.stats
        # each stored pair written once; read on every bit plane per vector
        assert s.weight_bits_written == nnz * 8
        assert s.weight_bits_read == nnz * 8 * 8 * batch
        # comparators evaluate every index phase per pair per vector
        assert s.comparator_ops == nnz * pattern.m * batch
        # dense-equivalent work is the full matrix per vector
        assert s.dense_equivalent_macs == 64 * 8 * batch

    def test_counters_monotone_across_calls(self):
        from repro.core.mram_pe import MRAMSparsePE
        from repro.sparsity import NMPattern, compute_nm_mask

        rng = np.random.default_rng(6)
        pattern = NMPattern(2, 8)
        dense = rng.integers(-50, 50, size=(32, 4))
        mask = compute_nm_mask(np.abs(dense).astype(float), pattern, axis=0)
        pe = MRAMSparsePE()
        pe.load((dense * mask).astype(np.int64), pattern)
        x = rng.integers(-8, 8, size=(1, 32))
        pe.matmul(x)
        snapshot = pe.stats.as_dict()
        pe.matmul(x)
        after = pe.stats.as_dict()
        for key, before_val in snapshot.items():
            assert after[key] >= before_val, key


class TestFieldCoverage:
    """Every counter field — present and future — is exercised generically.

    A field added to the ``PEStats`` dataclass without test coverage is
    exactly the silent drift lint rule R3 guards against at the call-site
    level; these tests close the loop on the dataclass side by deriving
    the field list from ``dataclasses.fields`` instead of hard-coding it.
    """

    @staticmethod
    def _distinct(offset: int = 0) -> "PEStats":
        import dataclasses as _dc
        return PEStats(**{f.name: (i + 1) * 10 + offset
                          for i, f in enumerate(_dc.fields(PEStats))})

    def test_merge_accumulates_every_field(self):
        import dataclasses as _dc
        a, b = self._distinct(0), self._distinct(7)
        expect = {f.name: getattr(a, f.name) + getattr(b, f.name)
                  for f in _dc.fields(PEStats)}
        a.merge(b)
        for name, value in expect.items():
            assert getattr(a, name) == value, name

    def test_scaled_multiplies_every_field(self):
        import dataclasses as _dc
        a = self._distinct(3)
        s = a.scaled(5)
        for f in _dc.fields(PEStats):
            assert getattr(s, f.name) == 5 * getattr(a, f.name), f.name

    def test_as_dict_covers_every_field_and_round_trips(self):
        import dataclasses as _dc
        a = self._distinct(1)
        d = a.as_dict()
        assert set(d) == {f.name for f in _dc.fields(PEStats)}
        assert PEStats(**d) == a  # dataclass equality: field-wise

    def test_add_round_trips_through_dict(self):
        total = self._distinct(0) + self._distinct(9)
        rebuilt = PEStats(**total.as_dict())
        assert rebuilt == total
