"""Unit suite for the observability layer (``repro.obs``).

Covers the span model (nesting, parents, thread ids), the disabled-mode
no-op contract (singleton null span, zero recorded spans, bit-identical
kernel results), counter helpers, Chrome trace_events export with
schema-level validation and JSON round-trip, and the end-to-end invariant
from the acceptance criteria: fig7's per-design span counters sum to the
same totals the harness reports.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.obs import (NULL_SPAN, Tracer, as_counters, counter_delta,
                       flatten_stats, nonzero, summarize, to_trace_events,
                       validate_trace_events, write_chrome_trace)
from repro.core.stats import PEStats


@pytest.fixture()
def tracer():
    return Tracer(enabled=True)


@pytest.fixture(autouse=True)
def _isolate_global_tracer():
    """Tests must not leak global tracer state into each other."""
    yield
    obs.configure(enabled=False, reset=True)


class TestSpanModel:
    def test_span_records_duration_and_attrs(self, tracer):
        with tracer.span("phase", design="hybrid") as sp:
            sp.set(extra=1)
            sp.count(cycles=10)
            sp.count(cycles=5)
        (span,) = tracer.finished_spans()
        assert span.name == "phase"
        assert span.attrs == {"design": "hybrid", "extra": 1}
        assert span.counters == {"cycles": 15}
        assert span.duration_ns >= 0

    def test_nesting_tracks_depth_and_parent(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                with tracer.span("leaf"):
                    pass
            with tracer.span("sibling"):
                pass
        spans = {s.name: s for s in tracer.finished_spans()}
        assert spans["outer"].depth == 0 and spans["outer"].parent is None
        assert spans["inner"].depth == 1
        assert spans["inner"].parent == spans["outer"].index
        assert spans["leaf"].depth == 2
        assert spans["leaf"].parent == spans["inner"].index
        assert spans["sibling"].parent == spans["outer"].index

    def test_current_span_inside_context(self, tracer):
        assert tracer.current() is None
        with tracer.span("a") as sp:
            assert tracer.current() is sp
        assert tracer.current() is None

    def test_reset_clears_spans(self, tracer):
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.finished_spans() == []

    def test_exception_still_closes_span(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        (span,) = tracer.finished_spans()
        assert span.end_ns is not None
        assert tracer.current() is None


class TestDisabledNoOp:
    def test_disabled_span_is_singleton_null(self):
        t = Tracer(enabled=False)
        with t.span("anything", k=1) as sp:
            assert sp is NULL_SPAN
            sp.set(a=1)      # all mutators are no-ops
            sp.count(b=2)
        assert t.finished_spans() == []

    def test_global_tracer_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert Tracer().enabled is False

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert Tracer().enabled is True
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert Tracer().enabled is False

    def test_kernel_results_identical_with_and_without_tracing(self):
        from repro.core.sram_pe import SRAMSparsePE
        from repro.sparsity import NMPattern, compute_nm_mask

        rng = np.random.default_rng(3)
        pattern = NMPattern(1, 4)
        dense = rng.integers(-127, 128, size=(64, 8))
        mask = compute_nm_mask(np.abs(dense).astype(float), pattern, axis=0)
        weights = (dense * mask).astype(np.int64)
        x = rng.integers(-128, 128, size=(4, 64))

        def run():
            pe = SRAMSparsePE()
            pe.load(weights, pattern)
            return pe.matmul(x)

        obs.configure(enabled=False, reset=True)
        off = run()
        obs.configure(enabled=True, reset=True)
        on = run()
        assert len(obs.get_tracer().finished_spans()) > 0
        np.testing.assert_array_equal(off, on)


class TestCounters:
    def test_as_counters_flattens_pe_stats(self):
        stats = PEStats(macs=3, cycles=7)
        flat = as_counters(stats, prefix="sram.")
        assert flat["sram.macs"] == 3 and flat["sram.cycles"] == 7

    def test_flatten_and_delta(self):
        before = flatten_stats({"sram": PEStats(cycles=5)})
        after = flatten_stats({"sram": PEStats(cycles=9, macs=2)})
        delta = counter_delta(before, after)
        assert delta["sram.cycles"] == 4 and delta["sram.macs"] == 2

    def test_nonzero_drops_zeros(self):
        assert nonzero({"a": 0, "b": 1, "c": 0.0}) == {"b": 1}


class TestChromeTraceExport:
    def _traced(self):
        t = Tracer(enabled=True)
        with t.span("outer", design="hybrid") as sp:
            sp.count(cycles=4)
            with t.span("inner"):
                pass
        return t

    def test_export_validates_and_round_trips(self, tmp_path):
        t = self._traced()
        doc = to_trace_events(t, process_name="test")
        assert validate_trace_events(doc) == []

        path = tmp_path / "out" / "trace.json"
        write_chrome_trace(path, t, process_name="test")
        loaded = json.loads(path.read_text())
        assert validate_trace_events(loaded) == []
        assert loaded["otherData"]["schema"] == obs.TRACE_SCHEMA
        assert loaded["otherData"]["spans"] == 2

    def test_x_events_carry_counters_and_attrs(self):
        doc = to_trace_events(self._traced())
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert [e["name"] for e in xs] == ["outer", "inner"]
        outer = xs[0]
        assert outer["args"]["design"] == "hybrid"
        assert outer["args"]["cycles"] == 4
        assert outer["dur"] >= xs[1]["dur"]  # parent encloses child

    def test_validator_reports_malformed_docs(self):
        assert validate_trace_events({"traceEvents": "nope"})
        assert validate_trace_events(
            {"traceEvents": [{"ph": "X", "name": "a"}]})  # missing fields
        bad_dur = {"traceEvents": [{"ph": "X", "name": "a", "pid": 1,
                                    "tid": 1, "ts": 0.0, "dur": -1.0}]}
        assert validate_trace_events(bad_dur)

    def test_summarize_aggregates_by_name(self):
        t = Tracer(enabled=True)
        for _ in range(3):
            with t.span("step") as sp:
                sp.count(n=2)
        summary = summarize(t)
        (row,) = summary["spans"]
        assert row["name"] == "step" and row["count"] == 3
        assert row["counters"] == {"n": 6}


class TestHarnessIntegration:
    def test_fig7_span_counters_match_reported_totals(self):
        """Acceptance: per-design span counters == harness row totals."""
        from repro.harness.fig7 import build_fig7

        obs.configure(enabled=True, reset=True)
        result = build_fig7()
        spans = [s for s in obs.get_tracer().finished_spans()
                 if s.name == "fig7.design"]
        assert len(spans) == len(result["rows"])
        by_design = {s.attrs["design"]: s for s in spans}
        for row in result["rows"]:
            sp = by_design[row["design"]]
            assert sp.counters["energy_pj"] == pytest.approx(row["energy_pj"])
            assert sp.counters["area_mm2"] == pytest.approx(row["area_mm2"])
        span_total = sum(s.counters["energy_pj"] for s in spans)
        row_total = sum(r["energy_pj"] for r in result["rows"])
        assert span_total == pytest.approx(row_total)

    def test_fig7_cli_trace_flag_writes_valid_trace(self, tmp_path, capsys):
        from repro.harness import fig7

        trace = tmp_path / "fig7.trace.json"
        fig7.main(trace_path=str(trace))
        doc = json.loads(trace.read_text())
        assert validate_trace_events(doc) == []
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert "fig7.design" in names and "fig7.build" in names
        assert "Trace summary" in capsys.readouterr().out


class TestContextLocalTracer:
    """The contextvars-based tracer registry behind ``repro.serve``:
    ``use_tracer`` routes module-level ``obs.span`` to a context-local
    tracer without ever touching the process-global one."""

    def test_use_tracer_scopes_span_routing(self):
        local = Tracer(enabled=True)
        assert obs.get_tracer() is obs.global_tracer()
        with obs.use_tracer(local):
            assert obs.get_tracer() is local
            with obs.span("scoped") as sp:
                sp.count(widgets=3)
        assert obs.get_tracer() is obs.global_tracer()
        (span,) = local.finished_spans()
        assert span.name == "scoped"
        assert span.counters == {"widgets": 3}
        assert obs.global_tracer().finished_spans() == []

    def test_use_tracer_nests_and_restores(self):
        outer, inner = Tracer(enabled=True), Tracer(enabled=True)
        with obs.use_tracer(outer):
            with obs.use_tracer(inner):
                with obs.span("deep"):
                    pass
            assert obs.get_tracer() is outer
        assert [s.name for s in inner.finished_spans()] == ["deep"]
        assert outer.finished_spans() == []

    def test_tracing_enabled_follows_the_context_tracer(self):
        assert not obs.tracing_enabled()
        with obs.use_tracer(Tracer(enabled=True)):
            assert obs.tracing_enabled()
        assert not obs.tracing_enabled()

    def test_configure_still_targets_the_global_tracer(self):
        local = Tracer(enabled=True)
        with obs.use_tracer(local):
            obs.configure(enabled=True, reset=True)
            assert local.enabled            # untouched by configure
        assert obs.global_tracer().enabled
        obs.configure(enabled=False, reset=True)

    def test_interleaved_threads_never_cross_attach_counters(self):
        """Regression for the serve-layer fix: two threads with their own
        context tracers interleave spans; every span and counter lands on
        its own tracer, parents stay within-thread."""
        import threading

        tracers = [Tracer(enabled=True), Tracer(enabled=True)]
        barrier = threading.Barrier(2)

        def run(i):
            with obs.use_tracer(tracers[i]):
                barrier.wait()
                with obs.span("work", lane=i) as sp:
                    barrier.wait()
                    sp.count(steps=100 + i)
                    with obs.span("step"):
                        pass
                    barrier.wait()

        threads = [threading.Thread(target=run, args=(i,)) for i in (0, 1)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)

        for i, tracer in enumerate(tracers):
            spans = {s.name: s for s in tracer.finished_spans()}
            assert set(spans) == {"work", "step"}
            assert spans["work"].attrs == {"lane": i}
            assert spans["work"].counters == {"steps": 100 + i}
            assert spans["step"].parent == spans["work"].index
        assert obs.global_tracer().finished_spans() == []
