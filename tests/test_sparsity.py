"""Unit tests for N:M sparsity: patterns, masks, saliency, pruner."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.data import DataLoader, TensorDataset
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.sparsity import (GradientSaliency, NMPattern, NMPruner,
                            apply_nm_mask, compute_nm_mask, nm_sparsify,
                            prunable_parameters, prune_model, sparsity_ratio,
                            verify_nm)


class TestNMPattern:
    def test_parse(self):
        p = NMPattern.parse("2:4")
        assert p.n == 2 and p.m == 4

    def test_parse_invalid(self):
        with pytest.raises(ValueError):
            NMPattern.parse("banana")

    def test_sparsity_levels(self):
        assert NMPattern(1, 4).sparsity == 0.75
        assert NMPattern(1, 8).sparsity == 0.875
        assert NMPattern(2, 4).density == 0.5

    def test_index_bits(self):
        assert NMPattern(1, 16).index_bits == 4
        assert NMPattern(1, 4).index_bits == 2
        assert NMPattern(1, 2).index_bits == 1

    def test_group_size_limit(self):
        with pytest.raises(ValueError):
            NMPattern(1, 32)  # exceeds 4-bit index range

    def test_n_exceeds_m(self):
        with pytest.raises(ValueError):
            NMPattern(5, 4)

    def test_str(self):
        assert str(NMPattern(2, 4)) == "2:4"


class TestMask:
    def test_keeps_top_n(self):
        sal = np.array([[1.0, 9.0, 2.0, 8.0, 3.0, 7.0, 4.0, 6.0]])
        mask = compute_nm_mask(sal, NMPattern(2, 4))
        np.testing.assert_array_equal(mask, [[0, 1, 0, 1, 0, 1, 0, 1]])

    def test_group_alignment(self):
        """Groups are aligned blocks, not sliding windows."""
        sal = np.array([[10.0, 9.0, 1.0, 2.0, 1.0, 2.0, 10.0, 9.0]])
        mask = compute_nm_mask(sal, NMPattern(2, 4))
        np.testing.assert_array_equal(mask, [[1, 1, 0, 0, 0, 0, 1, 1]])

    def test_tie_break_deterministic(self):
        sal = np.ones((1, 8))
        mask = compute_nm_mask(sal, NMPattern(1, 4))
        np.testing.assert_array_equal(mask, [[1, 0, 0, 0, 1, 0, 0, 0]])

    def test_axis0_grouping(self):
        sal = np.arange(8.0).reshape(8, 1)
        mask = compute_nm_mask(sal, NMPattern(1, 4), axis=0)
        np.testing.assert_array_equal(mask[:, 0], [0, 0, 0, 1, 0, 0, 0, 1])

    def test_conv_kernel_grouping(self):
        """4-D kernels group along the flattened C*KH*KW dimension."""
        rng = np.random.default_rng(0)
        w = rng.standard_normal((4, 2, 3, 3))
        mask = compute_nm_mask(np.abs(w), NMPattern(1, 4))
        assert mask.shape == w.shape
        flat = mask.reshape(4, -1)
        assert verify_nm(flat, NMPattern(1, 4))

    def test_ragged_tail_group(self):
        """Columns not divisible by m: tail group still ≤ n non-zeros."""
        sal = np.abs(np.random.default_rng(1).standard_normal((3, 10)))
        mask = compute_nm_mask(sal, NMPattern(1, 4))
        # tail group of 2 elements keeps at most 1
        assert (mask[:, 8:].sum(axis=1) <= 1).all()

    def test_verify_rejects_violation(self):
        bad = np.ones((1, 8))
        assert not verify_nm(bad, NMPattern(1, 4))

    def test_apply_mask_shape_check(self):
        with pytest.raises(ValueError):
            apply_nm_mask(np.ones((2, 4)), np.ones((2, 5)))

    def test_nm_sparsify_magnitude(self):
        w = np.array([[0.1, -5.0, 0.2, 3.0]])
        sparse, mask = nm_sparsify(w, NMPattern(1, 4))
        np.testing.assert_array_equal(sparse, [[0, -5.0, 0, 0]])

    def test_sparsity_ratio(self):
        assert sparsity_ratio(np.array([0, 1, 0, 1])) == 0.5
        assert sparsity_ratio(np.zeros(0)) == 0.0


class TestSaliency:
    def test_gradient_saliency_accumulates(self):
        p = nn.Parameter(np.array([1.0, -2.0]))
        sal = GradientSaliency([p])
        p.grad = np.array([3.0, 1.0])
        sal.accumulate()
        p.grad = np.array([1.0, 1.0])
        sal.accumulate()
        scores = sal.scores()
        # |w| * mean|g| = [1*2, 2*1]
        np.testing.assert_allclose(scores[id(p)], [2.0, 2.0], rtol=1e-6)

    def test_scores_before_accumulate_raises(self):
        sal = GradientSaliency([nn.Parameter(np.ones(2))])
        with pytest.raises(RuntimeError):
            sal.scores()

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            GradientSaliency([])


def small_model():
    nn.set_seed(0)
    return nn.Sequential(nn.Linear(16, 24), nn.ReLU(), nn.Linear(24, 3))


def small_loader(n=40):
    rng = np.random.default_rng(0)
    X = rng.standard_normal((n, 16)).astype(np.float32)
    y = rng.integers(0, 3, n)
    return DataLoader(TensorDataset(X, y), batch_size=10)


class TestPruner:
    def test_prunable_parameters_excludes_bias(self):
        model = small_model()
        names = [n for n, _ in prunable_parameters(model)]
        assert all(n.endswith("weight") for n in names)
        assert len(names) == 2

    def test_prune_model_enforces_pattern(self):
        model = small_model()
        pattern = NMPattern(1, 4)
        masks = prune_model(model, pattern)
        for name, p in prunable_parameters(model):
            assert verify_nm(p.data, pattern), name
            assert name in masks

    def test_prune_trainable_only(self):
        model = small_model()
        model.layers[0].weight.freeze()
        masks = prune_model(model, NMPattern(1, 4), trainable_only=True)
        assert "layer0.weight" not in masks
        assert "layer2.weight" in masks

    def test_calibrated_pruner_workflow(self):
        model = small_model()
        pattern = NMPattern(2, 8)
        pruner = NMPruner(model, pattern)
        pruner.calibrate(small_loader())
        opt = Adam(model.trainable_parameters(), lr=1e-3)
        pruner.apply(opt)
        assert pruner.verify()
        report = pruner.sparsity_report()
        for name, ratio in report.items():
            assert ratio == pytest.approx(pattern.sparsity, abs=0.05), name

    def test_mask_survives_finetuning(self):
        """After masked training steps the N:M constraint still holds."""
        model = small_model()
        pattern = NMPattern(1, 4)
        pruner = NMPruner(model, pattern)
        pruner.calibrate_magnitude()
        opt = Adam(model.trainable_parameters(), lr=0.01)
        pruner.apply(opt)

        rng = np.random.default_rng(0)
        for _ in range(5):
            X = rng.standard_normal((8, 16))
            y = rng.integers(0, 3, 8)
            loss = F.cross_entropy(model(Tensor(X)), y)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert pruner.verify()

    def test_apply_before_calibrate_raises(self):
        pruner = NMPruner(small_model(), NMPattern(1, 4))
        with pytest.raises(RuntimeError):
            pruner.apply()

    def test_gradient_calibration_prefers_useful_weights(self):
        """Weights with systematically larger gradients should be kept."""
        nn.set_seed(1)
        model = nn.Sequential(nn.Linear(8, 4))
        lin = model.layers[0]
        # Make data where only the first two input dims matter.
        rng = np.random.default_rng(5)
        X = np.zeros((64, 8), dtype=np.float32)
        X[:, :2] = rng.standard_normal((64, 2))
        y = (X[:, 0] > 0).astype(int) + 2 * (X[:, 1] > 0).astype(int)
        loader = DataLoader(TensorDataset(X, y), batch_size=16)

        pruner = NMPruner(model, NMPattern(2, 8))
        masks = pruner.calibrate(loader)
        mask = masks["layer0.weight"]
        # Columns 0..1 (informative inputs) should be kept far more often
        # than the dead inputs.
        kept_live = mask[:, :2].mean()
        kept_dead = mask[:, 2:].mean()
        assert kept_live > kept_dead
