"""Property-based tests (hypothesis) for the core invariants.

These pin the invariants listed in DESIGN.md: N:M mask validity, CSC
round-tripping, bit-exact PE matmuls, quantization error bounds, and
bit-serial decomposition — over randomly generated shapes, patterns and
values rather than hand-picked cases.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitserial import from_partials, to_bit_planes
from repro.core.csc import CSCMatrix
from repro.core.mram_pe import MRAMSparsePE
from repro.core.sram_pe import SRAMSparsePE
from repro.quant import QuantParams
from repro.sparsity import NMPattern, compute_nm_mask, verify_nm


# ------------------------------------------------------------------ strategies
patterns = st.sampled_from([NMPattern(1, 4), NMPattern(2, 4), NMPattern(1, 8),
                            NMPattern(2, 8), NMPattern(4, 8), NMPattern(1, 16),
                            NMPattern(4, 16)])


@st.composite
def saliency_matrices(draw):
    rows = draw(st.integers(4, 64))
    cols = draw(st.integers(1, 12))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    return rng.random((rows, cols))


@st.composite
def sparse_int_cases(draw):
    """(sparse integer matrix, pattern) with N:M along axis 0."""
    pattern = draw(patterns)
    groups = draw(st.integers(1, 8))
    rows = groups * pattern.m
    cols = draw(st.integers(1, 6))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    dense = rng.integers(-127, 128, size=(rows, cols))
    mask = compute_nm_mask(np.abs(dense).astype(float), pattern, axis=0)
    return (dense * mask).astype(np.int64), pattern, rng


class TestNMMaskProperties:
    @given(saliency_matrices(), patterns)
    @settings(max_examples=60, deadline=None)
    def test_mask_always_satisfies_pattern(self, sal, pattern):
        mask = compute_nm_mask(sal, pattern, axis=0)
        assert verify_nm(mask, pattern, axis=0)

    @given(saliency_matrices(), patterns)
    @settings(max_examples=60, deadline=None)
    def test_mask_keeps_exactly_n_per_full_group(self, sal, pattern):
        mask = compute_nm_mask(sal, pattern, axis=0)
        full_groups = sal.shape[0] // pattern.m
        for g in range(full_groups):
            block = mask[g * pattern.m:(g + 1) * pattern.m]
            assert (block.sum(axis=0) == pattern.n).all()

    @given(saliency_matrices(), patterns)
    @settings(max_examples=40, deadline=None)
    def test_mask_keeps_largest(self, sal, pattern):
        """Every kept entry's saliency >= every dropped entry's, per group."""
        mask = compute_nm_mask(sal, pattern, axis=0)
        full_groups = sal.shape[0] // pattern.m
        for g in range(full_groups):
            s = sal[g * pattern.m:(g + 1) * pattern.m]
            m = mask[g * pattern.m:(g + 1) * pattern.m]
            for c in range(sal.shape[1]):
                kept = s[m[:, c] == 1, c]
                dropped = s[m[:, c] == 0, c]
                if len(kept) and len(dropped):
                    assert kept.min() >= dropped.max() - 1e-12


class TestCSCProperties:
    @given(sparse_int_cases())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, case):
        matrix, pattern, _ = case
        csc = CSCMatrix.from_dense(matrix, pattern)
        np.testing.assert_array_equal(csc.decode(), matrix)

    @given(sparse_int_cases())
    @settings(max_examples=60, deadline=None)
    def test_storage_never_exceeds_budget(self, case):
        matrix, pattern, _ = case
        csc = CSCMatrix.from_dense(matrix, pattern)
        budget = pattern.density * matrix.size * (8 + 4)
        assert csc.storage_bits(index_bits=4) <= budget + 1e-9

    @given(sparse_int_cases())
    @settings(max_examples=60, deadline=None)
    def test_index_range(self, case):
        matrix, pattern, _ = case
        csc = CSCMatrix.from_dense(matrix, pattern)
        for col in csc.columns:
            if col.nnz:
                assert col.intra_indices.max() < pattern.m
                assert col.intra_indices.min() >= 0


class TestPEExactness:
    @given(sparse_int_cases(), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_sram_pe_equals_integer_matmul(self, case, batch):
        matrix, pattern, rng = case
        if (matrix != 0).sum() > 1024:
            matrix = matrix[:, :2]
        if (matrix != 0).sum() > 1024:
            return
        pe = SRAMSparsePE()
        pe.load(matrix, pattern)
        x = rng.integers(-128, 128, size=(batch, matrix.shape[0]))
        np.testing.assert_array_equal(pe.matmul(x), x @ matrix)

    @given(sparse_int_cases(), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_mram_pe_equals_integer_matmul(self, case, batch):
        matrix, pattern, rng = case
        pe = MRAMSparsePE()
        pe.load(matrix, pattern)
        x = rng.integers(-128, 128, size=(batch, matrix.shape[0]))
        np.testing.assert_array_equal(pe.matmul(x), x @ matrix)

    @given(sparse_int_cases())
    @settings(max_examples=30, deadline=None)
    def test_both_pes_agree(self, case):
        """The two PE designs are different circuits for the same function."""
        matrix, pattern, rng = case
        if (matrix != 0).sum() > 1024:
            return
        x = rng.integers(-64, 64, size=(2, matrix.shape[0]))
        sram, mram = SRAMSparsePE(), MRAMSparsePE()
        sram.load(matrix, pattern)
        mram.load(matrix, pattern)
        np.testing.assert_array_equal(sram.matmul(x), mram.matmul(x))


class TestBitSerialProperties:
    @given(st.integers(0, 2**31), st.integers(1, 5), st.integers(1, 32))
    @settings(max_examples=60, deadline=None)
    def test_plane_decomposition_roundtrip(self, seed, batch, dim):
        rng = np.random.default_rng(seed)
        x = rng.integers(-128, 128, size=(batch, dim))
        planes = to_bit_planes(x, 8)
        partials = np.stack([planes[b] for b in range(8)])
        np.testing.assert_array_equal(from_partials(partials, 8), x)

    @given(st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_bit_matmul_linearity(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.integers(-128, 128, size=(3, 10))
        w = rng.integers(-128, 128, size=(10, 4))
        planes = to_bit_planes(x, 8)
        partials = np.stack([planes[b] @ w for b in range(8)])
        np.testing.assert_array_equal(from_partials(partials, 8), x @ w)


class TestQuantProperties:
    @given(st.integers(0, 2**31), st.floats(0.01, 100.0))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_error_bounded_by_half_scale(self, seed, spread):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(64) * spread
        params = QuantParams.from_tensor(x)
        err = np.abs(params.fake_quantize(x) - x)
        assert err.max() <= params.scale / 2 + 1e-9

    @given(st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_quantize_idempotent(self, seed):
        """Fake-quantizing twice equals once (grid projection)."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(32)
        params = QuantParams.from_tensor(x)
        once = params.fake_quantize(x)
        twice = params.fake_quantize(once)
        np.testing.assert_allclose(once, twice, atol=1e-12)

    @given(st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_zeros_preserved(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(32)
        x[::3] = 0.0
        params = QuantParams.from_tensor(x)
        assert (params.fake_quantize(x)[::3] == 0).all()
