"""Property-based tests at the accelerator level (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accelerator import HybridAccelerator
from repro.core.transpose_pe import BackpropEngine
from repro.sparsity import NMPattern, compute_nm_mask
from repro.sparsity.permutation import (apply_permutation,
                                        find_channel_permutation,
                                        invert_permutation,
                                        retained_saliency)

patterns = st.sampled_from([NMPattern(1, 4), NMPattern(2, 8),
                            NMPattern(1, 8), NMPattern(2, 4)])


@st.composite
def gemm_cases(draw):
    pattern = draw(patterns)
    groups = draw(st.integers(2, 16))
    in_dim = groups * pattern.m
    out_dim = draw(st.integers(1, 16))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    dense = rng.integers(-127, 128, size=(in_dim, out_dim))
    mask = compute_nm_mask(np.abs(dense).astype(float), pattern, axis=0)
    return (dense * mask).astype(np.int64), pattern, rng


class TestAcceleratorProperties:
    @given(gemm_cases(), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_tiled_gemm_always_exact(self, case, batch):
        """Arbitrary shapes/tilings: the accelerator equals integer matmul."""
        w, pattern, rng = case
        acc = HybridAccelerator(pattern)
        acc.load_gemm("g", w, learnable=bool(rng.integers(0, 2)))
        x = rng.integers(-128, 128, size=(batch, w.shape[0]))
        np.testing.assert_array_equal(acc.gemm("g", x), x @ w)

    @given(gemm_cases())
    @settings(max_examples=25, deadline=None)
    def test_dense_weight_roundtrip(self, case):
        """Tiling + CSC + reassembly is the identity."""
        w, pattern, _ = case
        acc = HybridAccelerator(pattern)
        acc.load_gemm("g", w, learnable=True)
        np.testing.assert_array_equal(acc.dense_weight("g"), w)

    @given(gemm_cases())
    @settings(max_examples=20, deadline=None)
    def test_backward_identities(self, case):
        """Error-prop and gradient through the transposed buffers satisfy
        the chain-rule identities exactly, for any shapes."""
        w, pattern, rng = case
        engine = BackpropEngine()
        batch = 3
        delta = rng.integers(-32, 32, size=(batch, w.shape[1]))
        acts = rng.integers(-32, 32, size=(batch, w.shape[0]))
        np.testing.assert_array_equal(
            engine.propagate_error(w, delta, pattern), delta @ w.T)
        np.testing.assert_array_equal(
            engine.weight_gradient(acts, delta, pattern), acts.T @ delta)


class TestPermutationProperties:
    @given(st.integers(0, 2**31), patterns)
    @settings(max_examples=25, deadline=None)
    def test_search_never_below_identity(self, seed, pattern):
        rng = np.random.default_rng(seed)
        sal = np.abs(rng.standard_normal((pattern.m * 4, 3)))
        base = retained_saliency(sal, pattern)
        _, best = find_channel_permutation(sal, pattern, iterations=100,
                                           rng=rng)
        assert best >= base - 1e-9

    @given(st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_permutation_preserves_matmul(self, seed):
        """Permuting weights and gathering activations with the inverse is
        an exact identity on the computation."""
        rng = np.random.default_rng(seed)
        w = rng.integers(-50, 50, size=(24, 5))
        x = rng.integers(-50, 50, size=(2, 24))
        perm = rng.permutation(24)
        wp = apply_permutation(w, perm)
        np.testing.assert_array_equal(x[:, perm] @ wp, x @ w)
        # and round-tripping through the inverse restores the matrix
        np.testing.assert_array_equal(
            apply_permutation(wp, invert_permutation(perm)), w)
