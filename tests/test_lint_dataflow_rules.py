"""End-to-end tests for dataflow rules R6/R7, the CLI flags, and the
suppression audit.

The two fixtures the PR's acceptance criteria name are here: an
under-provisioned accumulator that R6 must flag with a concrete witness
range, and a width-contract mutation (datapath widened without touching
the energy model) that R7 must flag.
"""

import json
from pathlib import Path

import pytest

from repro.lint import lint_paths
from repro.lint.cli import EXIT_CLEAN, EXIT_FINDINGS, main
from repro.lint.engine import audit_suppressions, lint_sources
from repro.lint.registry import all_rules

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"

# A minimal widths module so fixtures resolve constants without the real
# package (lint_sources never imports code, it only parses).
WIDTHS_FIXTURE = '''
ACTIVATION_BITS = 8
WEIGHT_BITS = 8
INDEX_BITS = 4
ACCUM_BITS = 64
PARTIAL_PRODUCT_BITS = 1

def width_contract(**kwargs):
    def deco(fn):
        return fn
    return deco
'''

SENSING_FIXTURE = '''
SENSED_WEIGHT_BITS = 8
SENSED_INDEX_BITS = 4
SENSE_AMP_RESOLUTION_BITS = 1
'''

COST_FIXTURE = '''
MAC_WEIGHT_BITS = 8
MAC_ACTIVATION_BITS = 8
MAC_ACCUMULATOR_BITS = 64
'''


def _fixture_tree(**extra):
    sources = {
        "src/repro/core/widths.py": WIDTHS_FIXTURE,
        "src/repro/energy/sensing.py": SENSING_FIXTURE,
        "src/repro/energy/cost.py": COST_FIXTURE,
    }
    sources.update(extra)
    return sources


# ---------------------------------------------------------------------------
# R6 bit-growth
# ---------------------------------------------------------------------------

UNDERPROVISIONED = '''
import numpy as np
from repro.core.widths import width_contract


@width_contract(inputs="i8", weights="i8", accum="i16", depth="1024",
                params={"a": "inputs", "w": "weights"})
def bad_dot(a, w):
    acc = np.zeros(4, dtype=np.int16)
    for i in range(1024):
        acc += a[i] * w[i]
    return acc
'''


def test_r6_flags_underprovisioned_accumulator():
    res = lint_sources(_fixture_tree(**{
        "src/repro/core/bad.py": UNDERPROVISIONED}), codes=["R6"])
    r6 = [f for f in res.findings if f.code == "R6"]
    assert len(r6) == 1
    f = r6[0]
    assert f.path == "src/repro/core/bad.py"
    # The finding carries the concrete witness expression and the interval
    # arithmetic: 1024 products of i8 x i8 reach ~2**24, far outside i16.
    assert "acc += a[i] * w[i]" in f.message
    assert "[-16646144, 16777216]" in f.message
    assert "'i16'" in f.message


def test_r6_accepts_adequate_accumulator():
    fixed = UNDERPROVISIONED.replace('accum="i16"', 'accum="i64"').replace(
        "np.int16", "np.int64")
    res = lint_sources(_fixture_tree(**{
        "src/repro/core/ok.py": fixed}), codes=["R6"])
    assert [f for f in res.findings if f.code == "R6"] == []


MATMUL_REDUCTION = '''
import numpy as np
from repro.core.widths import width_contract


@width_contract(inputs="i8", weights="i8", accum="i32", depth="1 << 20",
                params={"a": "inputs", "w": "weights"})
def big_matmul(a, w):
    return a.astype(np.int32) @ w.astype(np.int32)
'''


def test_r6_flags_matmul_against_declared_depth():
    # 2**20 x (2**7)**2 ~ 2**34 does not fit i32; the @ operator is the
    # reduction site.
    res = lint_sources(_fixture_tree(**{
        "src/repro/core/mm.py": MATMUL_REDUCTION}), codes=["R6"])
    r6 = [f for f in res.findings if f.code == "R6"]
    assert len(r6) == 1
    assert "@" in r6[0].message and "'i32'" in r6[0].message


CALLEE_VIOLATION = '''
import numpy as np
from repro.core.widths import width_contract


@width_contract(inputs="i8", params={"x": "inputs"})
def narrow(x):
    return x


@width_contract(inputs="i16", params={"a": "inputs"})
def caller(a):
    return narrow(a * 4)
'''


def test_r6_flags_call_argument_overflow():
    res = lint_sources(_fixture_tree(**{
        "src/repro/core/call.py": CALLEE_VIOLATION}), codes=["R6"])
    r6 = [f for f in res.findings if f.code == "R6"]
    assert len(r6) == 1
    assert "narrow" in r6[0].message and "x=" in r6[0].message


RETURN_VIOLATION = '''
from repro.core.widths import width_contract


@width_contract(inputs="i8", returns="i8", params={"x": "inputs"})
def widens(x):
    return x * 100
'''


def test_r6_flags_return_overflow():
    res = lint_sources(_fixture_tree(**{
        "src/repro/core/ret.py": RETURN_VIOLATION}), codes=["R6"])
    r6 = [f for f in res.findings if f.code == "R6"]
    assert len(r6) == 1
    assert "can return" in r6[0].message


def test_r6_suppressible_with_pragma():
    suppressed = UNDERPROVISIONED.replace(
        "        acc += a[i] * w[i]",
        "        acc += a[i] * w[i]  # repro-lint: disable-line=R6")
    res = lint_sources(_fixture_tree(**{
        "src/repro/core/bad.py": suppressed}), codes=["R6"])
    assert res.findings == []
    assert len(res.suppressed) == 1


# ---------------------------------------------------------------------------
# R7 width-consistency
# ---------------------------------------------------------------------------

ENTRY_POINT = '''
from repro.core.widths import width_contract


@width_contract(inputs="i8", weights="i8", accum="i64")
def spmm_gather(a, w):
    return a @ w
'''


def test_r7_clean_when_widths_agree():
    res = lint_sources(_fixture_tree(**{
        "src/repro/core/kernels.py": ENTRY_POINT}), codes=["R7"])
    assert [f for f in res.findings if f.code == "R7"] == []


def test_r7_flags_contract_mutation_without_energy_update():
    # The acceptance fixture: widen the entry point's declared weights
    # while sensing.py/cost.py still charge for 8-bit — R7 must fire.
    mutated = ENTRY_POINT.replace('weights="i8"', 'weights="i12"')
    res = lint_sources(_fixture_tree(**{
        "src/repro/core/kernels.py": mutated}), codes=["R7"])
    r7 = [f for f in res.findings if f.code == "R7"]
    assert len(r7) == 1
    assert "spmm_gather" in r7[0].message
    assert "i12" in r7[0].message and "WEIGHT_BITS" in r7[0].message


def test_r7_flags_energy_model_drift():
    drifted = _fixture_tree()
    drifted["src/repro/energy/sensing.py"] = SENSING_FIXTURE.replace(
        "SENSED_WEIGHT_BITS = 8", "SENSED_WEIGHT_BITS = 4")
    res = lint_sources(drifted, codes=["R7"])
    r7 = [f for f in res.findings if f.code == "R7"]
    assert len(r7) == 1
    assert "SENSED_WEIGHT_BITS" in r7[0].message
    assert r7[0].path == "src/repro/energy/sensing.py"


def test_r7_flags_missing_energy_constant():
    gutted = _fixture_tree()
    gutted["src/repro/energy/cost.py"] = "MAC_WEIGHT_BITS = 8\n"
    res = lint_sources(gutted, codes=["R7"])
    assert "MAC_ACTIVATION_BITS" in " ".join(f.message
                                             for f in res.findings)


# ---------------------------------------------------------------------------
# opt-in behaviour, real tree, CLI
# ---------------------------------------------------------------------------

def test_r6_r7_are_opt_in():
    default_codes = {r.code for r in all_rules()}
    assert "R6" not in default_codes and "R7" not in default_codes
    with_optin = {r.code for r in all_rules(include_optin=True)}
    assert {"R6", "R7"} <= with_optin
    # Explicit selection works without the flag.
    assert {r.code for r in all_rules(codes=["R6"])} == {"R6"}


def test_real_tree_clean_under_dataflow():
    res = lint_paths([str(SRC)], codes=["R6", "R7"])
    assert res.parse_errors == []
    assert res.ok, "dataflow findings on the real tree:\n" + "\n".join(
        f.format() for f in res.all_findings())


def test_cli_dataflow_exits_clean_on_real_tree(capsys):
    assert main(["--dataflow", str(SRC)]) == EXIT_CLEAN
    assert "clean:" in capsys.readouterr().out


def test_cli_dataflow_strict_exits_clean_on_real_tree(capsys):
    assert main(["--dataflow", "--strict", str(SRC)]) == EXIT_CLEAN
    capsys.readouterr()


def test_cli_dataflow_json_reports_findings(tmp_path, capsys):
    bad = tmp_path / "src" / "repro" / "core"
    bad.mkdir(parents=True)
    (bad / "widths.py").write_text(WIDTHS_FIXTURE)
    (bad / "bad.py").write_text(UNDERPROVISIONED)
    assert main(["--dataflow", "--format", "json",
                 str(tmp_path / "src")]) == EXIT_FINDINGS
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert any(f["code"] == "R6" for f in payload["findings"])


# ---------------------------------------------------------------------------
# suppression audit (--list-suppressions)
# ---------------------------------------------------------------------------

def test_audit_real_tree_pragmas_all_live():
    entries = audit_suppressions([str(SRC)])
    assert entries, "the real tree documents at least the occupancy pragmas"
    stale = [e for e in entries if e.stale]
    assert stale == [], "stale pragmas:\n" + "\n".join(
        e.format() for e in stale)


def test_audit_detects_stale_pragma(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text("x = 1  # repro-lint: disable-line=R4\n")
    entries = audit_suppressions([str(mod)])
    assert len(entries) == 1
    assert entries[0].stale
    assert "STALE" in entries[0].format()


def test_cli_list_suppressions(capsys):
    assert main(["--list-suppressions", str(SRC)]) == EXIT_CLEAN
    out = capsys.readouterr().out
    assert "suppression pragma" in out
    assert "disable-line=R1" in out


def test_cli_list_suppressions_strict_fails_on_stale(tmp_path, capsys):
    mod = tmp_path / "mod.py"
    mod.write_text("x = 1  # repro-lint: disable-line=R4\n")
    assert main(["--list-suppressions", str(mod)]) == EXIT_CLEAN
    capsys.readouterr()
    assert main(["--list-suppressions", "--strict",
                 str(mod)]) == EXIT_FINDINGS
    assert "STALE" in capsys.readouterr().out


def test_cli_list_suppressions_json(capsys):
    assert main(["--list-suppressions", "--format", "json",
                 str(SRC)]) == EXIT_CLEAN
    payload = json.loads(capsys.readouterr().out)
    assert all({"path", "line", "kind", "codes", "matches",
                "stale"} <= set(e) for e in payload)


def test_cli_strict_lint_reports_stale_as_s1(tmp_path, capsys):
    mod = tmp_path / "mod.py"
    mod.write_text("x = 1  # repro-lint: disable-line=R4\n")
    assert main([str(mod)]) == EXIT_CLEAN
    capsys.readouterr()
    assert main(["--strict", str(mod)]) == EXIT_FINDINGS
    assert "S1" in capsys.readouterr().out
