"""Differential certification of ``repro.serve``: served == direct.

The service's core claim (ISSUE: acceptance criterion) is that putting
HTTP, a batching queue, and a worker pool between the client and the
evaluator changes *nothing* about the bytes: every ``POST /v1/evaluate``
response embeds a record canonically identical to what the direct
library call produces — cold, cache-warm, and for invalid configs
(error records).  Sweeps submitted over HTTP must serialize to the same
frontier document as ``run_sweep`` called in-process.

All comparisons go through ``dumps_canonical`` *after* a real JSON
round-trip over the wire, so float formatting is part of the contract.
"""

import json

import pytest

from repro.dse import (SMOKE_SPEC, config_key, dumps_canonical,
                       evaluate_config, evaluate_one, frontier_doc,
                       normalize_config, run_sweep)
from repro.dse.cache import DiskCache, NullCache
from repro.dse.engine import _evaluate_record
from repro.serve import build_sweep_spec

from tests.serve_utils import NOMINAL_CONFIG, live_server, wait_for_job

#: Deterministic sample: every config in the smoke sweep (8 points).
SAMPLE_CONFIGS = SMOKE_SPEC.configs()

#: Configs that normalize fine but fail evaluation -> error records.
VALUE_INVALID_CONFIGS = [
    dict(NOMINAL_CONFIG, pattern="9:4"),
    dict(NOMINAL_CONFIG, device="underwater"),
    dict(NOMINAL_CONFIG, mram_rows=0),
    dict(NOMINAL_CONFIG, weight_bits=99),
]


def canon(doc):
    """Canonical JSON of a document that already crossed the wire."""
    return dumps_canonical(doc)


class TestEvaluateDifferential:
    def test_cold_responses_match_direct_evaluate(self, tmp_path):
        with live_server(tmp_path, window_s=0.005) as (app, client):
            for cfg in SAMPLE_CONFIGS:
                status, doc, headers = client.post("/v1/evaluate",
                                                   {"config": cfg})
                assert status == 200
                assert doc["cache"] == "miss"
                direct = evaluate_config(normalize_config(cfg))
                assert canon(doc["record"]) == canon(direct)
                assert doc["key"] == config_key(normalize_config(cfg))
                assert headers["X-Repro-Trace-Id"] == doc["trace_id"]

    def test_warm_responses_are_cache_hits_with_identical_bytes(
            self, tmp_path):
        with live_server(tmp_path, window_s=0.005) as (app, client):
            cold = {}
            for cfg in SAMPLE_CONFIGS:
                _, doc, _ = client.post("/v1/evaluate", {"config": cfg})
                cold[doc["key"]] = canon(doc["record"])
            for cfg in SAMPLE_CONFIGS:
                status, doc, _ = client.post("/v1/evaluate", {"config": cfg})
                assert status == 200
                assert doc["cache"] == "hit"
                assert canon(doc["record"]) == cold[doc["key"]]

    def test_http_and_library_share_one_cache(self, tmp_path):
        """A config evaluated over HTTP is a warm hit for the library,
        and vice versa — same content-hash key, same cache bytes."""
        cache = DiskCache(tmp_path / "shared_cache")
        with live_server(cache=cache, window_s=0.005) as (app, client):
            via_http = SAMPLE_CONFIGS[0]
            via_lib = SAMPLE_CONFIGS[1]
            _, doc, _ = client.post("/v1/evaluate", {"config": via_http})
            assert doc["cache"] == "miss"
            record, served = evaluate_one(via_http, cache=cache)
            assert served == "hit"
            assert canon(record) == canon(doc["record"])

            lib_record, lib_served = evaluate_one(via_lib, cache=cache)
            assert lib_served == "miss"
            _, doc, _ = client.post("/v1/evaluate", {"config": via_lib})
            assert doc["cache"] == "hit"
            assert canon(doc["record"]) == canon(lib_record)

    @pytest.mark.parametrize("bad", VALUE_INVALID_CONFIGS,
                             ids=["pattern", "device", "rows", "bits"])
    def test_error_records_match_direct_error_records(self, tmp_path, bad):
        """Value-invalid configs come back 200 with the *same* error
        record a sweep shard would produce — shape, type, and message."""
        with live_server(tmp_path, window_s=0.005) as (app, client):
            status, doc, _ = client.post("/v1/evaluate", {"config": bad})
            assert status == 200
            assert "error" in doc["record"]
            direct = _evaluate_record(normalize_config(bad))
            assert canon(doc["record"]) == canon(direct)

    def test_error_records_are_never_cached(self, tmp_path):
        with live_server(tmp_path, window_s=0.005) as (app, client):
            bad = VALUE_INVALID_CONFIGS[0]
            for _ in range(2):
                _, doc, _ = client.post("/v1/evaluate", {"config": bad})
                assert doc["cache"] == "miss"
            assert app.cache.stats()["stored"] == 0

    @pytest.mark.parametrize("shape_bad, code", [
        ({"config": dict(NOMINAL_CONFIG, zap=1)}, "unknown-field"),
        ({"config": {"pattern": "1:8"}}, "bad-config"),
        ({"config": dict(NOMINAL_CONFIG, bus_bits="wide")}, "bad-config"),
        ({}, "bad-request"),
    ], ids=["unknown-key", "missing-keys", "uncoercible", "no-config"])
    def test_shape_invalid_configs_are_schema_errors(self, tmp_path,
                                                     shape_bad, code):
        """Exactly the configs ``normalize_config`` refuses (and that a
        direct ``evaluate_one`` raises on) are 4xx at the schema layer."""
        with live_server(tmp_path, window_s=0.005) as (app, client):
            status, doc, _ = client.post("/v1/evaluate", shape_bad)
            assert status == 400
            assert doc["error"]["code"] == code
            if shape_bad.get("config") and code != "unknown-field":
                with pytest.raises((ValueError, TypeError)):
                    evaluate_one(shape_bad["config"], cache=NullCache())


class TestSweepDifferential:
    SWEEP_REQUEST = {"preset": "smoke",
                     "overrides": {"patterns": ["1:8", "2:8"],
                                   "bus_bits": [64]}}

    def test_sweep_job_frontier_matches_run_sweep(self, tmp_path):
        with live_server(tmp_path, window_s=0.005) as (app, client):
            status, job, _ = client.post("/v1/sweep", self.SWEEP_REQUEST)
            assert status == 202
            done = wait_for_job(client, job["id"])
            assert done["state"] == "done", done.get("error")
            status, result, _ = client.get(f"/v1/jobs/{job['id']}/result")
            assert status == 200

            spec = build_sweep_spec(dict(self.SWEEP_REQUEST, workers=1))
            direct = run_sweep(spec=spec, workers=1,
                               cache=DiskCache(tmp_path / "direct_cache"))
            assert canon(result["result"]["frontier"]) \
                == canon(frontier_doc(direct))
            assert result["result"]["configs"] == direct["configs"]

    def test_sweep_records_match_direct_records(self, tmp_path):
        request = dict(self.SWEEP_REQUEST, records=True)
        with live_server(tmp_path, window_s=0.005) as (app, client):
            _, job, _ = client.post("/v1/sweep", request)
            done = wait_for_job(client, job["id"])
            assert done["state"] == "done", done.get("error")
            _, result, _ = client.get(f"/v1/jobs/{job['id']}/result")

            spec = build_sweep_spec(dict(request, workers=1))
            direct = run_sweep(spec=spec, workers=1, cache=NullCache())
            assert canon(result["result"]["records"]) \
                == canon(direct["records"])

    def test_wire_json_round_trip_is_lossless(self, tmp_path):
        """The float-fidelity backstop: parsing the exact wire payload
        and re-canonicalizing must reproduce the library's canonical
        JSON (shortest-repr floats survive json round-trips)."""
        with live_server(tmp_path, window_s=0.005) as (app, client):
            _, doc, _ = client.post("/v1/evaluate",
                                    {"config": NOMINAL_CONFIG})
            direct = evaluate_config(normalize_config(NOMINAL_CONFIG))
            rewired = json.loads(json.dumps(doc["record"]))
            assert canon(rewired) == canon(direct)
            metrics = doc["record"]["metrics"]
            assert metrics == direct["metrics"]
