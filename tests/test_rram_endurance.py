"""Tests for the RRAM technology variant and the endurance study."""

import math

import numpy as np
import pytest

from repro.core.designs import DenseCIMDesign, HybridSparseDesign
from repro.core.workload import paper_workload
from repro.energy.endurance import (ENDURANCE_CYCLES, endurance_report,
                                    steps_per_continual_task,
                                    tasks_until_failure,
                                    training_lifetime_study)
from repro.energy.rram import (RRAMCell, RRAMParams, compare_nvm_write_cost,
                               rram_pe_spec, rram_technology)
from repro.sparsity import NMPattern


class TestRRAMDevice:
    def test_two_states(self):
        cell = RRAMCell()
        assert cell.resistance_ohm == 150e3
        cell.write(RRAMCell.STATE_LRS)
        assert cell.resistance_ohm == 10e3

    def test_on_off_ratio(self):
        assert RRAMCell().on_off_ratio == pytest.approx(15.0)

    def test_write_energy_higher_than_mtj(self):
        rram_e, mram_e = compare_nvm_write_cost()
        assert rram_e > 10 * mram_e

    def test_endurance_wearout(self):
        cell = RRAMCell(RRAMParams(endurance_cycles=4))
        for i in range(3):
            assert cell.write(i % 2)  # alternate states
        assert not cell.write(1)      # 4th toggling write fails
        assert cell.worn_out

    def test_same_state_write_free(self):
        cell = RRAMCell(RRAMParams(endurance_cycles=2), state=RRAMCell.STATE_HRS)
        for _ in range(10):
            assert cell.write(RRAMCell.STATE_HRS)
        assert cell.write_count == 0

    def test_stochastic_early_failure(self):
        rng = np.random.default_rng(0)
        params = RRAMParams(endurance_cycles=100)
        failures = []
        for _ in range(50):
            cell = RRAMCell(params)
            n = 0
            while cell.write(n % 2, rng=rng) and n < 10000:
                n += 1
            failures.append(n)
        # variation: not all cells fail at exactly the nominal endurance
        assert len(set(failures)) > 5

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RRAMParams(resistance_lrs_ohm=1e5, resistance_hrs_ohm=1e4)
        with pytest.raises(ValueError):
            RRAMCell(state=7)

    def test_read_current(self):
        assert RRAMCell().read_current_ua() > 0


class TestRRAMTechnology:
    def test_spec_carries_rram_constants(self):
        spec = rram_pe_spec()
        assert spec.write_energy_pj_per_bit > 1.0
        assert spec.write_latency_cycles >= 25  # ~50 ns at 500 MHz
        assert spec.resistance_ap_ohm == 150e3

    def test_designs_accept_rram_tech(self):
        w = paper_workload()
        tech = rram_technology()
        hybrid = HybridSparseDesign(NMPattern(1, 8), tech=tech)
        report = hybrid.training_step(w)
        assert report.edp_js > 0

    def test_rram_hybrid_still_beats_rram_dense(self):
        """Portability claim: the hybrid structure wins regardless of NVM."""
        w = paper_workload()
        tech = rram_technology()
        hybrid = HybridSparseDesign(NMPattern(1, 8), tech=tech)
        dense = DenseCIMDesign("mram", "all", tech=tech)
        assert dense.training_step(w).edp_js > \
            100 * hybrid.training_step(w).edp_js

    def test_rram_finetune_worse_than_mram_finetune(self):
        """Higher write energy + longer pulses -> RRAM in-place training is
        even worse than MRAM in-place training."""
        w = paper_workload()
        rram = DenseCIMDesign("mram", "all", tech=rram_technology())
        mram = DenseCIMDesign("mram", "all")
        assert rram.training_step(w).energy.write_pj > \
            mram.training_step(w).energy.write_pj


class TestEndurance:
    def test_hybrid_unlimited(self):
        w = paper_workload()
        rows = training_lifetime_study(w)
        hybrid = [r for r in rows if r.config.startswith("Hybrid")]
        assert len(hybrid) == 1
        assert math.isinf(hybrid[0].steps_to_failure)

    def test_rram_finetune_limited(self):
        w = paper_workload()
        rows = {(r.config, r.memory): r for r in training_lifetime_study(w)}
        rram_ft = rows[("Finetune-all", "rram")]
        assert not math.isinf(rram_ft.steps_to_failure)
        # HfOx endurance / 2 writes per step
        assert rram_ft.steps_to_failure == ENDURANCE_CYCLES["rram"] / 2

    def test_mram_outlives_rram(self):
        w = paper_workload()
        rows = {(r.config, r.memory): r for r in training_lifetime_study(w)}
        assert rows[("Finetune-all", "mram")].steps_to_failure > \
            1e4 * rows[("Finetune-all", "rram")].steps_to_failure

    def test_tasks_until_failure(self):
        report = endurance_report("x", "rram", update_weights=1000,
                                  total_cells=10000)
        tasks = tasks_until_failure(report)
        assert 0 < tasks < float("inf")
        steps = steps_per_continual_task()
        assert tasks == pytest.approx(report.steps_to_failure / steps)

    def test_unknown_memory(self):
        with pytest.raises(ValueError):
            endurance_report("x", "flash", 10, 100)

    def test_invalid_cells(self):
        with pytest.raises(ValueError):
            endurance_report("x", "sram", 10, 0)


class TestEnduranceHarness:
    def test_build_and_render(self):
        from repro.harness.endurance import build_endurance, render_endurance
        result = build_endurance()
        assert len(result["lifetime"]) == 7
        out = render_endurance(result)
        assert "endurance" in out.lower()
        assert "RRAM" in out
        # hybrid rows report infinite lifetime
        hybrid = [r for r in result["lifetime"]
                  if r["config"].startswith("Hybrid")]
        assert math.isinf(hybrid[0]["tasks_to_failure"])
