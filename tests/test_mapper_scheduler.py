"""Unit tests for the mapper, core hierarchy, and SIMT scheduler."""

import math

import numpy as np
import pytest

from repro.core.mapper import (CoreConfig, HybridMapper, dense_core_requirement,
                               tile_layer_shapes)
from repro.core.scheduler import SIMTScheduler
from repro.core.workload import (LayerWorkload, Workload,
                                 extract_repnet_workload, paper_workload)
from repro.repnet import build_repnet_model
from repro.sparsity import NMPattern


@pytest.fixture
def small_workload():
    model = build_repnet_model(widths=(8, 16), strides=(1, 2),
                               repnet_width=4, seed=0)
    return extract_repnet_workload(model, 16)


class TestCoreConfig:
    def test_paper_capacity(self):
        """4x4 banks x 4x4 sub-arrays of 1024x512 bits = 16 MB per core."""
        core = CoreConfig()
        assert core.mram_pes == 256
        assert core.mram_capacity_bytes == 16 * 1024 * 1024

    def test_dense_dual_core(self):
        """The paper's ~26 MB dense model needs two 16 MB cores."""
        assert dense_core_requirement(paper_workload()) == 2


class TestTiling:
    def test_tiles_cover_matrix(self):
        pattern = NMPattern(1, 4)
        blocks = tile_layer_shapes(300, 70, pattern, pe_pairs=1024,
                                   max_rows=128)
        covered = np.zeros((300, 70), dtype=int)
        for r, c, rows, cols in blocks:
            covered[r:r + rows, c:c + cols] += 1
        assert (covered == 1).all()

    def test_row_blocks_group_aligned(self):
        pattern = NMPattern(1, 8)
        blocks = tile_layer_shapes(256, 16, pattern, pe_pairs=1024,
                                   max_rows=128)
        for r, _c, _rows, _cols in blocks:
            assert r % pattern.m == 0

    def test_tile_fits_pe(self):
        pattern = NMPattern(2, 4)  # density 0.5
        for _r, _c, rows, cols in tile_layer_shapes(512, 100, pattern,
                                                  pe_pairs=1024,
                                                  max_rows=128):
            assert math.ceil(rows * pattern.density) * cols <= 1024

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            tile_layer_shapes(0, 4, NMPattern(1, 4), 1024)


class TestHybridMapper:
    def test_residence_split(self, small_workload):
        plan = HybridMapper(NMPattern(1, 4)).map_workload(small_workload)
        by_layer = {}
        for t in plan.tiles:
            by_layer.setdefault(t.layer, set()).add(t.kind)
        for layer in small_workload.layers:
            kinds = by_layer[layer.name]
            assert kinds == ({"sram"} if layer.learnable else {"mram"})

    def test_storage_report_compression(self, small_workload):
        mapper = HybridMapper(NMPattern(1, 4))
        report = mapper.storage_report(small_workload)
        # 1:4 with 12-bit pairs: <= 0.375 of dense plus padding slack
        assert report["compression_ratio"] <= 0.40
        assert report["sram_bytes"] < report["mram_bytes"]

    def test_sparser_pattern_needs_fewer_pes(self, small_workload):
        p14 = HybridMapper(NMPattern(1, 4)).map_workload(small_workload)
        p18 = HybridMapper(NMPattern(1, 8)).map_workload(small_workload)
        assert p18.total_pairs < p14.total_pairs

    def test_paper_scale_fits_single_core(self):
        """Compressed (1:4) 26 MB model fits one 16 MB core — the hybrid's
        headline storage win over the dual-core dense baselines."""
        w = paper_workload()
        mapper = HybridMapper(NMPattern(1, 4))
        report = mapper.storage_report(w)
        assert report["cores_used"] == 1
        assert report["mram_bytes"] < CoreConfig().mram_capacity_bytes


class TestScheduler:
    def test_timeline_monotone(self, small_workload):
        plan = HybridMapper(NMPattern(1, 4)).map_workload(small_workload)
        sched = SIMTScheduler(plan)
        res = sched.schedule_inference(small_workload)
        prev_end = 0.0
        for entry in res.layers:
            assert entry.start_cycle == prev_end
            assert entry.end_cycle > entry.start_cycle
            prev_end = entry.end_cycle
        assert res.total_cycles == prev_end

    def test_batch_scales_cycles(self, small_workload):
        plan = HybridMapper(NMPattern(1, 4)).map_workload(small_workload)
        sched = SIMTScheduler(plan)
        c1 = sched.schedule_inference(small_workload, batch=1).total_cycles
        c4 = sched.schedule_inference(small_workload, batch=4).total_cycles
        assert c4 == pytest.approx(4 * c1)

    def test_backward_covers_learnable_only(self, small_workload):
        plan = HybridMapper(NMPattern(1, 4)).map_workload(small_workload)
        sched = SIMTScheduler(plan)
        res = sched.schedule_backward(small_workload)
        assert all(e.kind == "sram" for e in res.layers)
        learnable = [l.name for l in small_workload.layers if l.learnable]
        assert len(res.layers) == len(learnable)

    def test_bottleneck(self, small_workload):
        plan = HybridMapper(NMPattern(1, 4)).map_workload(small_workload)
        res = SIMTScheduler(plan).schedule_inference(small_workload)
        bn = res.bottleneck()
        assert bn.cycles == max(e.cycles for e in res.layers)

    def test_utilization_report(self, small_workload):
        plan = HybridMapper(NMPattern(1, 4)).map_workload(small_workload)
        util = SIMTScheduler(plan).utilization(small_workload)
        assert util["sram_pes_live"] > 0
        assert util["mram_pes_live"] > 0
        assert 0 < util["mram_occupancy"] <= 1.0


class TestWorkload:
    def test_paper_workload_matches_claims(self):
        w = paper_workload()
        # "around 26MB" dense INT8 storage
        assert 25.0 < w.dense_bytes() / 2**20 < 27.0
        # Rep-Net path ~5% of total weights
        assert 0.03 < w.learnable_fraction < 0.09
        # ResNet-50-scale compute
        assert w.total_macs > 4e9

    def test_compressed_bits_scopes(self):
        w = paper_workload()
        p = NMPattern(1, 4)
        total = w.compressed_bits(p, scope="all")
        frozen = w.compressed_bits(p, scope="frozen")
        learnable = w.compressed_bits(p, scope="learnable")
        assert abs(total - frozen - learnable) <= 24  # rounding slack
        with pytest.raises(ValueError):
            w.compressed_bits(p, scope="everything")

    def test_compressed_vs_dense(self):
        w = paper_workload()
        p = NMPattern(1, 4)
        assert w.compressed_bits(p) < w.compressed_bits(None)
        # 1:4 with 12-bit pairs = 0.375x dense
        assert w.compressed_bits(p) / w.compressed_bits(None) == \
            pytest.approx(0.375, abs=0.01)

    def test_extracted_workload_counts_parameters(self):
        model = build_repnet_model(seed=0)
        w = extract_repnet_workload(model, 16)
        # extraction counts conv/linear weights (biases and BN excluded)
        conv_linear = 0
        for _, mod in model.named_modules():
            if hasattr(mod, "weight") and mod.weight is not None \
                    and mod.weight.ndim >= 2:
                conv_linear += mod.weight.size
        assert w.total_weights == pytest.approx(conv_linear, rel=0.05)

    def test_layer_validation(self):
        with pytest.raises(ValueError):
            LayerWorkload("bad", in_dim=0, out_dim=4)

    def test_subset(self):
        w = paper_workload()
        learnable = w.subset(learnable=True)
        assert all(l.learnable for l in learnable.layers)
        assert learnable.total_weights == w.learnable_weights


class TestPipelinedSchedule:
    def test_pipelined_no_faster_for_single_sample(self, small_workload):
        plan = HybridMapper(NMPattern(1, 4)).map_workload(small_workload)
        sched = SIMTScheduler(plan)
        seq = sched.schedule_inference(small_workload, batch=1).total_cycles
        pipe = sched.schedule_inference(small_workload, batch=1,
                                        pipelined=True).total_cycles
        assert pipe == pytest.approx(seq)

    def test_pipelined_faster_for_batches(self, small_workload):
        plan = HybridMapper(NMPattern(1, 4)).map_workload(small_workload)
        sched = SIMTScheduler(plan)
        seq = sched.schedule_inference(small_workload, batch=16).total_cycles
        pipe = sched.schedule_inference(small_workload, batch=16,
                                        pipelined=True).total_cycles
        assert pipe < seq

    def test_pipelined_throughput_bound_by_bottleneck(self, small_workload):
        plan = HybridMapper(NMPattern(1, 4)).map_workload(small_workload)
        sched = SIMTScheduler(plan)
        c16 = sched.schedule_inference(small_workload, batch=16,
                                       pipelined=True).total_cycles
        c32 = sched.schedule_inference(small_workload, batch=32,
                                       pipelined=True).total_cycles
        # marginal cost per extra sample = bottleneck cycles (constant)
        marginal = (c32 - c16) / 16
        c48 = sched.schedule_inference(small_workload, batch=48,
                                       pipelined=True).total_cycles
        assert (c48 - c32) / 16 == pytest.approx(marginal)
