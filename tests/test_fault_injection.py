"""Tests for read-fault injection and the robustness study."""

import numpy as np
import pytest

from repro.core.fault_injection import (classification_flip_rate,
                                        gemm_error_study,
                                        inject_weight_bit_flips)
from repro.sparsity import NMPattern, verify_nm

from .test_csc import sparse_int_matrix


@pytest.fixture
def rng():
    return np.random.default_rng(123)


class TestInjection:
    def test_zero_ber_identity(self, rng):
        w = rng.integers(-100, 100, size=(16, 4))
        out = inject_weight_bit_flips(w, 0.0)
        np.testing.assert_array_equal(out, w)

    def test_values_stay_in_range(self, rng):
        w = rng.integers(-128, 128, size=(32, 8))
        out = inject_weight_bit_flips(w, 0.3, rng)
        assert out.min() >= -128 and out.max() <= 127

    def test_flips_restricted_to_support(self, rng):
        """Zeros are not stored in the sparse arrays -> they cannot flip."""
        pattern = NMPattern(1, 4)
        w = sparse_int_matrix(rng, (32, 4), pattern)
        out = inject_weight_bit_flips(w, 0.5, rng)
        assert (out[w == 0] == 0).all()
        assert verify_nm(out, pattern, axis=0)

    def test_high_ber_changes_values(self, rng):
        w = rng.integers(1, 100, size=(64, 4))
        out = inject_weight_bit_flips(w, 0.5, rng)
        assert (out != w).any()

    def test_flip_rate_statistics(self, rng):
        """Observed per-bit flip rate matches the requested BER."""
        w = np.full((100, 100), 1, dtype=np.int64)
        ber = 0.1
        out = inject_weight_bit_flips(w, ber, rng)
        # each weight has 8 bits each flipped w.p. 0.1; P(value unchanged)
        # = 0.9^8 ~ 0.43
        unchanged = (out == w).mean()
        assert unchanged == pytest.approx(0.9 ** 8, abs=0.03)

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            inject_weight_bit_flips(np.ones((2, 2), dtype=int), 1.5)
        with pytest.raises(TypeError):
            inject_weight_bit_flips(np.ones((2, 2)), 0.1)


class TestErrorStudy:
    def test_monotone_degradation(self, rng):
        pattern = NMPattern(2, 8)
        w = sparse_int_matrix(rng, (64, 8), pattern)
        x = rng.integers(-32, 32, size=(4, 64))
        study = gemm_error_study(w, x, pattern,
                                 bers=[0.0, 1e-3, 1e-2, 1e-1],
                                 trials=3, rng=rng)
        errors = [r["mean_rel_error"] for r in study]
        assert errors[0] == 0.0
        assert errors[-1] > errors[1]

    def test_realistic_ber_negligible(self, rng):
        """At the sensing model's nominal BER (~1e-6) outputs are clean."""
        pattern = NMPattern(1, 4)
        w = sparse_int_matrix(rng, (64, 8), pattern)
        x = rng.integers(-32, 32, size=(4, 64))
        study = gemm_error_study(w, x, pattern, bers=[1e-6], trials=5,
                                 rng=rng)
        assert study[0]["max_rel_error"] < 0.05

    def test_flip_rate_helper(self):
        clean = np.array([[1.0, 0.0], [0.0, 1.0]])
        faulty = np.array([[1.0, 0.0], [1.0, 0.0]])
        assert classification_flip_rate(clean, faulty) == 0.5
        with pytest.raises(ValueError):
            classification_flip_rate(clean, np.zeros((3, 2)))
