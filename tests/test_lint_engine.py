"""Engine-level tests for repro.lint: suppressions, registry, reporters, CLI.

The rule-specific positive/negative fixtures live in test_lint_rules.py;
this file covers the machinery those rules run on — pragma parsing, rule
selection, report rendering, exit codes and file discovery.
"""

import json

import pytest

from repro.lint import (Finding, Suppressions, all_rules, get_rule,
                        json_report, lint_source, lint_sources, lint_paths,
                        text_report)
from repro.lint.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main
from repro.lint.engine import discover_files

# Any path under src/repro triggers R4 on a legacy np.random call — the
# cheapest "known violation" for exercising the engine around a rule.
R4_BAD = "import numpy as np\n\nx = np.random.rand(3)\n"
R4_PATH = "src/repro/harness/sweep.py"


class TestSuppressions:
    def test_file_wide_disable(self):
        src = "# repro-lint: disable=R4\n" + R4_BAD
        assert lint_source(src, R4_PATH) == []

    def test_file_wide_disable_is_per_code(self):
        src = "# repro-lint: disable=R1,R3\n" + R4_BAD
        findings = lint_source(src, R4_PATH)
        assert [f.code for f in findings] == ["R4"]

    def test_disable_all_wildcard(self):
        src = "# repro-lint: disable=all\n" + R4_BAD
        assert lint_source(src, R4_PATH) == []

    def test_line_scoped_disable_covers_only_its_line(self):
        src = ("import numpy as np\n"
               "a = np.random.rand(2)  # repro-lint: disable-line=R4\n"
               "b = np.random.rand(2)\n")
        findings = lint_source(src, R4_PATH)
        assert len(findings) == 1
        assert findings[0].line == 3

    def test_pragma_parsing(self):
        supp = Suppressions.from_source(
            "# repro-lint: disable=R1, R2\n"
            "x = 1  # repro-lint: disable-line=R3  # a ratio on purpose\n")
        assert supp.file_codes == {"R1", "R2"}
        assert supp.line_codes == {2: {"R3"}}


class TestRegistry:
    def test_all_five_rules_registered(self):
        rules = all_rules()
        assert [r.code for r in rules] == ["R1", "R2", "R3", "R4", "R5"]
        by_code = {r.code: r for r in rules}
        assert by_code["R2"].severity == "warning"
        assert {by_code[c].severity for c in ("R1", "R3", "R4", "R5")} \
            == {"error"}
        assert by_code["R5"].scope == "project"
        assert all(by_code[c].scope == "file"
                   for c in ("R1", "R2", "R3", "R4"))

    def test_code_filtering(self):
        assert [r.code for r in all_rules(["R4"])] == ["R4"]
        assert get_rule("R1").name == "dtype-discipline"

    def test_unknown_code_raises(self):
        with pytest.raises(KeyError):
            all_rules(["R99"])

    def test_filtered_run_skips_other_rules(self):
        result = lint_sources({R4_PATH: R4_BAD}, codes=["R1"])
        assert result.ok


class TestReporters:
    def _dirty(self):
        return lint_sources({R4_PATH: R4_BAD})

    def test_finding_format_line(self):
        f = self._dirty().findings[0]
        assert f.format().startswith(f"{R4_PATH}:3:4: R4 [determinism/error]")

    def test_text_report_summary(self):
        report = text_report(self._dirty())
        assert "1 finding (1 error, 0 warnings) in 1 files" in report
        assert R4_PATH + ":3" in report

    def test_text_report_clean(self):
        report = text_report(lint_sources({"src/repro/ok.py": "x = 1\n"}))
        assert report == "clean: 1 files, 0 findings"

    def test_json_report_round_trips(self):
        payload = json.loads(json_report(self._dirty()))
        assert payload["ok"] is False
        assert payload["files_checked"] == 1
        assert payload["counts"] == {"error": 1}
        (finding,) = payload["findings"]
        assert finding["code"] == "R4"
        assert finding["path"] == R4_PATH

    def test_finding_rejects_unknown_severity(self):
        with pytest.raises(ValueError):
            Finding(code="R1", rule="x", severity="fatal", path="p",
                    line=1, col=0, message="m")


class TestDiscoveryAndParseErrors:
    def test_discover_files_dedups_and_sorts(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        sub = tmp_path / "sub"
        sub.mkdir()
        (sub / "a.py").write_text("y = 2\n")
        files = discover_files([str(tmp_path), str(tmp_path / "b.py")])
        assert [p.name for p in files] == ["b.py", "a.py"]

    def test_syntax_error_becomes_parse_finding(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        result = lint_paths([str(bad)])
        assert not result.ok
        assert result.findings == []
        assert [f.code for f in result.parse_errors] == ["E0"]
        assert "syntax error" in result.parse_errors[0].message


class TestCLI:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        p = tmp_path / "clean.py"
        p.write_text("x = 1\n")
        assert main([str(p)]) == EXIT_CLEAN
        assert "clean: 1 files" in capsys.readouterr().out

    def test_violation_exits_one_with_readable_report(self, tmp_path,
                                                      capsys):
        p = tmp_path / "src" / "repro" / "harness"
        p.mkdir(parents=True)
        bad = p / "sweep.py"
        bad.write_text(R4_BAD)
        assert main([str(bad)]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "R4" in out and ":3:" in out and "np.random" in out

    def test_rules_filter(self, tmp_path, capsys):
        p = tmp_path / "src" / "repro" / "harness"
        p.mkdir(parents=True)
        bad = p / "sweep.py"
        bad.write_text(R4_BAD)
        assert main([str(bad), "--rules", "R1,R2"]) == EXIT_CLEAN
        capsys.readouterr()

    def test_json_format(self, tmp_path, capsys):
        p = tmp_path / "clean.py"
        p.write_text("x = 1\n")
        assert main([str(p), "--format", "json"]) == EXIT_CLEAN
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.txt")]) == EXIT_USAGE
        assert "error:" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for code in ("R1", "R2", "R3", "R4", "R5"):
            assert code in out
