"""Unit tests for the dataflow verifier's building blocks.

Covers the interval lattice (exact integer arithmetic, join/widen),
``@width_contract`` extraction from ASTs, CFG construction (loop heads,
branch joins), and the summary database (returns resolution, depth
intervals, cycle handling).
"""

import ast

import pytest

from repro.lint.dataflow.cfg import build_cfg
from repro.lint.dataflow.contracts import (extract_contracts, fold_int,
                                           module_int_constants)
from repro.lint.dataflow.intervals import (BOTTOM, TOP, Interval, const,
                                           from_width_spec, join_all,
                                           spec_bits)
from repro.lint.dataflow.summaries import SummaryDB


# ---------------------------------------------------------------------------
# intervals
# ---------------------------------------------------------------------------

class TestInterval:
    def test_width_specs(self):
        assert from_width_spec("i8") == Interval(-128, 127)
        assert from_width_spec("u1") == Interval(0, 1)
        assert from_width_spec("i64") == Interval(-(1 << 63), (1 << 63) - 1)
        assert from_width_spec("u8") == Interval(0, 255)
        assert from_width_spec("not-a-spec") is None
        assert spec_bits("i16") == 16
        assert spec_bits("u4") == 4
        assert spec_bits("garbage") is None

    def test_exact_large_arithmetic(self):
        # Near 2**63 the math must stay exact — floats would round.
        a = const((1 << 62) + 1)
        b = a.add(const(1))
        assert b == Interval((1 << 62) + 2, (1 << 62) + 2)
        sq = a.mul(a)
        assert sq.lo == ((1 << 62) + 1) ** 2

    def test_mul_signs(self):
        assert Interval(-3, 2).mul(Interval(-5, 4)) == Interval(-12, 15)
        assert Interval(2, 3).mul(Interval(-4, -2)) == Interval(-12, -4)
        assert Interval(0, 0).mul(TOP) == Interval(0, 0)

    def test_join_and_widen(self):
        a, b = Interval(0, 10), Interval(-5, 3)
        assert a.join(b) == Interval(-5, 10)
        assert a.join(BOTTOM) == a
        w = Interval(0, 10).widen(Interval(0, 11))
        assert w.hi is None and w.lo == 0
        w2 = Interval(0, 10).widen(Interval(-1, 10))
        assert w2.lo is None and w2.hi == 10
        assert Interval(0, 10).widen(Interval(0, 10)) == Interval(0, 10)

    def test_contains(self):
        assert from_width_spec("i64").contains(Interval(-100, 100))
        assert not from_width_spec("i16").contains(Interval(0, 1 << 20))
        assert TOP.contains(Interval(-1, 1))
        assert not Interval(0, 10).contains(TOP)
        assert Interval(0, 10).contains(BOTTOM)

    def test_shift_and_mask(self):
        assert const(1).lshift(Interval(0, 15)) == Interval(1, 1 << 15)
        assert Interval(0, 255).bitand(const(7)) == Interval(0, 7)
        assert Interval(-100, 100).rshift(const(2)) == Interval(-25, 25)
        # Negative shift counts are unmodelled, not wrong answers.
        assert const(1).lshift(Interval(-1, 3)).is_top

    def test_symmetric_and_magnitude(self):
        assert Interval(3, 100).symmetric() == Interval(-100, 100)
        assert Interval(-7, 2).magnitude() == 7
        assert TOP.magnitude() is None

    def test_bottom_propagates(self):
        assert BOTTOM.add(const(1)).is_bottom
        assert BOTTOM.mul(TOP).is_bottom
        assert join_all([]) == BOTTOM

    def test_str(self):
        assert str(Interval(-8, 7)) == "[-8, 7]"
        assert str(TOP) == "[-inf, +inf]"
        assert "empty" in str(BOTTOM)


# ---------------------------------------------------------------------------
# contracts
# ---------------------------------------------------------------------------

CONTRACT_SRC = '''
BITS = 8
DEPTH = 1 << 10

@width_contract(inputs="i8", weights="i8", accum="i64", depth="DEPTH",
                returns="depth * inputs * weights",
                bounds={"k": DEPTH}, params={"a": "inputs"})
def kernel(a, w):
    return a @ w

class PE:
    @width_contract(inputs="i8", accum="i64", returns="kernel")
    def matmul(self, activations):
        return kernel(activations, self.weight)
'''


class TestContracts:
    def _extract(self, src=CONTRACT_SRC):
        tree = ast.parse(src)
        env = module_int_constants(tree)
        return extract_contracts(tree, "src/repro/core/x.py", env), env

    def test_module_constants_fold(self):
        (_, _), env = self._extract()
        assert env == {"BITS": 8, "DEPTH": 1024}

    def test_extraction(self):
        (contracts, errors), _ = self._extract()
        assert errors == []
        assert [c.qualname for c in contracts] == ["kernel", "PE.matmul"]
        kernel = contracts[0]
        assert kernel.inputs == "i8" and kernel.accum == "i64"
        assert kernel.depth == "DEPTH"
        assert kernel.bounds == {"k": 1024}
        assert kernel.params == {"a": "inputs"}
        assert tuple(kernel.arg_names) == ("a", "w")
        # self is dropped from methods' positional arg names.
        assert tuple(contracts[1].arg_names) == ("activations",)

    def test_bad_field_reports_error(self):
        src = ('@width_contract(inputs=3)\n'
               'def f(x):\n    return x\n')
        (contracts, errors), _ = self._extract(src)
        assert contracts == [] or contracts[0].inputs is None
        assert errors, "non-string contract field must be reported"

    def test_fold_int(self):
        env = {"N": 12}
        node = ast.parse("1 << (N - 4)", mode="eval").body
        assert fold_int(node, env) == 256
        assert fold_int(ast.parse("N * x", mode="eval").body, env) is None


# ---------------------------------------------------------------------------
# cfg
# ---------------------------------------------------------------------------

class TestCFG:
    def _cfg(self, body):
        fn = ast.parse(f"def f(x):\n{body}").body[0]
        return build_cfg(fn)

    def test_straight_line(self):
        cfg = self._cfg("    y = x + 1\n    return y\n")
        entry = cfg.block(cfg.entry)
        assert len(entry.stmts) == 2 and not entry.is_loop_head

    def test_loop_head_marked(self):
        cfg = self._cfg("    acc = 0\n"
                        "    for i in range(10):\n"
                        "        acc += i\n"
                        "    return acc\n")
        heads = [b for b in cfg.blocks if b.is_loop_head]
        assert len(heads) == 1
        assert heads[0].loop_binding is not None
        body_blocks = [b for b in cfg.blocks if b.loop_depth == 1]
        assert body_blocks, "loop body must carry loop_depth 1"

    def test_branch_join(self):
        cfg = self._cfg("    if x > 0:\n        y = 1\n"
                        "    else:\n        y = -1\n    return y\n")
        # Both arms must reach a common join block holding the return.
        succ_sets = [tuple(b.succs) for b in cfg.blocks]
        assert any(len(s) == 2 for s in succ_sets)

    def test_while_and_nested_depth(self):
        cfg = self._cfg("    while x:\n"
                        "        for i in range(3):\n"
                        "            x -= 1\n")
        depths = {b.loop_depth for b in cfg.blocks}
        assert 2 in depths


# ---------------------------------------------------------------------------
# summaries
# ---------------------------------------------------------------------------

def _contracts_for(src):
    tree = ast.parse(src)
    env = module_int_constants(tree)
    (contracts, errors) = extract_contracts(tree, "src/repro/core/m.py", env)
    assert not errors
    return contracts, env


class TestSummaries:
    def test_spec_returns(self):
        contracts, env = _contracts_for(
            '@width_contract(returns="i16")\ndef f(x):\n    return x\n')
        db = SummaryDB(contracts, env)
        assert db.resolve_returns(contracts[0]) == Interval(-32768, 32767)

    def test_expression_returns_symmetric(self):
        contracts, env = _contracts_for(
            'D = 16\n'
            '@width_contract(inputs="i8", weights="i8", depth="D",\n'
            '                returns="depth * inputs * weights")\n'
            'def f(a, w):\n    return a @ w\n')
        db = SummaryDB(contracts, env)
        iv = db.resolve_returns(contracts[0])
        assert iv == Interval(-16 * 128 * 128, 16 * 128 * 128)

    def test_summary_name_inherits(self):
        contracts, env = _contracts_for(
            '@width_contract(returns="i8")\ndef inner(x):\n    return x\n'
            '@width_contract(returns="inner")\ndef outer(x):\n'
            '    return inner(x)\n')
        db = SummaryDB(contracts, env)
        outer = [c for c in contracts if c.name == "outer"][0]
        assert db.resolve_returns(outer) == Interval(-128, 127)

    def test_cycle_resolves_to_top(self):
        contracts, env = _contracts_for(
            '@width_contract(returns="b")\ndef a(x):\n    return b(x)\n'
            '@width_contract(returns="a")\ndef b(x):\n    return a(x)\n')
        db = SummaryDB(contracts, env)
        assert db.resolve_returns(contracts[0]).is_top

    def test_depth_interval(self):
        contracts, env = _contracts_for(
            'D = 1 << 6\n'
            '@width_contract(depth="D")\ndef f(x):\n    return x\n'
            '@width_contract()\ndef g(x):\n    return x\n')
        db = SummaryDB(contracts, env)
        assert db.depth_interval(contracts[0]) == Interval(0, 64)
        # Missing depth is unbounded fan-in, not zero.
        assert db.depth_interval(contracts[1]) == Interval(0, None)

    def test_unresolvable_returns_records_error(self):
        contracts, env = _contracts_for(
            '@width_contract(returns="NO_SUCH * inputs", inputs="i8")\n'
            'def f(x):\n    return x\n')
        db = SummaryDB(contracts, env)
        assert db.resolve_returns(contracts[0]).is_top
        assert any("unresolvable" in e.message for e in db.errors)
