"""Tests for channel permutations for N:M sparsity (extension, ref [19])."""

import numpy as np
import pytest

from repro.sparsity import NMPattern, compute_nm_mask
from repro.sparsity.permutation import (apply_permutation,
                                        find_channel_permutation,
                                        invert_permutation, permutation_gain,
                                        retained_saliency)


@pytest.fixture
def rng():
    return np.random.default_rng(88)


class TestRetainedSaliency:
    def test_matches_mask_computation(self, rng):
        """retained_saliency == sum(saliency * mask)."""
        pattern = NMPattern(2, 8)
        sal = rng.random((64, 6))
        mask = compute_nm_mask(sal, pattern, axis=0)
        assert retained_saliency(sal, pattern) == \
            pytest.approx(float((sal * mask).sum()), rel=1e-10)

    def test_dense_pattern_keeps_everything(self, rng):
        sal = rng.random((16, 3))
        assert retained_saliency(sal, NMPattern(4, 4)) == \
            pytest.approx(float(sal.sum()))

    def test_ragged_rows(self, rng):
        sal = rng.random((10, 2))  # not a multiple of 4
        pattern = NMPattern(1, 4)
        mask = compute_nm_mask(sal, pattern, axis=0)
        assert retained_saliency(sal, pattern) == \
            pytest.approx(float((sal * mask).sum()), rel=1e-10)


class TestPermutationHelpers:
    def test_apply_and_invert(self, rng):
        m = rng.random((8, 3))
        perm = rng.permutation(8)
        permuted = apply_permutation(m, perm)
        restored = apply_permutation(permuted, invert_permutation(perm))
        np.testing.assert_array_equal(restored, m)

    def test_apply_rejects_non_permutation(self, rng):
        with pytest.raises(ValueError):
            apply_permutation(rng.random((4, 2)), np.array([0, 0, 1, 2]))

    def test_gather_consistency(self, rng):
        """Permuted-weight matmul with permuted activations is invariant —
        the hardware's correctness condition."""
        w = rng.random((16, 4))
        x = rng.random((3, 16))
        perm = rng.permutation(16)
        y_ref = x @ w
        y_perm = x[:, perm] @ w[perm]
        np.testing.assert_allclose(y_perm, y_ref, rtol=1e-12)


class TestSearch:
    def test_never_worse_than_identity(self, rng):
        pattern = NMPattern(1, 4)
        sal = rng.random((32, 4))
        base = retained_saliency(sal, pattern)
        _, best = find_channel_permutation(sal, pattern, iterations=300,
                                           rng=rng)
        assert best >= base - 1e-12

    def test_returns_valid_permutation(self, rng):
        sal = rng.random((24, 2))
        perm, _ = find_channel_permutation(sal, NMPattern(1, 8),
                                           iterations=200, rng=rng)
        assert sorted(perm.tolist()) == list(range(24))

    def test_recovers_clustered_saliency(self, rng):
        """Adversarial case: all salient channels packed into one group.

        Identity grouping keeps only n of them; a good permutation spreads
        them across groups and keeps (almost) all.
        """
        pattern = NMPattern(1, 4)
        sal = np.full((16, 1), 0.01)
        sal[:4, 0] = 10.0  # four big channels inside the first group of 4
        base = retained_saliency(sal, pattern)       # keeps 1 big one
        _, best = find_channel_permutation(sal, pattern, iterations=1500,
                                           restarts=3, rng=rng)
        assert best > 3 * base  # spreads the big channels out

    def test_gain_nonnegative(self, rng):
        sal = rng.random((40, 3))
        assert permutation_gain(sal, NMPattern(2, 8), iterations=300,
                                rng=rng) >= 0.0

    def test_gain_zero_for_uniform(self):
        sal = np.ones((16, 2))
        assert permutation_gain(sal, NMPattern(1, 4), iterations=100) == \
            pytest.approx(0.0, abs=1e-9)

    def test_permuted_mask_still_satisfies_pattern(self, rng):
        """End-to-end: permute -> prune -> verify pattern holds."""
        from repro.sparsity import verify_nm
        pattern = NMPattern(2, 8)
        w = rng.standard_normal((64, 8))
        perm, _ = find_channel_permutation(np.abs(w), pattern,
                                           iterations=200, rng=rng)
        wp = apply_permutation(w, perm)
        mask = compute_nm_mask(np.abs(wp), pattern, axis=0)
        assert verify_nm(wp * mask, pattern, axis=0)
