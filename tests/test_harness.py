"""Tests for the experiment harness (table/figure regeneration)."""

import json

import pytest

from repro.harness import (Table1Config, build_fig7, build_fig8, build_table2,
                           render_fig7, render_fig8, render_table1,
                           render_table2, run_table1)
from repro.harness.reporting import format_table, normalize, save_json


class TestReporting:
    def test_format_table(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["x", 0.001]], title="T")
        assert "T" in out and "a" in out and "2.500" in out

    def test_normalize(self):
        assert normalize([2.0, 4.0], 2.0) == [1.0, 2.0]
        with pytest.raises(ValueError):
            normalize([1.0], 0.0)

    def test_save_json(self, tmp_path):
        path = tmp_path / "out" / "r.json"
        save_json({"x": 1}, str(path))
        assert json.loads(path.read_text()) == {"x": 1}
        save_json({"x": 1}, None)  # no-op


class TestTable2:
    def test_matches_paper_leaf_values(self):
        result = build_table2()
        assert result["sram_pe"]["Adder"]["area_mm2"] == 0.14
        assert result["mram_pe"]["Memory Array (1024x512)"]["area_mm2"] == 0.00686
        assert result["mtj_device"]["resistance_p_ohm"] == 4408.0
        assert result["mtj_device"]["set_reset_energy_pj_paper"] == 0.048

    def test_mtj_model_close_to_paper(self):
        dev = build_table2()["mtj_device"]
        assert dev["set_reset_energy_pj_model"] == \
            pytest.approx(dev["set_reset_energy_pj_paper"], rel=0.25)

    def test_render(self):
        out = render_table2()
        assert "SRAM PE" in out and "MRAM PE" in out and "Index Decoder" in out


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return build_fig7()

    def test_four_designs(self, result):
        assert [r["design"] for r in result["rows"]] == \
            ["SRAM[29]", "MRAM[30]", "Hybrid(1:4)", "Hybrid(1:8)"]

    def test_reference_normalized(self, result):
        assert result["rows"][0]["area_rel"] == 1.0
        assert result["rows"][0]["power_rel"] == 1.0

    def test_area_shape_matches_paper(self, result):
        rels = {r["design"]: r["area_rel"] for r in result["rows"]}
        paper = result["paper_area_rel"]
        assert rels["MRAM[30]"] == pytest.approx(paper["MRAM[30]"], abs=0.05)
        assert rels["Hybrid(1:4)"] == pytest.approx(paper["Hybrid(1:4)"],
                                                    abs=0.07)
        # 1:8 saves at least as much as the paper reports
        assert rels["Hybrid(1:8)"] <= paper["Hybrid(1:8)"] + 0.05

    def test_power_split_sums(self, result):
        for row in result["rows"]:
            assert row["leakage_rel"] + row["read_rel"] == \
                pytest.approx(row["power_rel"], rel=1e-6)

    def test_render(self, result):
        out = render_fig7(result)
        assert "Fig. 7" in out and "Hybrid(1:4)" in out


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return build_fig8()

    def test_six_bars_in_paper_order(self, result):
        groups = [r["group"] for r in result["rows"]]
        assert groups == ["Finetune All Weight"] * 2 + \
            ["RepNet without Sparsity"] * 2 + ["RepNet with Sparsity"] * 2

    def test_reference_is_one(self, result):
        assert result["rows"][-1]["edp_rel"] == pytest.approx(1.0)

    def test_ours_lowest(self, result):
        ours = [r["edp_rel"] for r in result["rows"]
                if r["group"] == "RepNet with Sparsity"]
        others = [r["edp_rel"] for r in result["rows"]
                  if r["group"] != "RepNet with Sparsity"]
        assert max(ours) < min(others)

    def test_groups_monotone(self, result):
        by = {(r["group"], r["design"]): r["edp_rel"] for r in result["rows"]}
        assert by[("Finetune All Weight", "SRAM[29]")] > \
            by[("RepNet without Sparsity", "SRAM[29]")]
        assert by[("Finetune All Weight", "MRAM[30]")] > \
            by[("RepNet without Sparsity", "MRAM[30]")]

    def test_render(self, result):
        out = render_fig8(result)
        assert "Fig. 8" in out and "Ours (1:8)" in out


class TestTable1Fast:
    """Smoke-level run of the accuracy study at the fast budget."""

    @pytest.fixture(scope="class")
    def result(self):
        return run_table1(Table1Config.fast())

    def test_all_rows_present(self, result):
        assert len(result["rows"]) == 5
        labels = [r["config"] for r in result["rows"]]
        assert labels[0].startswith("Dense")

    def test_accuracies_in_range(self, result):
        for row in result["rows"]:
            for task in result["tasks"]:
                assert 0.0 <= row[task] <= 1.0
            assert 0.0 <= row["backbone@base"] <= 1.0

    def test_dense_backbone_learns(self, result):
        """Even at the fast budget the dense backbone must beat chance."""
        chance = 1.0 / result["config"]["base_classes"]
        assert result["rows"][0]["backbone@base"] > chance

    def test_render(self, result):
        out = render_table1(result)
        assert "Table 1" in out and "Dense RepNet" in out
