"""Adversarial call-graph tests for the effects verifier's binder.

Each fixture is an in-memory mini-package routed through
:func:`repro.lint.engine.lint_sources` exactly like the real tree, so the
module-identity mapping, import resolution and method lookup run the same
code paths CI runs.  The adversarial shapes are the ones the real repo
actually contains: ``dataclasses.replace`` overlays, the ``impl=`` kernel
registry, decorated functions, package ``__init__`` re-exports, aliases,
relative imports, and function-local imports.
"""

from repro.lint.effects import (AMBIENT_RNG, IO, READS_GLOBAL, WRITES_GLOBAL,
                                CallGraph, EffectAnalysis, module_name_for)
from repro.lint.engine import FileContext, ProjectContext


def _analyze(sources):
    files = [FileContext.from_source(src, path)
             for path, src in sources.items()]
    return EffectAnalysis.run(CallGraph.build(ProjectContext(files=files)))


class TestModuleIdentity:
    def test_src_layout_and_fixture_layout_agree(self):
        assert module_name_for("src/repro/dse/cache.py") == "repro.dse.cache"
        assert module_name_for("repro/dse/cache.py") == "repro.dse.cache"

    def test_package_init_maps_to_package(self):
        assert module_name_for("src/repro/dse/__init__.py") == "repro.dse"

    def test_pathless_fixture_falls_back_to_stem(self):
        assert module_name_for("solo.py") == "solo"


class TestDirectCalls:
    def test_same_module_call_propagates(self):
        a = _analyze({"repro/m.py": (
            "import numpy as np\n"
            "def leaf():\n"
            "    return np.random.rand()\n"
            "def top():\n"
            "    return leaf()\n")})
        assert AMBIENT_RNG in a.effects_of("repro.m.top")

    def test_cross_module_import_propagates(self):
        a = _analyze({
            "repro/a.py": ("def noisy():\n"
                           "    print('x')\n"),
            "repro/b.py": ("from repro.a import noisy\n"
                           "def caller():\n"
                           "    noisy()\n"),
        })
        assert IO in a.effects_of("repro.b.caller")

    def test_relative_import_resolves(self):
        a = _analyze({
            "repro/pkg/__init__.py": "",
            "repro/pkg/a.py": ("import random\n"
                               "def draw():\n"
                               "    return random.random()\n"),
            "repro/pkg/b.py": ("from .a import draw\n"
                               "def caller():\n"
                               "    return draw()\n"),
        })
        assert AMBIENT_RNG in a.effects_of("repro.pkg.b.caller")

    def test_function_local_import_resolves(self):
        a = _analyze({
            "repro/a.py": ("def noisy():\n"
                           "    print('x')\n"),
            "repro/b.py": ("def caller():\n"
                           "    from repro.a import noisy\n"
                           "    noisy()\n"),
        })
        assert IO in a.effects_of("repro.b.caller")


class TestReexportsAndAliases:
    def test_package_init_reexport_resolves(self):
        a = _analyze({
            "repro/pkg/__init__.py": "from .impl import work\n",
            "repro/pkg/impl.py": ("STATE = {}\n"
                                  "def work():\n"
                                  "    STATE['k'] = 1\n"),
            "repro/use.py": ("from repro.pkg import work\n"
                             "def caller():\n"
                             "    work()\n"),
        })
        assert WRITES_GLOBAL in a.effects_of("repro.use.caller")

    def test_toplevel_alias_resolves(self):
        a = _analyze({"repro/m.py": (
            "def original():\n"
            "    print('x')\n"
            "renamed = original\n"
            "def caller():\n"
            "    renamed()\n")})
        assert IO in a.effects_of("repro.m.caller")

    def test_import_as_alias_resolves(self):
        a = _analyze({
            "repro/a.py": ("def noisy():\n"
                           "    print('x')\n"),
            "repro/b.py": ("from repro.a import noisy as quiet\n"
                           "def caller():\n"
                           "    quiet()\n"),
        })
        assert IO in a.effects_of("repro.b.caller")


class TestRegistryDispatch:
    SOURCES = {"repro/kernels.py": (
        "def _impl_a(plan, acts):\n"
        "    return plan\n"
        "def _impl_b(plan, acts):\n"
        "    import numpy as np\n"
        "    return np.random.rand()\n"
        "_IMPLS = {'a': _impl_a, 'b': _impl_b}\n"
        "def dispatch(name, plan, acts):\n"
        "    return _IMPLS[name](plan, acts)\n")}

    def test_dispatch_fans_out_to_every_impl(self):
        a = _analyze(self.SOURCES)
        # The dispatcher inherits the join over all registered impls.
        assert AMBIENT_RNG in a.effects_of("repro.kernels.dispatch")

    def test_witness_names_the_effectful_impl(self):
        a = _analyze(self.SOURCES)
        chain = a.format_witness("repro.kernels.dispatch", AMBIENT_RNG)
        assert "_impl_b" in chain


class TestMethodResolution:
    def test_self_method_call_resolves(self):
        a = _analyze({"repro/m.py": (
            "class C:\n"
            "    def leaf(self):\n"
            "        print('x')\n"
            "    def top(self):\n"
            "        return self.leaf()\n")})
        assert IO in a.effects_of("repro.m.C.top")

    def test_constructor_typed_local_resolves_methods(self):
        a = _analyze({"repro/m.py": (
            "class C:\n"
            "    def leaf(self):\n"
            "        print('x')\n"
            "def caller():\n"
            "    c = C()\n"
            "    c.leaf()\n")})
        assert IO in a.effects_of("repro.m.caller")

    def test_dataclasses_replace_preserves_receiver_type(self):
        a = _analyze({"repro/m.py": (
            "import dataclasses\n"
            "@dataclasses.dataclass\n"
            "class C:\n"
            "    x: int = 0\n"
            "    def leaf(self):\n"
            "        print('x')\n"
            "def caller(c: C):\n"
            "    d = dataclasses.replace(c, x=1)\n"
            "    d.leaf()\n")})
        assert IO in a.effects_of("repro.m.caller")

    def test_annotation_typed_param_resolves_methods(self):
        a = _analyze({"repro/m.py": (
            "class C:\n"
            "    def leaf(self):\n"
            "        print('x')\n"
            "def caller(c: C):\n"
            "    c.leaf()\n")})
        assert IO in a.effects_of("repro.m.caller")

    def test_base_class_method_resolves_through_inheritance(self):
        a = _analyze({"repro/m.py": (
            "class Base:\n"
            "    def leaf(self):\n"
            "        print('x')\n"
            "class Child(Base):\n"
            "    def top(self):\n"
            "        return self.leaf()\n")})
        assert IO in a.effects_of("repro.m.Child.top")


class TestDecoratedFunctions:
    def test_decorated_callee_still_resolves(self):
        a = _analyze({"repro/m.py": (
            "import functools\n"
            "@functools.lru_cache(maxsize=None)\n"
            "def leaf():\n"
            "    print('x')\n"
            "def caller():\n"
            "    leaf()\n")})
        assert IO in a.effects_of("repro.m.caller")


class TestLocalFacts:
    def test_global_rebinding_is_a_write(self):
        a = _analyze({"repro/m.py": (
            "COUNT = 0\n"
            "def bump():\n"
            "    global COUNT\n"
            "    COUNT += 1\n")})
        assert WRITES_GLOBAL in a.effects_of("repro.m.bump")

    def test_mutating_method_on_module_global_is_a_write(self):
        a = _analyze({"repro/m.py": (
            "ITEMS = []\n"
            "def push(x):\n"
            "    ITEMS.append(x)\n")})
        assert WRITES_GLOBAL in a.effects_of("repro.m.push")

    def test_read_of_module_mutable_is_a_read_not_a_write(self):
        a = _analyze({"repro/m.py": (
            "TABLE = {'a': 1}\n"
            "def peek(k):\n"
            "    return TABLE[k]\n")})
        effects = a.effects_of("repro.m.peek")
        assert READS_GLOBAL in effects
        assert WRITES_GLOBAL not in effects

    def test_local_mutation_is_not_a_global_write(self):
        a = _analyze({"repro/m.py": (
            "def build():\n"
            "    out = []\n"
            "    out.append(1)\n"
            "    return out\n")})
        assert a.effects_of("repro.m.build") == frozenset()

    def test_seeded_default_rng_is_pure(self):
        a = _analyze({"repro/m.py": (
            "import numpy as np\n"
            "def draw():\n"
            "    return np.random.default_rng(0).normal()\n")})
        assert AMBIENT_RNG not in a.effects_of("repro.m.draw")

    def test_argless_default_rng_is_ambient(self):
        a = _analyze({"repro/m.py": (
            "import numpy as np\n"
            "def draw():\n"
            "    return np.random.default_rng().normal()\n")})
        assert AMBIENT_RNG in a.effects_of("repro.m.draw")

    def test_set_iteration_is_nondeterministic_order(self):
        from repro.lint.effects import NONDETERMINISTIC_ORDER
        a = _analyze({"repro/m.py": (
            "def collect(items):\n"
            "    seen = set(items)\n"
            "    return [x for x in seen]\n")})
        assert NONDETERMINISTIC_ORDER in a.effects_of("repro.m.collect")

    def test_sorted_set_iteration_is_clean(self):
        from repro.lint.effects import NONDETERMINISTIC_ORDER
        a = _analyze({"repro/m.py": (
            "def collect(items):\n"
            "    seen = set(items)\n"
            "    return [x for x in sorted(seen)]\n")})
        assert NONDETERMINISTIC_ORDER not in a.effects_of("repro.m.collect")


class TestEffectsOverride:
    def test_declared_summary_replaces_inference(self):
        a = _analyze({"repro/m.py": (
            "from repro.core.effects import effects\n"
            "_MEMO = {}\n"
            "@effects('READS_GLOBAL', reason='idempotent memo')\n"
            "def cached(k):\n"
            "    if k not in _MEMO:\n"
            "        _MEMO[k] = k * 2\n"
            "    return _MEMO[k]\n")})
        effects_set = a.effects_of("repro.m.cached")
        assert effects_set == frozenset({READS_GLOBAL})

    def test_missing_reason_is_a_declaration_error(self):
        a = _analyze({"repro/m.py": (
            "from repro.core.effects import effects\n"
            "@effects('READS_GLOBAL')\n"
            "def cached(k):\n"
            "    return k\n")})
        assert any("reason" in msg for _, _, msg in a.declaration_errors())
