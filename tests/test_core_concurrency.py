"""Runtime behavior of the lock-discipline contracts (repro.core.concurrency).

The decorators are declaration-only: they attach metadata attributes and
return their target unchanged, so contracted classes stay picklable and
method calls pay zero overhead.  The *enforcement* lives in the static
verifier (rules R11-R14, tests/test_lint_concurrency.py); these tests pin
the metadata shape that verifier and the decorators agree on.
"""

import pickle
import threading

import pytest

from repro.core.concurrency import (GUARDED_BY_ATTR, HOLDS_NO_LOCKS_ATTR,
                                    guarded_by, guarded_fields,
                                    holds_no_locks)


@guarded_by("_lock", "count", "total")
class _Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0


@guarded_by("Registry._lock", "state")
class _Record:
    """Lock-less guarded record (the Job pattern): must stay picklable."""

    def __init__(self):
        self.state = "queued"


class TestGuardedBy:
    def test_attaches_field_to_lock_map(self):
        assert getattr(_Counter, GUARDED_BY_ATTR) == {
            "count": "_lock", "total": "_lock"}

    def test_guarded_fields_helper_returns_a_copy(self):
        table = guarded_fields(_Counter)
        assert table == {"count": "_lock", "total": "_lock"}
        table["count"] = "elsewhere"
        assert guarded_fields(_Counter)["count"] == "_lock"

    def test_undecorated_class_has_empty_map(self):
        class Plain:
            pass
        assert guarded_fields(Plain) == {}

    def test_stacked_decorations_merge(self):
        @guarded_by("_cond", "pending")
        @guarded_by("_lock", "closed")
        class Queue:
            pass
        assert guarded_fields(Queue) == {"pending": "_cond",
                                         "closed": "_lock"}

    def test_subclass_merge_does_not_mutate_the_base(self):
        @guarded_by("_lock", "extra")
        class Sub(_Counter):
            pass
        assert guarded_fields(Sub) == {"count": "_lock", "total": "_lock",
                                       "extra": "_lock"}
        assert guarded_fields(_Counter) == {"count": "_lock",
                                            "total": "_lock"}

    def test_instances_stay_picklable(self):
        # The contract is a class attribute; instances carry no wrapper
        # state, so a guarded class without a lock field round-trips.
        clone = pickle.loads(pickle.dumps(_Record()))
        assert clone.state == "queued"

    def test_rejects_empty_lock_name(self):
        with pytest.raises(ValueError):
            guarded_by("", "field")

    def test_rejects_missing_fields(self):
        with pytest.raises(ValueError, match="declares no fields"):
            guarded_by("_lock")

    def test_rejects_non_string_fields(self):
        with pytest.raises(ValueError, match="non-empty strings"):
            guarded_by("_lock", "ok", 3)


class TestHoldsNoLocks:
    def test_bare_form_marks_and_returns_the_function(self):
        @holds_no_locks
        def block():
            return 42
        assert block() == 42
        assert getattr(block, HOLDS_NO_LOCKS_ATTR) == {"reason": ""}

    def test_called_form_records_the_reason(self):
        @holds_no_locks(reason="joins the worker")
        def shutdown():
            return "down"
        assert shutdown() == "down"
        assert getattr(shutdown, HOLDS_NO_LOCKS_ATTR) == {
            "reason": "joins the worker"}

    def test_no_wrapper_is_introduced(self):
        def original():
            pass
        assert holds_no_locks(original) is original


class TestRealTreeContracts:
    """The serving stack's own declarations, as the verifier reads them."""

    def test_jobstore_guards_its_registry(self):
        from repro.serve.jobs import Job, JobStore
        assert guarded_fields(JobStore) == {
            "_jobs": "_lock", "_seq": "_lock", "_pruned": "_lock"}
        assert guarded_fields(Job) == {
            "state": "JobStore._lock", "result": "JobStore._lock",
            "error": "JobStore._lock", "started_ns": "JobStore._lock",
            "finished_ns": "JobStore._lock"}

    def test_batching_queue_guards_its_counters(self):
        from repro.serve.batching import BatchingQueue
        table = guarded_fields(BatchingQueue)
        assert table["_pending"] == "_cond"
        assert table["requests"] == "_cond"

    def test_blocking_entry_points_declare_lock_freedom(self):
        from repro.dse.engine import evaluate_batch, run_sweep
        from repro.serve.batching import BatchingQueue
        for fn in (evaluate_batch, run_sweep, BatchingQueue.submit,
                   BatchingQueue.shutdown):
            assert hasattr(fn, HOLDS_NO_LOCKS_ATTR)
