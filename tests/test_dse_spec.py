"""SweepSpec enumeration, validation, and content-hash stability."""

import dataclasses

import pytest

from repro.dse import (CONFIG_KEYS, DEFAULT_SPEC, DEVICE_CORNERS, FULL_SPEC,
                       PRESETS, SMOKE_SPEC, SweepSpec, canonical_json,
                       config_key, config_sort_key, normalize_config)

#: Pinned content hash of the paper's flagship config: any accidental
#: change to the canonicalization scheme (key set, separators, type
#: coercion) invalidates every cache on disk and must show up here.
GOLDEN_CONFIG = {"pattern": "1:4", "bus_bits": 128, "mram_rows": 1024,
                 "weight_bits": 8, "device": "nominal"}
GOLDEN_KEY = \
    "128fe2a8ac91f6321b8444ed10dc83182c2dde0ab8ca2bfe350f3b4474e1f6c5"


class TestEnumeration:
    def test_size_is_the_cross_product(self):
        spec = SweepSpec(patterns=("1:4", "1:8", "2:8"), bus_bits=(64, 128),
                         mram_rows=(512, 1024), weight_bits=(4, 8),
                         devices=("nominal", "sram-low-leak"))
        assert spec.size == 3 * 2 * 2 * 2 * 2
        configs = spec.configs()
        assert len(configs) == spec.size

    def test_enumeration_is_deterministic_and_unique(self):
        spec = SweepSpec(patterns=("1:4", "2:4"), bus_bits=(64, 128))
        first, second = spec.configs(), spec.configs()
        assert first == second
        keys = [config_key(normalize_config(c)) for c in first]
        assert len(set(keys)) == len(keys)

    def test_lever_order_is_lexicographic(self):
        spec = SweepSpec(patterns=("1:8", "1:4"), bus_bits=(64, 128))
        configs = spec.configs()
        # patterns vary slowest (spec order), bus fastest.
        assert [c["pattern"] for c in configs] == ["1:8", "1:8", "1:4", "1:4"]
        assert [c["bus_bits"] for c in configs] == [64, 128, 64, 128]

    def test_every_config_has_the_canonical_key_set(self):
        for config in SMOKE_SPEC.configs():
            assert set(config) == set(CONFIG_KEYS)

    def test_presets(self):
        assert PRESETS["smoke"] is SMOKE_SPEC
        assert SMOKE_SPEC.size == 8
        assert DEFAULT_SPEC.size == 6 * 3 * 3 * 2 * 3
        # ROADMAP item 1 scale: thousands of configs.
        assert FULL_SPEC.size >= 1000

    def test_sort_key_orders_patterns_numerically(self):
        a = normalize_config(dict(GOLDEN_CONFIG, pattern="1:4"))
        b = normalize_config(dict(GOLDEN_CONFIG, pattern="1:16"))
        assert config_sort_key(a) < config_sort_key(b)


class TestValidation:
    def test_malformed_pattern(self):
        with pytest.raises(ValueError):
            SweepSpec(patterns=("1-4",))

    def test_overfull_pattern(self):
        with pytest.raises(ValueError):
            SweepSpec(patterns=("9:4",))

    def test_duplicate_lever_values(self):
        with pytest.raises(ValueError, match="duplicate"):
            SweepSpec(patterns=("1:4", "1:4"))

    def test_empty_lever(self):
        with pytest.raises(ValueError, match="non-empty"):
            SweepSpec(bus_bits=())

    def test_sub_byte_bus(self):
        with pytest.raises(ValueError):
            SweepSpec(bus_bits=(4,))

    def test_weight_bits_range(self):
        with pytest.raises(ValueError):
            SweepSpec(weight_bits=(1,))
        with pytest.raises(ValueError):
            SweepSpec(weight_bits=(16,))

    def test_unknown_device_corner(self):
        with pytest.raises(ValueError, match="device corner"):
            SweepSpec(devices=("does-not-exist",))

    def test_unknown_workload(self):
        with pytest.raises(ValueError, match="workload"):
            SweepSpec(workload="imagenet-full")

    def test_device_corners_cover_nominal(self):
        assert "nominal" in DEVICE_CORNERS
        assert DEVICE_CORNERS["nominal"] == {}


class TestNormalization:
    def test_fills_workload_default_and_coerces_types(self):
        cfg = normalize_config({"pattern": "1:4", "bus_bits": "128",
                                "mram_rows": 1024.0, "weight_bits": 8,
                                "device": "nominal"})
        assert cfg["workload"] == "paper"
        assert cfg["bus_bits"] == 128 and isinstance(cfg["bus_bits"], int)
        assert cfg["mram_rows"] == 1024

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown config keys"):
            normalize_config(dict(GOLDEN_CONFIG, voltage=0.8))

    def test_missing_key_rejected(self):
        partial = {k: v for k, v in GOLDEN_CONFIG.items() if k != "pattern"}
        with pytest.raises(ValueError, match="missing config keys"):
            normalize_config(partial)

    def test_bad_lever_values_pass_normalization(self):
        """Value validation is the evaluator's job: a nonsense pattern must
        reach the worker so the sweep reports a per-config error."""
        cfg = normalize_config(dict(GOLDEN_CONFIG, pattern="9:4"))
        assert cfg["pattern"] == "9:4"


class TestContentHash:
    def test_key_independent_of_dict_ordering(self):
        forward = normalize_config(GOLDEN_CONFIG)
        reversed_items = dict(reversed(list(GOLDEN_CONFIG.items())))
        backward = normalize_config(reversed_items)
        assert canonical_json(forward) == canonical_json(backward)
        assert config_key(forward) == config_key(backward)

    def test_golden_key_pinned(self):
        assert config_key(normalize_config(GOLDEN_CONFIG)) == GOLDEN_KEY

    def test_any_lever_change_changes_the_key(self):
        base = normalize_config(GOLDEN_CONFIG)
        variants = [dict(GOLDEN_CONFIG, pattern="1:8"),
                    dict(GOLDEN_CONFIG, bus_bits=64),
                    dict(GOLDEN_CONFIG, mram_rows=512),
                    dict(GOLDEN_CONFIG, weight_bits=4),
                    dict(GOLDEN_CONFIG, device="sram-low-leak")]
        keys = {config_key(normalize_config(v)) for v in variants}
        assert config_key(base) not in keys
        assert len(keys) == len(variants)

    def test_canonical_json_is_compact_and_sorted(self):
        text = canonical_json({"b": 1, "a": 2})
        assert text == '{"a":2,"b":1}'

    def test_spec_replace_roundtrip(self):
        """CLI lever overrides go through dataclasses.replace — the result
        must revalidate and enumerate from scratch."""
        spec = dataclasses.replace(SMOKE_SPEC, bus_bits=(256,))
        assert spec.size == len(SMOKE_SPEC.patterns)
        with pytest.raises(ValueError):
            dataclasses.replace(SMOKE_SPEC, patterns=("bad",))
