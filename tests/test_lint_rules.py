"""Positive/negative fixtures for every lint rule family R1-R5.

Each fixture is linted through a *virtual* path (`lint_source`/
`lint_sources`), which flows through the same `applies_to` routing as real
files — so these tests pin both the detection logic and the path scoping.
Rule codes are passed explicitly so one family's fixture cannot trip
another family's rule.
"""

from repro.lint import lint_source, lint_sources

KERNELS = "src/repro/core/kernels.py"
ENERGY = "src/repro/energy/model.py"


def codes(findings):
    return [f.code for f in findings]


class TestR1DtypeDiscipline:
    def test_default_dtype_allocator_flagged(self):
        src = "import numpy as np\nbuf = np.zeros(4)\n"
        (f,) = lint_source(src, KERNELS, codes=["R1"])
        assert f.code == "R1" and "dtype" in f.message

    def test_true_division_flagged(self):
        src = "def mean(total, n):\n    return total / n\n"
        (f,) = lint_source(src, KERNELS, codes=["R1"])
        assert "division" in f.message

    def test_float_astype_and_dtype_attr_flagged(self):
        src = ("import numpy as np\n"
              "def widen(x):\n"
              "    return x.astype(np.float64)\n")
        found = lint_source(src, KERNELS, codes=["R1"])
        # both the np.float64 attribute and the astype call are violations
        assert codes(found) == ["R1", "R1"]

    def test_string_float_dtype_flagged(self):
        src = "def widen(x):\n    return x.astype('f8')\n"
        assert codes(lint_source(src, KERNELS, codes=["R1"])) == ["R1"]

    def test_integer_idioms_pass(self):
        src = ("import numpy as np\n"
               "buf = np.zeros(4, dtype=np.int64)\n"
               "rows = -(-7 // 2)\n"
               "half = 10 // 3\n")
        assert lint_source(src, KERNELS, codes=["R1"]) == []

    def test_rule_scoped_to_kernel_modules(self):
        src = "import numpy as np\nbuf = np.zeros(4)\nr = 1 / 3\n"
        assert lint_source(src, ENERGY, codes=["R1"]) == []

    def test_line_suppression_for_intended_ratio(self):
        src = ("def occupancy(used, cap):\n"
               "    return used / cap  # repro-lint: disable-line=R1\n")
        assert lint_source(src, KERNELS, codes=["R1"]) == []


class TestR2UnitDiscipline:
    def test_unitless_energy_function_flagged(self):
        src = ("def read_energy(bits):\n"
               "    \"\"\"Energy of a read burst.\"\"\"\n"
               "    return bits\n")
        (f,) = lint_source(src, ENERGY, codes=["R2"])
        assert f.code == "R2" and f.severity == "warning"
        assert "read_energy" in f.message

    def test_inline_magnitude_literal_flagged(self):
        src = "def scale(j):\n    return j * 1e-12\n"
        (f,) = lint_source(src, ENERGY, codes=["R2"])
        assert "1e-12" in f.message and "named constant" in f.message

    def test_unit_suffix_passes(self):
        src = "def read_energy_pj(bits):\n    return bits\n"
        assert lint_source(src, ENERGY, codes=["R2"]) == []

    def test_docstring_unit_passes(self):
        src = ("def sense_delay(cycles):\n"
               "    \"\"\"Sense-amp settling delay in ns.\"\"\"\n"
               "    return cycles\n")
        assert lint_source(src, ENERGY, codes=["R2"]) == []

    def test_named_module_constant_exempt(self):
        src = "S_PER_NS = 1e-9\n"
        assert lint_source(src, ENERGY, codes=["R2"]) == []

    def test_constant_home_files_exempt_from_literal_check(self):
        src = "def scale(j):\n    return j * 1e-12\n"
        path = "src/repro/energy/units.py"
        assert lint_source(src, path, codes=["R2"]) == []

    def test_rule_scoped_to_energy_package(self):
        src = "x = 1e-12\ndef read_energy(b):\n    return b\n"
        assert lint_source(src, "src/repro/core/bus.py", codes=["R2"]) == []


class TestR3StatsDiscipline:
    def test_direct_counter_assignment_flagged(self):
        src = ("class PE:\n"
               "    def run(self):\n"
               "        self.stats.mac_ops = 5\n")
        (f,) = lint_source(src, "src/repro/core/mram_pe.py", codes=["R3"])
        assert f.code == "R3" and "self.stats.mac_ops" in f.message

    def test_bare_stats_name_flagged(self):
        src = "stats.array_reads = 1\n"
        assert codes(lint_source(src, "src/repro/core/bus.py",
                                 codes=["R3"])) == ["R3"]

    def test_augmented_assignment_passes(self):
        src = ("class PE:\n"
               "    def run(self):\n"
               "        self.stats.mac_ops += 5\n")
        assert lint_source(src, "src/repro/core/mram_pe.py",
                           codes=["R3"]) == []

    def test_charge_methods_may_assign(self):
        src = ("class PE:\n"
               "    def _charge_matmul_stats(self):\n"
               "        self.stats.mac_ops = 5\n")
        assert lint_source(src, "src/repro/core/mram_pe.py",
                           codes=["R3"]) == []

    def test_stats_module_itself_exempt(self):
        src = "stats.mac_ops = 5\n"
        assert lint_source(src, "src/repro/core/stats.py",
                           codes=["R3"]) == []


class TestR4Determinism:
    PATH = "src/repro/datasets/synthetic.py"

    def test_legacy_module_call_flagged(self):
        src = "import numpy as np\nx = np.random.normal(0, 1, 8)\n"
        (f,) = lint_source(src, self.PATH, codes=["R4"])
        assert "global" in f.message

    def test_argless_default_rng_flagged(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        (f,) = lint_source(src, self.PATH, codes=["R4"])
        assert "default_rng()" in f.message

    def test_from_import_resolved(self):
        src = "from numpy.random import rand\nx = rand(3)\n"
        assert codes(lint_source(src, self.PATH, codes=["R4"])) == ["R4"]

    def test_aliased_submodule_resolved(self):
        src = "import numpy.random as npr\nx = npr.shuffle(y)\n"
        assert codes(lint_source(src, self.PATH, codes=["R4"])) == ["R4"]

    def test_seeded_construction_passes(self):
        src = ("import numpy as np\n"
               "SEED = 0\n"
               "a = np.random.default_rng(SEED)\n"
               "b = np.random.default_rng(seed=123)\n"
               "c = np.random.Generator(np.random.PCG64(7))\n")
        assert lint_source(src, self.PATH, codes=["R4"]) == []

    def test_generator_method_calls_pass(self):
        src = ("def draw(rng):\n"
               "    return rng.normal(0.0, 1.0, size=4)\n")
        assert lint_source(src, self.PATH, codes=["R4"]) == []


class TestR4WallClockDurations:
    PATH = "src/repro/harness/table1.py"

    def test_direct_subtraction_flagged(self):
        src = ("import time\n"
               "def f(t0):\n"
               "    return time.time() - t0\n")
        (f,) = lint_source(src, self.PATH, codes=["R4"])
        assert "perf_counter" in f.message

    def test_stashed_start_time_flagged(self):
        src = ("import time\n"
               "def f():\n"
               "    t0 = time.time()\n"
               "    work()\n"
               "    return time.time() - t0\n")
        found = lint_source(src, self.PATH, codes=["R4"])
        # both the stash (line 3) and the direct subtraction (line 5)
        assert [f.line for f in found] == [3, 5]

    def test_from_import_and_module_alias_resolved(self):
        src = ("from time import time\n"
               "import time as clk\n"
               "def f():\n"
               "    start = time()\n"
               "    return clk.time() - start\n")
        assert codes(lint_source(src, self.PATH, codes=["R4"])) == \
            ["R4", "R4"]

    def test_timestamp_use_passes(self):
        src = ("import time\n"
               "def stamp():\n"
               "    return {'created_at': time.time()}\n")
        assert lint_source(src, self.PATH, codes=["R4"]) == []

    def test_perf_counter_passes(self):
        src = ("import time\n"
               "def f():\n"
               "    t0 = time.perf_counter()\n"
               "    return time.perf_counter() - t0\n")
        assert lint_source(src, self.PATH, codes=["R4"]) == []

    def test_line_suppression_honored(self):
        src = ("import time\n"
               "def f(t0):\n"
               "    return time.time() - t0"
               "  # repro-lint: disable-line=R4\n")
        assert lint_source(src, self.PATH, codes=["R4"]) == []


class TestR5KernelParity:
    TEST_PATH = "tests/test_kernels_differential.py"

    @staticmethod
    def kernels_src(impls='("reference", "fast")',
                    dispatch='{"reference": _spmm_reference, '
                             '"fast": _spmm_fast}',
                    public="def spmm(plan):\n    pass\n"):
        return (f"KERNEL_IMPLEMENTATIONS = {impls}\n\n\n"
                f"{public}\n\n"
                "def _spmm_reference(plan):\n    pass\n\n\n"
                "def _spmm_fast(plan):\n    pass\n\n\n"
                f"_SPMM_IMPLS = {dispatch}\n")

    def lint(self, kernels, test_text="def test_spmm():\n    pass\n"):
        sources = {KERNELS: kernels}
        if test_text is not None:
            sources[self.TEST_PATH] = test_text
        return lint_sources(sources, codes=["R5"]).findings

    def test_complete_registry_passes(self):
        assert self.lint(self.kernels_src()) == []

    def test_missing_fast_impl_flagged(self):
        found = self.lint(self.kernels_src(
            dispatch='{"reference": _spmm_reference}'))
        assert any("no `fast` implementation" in f.message for f in found)

    def test_unknown_impl_flagged(self):
        found = self.lint(self.kernels_src(
            dispatch='{"reference": _spmm_reference, "fast": _spmm_fast, '
                     '"turbo": _spmm_fast}'))
        assert any("unknown implementation `turbo`" in f.message
                   for f in found)

    def test_missing_public_function_flagged(self):
        found = self.lint(self.kernels_src(public="PAD = 0\n"))
        assert any("no such public function" in f.message for f in found)

    def test_kernel_absent_from_differential_suite_flagged(self):
        found = self.lint(self.kernels_src(),
                          test_text="def test_other():\n    pass\n")
        assert any("never appears" in f.message for f in found)

    def test_missing_implementations_tuple_flagged(self):
        src = ("def _spmm_reference(plan):\n    pass\n\n\n"
               "_SPMM_IMPLS = {\"reference\": _spmm_reference}\n")
        found = self.lint(src)
        assert any("KERNEL_IMPLEMENTATIONS" in f.message for f in found)

    def test_rule_inert_without_kernels_module(self):
        result = lint_sources({"src/repro/core/bus.py": "x = 1\n"},
                              codes=["R5"])
        assert result.ok
