"""Unit tests for the technology, device, cost, and area models."""

import numpy as np
import pytest

from repro.core.stats import PEStats
from repro.energy import (DEFAULT_TECH, MTJ, AreaModel, CostModel,
                          EnergyBreakdown, MTJParams, MRAMPESpec, SRAMPESpec,
                          table2_write_energy_check)


class TestTechSpecs:
    def test_table2_sram_values(self):
        """Leaf constants must equal the published Table 2 numbers."""
        s = SRAMPESpec()
        assert s.decoder_area == 0.0168
        assert s.bitcell_area == 0.0231
        assert s.shift_acc_area == 0.0148
        assert s.index_decoder_area == 0.06
        assert s.adder_area == 0.14
        assert s.adder_power == 12.11

    def test_table2_mram_values(self):
        m = MRAMPESpec()
        assert m.array_area == 0.00686
        assert m.resistance_p_ohm == 4408.0
        assert m.resistance_ap_ohm == 8759.0
        assert m.write_energy_pj_per_bit == 0.048

    def test_sram_pe_geometry(self):
        s = SRAMPESpec()
        assert s.array_bits == 128 * 96
        assert s.total_area == pytest.approx(0.2547, abs=1e-4)

    def test_mram_pe_geometry(self):
        m = MRAMPESpec()
        assert m.array_bits == 1024 * 512
        assert m.storage_bytes == 64 * 1024
        assert m.tmr == pytest.approx(0.987, abs=0.01)

    def test_write_asymmetry(self):
        """The design-driving asymmetry: MRAM writes cost much more."""
        s, m = SRAMPESpec(), MRAMPESpec()
        assert m.write_energy_pj_per_bit > 10 * s.write_energy_pj_per_bit
        assert m.write_latency_cycles > s.write_latency_cycles

    def test_leakage_asymmetry(self):
        """...and SRAM leaks much more per stored megabyte."""
        s, m = SRAMPESpec(), MRAMPESpec()
        sram_leak_per_pe = s.leakage_mw
        assert sram_leak_per_pe > 0
        # MRAM periphery leakage per 64 KB >> smaller than SRAM per 1.5 KB
        # scaled to the same capacity.
        sram_per_mb = s.leakage_mw_per_mb
        mram_per_mb = m.periphery_leakage_mw / (m.storage_bytes / 2**20)
        assert sram_per_mb > 10 * mram_per_mb


class TestMTJ:
    def test_resistance_states(self):
        cell = MTJ()
        assert cell.resistance_ohm == 4408.0
        cell.write(MTJ.STATE_AP)
        assert cell.resistance_ohm == 8759.0

    def test_write_energy_matches_table2(self):
        modelled, paper = table2_write_energy_check()
        assert modelled == pytest.approx(paper, rel=0.25)

    def test_sense_margin_positive(self):
        assert MTJ().sense_margin_ua() > 0

    def test_write_count_tracks(self):
        cell = MTJ()
        cell.write(MTJ.STATE_AP)
        cell.write(MTJ.STATE_P)
        cell.write(MTJ.STATE_P)  # no-op, same state
        assert cell.write_count == 2

    def test_switching_probability_regimes(self):
        cell = MTJ()
        ic = cell.params.critical_current_ua
        # strong overdrive: deterministic
        assert cell.switching_probability(3 * ic, 10.0) == 1.0
        # sub-threshold: rare
        assert cell.switching_probability(0.2 * ic, 3.0) < 0.01
        # monotone in current
        probs = [cell.switching_probability(f * ic, 3.0)
                 for f in (0.3, 0.6, 0.9)]
        assert probs == sorted(probs)

    def test_weak_write_can_fail(self):
        """Failure injection: sub-critical writes fail with high probability."""
        rng = np.random.default_rng(0)
        fails = 0
        for _ in range(50):
            cell = MTJ(state=MTJ.STATE_P)
            ok = cell.write(MTJ.STATE_AP, rng=rng, current_ua=5.0, pulse_ns=1.0)
            fails += (not ok)
        assert fails > 40

    def test_retention_exceeds_ten_years(self):
        assert MTJ().retention_years() > 10

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MTJParams(resistance_p_ohm=9000.0, resistance_ap_ohm=4000.0)
        with pytest.raises(ValueError):
            MTJ(state=5)


class TestCostModel:
    def test_mac_energy_positive_and_monotone(self):
        cost = CostModel()
        assert cost.mac_energy_pj(100, "sram") > 0
        assert cost.mac_energy_pj(200, "sram") == \
            2 * cost.mac_energy_pj(100, "sram")

    def test_sparse_overhead(self):
        cost = CostModel()
        assert cost.mac_energy_pj(100, "sram", sparse=True) > \
            cost.mac_energy_pj(100, "sram", sparse=False)

    def test_unknown_kind(self):
        cost = CostModel()
        with pytest.raises(ValueError):
            cost.mac_energy_pj(1, "dram")

    def test_write_energy_kinds(self):
        cost = CostModel()
        assert cost.write_energy_pj(1000, "mram") > \
            cost.write_energy_pj(1000, "sram")

    def test_write_latency_parallelism(self):
        cost = CostModel()
        serial = cost.write_latency_cycles(1e6, "sram", parallel_arrays=1)
        parallel = cost.write_latency_cycles(1e6, "sram", parallel_arrays=10)
        assert parallel == pytest.approx(serial / 10)
        with pytest.raises(ValueError):
            cost.write_latency_cycles(1e6, "sram", parallel_arrays=0)

    def test_leakage_power(self):
        cost = CostModel()
        assert cost.leakage_power_mw(2**20, 0) == \
            pytest.approx(DEFAULT_TECH.sram.leakage_mw_per_mb)
        assert cost.leakage_power_mw(0, 10) == \
            pytest.approx(10 * DEFAULT_TECH.mram.periphery_leakage_mw)

    def test_pe_stats_energy(self):
        cost = CostModel()
        stats = PEStats(macs=1000, weight_bits_written=800,
                        index_bits_written=400, activation_bits_read=640,
                        adder_tree_ops=10)
        sram = cost.pe_stats_energy(stats, "sram")
        mram = cost.pe_stats_energy(stats, "mram")
        assert sram.total_pj > 0 and mram.total_pj > 0
        assert mram.write_pj > sram.write_pj


class TestEnergyBreakdown:
    def test_totals_and_add(self):
        a = EnergyBreakdown(leakage_pj=1, compute_pj=2, write_pj=3, buffer_pj=4)
        assert a.total_pj == 10
        assert a.read_pj == 9
        b = a + a
        assert b.total_pj == 20

    def test_scaled(self):
        a = EnergyBreakdown(compute_pj=5)
        assert a.scaled(2.0).compute_pj == 10

    def test_as_dict(self):
        d = EnergyBreakdown(leakage_pj=1).as_dict()
        assert d["total_pj"] == 1


class TestAreaModel:
    def test_mram_denser_than_sram(self):
        am = AreaModel()
        assert am.dense_macro_mm2(1e8, "mram") < am.dense_macro_mm2(1e8, "sram")
        assert am.dense_macro_mm2(1e8, "mram") == \
            pytest.approx(0.48 * am.dense_macro_mm2(1e8, "sram"))

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            AreaModel().dense_macro_mm2(1e6, "flash")

    def test_dense_design_components(self):
        report = AreaModel().dense_design_area(1e8, "sram")
        assert report.total_mm2 > 0
        assert "sram_macros" in report.components
        assert 0 < report.fraction("sram_macros") <= 1

    def test_hybrid_design_components(self):
        report = AreaModel().hybrid_design_area(
            1e8, n_sram_pes=8, sram_storage_bits=1e6)
        for key in ("mram_storage", "mram_sparse_periphery", "sram_storage",
                    "sram_pes"):
            assert report.components[key] > 0

    def test_area_monotone_in_bits(self):
        am = AreaModel()
        small = am.hybrid_design_area(1e7, 4).total_mm2
        large = am.hybrid_design_area(1e8, 4).total_mm2
        assert large > small
