"""Unit tests for the SRAM sparse PE and dense baseline PE simulators."""

import numpy as np
import pytest

from repro.core.sram_pe import DenseDigitalPE, SRAMPEConfig, SRAMSparsePE
from repro.sparsity import NMPattern, compute_nm_mask

from .test_csc import sparse_int_matrix


@pytest.fixture
def rng():
    return np.random.default_rng(33)


class TestConfig:
    def test_default_geometry_matches_paper(self):
        cfg = SRAMPEConfig()
        assert cfg.rows == 128
        assert cfg.lanes == 8
        # 128x96 bit-cells: 8 weight bits + 4 index bits per pair, 8 pairs/row
        assert cfg.array_bits == 128 * 96
        assert cfg.pair_capacity == 1024

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SRAMPEConfig(rows=0)


class TestLoad:
    def test_load_charges_write_traffic(self, rng):
        pattern = NMPattern(1, 4)
        w = sparse_int_matrix(rng, (64, 16), pattern)
        pe = SRAMSparsePE()
        pe.load(w, pattern)
        nnz = int((w != 0).sum())
        assert pe.stats.weight_bits_written == nnz * 8
        assert pe.stats.index_bits_written == nnz * 4
        assert pe.loaded

    def test_capacity_overflow(self, rng):
        pattern = NMPattern(2, 4)  # density 0.5
        w = sparse_int_matrix(rng, (128, 40), pattern)  # ~2560 pairs > 1024
        with pytest.raises(ValueError):
            SRAMSparsePE().load(w, pattern)

    def test_weight_range_check(self):
        pattern = NMPattern(1, 4)
        w = np.zeros((8, 2), dtype=np.int64)
        w[0, 0] = 300
        with pytest.raises(ValueError):
            SRAMSparsePE().load(w, pattern)

    def test_pattern_violation_rejected(self, rng):
        w = rng.integers(1, 5, size=(16, 4))
        with pytest.raises(ValueError):
            SRAMSparsePE().load(w, NMPattern(1, 8))

    def test_index_bits_check(self):
        cfg = SRAMPEConfig(index_bits=2)
        w = np.zeros((16, 2), dtype=np.int64)
        with pytest.raises(ValueError):
            SRAMSparsePE(cfg).load(w, NMPattern(1, 16))

    def test_occupancy(self, rng):
        pattern = NMPattern(1, 4)
        w = sparse_int_matrix(rng, (64, 16), pattern)
        pe = SRAMSparsePE()
        assert pe.occupancy() == 0.0
        pe.load(w, pattern)
        assert pe.occupancy() == pytest.approx(
            (w != 0).sum() / 1024, abs=1e-9)


class TestMatmul:
    @pytest.mark.parametrize("pattern", [NMPattern(1, 4), NMPattern(2, 8),
                                         NMPattern(1, 8), NMPattern(1, 16),
                                         NMPattern(2, 4)])
    def test_exactness_across_patterns(self, rng, pattern):
        w = sparse_int_matrix(rng, (64, 12), pattern)
        x = rng.integers(-128, 128, size=(3, 64))
        pe = SRAMSparsePE()
        pe.load(w, pattern)
        np.testing.assert_array_equal(pe.matmul(x), x @ w)

    def test_extreme_values(self):
        pattern = NMPattern(1, 4)
        w = np.zeros((8, 2), dtype=np.int64)
        w[0, 0] = -128
        w[4, 1] = 127
        x = np.full((1, 8), -128, dtype=np.int64)
        pe = SRAMSparsePE()
        pe.load(w, pattern)
        np.testing.assert_array_equal(pe.matmul(x), x @ w)

    def test_single_vector(self, rng):
        pattern = NMPattern(1, 8)
        w = sparse_int_matrix(rng, (32, 4), pattern)
        x = rng.integers(-10, 10, size=(1, 32))
        pe = SRAMSparsePE()
        pe.load(w, pattern)
        np.testing.assert_array_equal(pe.matmul(x), x @ w)

    def test_requires_load(self, rng):
        with pytest.raises(RuntimeError):
            SRAMSparsePE().matmul(rng.integers(0, 2, size=(1, 8)))

    def test_dim_mismatch(self, rng):
        pattern = NMPattern(1, 4)
        w = sparse_int_matrix(rng, (16, 2), pattern)
        pe = SRAMSparsePE()
        pe.load(w, pattern)
        with pytest.raises(ValueError):
            pe.matmul(rng.integers(0, 2, size=(1, 8)))

    def test_cycle_model(self, rng):
        """Per input vector: m index phases x 8 bit planes."""
        pattern = NMPattern(1, 4)
        w = sparse_int_matrix(rng, (64, 8), pattern)
        pe = SRAMSparsePE()
        pe.load(w, pattern)
        pe.matmul(rng.integers(-8, 8, size=(5, 64)))
        assert pe.stats.cycles == 5 * pattern.m * 8

    def test_mac_efficiency_tracks_density(self, rng):
        pattern = NMPattern(1, 4)
        w = sparse_int_matrix(rng, (64, 8), pattern)
        pe = SRAMSparsePE()
        pe.load(w, pattern)
        pe.matmul(rng.integers(-8, 8, size=(2, 64)))
        assert pe.stats.mac_efficiency == pytest.approx(pattern.density,
                                                        abs=0.05)

    def test_update_weights_rewrites(self, rng):
        pattern = NMPattern(1, 4)
        w1 = sparse_int_matrix(rng, (32, 4), pattern)
        w2 = sparse_int_matrix(rng, (32, 4), pattern, lo=-50, hi=51)
        pe = SRAMSparsePE()
        pe.load(w1, pattern)
        first_writes = pe.stats.weight_bits_written
        pe.update_weights(w2, pattern)
        assert pe.stats.weight_bits_written > first_writes
        x = rng.integers(-4, 4, size=(1, 32))
        np.testing.assert_array_equal(pe.matmul(x), x @ w2)

    def test_uneven_columns_rowwise_accumulator(self, rng):
        """A very uneven (strict=False) matrix spills across lanes and the
        row-wise accumulator events are charged."""
        w = np.zeros((144, 3), dtype=np.int64)
        w[:, 0] = rng.integers(1, 5, 144)   # 144 pairs > 128 rows -> spills
        pe = SRAMSparsePE()
        pe.load(w, NMPattern(1, 4), strict=False)
        x = rng.integers(-4, 4, size=(2, 144))
        np.testing.assert_array_equal(pe.matmul(x), x @ w)
        assert pe.stats.rowwise_acc_ops > 0


class TestDensePE:
    def test_exactness(self, rng):
        w = rng.integers(-127, 128, size=(64, 8))
        x = rng.integers(-128, 128, size=(4, 64))
        pe = DenseDigitalPE(rows=64, cols=8)
        pe.load(w)
        np.testing.assert_array_equal(pe.matmul(x), x @ w)

    def test_cycles_bit_serial(self, rng):
        pe = DenseDigitalPE(rows=16, cols=4)
        pe.load(rng.integers(-8, 8, size=(16, 4)))
        pe.matmul(rng.integers(-8, 8, size=(3, 16)))
        assert pe.stats.cycles == 3 * 8

    def test_geometry_check(self, rng):
        pe = DenseDigitalPE(rows=8, cols=2)
        with pytest.raises(ValueError):
            pe.load(rng.integers(0, 2, size=(16, 2)))

    def test_dense_does_not_skip_zeros(self, rng):
        """The baseline executes every MAC, including zeros — that's the
        inefficiency the sparse PE removes."""
        w = np.zeros((16, 4), dtype=np.int64)
        pe = DenseDigitalPE(rows=16, cols=4)
        pe.load(w)
        pe.matmul(rng.integers(-4, 4, size=(1, 16)))
        assert pe.stats.macs == 16 * 4
        assert pe.stats.mac_efficiency == 1.0
