"""Pareto reduction properties: seeded point clouds, ties, idempotence.

Covers both frontier implementations:

* ``repro.dse.pareto.pareto_reduce`` — record-level, the sweep engine's
  reducer;
* ``repro.core.design_space.pareto_front`` — the original DesignPoint
  sweep, whose duplicate-vector tie handling this PR fixed (exactly one
  canonical survivor, not zero, not both).
"""

import numpy as np
import pytest

from repro.core.design_space import DesignPoint, pareto_front
from repro.dse import (OBJECTIVE_KEYS, dominates, objective_vector,
                       pareto_reduce, record_sort_key)


def make_record(key: str, area, power, edp, density) -> dict:
    return {"schema": "repro.dse/record/1", "key": key,
            "config": {"label": key},
            "metrics": {"area_mm2": float(area),
                        "inference_power_mw": float(power),
                        "training_edp_js": float(edp),
                        "density": float(density),
                        "inference_latency_s": 0.0,
                        "training_latency_s": 0.0}}


def random_records(seed: int, count: int) -> list:
    rng = np.random.default_rng(seed)
    values = rng.uniform(0.1, 10.0, size=(count, 4))
    return [make_record(f"{i:04d}", *row) for i, row in enumerate(values)]


def random_points(seed: int, count: int) -> list:
    rng = np.random.default_rng(seed)
    values = rng.uniform(0.1, 10.0, size=(count, 4))
    return [DesignPoint(pattern=f"p{i:04d}", bus_bits=128, area_mm2=row[0],
                        training_edp_js=row[1], inference_latency_s=row[2],
                        density=row[3]) for i, row in enumerate(values)]


# ---------------------------------------------------------------------------
# Record-level reducer (repro.dse)
# ---------------------------------------------------------------------------

class TestRecordFrontProperties:
    @pytest.mark.parametrize("seed", [0, 1, 7, 42, 1234])
    def test_front_mutually_nondominating(self, seed):
        front = pareto_reduce(random_records(seed, 200))
        vectors = [objective_vector(r) for r in front]
        assert front, "random cloud must have a non-empty front"
        for i, a in enumerate(vectors):
            for j, b in enumerate(vectors):
                if i != j:
                    assert not dominates(a, b)

    @pytest.mark.parametrize("seed", [0, 1, 7, 42, 1234])
    def test_every_excluded_point_is_dominated(self, seed):
        records = random_records(seed, 200)
        front = pareto_reduce(records)
        front_keys = {r["key"] for r in front}
        front_vectors = [objective_vector(r) for r in front]
        for record in records:
            if record["key"] in front_keys:
                continue
            vec = objective_vector(record)
            assert any(dominates(f, vec) for f in front_vectors), \
                f"excluded record {record['key']} is not dominated"

    @pytest.mark.parametrize("seed", [0, 42])
    def test_idempotent(self, seed):
        front = pareto_reduce(random_records(seed, 200))
        assert pareto_reduce(front) == front

    @pytest.mark.parametrize("seed", [0, 42])
    def test_permutation_invariant(self, seed):
        records = random_records(seed, 120)
        front = pareto_reduce(records)
        rng = np.random.default_rng(seed + 1)
        for _ in range(3):
            shuffled = [records[i] for i in rng.permutation(len(records))]
            assert pareto_reduce(shuffled) == front

    def test_density_is_maximized(self):
        """Sign flip: higher density must win, all else equal."""
        low = make_record("low", 1.0, 1.0, 1.0, 0.125)
        high = make_record("high", 1.0, 1.0, 1.0, 0.5)
        front = pareto_reduce([low, high])
        assert [r["key"] for r in front] == ["high"]

    def test_objective_keys_cover_the_advertised_axes(self):
        assert set(OBJECTIVE_KEYS) == {"area_mm2", "inference_power_mw",
                                       "training_edp_js", "density"}


class TestRecordFrontTies:
    def test_duplicate_vectors_keep_exactly_one_survivor(self):
        a = make_record("bbbb", 1.0, 2.0, 3.0, 0.25)
        b = make_record("aaaa", 1.0, 2.0, 3.0, 0.25)     # identical metrics
        c = make_record("cccc", 5.0, 5.0, 5.0, 0.125)    # dominated
        front = pareto_reduce([a, b, c])
        assert len(front) == 1
        # Canonical representative: the duplicate with the smaller sort key
        # (content hash tie-break), regardless of input order.
        assert front[0]["key"] == "aaaa"
        assert pareto_reduce([c, a, b]) == front
        assert pareto_reduce([b, c, a]) == front

    def test_duplicate_of_a_dominated_point_stays_excluded(self):
        strong = make_record("s", 1.0, 1.0, 1.0, 0.5)
        weak1 = make_record("w1", 2.0, 2.0, 2.0, 0.25)
        weak2 = make_record("w2", 2.0, 2.0, 2.0, 0.25)
        front = pareto_reduce([weak1, strong, weak2])
        assert [r["key"] for r in front] == ["s"]

    def test_error_records_are_excluded(self):
        good = make_record("good", 1.0, 1.0, 1.0, 0.5)
        bad = {"schema": "repro.dse/record/1", "key": "bad",
               "config": {}, "error": {"type": "ValueError", "message": "x"}}
        front = pareto_reduce([bad, good])
        assert [r["key"] for r in front] == ["good"]

    def test_sort_key_total_order(self):
        a = make_record("aaaa", 1.0, 2.0, 3.0, 0.25)
        b = make_record("bbbb", 1.0, 2.0, 3.0, 0.25)
        assert record_sort_key(a) < record_sort_key(b)


# ---------------------------------------------------------------------------
# DesignPoint-level front (repro.core.design_space) — tie-handling fix
# ---------------------------------------------------------------------------

class TestDesignPointFrontProperties:
    @pytest.mark.parametrize("seed", [0, 3, 99])
    def test_front_mutually_nondominating(self, seed):
        front = pareto_front(random_points(seed, 150))
        assert front
        for a in front:
            for b in front:
                if a is not b:
                    assert not a.dominates(b)

    @pytest.mark.parametrize("seed", [0, 3, 99])
    def test_every_excluded_point_is_dominated(self, seed):
        points = random_points(seed, 150)
        front = pareto_front(points)
        for p in points:
            if p in front:
                continue
            assert any(q.dominates(p) for q in front)

    @pytest.mark.parametrize("seed", [0, 99])
    def test_idempotent(self, seed):
        front = pareto_front(random_points(seed, 150))
        assert pareto_front(front) == front


class TestDesignPointFrontTies:
    def test_duplicate_vectors_keep_exactly_one_canonical(self):
        """Regression: equal metric vectors used to *both* survive (equal
        points never dominate each other); now exactly one canonical
        representative — stable by sort key — remains."""
        a = DesignPoint("2:8", 128, 1.0, 1.0, 1.0, 0.25)
        b = DesignPoint("1:4", 128, 1.0, 1.0, 1.0, 0.25)  # same metrics
        dominated = DesignPoint("1:8", 64, 9.0, 9.0, 9.0, 0.125)
        for ordering in ([a, b, dominated], [b, dominated, a],
                         [dominated, a, b]):
            front = pareto_front(ordering)
            assert len(front) == 1, "exactly one survivor, not zero or both"
            # '1:4' < '2:8' in the sort-key tie-break.
            assert front[0].pattern == "1:4"

    def test_duplicate_same_levers_collapses_too(self):
        a = DesignPoint("1:4", 128, 1.0, 1.0, 1.0, 0.25)
        b = DesignPoint("1:4", 128, 1.0, 1.0, 1.0, 0.25)
        assert len(pareto_front([a, b])) == 1

    def test_front_still_sorted_by_area(self):
        points = random_points(7, 60)
        front = pareto_front(points)
        areas = [p.area_mm2 for p in front]
        assert areas == sorted(areas)
