"""Tests for the shared-bus interconnect model."""

import pytest

from repro.core.bus import (BusConfig, SharedBus, Transfer,
                            broadcast_vs_unicast)


class TestConfig:
    def test_defaults(self):
        cfg = BusConfig()
        assert cfg.width_bits == 128
        assert cfg.energy_pj_per_bit == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            BusConfig(width_bits=0)
        with pytest.raises(ValueError):
            BusConfig(energy_pj_per_bit_mm=-1.0)


class TestTransfers:
    def test_cycles_quantized_to_width(self):
        bus = SharedBus(BusConfig(width_bits=128))
        assert bus.transfer_cycles(128) == 1
        assert bus.transfer_cycles(129) == 2
        assert bus.transfer_cycles(0) == 0

    def test_contention_serializes(self):
        bus = SharedBus(BusConfig(width_bits=128))
        a = bus.request("a", 256)           # 2 cycles: [0, 2)
        b = bus.request("b", 128)           # 1 cycle:  [2, 3)
        assert a.start_cycle == 0 and a.end_cycle == 2
        assert b.start_cycle == 2 and b.end_cycle == 3
        assert bus.total_cycles() == 3

    def test_at_cycle_respected(self):
        bus = SharedBus()
        bus.request("a", 128)                       # [0, 1)
        c = bus.request("b", 128, at_cycle=10.0)    # waits for data
        assert c.start_cycle == 10.0

    def test_idle_gap_counts_against_utilization(self):
        bus = SharedBus()
        bus.request("a", 128)
        bus.request("b", 128, at_cycle=9.0)
        assert bus.utilization() == pytest.approx(2.0 / 10.0)

    def test_receiver_validation(self):
        with pytest.raises(ValueError):
            SharedBus().request("a", 8, receivers=0)
        with pytest.raises(ValueError):
            SharedBus().transfer_cycles(-1)


class TestEnergy:
    def test_energy_proportional_to_bits(self):
        bus = SharedBus()
        bus.request("a", 1000)
        e1 = bus.energy_pj()
        bus.request("b", 1000)
        assert bus.energy_pj() == pytest.approx(2 * e1)

    def test_broadcast_cheaper_than_unicast(self):
        e_b, e_u = broadcast_vs_unicast(1024, receivers=16)
        assert e_b < e_u / 5  # broadcast amortizes the trunk

    def test_single_receiver_equal(self):
        e_b, e_u = broadcast_vs_unicast(512, receivers=1)
        assert e_b == pytest.approx(e_u)

    def test_traffic_by_tag(self):
        bus = SharedBus()
        bus.request("act", 100)
        bus.request("act", 50)
        bus.request("wgt", 10)
        assert bus.traffic_by_tag() == {"act": 150, "wgt": 10}

    def test_reset(self):
        bus = SharedBus()
        bus.request("a", 128)
        bus.reset()
        assert bus.total_cycles() == 0
        assert bus.energy_pj() == 0.0


class TestSIMTScenario:
    def test_layer_broadcast_accounting(self):
        """One layer's SIMT broadcast: in_dim x 8 bits to all its tiles in
        one transaction — matching the designs' bus-cycle floor."""
        bus = SharedBus(BusConfig(width_bits=128))
        in_dim = 1152
        t = bus.request("stage3.conv", in_dim * 8, receivers=36)
        assert t.cycles == (in_dim * 8) / 128
        assert bus.energy_pj() > 0
