"""Unit tests for the data pipeline."""

import numpy as np
import pytest

from repro.nn.data import (DataLoader, Subset, TensorDataset,
                           train_test_split)


@pytest.fixture
def dataset():
    rng = np.random.default_rng(0)
    return TensorDataset(rng.standard_normal((50, 3)),
                         rng.integers(0, 4, 50))


class TestTensorDataset:
    def test_len_and_getitem(self, dataset):
        assert len(dataset) == 50
        x, y = dataset[5]
        assert x.shape == (3,)
        assert isinstance(y, int)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            TensorDataset(np.zeros((3, 2)), np.zeros(4))

    def test_num_classes(self, dataset):
        assert dataset.num_classes == int(dataset.labels.max()) + 1


class TestSubset:
    def test_indexing(self, dataset):
        sub = Subset(dataset, [3, 7, 9])
        assert len(sub) == 3
        x, y = sub[1]
        np.testing.assert_array_equal(x, dataset.inputs[7])


class TestSplit:
    def test_sizes(self, dataset):
        train, test = train_test_split(dataset, test_fraction=0.2)
        assert len(train) == 40 and len(test) == 10

    def test_disjoint_and_complete(self, dataset):
        train, test = train_test_split(dataset, 0.3,
                                       rng=np.random.default_rng(1))
        joined = np.concatenate([train.inputs, test.inputs])
        assert joined.shape == dataset.inputs.shape
        # every original row appears exactly once
        orig = {tuple(r) for r in dataset.inputs.round(6)}
        new = {tuple(r) for r in joined.round(6)}
        assert orig == new

    def test_invalid_fraction(self, dataset):
        with pytest.raises(ValueError):
            train_test_split(dataset, 0.0)


class TestDataLoader:
    def test_batch_shapes(self, dataset):
        loader = DataLoader(dataset, batch_size=16)
        batches = list(loader)
        assert len(batches) == 4  # 16+16+16+2
        assert batches[0][0].shape == (16, 3)
        assert batches[-1][0].shape == (2, 3)

    def test_drop_last(self, dataset):
        loader = DataLoader(dataset, batch_size=16, drop_last=True)
        assert len(list(loader)) == 3 == len(loader)

    def test_shuffle_changes_order_not_content(self, dataset):
        loader = DataLoader(dataset, batch_size=50, shuffle=True,
                            rng=np.random.default_rng(2))
        x, y = next(iter(loader))
        assert not np.array_equal(x, dataset.inputs)
        assert sorted(y.tolist()) == sorted(dataset.labels.tolist())

    def test_labels_stay_aligned(self, dataset):
        """Shuffling must keep (x, y) pairs together."""
        pairs = {tuple(x.round(6)): y for x, y in
                 zip(dataset.inputs, dataset.labels)}
        loader = DataLoader(dataset, batch_size=7, shuffle=True,
                            rng=np.random.default_rng(3))
        for xb, yb in loader:
            for x, y in zip(xb, yb):
                assert pairs[tuple(x.round(6))] == y

    def test_subset_fast_path(self, dataset):
        sub = Subset(dataset, list(range(10)))
        loader = DataLoader(sub, batch_size=4)
        total = sum(len(y) for _, y in loader)
        assert total == 10

    def test_invalid_batch_size(self, dataset):
        with pytest.raises(ValueError):
            DataLoader(dataset, batch_size=0)

    def test_generic_dataset_path(self):
        class Custom(TensorDataset.__mro__[1]):  # plain Dataset
            def __len__(self):
                return 5
            def __getitem__(self, idx):
                return np.full(2, idx, dtype=float), idx
        loader = DataLoader(Custom(), batch_size=2)
        batches = list(loader)
        assert batches[0][0].shape == (2, 2)
        np.testing.assert_array_equal(batches[0][1], [0, 1])
