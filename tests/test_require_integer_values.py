"""Regression tests for ``require_integer_values`` scalar handling.

The guard previously only saw 1-d+ arrays in practice; 0-d arrays and
Python scalars took under-specified paths (bools slipped through as a
confusing dtype error, huge ints surfaced as ``object`` dtype).  Scalars
now normalise to 0-d int64 and the rejection messages name the cause.
"""

import numpy as np
import pytest

from repro.core.kernels import require_integer_values


def test_python_int_normalises_to_int64():
    out = require_integer_values(5, "test")
    assert out.ndim == 0
    assert out.dtype == np.int64
    assert int(out) == 5


def test_zero_d_array_normalises_to_int64():
    out = require_integer_values(np.int8(-3), "test")
    assert out.ndim == 0
    assert out.dtype == np.int64
    assert int(out) == -3
    out = require_integer_values(np.array(7, dtype=np.uint16), "test")
    assert out.dtype == np.int64 and int(out) == 7


def test_python_int_matches_zero_d_array():
    a = require_integer_values(11, "test")
    b = require_integer_values(np.array(11), "test")
    assert a.dtype == b.dtype and a.shape == b.shape and int(a) == int(b)


def test_zero_d_float_rejected():
    with pytest.raises(TypeError, match="quantize"):
        require_integer_values(np.array(1.5), "test")
    with pytest.raises(TypeError, match="quantize"):
        require_integer_values(2.0, "test")


def test_bool_rejected_with_clear_message():
    with pytest.raises(TypeError, match="boolean"):
        require_integer_values(True, "test")
    with pytest.raises(TypeError, match="boolean"):
        require_integer_values(np.array([True, False]), "test")


def test_object_dtype_rejected():
    with pytest.raises(TypeError, match="object"):
        require_integer_values(1 << 70, "test")


def test_integer_arrays_pass_through_unchanged():
    values = np.array([1, 2, 3], dtype=np.int8)
    out = require_integer_values(values, "test")
    assert out.dtype == np.int8
    np.testing.assert_array_equal(out, values)


def test_empty_array_still_tolerated():
    # Empty arrays default to float64 without meaning it; nothing truncates.
    out = require_integer_values(np.array([]), "test")
    assert out.size == 0


def test_float_array_rejected():
    with pytest.raises(TypeError, match="float64"):
        require_integer_values(np.array([1.0, 2.0]), "test")
