"""Seeded randomized round-trip tests for bit-plane decomposition.

Satellite of the dataflow-verifier PR: the plane decomposition /
reconstruction pair must be *exact* for every width the datapath can be
configured to (``BITSERIAL_MIN_BITS`` .. ``BITSERIAL_MAX_BITS``) and for
both signs — these are the same constants the ``@width_contract``
declarations bound the dataflow analysis with, so a drift between the
runtime behaviour and the declared widths shows up here first.
"""

import numpy as np
import pytest

from repro.core.bitserial import (from_partials, plane_weight, plane_weights,
                                  to_bit_planes, weight_bit_planes)
from repro.core.widths import (ACTIVATION_BITS, BITSERIAL_MAX_BITS,
                               BITSERIAL_MIN_BITS)

ALL_BITS = list(range(BITSERIAL_MIN_BITS, BITSERIAL_MAX_BITS + 1))


def _signed_range(bits):
    return -(1 << (bits - 1)), (1 << (bits - 1)) - 1


def test_width_constants_cover_datapath():
    # The contracts pin the analysis to these exact bounds; if they move,
    # the parametrization below must move with them.
    assert BITSERIAL_MIN_BITS == 2
    assert BITSERIAL_MAX_BITS == 16
    assert ACTIVATION_BITS in ALL_BITS


@pytest.mark.parametrize("bits", ALL_BITS)
def test_roundtrip_random_values(bits):
    rng = np.random.default_rng(1234 + bits)
    lo, hi = _signed_range(bits)
    values = rng.integers(lo, hi + 1, size=(5, 7), dtype=np.int64)
    planes = to_bit_planes(values, bits=bits)
    assert planes.shape == (bits,) + values.shape
    assert planes.dtype == np.int64
    assert set(np.unique(planes)) <= {0, 1}
    # Planes are the degenerate partial sums of an identity matmul, so
    # from_partials must reconstruct the original values exactly.
    back = from_partials(planes, bits=bits)
    np.testing.assert_array_equal(back, values)


@pytest.mark.parametrize("bits", ALL_BITS)
def test_roundtrip_boundary_values(bits):
    lo, hi = _signed_range(bits)
    values = np.array([lo, lo + 1, -1, 0, 1, hi - 1, hi], dtype=np.int64)
    back = from_partials(to_bit_planes(values, bits=bits), bits=bits)
    np.testing.assert_array_equal(back, values)


@pytest.mark.parametrize("bits", ALL_BITS)
def test_roundtrip_sign_split(bits):
    # Negative-only and positive-only draws round-trip independently —
    # the MSB plane weight (-2**(bits-1)) is what separates the signs.
    rng = np.random.default_rng(9876 + bits)
    lo, hi = _signed_range(bits)
    neg = rng.integers(lo, 0, size=64, dtype=np.int64)
    pos = rng.integers(0, hi + 1, size=64, dtype=np.int64)
    for values in (neg, pos):
        back = from_partials(to_bit_planes(values, bits=bits), bits=bits)
        np.testing.assert_array_equal(back, values)


@pytest.mark.parametrize("bits", ALL_BITS)
def test_plane_weights_sum_to_signed_range(bits):
    weights = plane_weights(bits)
    assert weights[bits - 1] == plane_weight(bits - 1, bits) == -(1 << (bits - 1))
    lo, hi = _signed_range(bits)
    assert int(weights[weights < 0].sum()) == lo
    assert int(weights[weights > 0].sum()) == hi


@pytest.mark.parametrize("bits", ALL_BITS)
def test_out_of_range_rejected(bits):
    lo, hi = _signed_range(bits)
    with pytest.raises(ValueError):
        to_bit_planes(np.array([hi + 1]), bits=bits)
    with pytest.raises(ValueError):
        to_bit_planes(np.array([lo - 1]), bits=bits)


def test_roundtrip_through_matmul_partials():
    # The real dataflow: per-plane partial products, recombined.  Must be
    # bit-exact to the ordinary integer matmul at the contract widths.
    rng = np.random.default_rng(42)
    bits = ACTIVATION_BITS
    lo, hi = _signed_range(bits)
    activations = rng.integers(lo, hi + 1, size=(3, 8), dtype=np.int64)
    weight = rng.integers(-128, 128, size=(8, 4), dtype=np.int64)
    planes = to_bit_planes(activations, bits=bits)
    partials = np.stack([planes[b] @ weight for b in range(bits)])
    out = from_partials(partials, bits=bits)
    np.testing.assert_array_equal(out, activations @ weight)


def test_weight_bit_planes_roundtrip():
    rng = np.random.default_rng(7)
    bits = 8
    mag_hi = (1 << (bits - 1)) - 1
    weights = rng.integers(-mag_hi, mag_hi + 1, size=(6, 5), dtype=np.int64)
    planes, sign = weight_bit_planes(weights, bits=bits)
    shifts = (1 << np.arange(bits - 1, dtype=np.int64))
    mag = np.tensordot(shifts, planes, axes=([0], [0]))
    np.testing.assert_array_equal(mag * sign, weights)
