"""Unit tests for the autograd engine (repro.nn.tensor)."""

import numpy as np
import pytest

from repro.nn.tensor import (Tensor, concatenate, no_grad, ones, randn, stack,
                             unbroadcast, zeros)


def numeric_grad(fn, x, eps=1e-6):
    """Central-difference gradient of a scalar function of an ndarray."""
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        fp = fn()
        x[idx] = orig - eps
        fm = fn()
        x[idx] = orig
        g[idx] = (fp - fm) / (2 * eps)
        it.iternext()
    return g


def check_grad(make_output, tensors, tol=1e-4):
    """Compare autograd gradients with numeric differentiation."""
    out = make_output()
    out.sum().backward()
    for t in tensors:
        analytic = t.grad
        numeric = numeric_grad(lambda: make_output().sum().item(), t.data)
        np.testing.assert_allclose(analytic, numeric, rtol=tol, atol=tol)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestBasicOps:
    def test_add_backward(self, rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        check_grad(lambda: a + b, [a, b])

    def test_add_broadcast(self, rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((4,)), requires_grad=True)
        check_grad(lambda: a + b, [a, b])

    def test_mul_backward(self, rng):
        a = Tensor(rng.standard_normal((2, 5)), requires_grad=True)
        b = Tensor(rng.standard_normal((2, 5)), requires_grad=True)
        check_grad(lambda: a * b, [a, b])

    def test_div_backward(self, rng):
        a = Tensor(rng.standard_normal((3, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal((3, 3)) + 3.0, requires_grad=True)
        check_grad(lambda: a / b, [a, b])

    def test_pow_backward(self, rng):
        a = Tensor(np.abs(rng.standard_normal((4,))) + 0.5, requires_grad=True)
        check_grad(lambda: a ** 3, [a])

    def test_neg_and_sub(self, rng):
        a = Tensor(rng.standard_normal((3,)), requires_grad=True)
        b = Tensor(rng.standard_normal((3,)), requires_grad=True)
        check_grad(lambda: a - b, [a, b])

    def test_rsub_scalar(self, rng):
        a = Tensor(rng.standard_normal((3,)), requires_grad=True)
        out = 1.0 - a
        np.testing.assert_allclose(out.data, 1.0 - a.data)

    def test_matmul_backward(self, rng):
        a = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal((3, 5)), requires_grad=True)
        check_grad(lambda: a @ b, [a, b])

    def test_matmul_vector(self, rng):
        a = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        v = Tensor(rng.standard_normal(3), requires_grad=True)
        check_grad(lambda: a @ v, [a, v])


class TestElementwise:
    def test_exp(self, rng):
        a = Tensor(rng.standard_normal((3, 3)), requires_grad=True)
        check_grad(lambda: a.exp(), [a])

    def test_log(self, rng):
        a = Tensor(np.abs(rng.standard_normal((3, 3))) + 0.5, requires_grad=True)
        check_grad(lambda: a.log(), [a])

    def test_tanh(self, rng):
        a = Tensor(rng.standard_normal((5,)), requires_grad=True)
        check_grad(lambda: a.tanh(), [a])

    def test_sigmoid(self, rng):
        a = Tensor(rng.standard_normal((5,)), requires_grad=True)
        check_grad(lambda: a.sigmoid(), [a])

    def test_relu_gradient_mask(self, rng):
        a = Tensor(np.array([-1.0, 2.0, -3.0, 4.0]), requires_grad=True)
        a.relu().backward(np.ones(4))
        np.testing.assert_array_equal(a.grad, [0.0, 1.0, 0.0, 1.0])

    def test_abs(self, rng):
        a = Tensor(np.array([-2.0, 3.0, -0.5]), requires_grad=True)
        a.abs().sum().backward()
        np.testing.assert_array_equal(a.grad, [-1.0, 1.0, -1.0])

    def test_clip(self):
        a = Tensor(np.array([-2.0, 0.5, 3.0]), requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_array_equal(a.grad, [0.0, 1.0, 0.0])


class TestReductionsShaping:
    def test_sum_axis(self, rng):
        a = Tensor(rng.standard_normal((3, 4, 2)), requires_grad=True)
        check_grad(lambda: a.sum(axis=1), [a])

    def test_sum_keepdims(self, rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        check_grad(lambda: a.sum(axis=0, keepdims=True), [a])

    def test_mean(self, rng):
        a = Tensor(rng.standard_normal((4, 4)), requires_grad=True)
        check_grad(lambda: a.mean(axis=1), [a])

    def test_max_backward_unique(self):
        a = Tensor(np.array([[1.0, 5.0], [7.0, 2.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_array_equal(a.grad, [[0, 1], [1, 0]])

    def test_reshape(self, rng):
        a = Tensor(rng.standard_normal((2, 6)), requires_grad=True)
        check_grad(lambda: a.reshape(3, 4), [a])

    def test_transpose(self, rng):
        a = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        check_grad(lambda: a.transpose(2, 0, 1), [a])

    def test_getitem(self, rng):
        a = Tensor(rng.standard_normal((5, 4)), requires_grad=True)
        check_grad(lambda: a[1:3], [a])

    def test_getitem_fancy_accumulates(self):
        a = Tensor(np.zeros(3), requires_grad=True)
        idx = np.array([0, 0, 2])
        a[idx].sum().backward()
        np.testing.assert_array_equal(a.grad, [2.0, 0.0, 1.0])

    def test_pad2d(self, rng):
        a = Tensor(rng.standard_normal((1, 2, 3, 3)), requires_grad=True)
        out = a.pad2d(2)
        assert out.shape == (1, 2, 7, 7)
        check_grad(lambda: a.pad2d(2), [a])

    def test_concatenate(self, rng):
        a = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal((2, 2)), requires_grad=True)
        check_grad(lambda: concatenate([a, b], axis=1), [a, b])

    def test_stack(self, rng):
        a = Tensor(rng.standard_normal((3,)), requires_grad=True)
        b = Tensor(rng.standard_normal((3,)), requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)


class TestEngine:
    def test_grad_accumulation_over_reuse(self, rng):
        a = Tensor(rng.standard_normal((3,)), requires_grad=True)
        out = a * a + a  # uses `a` in two paths
        out.sum().backward()
        np.testing.assert_allclose(a.grad, 2 * a.data + 1)

    def test_deep_chain(self):
        a = Tensor(np.array([0.5]), requires_grad=True)
        x = a
        for _ in range(50):
            x = x * 1.01
        x.backward()
        np.testing.assert_allclose(a.grad, [1.01 ** 50], rtol=1e-10)

    def test_backward_requires_grad(self):
        a = Tensor(np.ones(3))
        with pytest.raises(RuntimeError):
            a.backward()

    def test_backward_seed_shape_mismatch(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            a.backward(np.ones(4))

    def test_integer_tensor_cannot_require_grad(self):
        with pytest.raises(TypeError):
            Tensor(np.array([1, 2, 3]), requires_grad=True)

    def test_detach_cuts_graph(self, rng):
        a = Tensor(rng.standard_normal((3,)), requires_grad=True)
        d = (a * 2).detach()
        assert not d.requires_grad
        assert d._prev == ()

    def test_no_grad_skips_graph(self, rng):
        a = Tensor(rng.standard_normal((3,)), requires_grad=True)
        with no_grad():
            out = a * 2
        assert not out.requires_grad

    def test_unbroadcast_prepended_axes(self):
        g = np.ones((2, 3, 4))
        assert unbroadcast(g, (3, 4)).shape == (3, 4)
        np.testing.assert_array_equal(unbroadcast(g, (3, 4)), 2 * np.ones((3, 4)))

    def test_unbroadcast_stretched_axes(self):
        g = np.ones((3, 4))
        out = unbroadcast(g, (3, 1))
        assert out.shape == (3, 1)
        np.testing.assert_array_equal(out, 4 * np.ones((3, 1)))

    def test_factories(self):
        assert zeros((2, 2)).data.sum() == 0
        assert ones((2, 2)).data.sum() == 4
        assert randn(3, 4, rng=np.random.default_rng(0)).shape == (3, 4)
