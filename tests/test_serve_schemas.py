"""Schema certification of ``repro.serve``: pinned goldens + fuzz.

Two halves:

* **Goldens** — for every endpoint, the exact response document is
  pinned (volatile fields — metric floats, durations, filesystem paths,
  the queued/running submission race — are scrubbed to placeholders
  first).  Any change to a response shape must edit a golden here,
  which is the review hook the API versioning relies on.
* **Fuzz** — malformed bodies (truncated JSON, wrong types, unknown
  fields, oversized payloads, wrong verbs, bad paths) must each come
  back as a *structured* 4xx error document, never a traceback and
  never an HTML error page.
"""

import json
import threading

import pytest

import repro
from repro.dse.cache import DiskCache
from repro.serve import ERROR_SCHEMA, ServeApp

from tests.serve_utils import NOMINAL_CONFIG, Client, live_server, \
    wait_for_job

#: config_key(normalize_config(NOMINAL_CONFIG)) — content hashes are part
#: of the wire contract, so the golden pins the literal digest.
NOMINAL_KEY = \
    "8edb5e755f1615f9d26d82480ba5c75402d8db195e730cc68de95033a060cbc9"

NOMINAL_NORMALIZED = {"pattern": "1:8", "bus_bits": 128, "mram_rows": 1024,
                      "weight_bits": 8, "device": "nominal",
                      "workload": "paper"}


def scrub(doc):
    """Replace volatile leaves so goldens stay byte-stable."""
    if isinstance(doc, dict):
        out = {}
        for key, value in doc.items():
            if key == "metrics" and isinstance(value, dict):
                out[key] = {k: "<float>" for k in sorted(value)}
            elif key in ("elapsed_ms",):
                out[key] = "<ms>"
            elif key == "root":
                out[key] = "<dir>"
            elif key == "state" and value in ("queued", "running"):
                out[key] = "<queued|running>"
            else:
                out[key] = scrub(value)
        return out
    if isinstance(doc, list):
        return [scrub(v) for v in doc]
    return doc


@pytest.fixture()
def app(tmp_path):
    app = ServeApp(cache=DiskCache(tmp_path / "cache"), window_s=0.005,
                   job_workers=1)
    yield app
    app.shutdown()


def dispatch(app, method, path, doc=None, raw=b""):
    if doc is not None:
        raw = json.dumps(doc).encode()
    return app.dispatch(method, path, raw)


class TestGoldenResponses:
    def test_health(self, app):
        status, doc = dispatch(app, "GET", "/v1/health")
        assert (status, doc) == (200, {
            "schema": "repro.serve/health/1",
            "ok": True,
            "version": repro.__version__,
        })

    def test_stats_fresh_server(self, app):
        status, doc = dispatch(app, "GET", "/v1/stats")
        assert status == 200
        assert scrub(doc) == {
            "schema": "repro.serve/stats/1",
            "cache": {"enabled": True, "refresh": False, "root": "<dir>",
                      "hits": 0, "misses": 0, "rejected": 0, "stored": 0},
            "batching": {"requests": 0, "batches": 0, "evaluated": 0,
                         "coalesced": 0, "window_s": 0.005,
                         "max_batch": 256, "submit_timeout_s": 60.0},
            "jobs": {"queued": 0, "running": 0, "done": 0, "failed": 0,
                     "cancelled": 0, "max_jobs": 1024, "pruned": 0},
        }

    def test_evaluate(self, app):
        status, doc = dispatch(app, "POST", "/v1/evaluate",
                               {"config": NOMINAL_CONFIG})
        assert status == 200
        assert scrub(doc) == {
            "schema": "repro.serve/evaluate/1",
            "trace_id": "req-000001",
            "key": NOMINAL_KEY,
            "cache": "miss",
            "record": {
                "schema": "repro.dse/record/1",
                "key": NOMINAL_KEY,
                "config": NOMINAL_NORMALIZED,
                "metrics": {"area_mm2": "<float>", "density": "<float>",
                            "inference_latency_s": "<float>",
                            "inference_power_mw": "<float>",
                            "training_edp_js": "<float>",
                            "training_latency_s": "<float>"},
            },
            "batch": {"index": 1, "requests": 1, "unique": 1},
        }

    def test_evaluate_error_record(self, app):
        status, doc = dispatch(
            app, "POST", "/v1/evaluate",
            {"config": dict(NOMINAL_CONFIG, pattern="9:4")})
        assert status == 200
        record = doc["record"]
        assert record["error"] == {
            "type": "ValueError",
            "message": "cannot parse N:M pattern from '9:4'",
        }
        assert "metrics" not in record

    def test_sweep_submission(self, app):
        # Occupy the single job worker so the submitted job is
        # deterministically still queued when the 202 doc is built.
        release = threading.Event()
        app.jobs.submit("block", {}, "req-x",
                        lambda job: release.wait(30) and {})
        status, doc = dispatch(app, "POST", "/v1/sweep",
                               {"preset": "smoke",
                                "overrides": {"patterns": ["1:8"],
                                              "bus_bits": [64]}})
        assert status == 202
        assert doc == {
            "schema": "repro.serve/job/1",
            "id": "job-000002",
            "kind": "sweep",
            "state": "queued",
            "trace_id": "req-000001",
            "request": {"preset": "smoke",
                        "overrides": {"patterns": ["1:8"],
                                      "bus_bits": [64]},
                        "workers": 1, "records": False},
        }
        release.set()
        done = _wait(app, doc["id"])
        assert done["state"] == "done"

    def test_experiment_submission_and_result(self, app):
        release = threading.Event()
        app.jobs.submit("block", {}, "req-x",
                        lambda job: release.wait(30) and {})
        status, doc = dispatch(app, "POST", "/v1/experiment",
                               {"experiment": "table2"})
        assert status == 202
        assert doc == {
            "schema": "repro.serve/job/1",
            "id": "job-000002",
            "kind": "experiment",
            "state": "queued",
            "trace_id": "req-000001",
            "request": {"experiment": "table2"},
        }
        release.set()
        _wait(app, doc["id"])
        status, result = dispatch(app, "GET", "/v1/jobs/job-000002/result")
        assert status == 200
        assert result["schema"] == "repro.serve/job-result/1"
        assert result["id"] == "job-000002"
        assert result["result"]["experiment"] == "table2"

    def test_jobs_list_and_job_doc(self, app):
        dispatch(app, "POST", "/v1/experiment", {"experiment": "fig8"})
        _wait(app, "job-000001")
        status, doc = dispatch(app, "GET", "/v1/jobs")
        assert status == 200
        assert scrub(doc) == {
            "schema": "repro.serve/jobs/1",
            "jobs": [{
                "schema": "repro.serve/job/1",
                "id": "job-000001",
                "kind": "experiment",
                "state": "done",
                "trace_id": "req-000001",
                "request": {"experiment": "fig8"},
                "elapsed_ms": "<ms>",
            }],
        }
        status, single = dispatch(app, "GET", "/v1/jobs/job-000001")
        assert (status, single) == (200, doc["jobs"][0])

    def test_job_cancel(self, app):
        release = threading.Event()
        app.jobs.submit("block", {}, "req-x",
                        lambda job: release.wait(30) and {})
        status, doc = dispatch(app, "POST", "/v1/sweep",
                               {"preset": "smoke"})
        assert doc["state"] == "queued"      # the only worker is occupied
        status, doc = dispatch(app, "POST",
                               f"/v1/jobs/{doc['id']}/cancel")
        release.set()
        assert (status, doc) == (200, {
            "schema": "repro.serve/job/1",
            "id": "job-000002",
            "state": "cancelled",
        })

    def test_job_result_before_finish_is_409(self, app):
        started, release = threading.Event(), threading.Event()

        def runner(job):
            started.set()
            release.wait(30)
            return {}

        job = app.jobs.submit("block", {}, "req-x", runner)
        assert started.wait(10)
        status, doc = dispatch(app, "GET", f"/v1/jobs/{job.id}/result")
        release.set()
        assert (status, doc) == (409, {
            "schema": ERROR_SCHEMA,
            "error": {"code": "not-finished",
                      "message": "job job-000001 is running; result "
                                 "exists only for done/failed jobs"},
        })

    def test_job_trace_is_a_valid_chrome_trace(self, app):
        from repro.obs import validate_trace_events
        dispatch(app, "POST", "/v1/sweep",
                 {"preset": "smoke", "overrides": {"patterns": ["1:8"],
                                                   "bus_bits": [64]}})
        _wait(app, "job-000001")
        status, doc = dispatch(app, "GET", "/v1/jobs/job-000001/trace")
        assert status == 200
        assert validate_trace_events(doc) == []
        names = {e["name"] for e in doc["traceEvents"]}
        assert "serve.job.sweep" in names

    def test_not_found(self, app):
        status, doc = dispatch(app, "GET", "/v1/nope")
        assert (status, doc) == (404, {
            "schema": ERROR_SCHEMA,
            "error": {"code": "not-found",
                      "message": "no such endpoint: /v1/nope"},
        })

    def test_method_not_allowed(self, app):
        status, doc = dispatch(app, "GET", "/v1/evaluate")
        assert (status, doc) == (405, {
            "schema": ERROR_SCHEMA,
            "error": {"code": "method-not-allowed",
                      "message": "/v1/evaluate requires POST, got GET"},
        })

    def test_unknown_config_field(self, app):
        status, doc = dispatch(app, "POST", "/v1/evaluate",
                               {"config": dict(NOMINAL_CONFIG, zap=1)})
        assert (status, doc) == (400, {
            "schema": ERROR_SCHEMA,
            "error": {"code": "unknown-field",
                      "message": "unknown config field(s): zap (allowed: "
                                 "pattern, bus_bits, mram_rows, "
                                 "weight_bits, device, workload)",
                      "field": "zap"},
        })

    def test_oversized_body(self, tmp_path):
        app = ServeApp(cache=DiskCache(tmp_path / "c"), window_s=0.005,
                       max_body_bytes=64)
        try:
            status, doc = dispatch(app, "POST", "/v1/evaluate",
                                   raw=b"x" * 65)
            assert (status, doc) == (413, {
                "schema": ERROR_SCHEMA,
                "error": {"code": "too-large",
                          "message": "request body exceeds 64 bytes"},
            })
        finally:
            app.shutdown()


def _wait(app, job_id, timeout=120.0):
    import time
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        doc = app.jobs.doc(job_id)
        if doc is not None and doc["state"] in ("done", "failed", "cancelled"):
            return doc
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never finished")


#: (method, path, raw body) -> every one must return a structured 4xx.
FUZZ_CASES = [
    ("POST", "/v1/evaluate", b""),
    ("POST", "/v1/evaluate", b'{"config": {'),
    ("POST", "/v1/evaluate", b"[1, 2, 3]"),
    ("POST", "/v1/evaluate", b"null"),
    ("POST", "/v1/evaluate", b"5"),
    ("POST", "/v1/evaluate", b'"a string"'),
    ("POST", "/v1/evaluate", b"\xff\xfe\x00not json"),
    ("POST", "/v1/evaluate", b'{"config": 5}'),
    ("POST", "/v1/evaluate", b'{"config": {"pattern": ["1:8"]}}'),
    ("POST", "/v1/evaluate",
     json.dumps({"config": NOMINAL_CONFIG, "trace": "yes"}).encode()),
    ("POST", "/v1/evaluate",
     json.dumps({"config": NOMINAL_CONFIG, "extra": 1}).encode()),
    ("POST", "/v1/sweep", b'{"preset": "huge"}'),
    ("POST", "/v1/sweep", b'{"preset": 5}'),
    ("POST", "/v1/sweep", b'{"overrides": {"patterns": []}}'),
    ("POST", "/v1/sweep", b'{"overrides": {"zap": [1]}}'),
    ("POST", "/v1/sweep", b'{"overrides": {"patterns": ["1:8", "1:8"]}}'),
    ("POST", "/v1/sweep", b'{"overrides": ["patterns"]}'),
    ("POST", "/v1/sweep", b'{"workers": 0}'),
    ("POST", "/v1/sweep", b'{"workers": true}'),
    ("POST", "/v1/sweep", b'{"workers": 999}'),
    ("POST", "/v1/sweep", b'{"records": 1}'),
    ("POST", "/v1/experiment", b"{}"),
    ("POST", "/v1/experiment", b'{"experiment": "fig9"}'),
    ("POST", "/v1/experiment", b'{"experiment": 3}'),
    ("POST", "/v1/experiment", b'{"experiment": "table2", "x": 1}'),
    ("GET", "/v1/jobs/job-999999", b""),
    ("GET", "/v1/jobs/job-999999/result", b""),
    ("GET", "/v1/jobs/job-999999/trace", b""),
    ("POST", "/v1/jobs/job-999999/cancel", b""),
    ("POST", "/v1/jobs", b"{}"),
    ("GET", "/", b""),
    ("GET", "/v2/evaluate", b""),
    ("PUT", "/v1/evaluate", b"{}"),
    ("DELETE", "/v1/jobs/job-000001", b""),
]


class TestFuzz:
    @pytest.mark.parametrize("method, path, raw", FUZZ_CASES)
    def test_malformed_requests_get_structured_4xx(self, app, method,
                                                   path, raw):
        status, doc = app.dispatch(method, path, raw)
        assert 400 <= status < 500, (status, doc)
        assert doc["schema"] == ERROR_SCHEMA
        assert set(doc["error"]) <= {"code", "message", "field"}
        assert "Traceback" not in doc["error"]["message"]
        assert doc["error"]["code"] != "internal"

    def test_fuzz_cases_over_live_http(self, tmp_path):
        """The wire path agrees with dispatch: same statuses, JSON bodies
        (never the html error page), for a sample of the fuzz corpus."""
        with live_server(tmp_path, window_s=0.005) as (app, client):
            for method, path, raw in FUZZ_CASES[:12] + FUZZ_CASES[-2:]:
                status, doc, headers = client.request(
                    method, path, raw=raw or b" ")
                assert 400 <= status < 500, (method, path, status)
                assert headers["Content-Type"] == "application/json"
                assert doc["schema"] == ERROR_SCHEMA

    def test_oversized_body_over_live_http(self, tmp_path):
        with live_server(tmp_path, window_s=0.005,
                         max_body_bytes=1024) as (app, client):
            status, doc, _ = client.post("/v1/evaluate",
                                         raw=b"x" * 4096)
            assert status == 413
            assert doc["error"]["code"] == "too-large"
            # The server survives the refused body: next request works.
            status, doc, _ = client.get("/v1/health")
            assert status == 200 and doc["ok"] is True

    def test_path_quirks_resolve_like_the_canonical_path(self, app):
        assert dispatch(app, "GET", "/v1/health/")[0] == 200
        assert dispatch(app, "GET", "/v1/health?probe=1")[0] == 200
        assert dispatch(app, "GET", "//v1//health")[0] == 200
