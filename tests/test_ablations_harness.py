"""Tests for the ablations harness module."""

import pytest

from repro.harness.ablations import (build_ablations, fault_robustness,
                                     pattern_sweep, permutation_study,
                                     render_ablations, write_verify_sweep)
from repro.core.workload import paper_workload


@pytest.fixture(scope="module")
def workload():
    return paper_workload()


class TestPatternSweep:
    def test_five_patterns(self, workload):
        rows = pattern_sweep(workload)
        assert len(rows) == 5
        assert rows[1]["pattern"] == "1:8"
        assert rows[1]["edp_rel"] == pytest.approx(1.0)

    def test_storage_monotone_in_density(self, workload):
        rows = pattern_sweep(workload)
        storages = [r["storage_bits"] for r in rows]
        assert storages == sorted(storages)

    def test_same_density_same_storage(self, workload):
        rows = {r["pattern"]: r for r in pattern_sweep(workload)}
        # 2:8 and 1:4 have the same density -> same storage/area
        assert rows["2:8"]["storage_bits"] == rows["1:4"]["storage_bits"]
        # ...but 2:8 pays more EDP (twice the index-sweep length m)
        assert rows["2:8"]["edp_rel"] > rows["1:4"]["edp_rel"]


class TestPermutationStudy:
    def test_structured_gains_exceed_iid(self):
        rows = {r["saliency_structure"]: r["retained_gain"]
                for r in permutation_study()}
        assert rows["adversarial"] > rows["block-correlated"] > rows["iid"] \
            - 1e-9
        assert rows["adversarial"] > 1.0  # >100% more saliency retained


class TestWriteVerifySweep:
    def test_reliability_monotone_in_current(self):
        rows = write_verify_sweep()
        probs = [r["switch_probability"] for r in rows]
        fails = [r["failure_rate"] for r in rows]
        assert probs == sorted(probs)
        assert fails == sorted(fails, reverse=True)

    def test_sweet_spot_exists(self):
        """Somewhere in the sweep, retry-corrected energy beats brute force."""
        rows = write_verify_sweep()
        energies = [r["energy_pj_per_bit"] for r in rows]
        assert min(energies) < energies[-1]  # max drive is not optimal


class TestFaultRobustness:
    def test_clean_at_zero_and_nominal(self):
        rows = fault_robustness()
        by_ber = {r["ber"]: r for r in rows}
        assert by_ber[0.0]["max_rel_error"] == 0.0
        assert by_ber[1e-6]["max_rel_error"] < 0.05

    def test_degrades_at_high_ber(self):
        rows = fault_robustness()
        assert rows[-1]["mean_rel_error"] > rows[1]["mean_rel_error"]


class TestAggregate:
    def test_build_and_render(self, workload):
        result = build_ablations(workload)
        assert set(result) == {"pattern_sweep", "permutation", "write_verify",
                               "sensing", "fault_robustness"}
        out = render_ablations(result)
        for title in ("Ablation 1", "Ablation 2", "Ablation 3", "Ablation 4",
                      "Ablation 5"):
            assert title in out
