"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (TABLE1_TASKS, ClassPrototype, TaskSpec,
                            base_pretraining_spec, downstream_specs,
                            generate_task, load_downstream_task)


class TestTaskSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            TaskSpec("x", num_classes=1, train_per_class=5, test_per_class=5)
        with pytest.raises(ValueError):
            TaskSpec("x", num_classes=3, train_per_class=0, test_per_class=5)


class TestPrototype:
    def test_deterministic_given_seed(self):
        a = ClassPrototype(7, 16, 3)
        b = ClassPrototype(7, 16, 3)
        rng1, rng2 = np.random.default_rng(0), np.random.default_rng(0)
        np.testing.assert_array_equal(a.render(rng1, 0.1, 1),
                                      b.render(rng2, 0.1, 1))

    def test_different_seeds_differ(self):
        a = ClassPrototype(1, 16, 3)
        b = ClassPrototype(2, 16, 3)
        rng = np.random.default_rng(0)
        img_a = a.render(rng, 0.0, 0)
        img_b = b.render(np.random.default_rng(0), 0.0, 0)
        assert not np.allclose(img_a, img_b)

    def test_render_shape(self):
        p = ClassPrototype(0, 12, 3)
        img = p.render(np.random.default_rng(0), 0.2, 2)
        assert img.shape == (3, 12, 12)


class TestGeneration:
    def test_shapes_and_labels(self):
        spec = TaskSpec("t", num_classes=4, train_per_class=6,
                        test_per_class=3, image_size=12)
        train, test = generate_task(spec, seed=0)
        assert train.inputs.shape == (24, 3, 12, 12)
        assert test.inputs.shape == (12, 3, 12, 12)
        assert sorted(set(train.labels.tolist())) == [0, 1, 2, 3]
        counts = np.bincount(train.labels)
        assert (counts == 6).all()

    def test_normalized(self):
        spec = TaskSpec("t", num_classes=3, train_per_class=10,
                        test_per_class=4)
        train, _ = generate_task(spec, seed=1)
        assert abs(train.inputs.mean()) < 1e-5
        assert train.inputs.std() == pytest.approx(1.0, abs=1e-3)

    def test_reproducible(self):
        spec = TaskSpec("t", num_classes=3, train_per_class=4, test_per_class=2)
        a, _ = generate_task(spec, seed=5)
        b, _ = generate_task(spec, seed=5)
        np.testing.assert_array_equal(a.inputs, b.inputs)

    def test_classes_are_separable(self):
        """A nearest-centroid classifier should beat chance comfortably —
        the tasks must be learnable for the accuracy study to mean anything."""
        spec = TaskSpec("t", num_classes=4, train_per_class=20,
                        test_per_class=10, noise=0.2)
        train, test = generate_task(spec, seed=0)
        centroids = np.stack([
            train.inputs[train.labels == c].reshape(20, -1).mean(axis=0)
            for c in range(4)])
        flat = test.inputs.reshape(len(test), -1)
        pred = np.argmin(
            ((flat[:, None, :] - centroids[None]) ** 2).sum(-1), axis=1)
        acc = (pred == test.labels).mean()
        assert acc > 0.5  # chance = 0.25


class TestDownstreamTasks:
    def test_all_five_present(self):
        specs = downstream_specs()
        assert set(specs) == set(TABLE1_TASKS)

    def test_load_by_name(self):
        train, test = load_downstream_task("pets", scale=0.5)
        assert len(train) > 0 and len(test) > 0

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_downstream_task("mnist")

    def test_scale_shrinks(self):
        big, _ = load_downstream_task("cifar10", scale=1.0)
        small, _ = load_downstream_task("cifar10", scale=0.5)
        assert len(small) < len(big)

    def test_disjoint_class_seeds(self):
        """Distinct tasks draw from distinct class prototypes."""
        specs = downstream_specs()
        seeds = [s.class_seed for s in specs.values()]
        assert len(set(seeds)) == len(seeds)

    def test_food101_is_smallest_and_noisiest(self):
        """The overfitting-prone analogue must have the smallest per-class
        budget and highest noise among the five (paper Sec. 5.1 note)."""
        specs = downstream_specs()
        food = specs["food101"]
        assert food.train_per_class == min(s.train_per_class
                                           for s in specs.values())
        assert food.noise == max(s.noise for s in specs.values())

    def test_base_spec(self):
        spec = base_pretraining_spec()
        assert spec.num_classes >= 10
        assert spec.name.startswith("base")
