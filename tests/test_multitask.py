"""Tests for multi-task adaptor management (task switching, zero forgetting)."""

import numpy as np
import pytest

from repro.datasets import TaskSpec, generate_task
from repro.repnet import TrainConfig, build_repnet_model
from repro.repnet.multitask import SequentialLearner, TaskLibrary
from repro.sparsity import NMPattern


def tiny_model(seed=0):
    return build_repnet_model(widths=(8, 8, 16), strides=(1, 2, 1),
                              repnet_width=4, seed=seed)


def make_task(class_seed, num_classes=3, per_class=10):
    spec = TaskSpec(f"t{class_seed}", num_classes=num_classes,
                    train_per_class=per_class, test_per_class=5,
                    image_size=8, class_seed=class_seed)
    return generate_task(spec, seed=class_seed)


class TestTaskLibrary:
    def test_snapshot_requires_head(self):
        model = tiny_model()
        lib = TaskLibrary(model)
        with pytest.raises(KeyError):
            lib.snapshot("nope")

    def test_activate_requires_snapshot(self):
        model = tiny_model()
        model.add_task("a", 3)
        lib = TaskLibrary(model)
        with pytest.raises(KeyError):
            lib.activate("a")

    def test_roundtrip_restores_exact_state(self):
        model = tiny_model()
        model.add_task("a", 3)
        model.set_active_task("a")
        lib = TaskLibrary(model)
        lib.snapshot("a")
        before = model.rep_stem.weight.data.copy()

        # perturb the learnable path (as learning task b would)
        model.rep_stem.weight.data = model.rep_stem.weight.data + 1.0
        assert not np.array_equal(model.rep_stem.weight.data, before)

        lib.activate("a")
        np.testing.assert_array_equal(model.rep_stem.weight.data, before)
        assert model.active_task == "a"

    def test_adaptor_weights_counts_path_and_head(self):
        model = tiny_model()
        model.add_task("a", 3)
        model.set_active_task("a")
        lib = TaskLibrary(model)
        lib.snapshot("a")
        expected = sum(p.size for p in model.learnable_parameters())
        assert lib.adaptor_weights("a") == expected

    def test_switch_cost_shrinks_with_sparsity(self):
        model = tiny_model()
        model.add_task("a", 3)
        model.set_active_task("a")
        lib = TaskLibrary(model)
        lib.snapshot("a")
        dense = lib.switch_cost_bits("a")
        sparse = lib.switch_cost_bits("a", NMPattern(1, 8))
        # 1:8 with 12-bit pairs: 0.1875x the dense write traffic
        assert sparse == pytest.approx(dense * 0.1875, rel=0.02)


class TestSequentialLearning:
    @pytest.fixture(scope="class")
    def learned(self):
        model = tiny_model()
        learner = SequentialLearner(model, pattern=None)
        tasks = {"alpha": make_task(11), "beta": make_task(22)}
        cfg = TrainConfig(epochs=3, batch_size=16, lr=4e-3, seed=0)
        accs = learner.learn_sequence(tasks, cfg)
        return learner, accs

    def test_all_tasks_learned(self, learned):
        learner, accs = learned
        assert set(accs) == {"alpha", "beta"}
        assert learner.library.tasks == ["alpha", "beta"]

    def test_zero_forgetting(self, learned):
        """Re-activating an earlier task's adaptor restores its accuracy
        exactly — the architecture's central continual-learning property."""
        learner, accs = learned
        final = learner.accuracy_matrix()
        for task in accs:
            assert final[task] == pytest.approx(accs[task], abs=1e-9)

    def test_adaptors_are_distinct(self, learned):
        learner, _ = learned
        a = learner.library._snapshots["alpha"]["rep_stem.weight"]
        b = learner.library._snapshots["beta"]["rep_stem.weight"]
        assert not np.array_equal(a, b)

    def test_backbone_shared_and_frozen(self, learned):
        learner, _ = learned
        assert all(not p.trainable
                   for p in learner.model.backbone.parameters())
