"""Unit suite for the ``flat`` kernel tier's machinery.

The differential suite already proves flat == reference == fast on the
shared sweep; this file pins the pieces behind that equality: the nnz
bucket partition (optimal padding under the bucket cap), the fused
reduceat layout, the working-set-budgeted batch blocking, and the
bounded workspace pool (reuse, eviction, mixed shapes, thread safety).
"""

import threading

import numpy as np
import pytest

from repro.core.csc import CSCMatrix
from repro.core.kernels import (FLAT_BATCH_BLOCK, FLAT_MAX_BUCKETS,
                                FLAT_WORKSET_ELEMS, WORKSPACE_MAX_ENTRIES,
                                KernelPlan, _flat_block,
                                _partition_column_counts,
                                _workspace_capacity, _WorkspaceCache,
                                clear_workspaces, spmm_bitserial,
                                spmm_gather, workspace_stats)
from repro.sparsity import NMPattern

GROUP = NMPattern(16, 16)   # encoding group only: any sparsity accepted


def plan_for(weights):
    return KernelPlan.from_csc(
        CSCMatrix.from_dense(np.asarray(weights, dtype=np.int64), GROUP,
                             strict=False))


def skewed_weights(rng, in_dim, out_dim):
    """A deliberately skewed column-nnz histogram (flat's target case)."""
    w = np.zeros((in_dim, out_dim), dtype=np.int64)
    for c in range(out_dim):
        nnz = min(in_dim, 1 + (c * c) % (in_dim // 2 + 1))
        rows = rng.permutation(in_dim)[:nnz]
        signs = rng.integers(0, 2, size=nnz) * 2 - 1
        w[rows, c] = rng.integers(1, 128, size=nnz) * signs
    return w


@pytest.fixture
def rng():
    return np.random.default_rng(0xF1A7)


@pytest.fixture(autouse=True)
def fresh_pool():
    clear_workspaces()
    yield
    clear_workspaces()


def padded_work(counts, segments):
    return sum(max(counts[s:e]) * (e - s) for s, e in segments)


class TestBucketPartition:
    def test_few_distinct_counts_zero_waste(self):
        counts = np.array([2, 2, 2, 5, 5, 9], dtype=np.int64)
        segments = _partition_column_counts(counts, FLAT_MAX_BUCKETS)
        assert segments == [(0, 3), (3, 5), (5, 6)]
        assert padded_work(counts, segments) == 2 * 3 + 5 * 2 + 9

    def test_segments_tile_the_sorted_columns(self, rng):
        counts = np.sort(rng.integers(1, 200, size=300))
        segments = _partition_column_counts(counts, FLAT_MAX_BUCKETS)
        assert 1 <= len(segments) <= FLAT_MAX_BUCKETS
        assert segments[0][0] == 0 and segments[-1][1] == len(counts)
        for (_, e0), (s1, _) in zip(segments, segments[1:]):
            assert e0 == s1

    def test_dp_beats_any_equal_width_split(self, rng):
        """The DP's padded work is <= a naive equal-column split's."""
        counts = np.sort(rng.integers(1, 500, size=257))
        segments = _partition_column_counts(counts, 4)
        bounds = np.linspace(0, len(counts), 5).astype(int)
        naive = list(zip(bounds[:-1], bounds[1:]))
        assert padded_work(counts, segments) <= padded_work(counts, naive)

    def test_empty_input(self):
        assert _partition_column_counts(np.array([], dtype=np.int64), 8) == []


class TestFlatStructures:
    def test_buckets_cover_each_nonempty_column_once(self, rng):
        plan = plan_for(skewed_weights(rng, 96, 40))
        counts = np.diff(plan.col_ptr)
        covered = np.concatenate([b.cols for b in plan.flat_buckets])
        np.testing.assert_array_equal(np.sort(covered),
                                      np.flatnonzero(counts))

    def test_bucket_padding_is_bucket_local_and_inert(self, rng):
        plan = plan_for(skewed_weights(rng, 96, 40))
        counts = np.diff(plan.col_ptr)
        for bucket in plan.flat_buckets:
            width = bucket.rows.shape[0]
            assert width == counts[bucket.cols].max()
            for j, c in enumerate(bucket.cols):
                pad = int(width - counts[c])
                if pad:
                    np.testing.assert_array_equal(bucket.rows[-pad:, j], 0)
                    np.testing.assert_array_equal(bucket.vals[-pad:, j], 0)

    def test_layout_segments_reconstruct_the_matrix(self, rng):
        w = skewed_weights(rng, 64, 24)
        plan = plan_for(w)
        layout = plan.flat_layout
        assert layout.rows.shape == layout.vals.shape
        assert layout.widths.sum() == layout.rows.shape[0]
        np.testing.assert_array_equal(
            layout.starts, np.concatenate(([0], np.cumsum(layout.widths)[:-1])))
        rebuilt = np.zeros_like(w)
        for c, start, width in zip(layout.cols, layout.starts, layout.widths):
            rows = layout.rows[start:start + width]
            vals = layout.vals[start:start + width]
            rebuilt[rows[vals != 0], c] = vals[vals != 0]
        np.testing.assert_array_equal(rebuilt, w)

    def test_empty_plan_has_no_layout(self):
        plan = plan_for(np.zeros((16, 4)))
        assert plan.flat_buckets == ()
        assert plan.flat_layout is None

    def test_layout_is_cached_on_the_plan(self, rng):
        plan = plan_for(skewed_weights(rng, 32, 8))
        assert plan.flat_layout is plan.flat_layout

    def test_flat_block_budget(self):
        assert _flat_block(16, 10) == 16                  # batch-limited
        assert _flat_block(1024, 10) == FLAT_BATCH_BLOCK  # cap-limited
        wide = FLAT_WORKSET_ELEMS // 4
        assert _flat_block(1024, wide) == 4               # budget-limited
        assert _flat_block(1024, 10 * FLAT_WORKSET_ELEMS) == 1


class TestFlatKernelsOnSkew:
    """Bit-exactness on the histograms the shared sweep doesn't hit."""

    def test_gather_matches_dense(self, rng):
        w = skewed_weights(rng, 96, 40)
        plan = plan_for(w)
        for batch in (1, 3, FLAT_BATCH_BLOCK, FLAT_BATCH_BLOCK + 5):
            x = rng.integers(-128, 128, size=(batch, 96), dtype=np.int64)
            np.testing.assert_array_equal(
                spmm_gather(plan, x, impl="flat"), x @ w)

    def test_bitserial_matches_dense(self, rng):
        w = skewed_weights(rng, 96, 40)
        plan = plan_for(w)
        for batch in (1, 3, 17):
            x = rng.integers(-128, 128, size=(batch, 96), dtype=np.int64)
            np.testing.assert_array_equal(
                spmm_bitserial(plan, x, 8, impl="flat"), x @ w)

    def test_single_dense_column(self, rng):
        w = np.zeros((48, 3), dtype=np.int64)
        w[:, 1] = rng.integers(1, 128, size=48)
        plan = plan_for(w)
        x = rng.integers(-128, 128, size=(5, 48), dtype=np.int64)
        np.testing.assert_array_equal(spmm_gather(plan, x, impl="flat"),
                                      x @ w)


class TestWorkspacePool:
    def test_capacity_classes_are_powers_of_two(self):
        assert _workspace_capacity(1) == 1
        assert _workspace_capacity(2) == 2
        assert _workspace_capacity(3) == 4
        assert _workspace_capacity(1025) == 2048

    def test_repeated_calls_reuse_buffers(self, rng):
        w = skewed_weights(rng, 64, 16)
        plan = plan_for(w)
        x = rng.integers(-128, 128, size=(8, 64), dtype=np.int64)
        spmm_gather(plan, x, impl="flat")
        misses_after_first = workspace_stats()["misses"]
        for _ in range(5):
            spmm_gather(plan, x, impl="flat")
        stats = workspace_stats()
        assert stats["misses"] == misses_after_first   # no new allocations
        assert stats["hits"] >= 10                     # 2 buffers x 5 calls

    def test_mixed_shapes_stay_bounded(self, rng):
        shapes = [(32, 4), (64, 8), (128, 16), (256, 24), (96, 12),
                  (160, 20), (48, 6), (224, 28), (80, 10), (192, 22)]
        plans = [plan_for(skewed_weights(rng, i, o)) for i, o in shapes]
        for _ in range(3):
            for (i, _o), plan in zip(shapes, plans):
                x = rng.integers(-128, 128, size=(8, i), dtype=np.int64)
                spmm_gather(plan, x, impl="flat")
        stats = workspace_stats()
        assert stats["buffers"] <= WORKSPACE_MAX_ENTRIES

    def test_eviction_is_lru_and_counted(self):
        pool = _WorkspaceCache(max_entries=2)
        a, b, c = (np.empty(4, dtype=np.int64) for _ in range(3))
        pool.checkin(a)          # order: [4]
        big = np.empty(64, dtype=np.int64)
        pool.checkin(big)        # order: [4, 64]
        pool.checkin(b)          # class 4 refreshed -> evict LRU class (64)
        pool.checkin(c)          # over budget again -> evict from class 4
        stats = pool.stats()
        assert stats["buffers"] == 2
        assert stats["classes"] == 1
        assert stats["evictions"] == 2
        # the big class was evicted, so a 64-elem checkout is a miss
        pool.checkout(64)
        assert pool.stats()["misses"] == 1
        # ...while the small class still serves hits
        pool.checkout(4)
        assert pool.stats()["hits"] == 1

    def test_checkout_is_exclusive(self):
        pool = _WorkspaceCache()
        pool.checkin(np.empty(8, dtype=np.int64))
        first = pool.checkout(8)
        second = pool.checkout(8)
        assert first is not second

    def test_clear_resets_everything(self, rng):
        w = skewed_weights(rng, 32, 8)
        plan = plan_for(w)
        x = rng.integers(-128, 128, size=(4, 32), dtype=np.int64)
        spmm_gather(plan, x, impl="flat")
        clear_workspaces()
        assert workspace_stats() == {"buffers": 0, "classes": 0, "hits": 0,
                                     "misses": 0, "evictions": 0}

    def test_concurrent_flat_matmuls_are_correct(self, rng):
        """Thread hammer: shared pool, private buffers, exact results."""
        w = skewed_weights(rng, 64, 16)
        plan = plan_for(w)
        inputs = [rng.integers(-128, 128, size=(8, 64), dtype=np.int64)
                  for _ in range(8)]
        expected = [x @ w for x in inputs]
        errors = []

        def worker(idx):
            try:
                for _ in range(20):
                    got = spmm_gather(plan, inputs[idx], impl="flat")
                    np.testing.assert_array_equal(got, expected[idx])
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(len(inputs))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert workspace_stats()["buffers"] <= WORKSPACE_MAX_ENTRIES
