"""Concurrency certification of ``repro.serve``.

Many clients hammer one live server (real threads, real sockets) and the
suite proves the coalescing story end to end:

* every client gets **its own correct result** — the record for exactly
  the config it posted, never a neighbor's;
* simultaneous requests coalesce — engine calls (batches) < requests,
  and identical configs inside one window collapse to a single
  evaluation (cache ``stored`` counts actual evaluations);
* the counters stay mutually consistent under load;
* context-local tracers never cross-attach spans between interleaved
  requests (the regression test for the ``repro.obs`` contextvars fix).
"""

import json
import threading

from repro.dse import (SMOKE_SPEC, config_key, dumps_canonical,
                       evaluate_config, normalize_config)
from repro import obs
from repro.obs import Tracer, use_tracer

from tests.serve_utils import live_server, wait_for_job

#: Enough clients to exceed the acceptance floor (>= 8) with headroom.
N_THREADS = 12

#: A wide window so a barrier-released burst always lands in one batch.
WIDE_WINDOW_S = 0.25


def _post_evaluate(client, cfg, out, index):
    status, doc, _ = client.post("/v1/evaluate", {"config": cfg})
    out[index] = (status, doc)


def _burst(client, configs):
    """Release one request per config simultaneously; returns responses."""
    out = [None] * len(configs)
    barrier = threading.Barrier(len(configs))

    def run(i, cfg):
        barrier.wait()
        _post_evaluate(client, cfg, out, i)

    threads = [threading.Thread(target=run, args=(i, cfg))
               for i, cfg in enumerate(configs)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert all(r is not None for r in out), "a client thread never returned"
    return out


class TestCoalescing:
    def test_overlapping_clients_each_get_their_own_result(self, tmp_path):
        distinct = SMOKE_SPEC.configs()[:4]
        configs = [distinct[i % len(distinct)] for i in range(N_THREADS)]
        with live_server(tmp_path, window_s=WIDE_WINDOW_S) as (app, client):
            responses = _burst(client, configs)

            for cfg, (status, doc) in zip(configs, responses):
                assert status == 200
                normalized = normalize_config(cfg)
                assert doc["key"] == config_key(normalized)
                assert doc["record"]["config"] == normalized
                assert dumps_canonical(doc["record"]) \
                    == dumps_canonical(evaluate_config(normalized))

            stats = app.queue.stats()
            assert stats["requests"] == N_THREADS
            assert stats["batches"] < stats["requests"]
            assert stats["coalesced"] > 0
            assert stats["coalesced"] \
                == stats["requests"] - stats["evaluated"]
            # Identical configs never evaluate twice: the cache stores
            # exactly one record per distinct config — coalescing absorbs
            # duplicates inside a window, cache hits absorb the rest.
            cache = app.cache.stats()
            assert cache["stored"] == len(distinct)
            assert cache["misses"] == len(distinct)
            assert stats["evaluated"] >= len(distinct)

    def test_warm_burst_is_all_cache_hits(self, tmp_path):
        distinct = SMOKE_SPEC.configs()[:4]
        configs = [distinct[i % len(distinct)] for i in range(N_THREADS)]
        with live_server(tmp_path, window_s=WIDE_WINDOW_S) as (app, client):
            _burst(client, configs)
            stored_cold = app.cache.stats()["stored"]
            responses = _burst(client, configs)
            assert all(doc["cache"] == "hit" for _, doc in responses)
            cache = app.cache.stats()
            assert cache["stored"] == stored_cold      # nothing re-evaluated
            assert cache["hits"] > 0

    def test_every_trace_id_is_unique(self, tmp_path):
        configs = SMOKE_SPEC.configs()[:1] * N_THREADS
        with live_server(tmp_path, window_s=WIDE_WINDOW_S) as (app, client):
            responses = _burst(client, configs)
            trace_ids = [doc["trace_id"] for _, doc in responses]
            assert len(set(trace_ids)) == N_THREADS
            # One config, one window: a single evaluation served them all.
            assert app.cache.stats()["stored"] == 1

    def test_batch_info_is_shared_and_consistent(self, tmp_path):
        distinct = SMOKE_SPEC.configs()[:3]
        configs = [distinct[i % len(distinct)] for i in range(9)]
        with live_server(tmp_path, window_s=WIDE_WINDOW_S) as (app, client):
            responses = _burst(client, configs)
            by_batch = {}
            for _, doc in responses:
                by_batch.setdefault(doc["batch"]["index"], []).append(
                    doc["batch"])
            for infos in by_batch.values():
                # Everyone in a batch sees the same requests/unique info,
                # and the batch really did coalesce its members.
                assert len({json.dumps(i, sort_keys=True)
                            for i in infos}) == 1
                assert infos[0]["requests"] == len(infos)
                assert infos[0]["unique"] <= infos[0]["requests"]


class TestConcurrentJobs:
    def test_parallel_sweep_jobs_all_finish_correctly(self, tmp_path):
        request = {"preset": "smoke", "overrides": {"patterns": ["1:8"],
                                                    "bus_bits": [64]}}
        with live_server(tmp_path, window_s=0.005,
                         job_workers=4) as (app, client):
            jobs = [client.post("/v1/sweep", request)[1]
                    for _ in range(4)]
            assert len({j["id"] for j in jobs}) == 4
            frontiers = set()
            for job in jobs:
                done = wait_for_job(client, job["id"])
                assert done["state"] == "done", done.get("error")
                _, result, _ = client.get(f"/v1/jobs/{job['id']}/result")
                frontiers.add(dumps_canonical(result["result"]["frontier"]))
            assert len(frontiers) == 1    # determinism under contention


class TestTracerIsolation:
    """Regression tests for the context-local tracer fix in ``repro.obs``:
    interleaved spans on different threads must never cross-attach
    counters or parents."""

    def test_interleaved_spans_never_cross_attach(self):
        tracers = [Tracer(enabled=True), Tracer(enabled=True)]
        barrier = threading.Barrier(2)

        def run(i):
            with use_tracer(tracers[i]):
                barrier.wait()                 # both threads inside spans
                with obs.span(f"outer-{i}", thread=i) as outer:
                    outer.count(items=10 + i)
                    barrier.wait()             # interleave the inner spans
                    with obs.span(f"inner-{i}") as inner:
                        inner.count(items=1 + i)
                    barrier.wait()

        threads = [threading.Thread(target=run, args=(i,)) for i in (0, 1)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)

        for i, tracer in enumerate(tracers):
            spans = {s.name: s for s in tracer.finished_spans()}
            assert set(spans) == {f"outer-{i}", f"inner-{i}"}
            assert spans[f"outer-{i}"].counters == {"items": 10 + i}
            assert spans[f"inner-{i}"].counters == {"items": 1 + i}
            assert spans[f"inner-{i}"].parent == spans[f"outer-{i}"].index

    def test_context_tracer_does_not_leak_to_new_threads(self):
        """Threads started inside ``use_tracer`` fall back to the global
        tracer: contextvars do not propagate into new threads, which is
        exactly the isolation the threaded server relies on."""
        local = Tracer(enabled=True)
        seen = []

        def child():
            seen.append(obs.get_tracer())

        with use_tracer(local):
            assert obs.get_tracer() is local
            t = threading.Thread(target=child)
            t.start()
            t.join(timeout=10)
        assert obs.get_tracer() is obs.global_tracer()
        assert seen == [obs.global_tracer()]

    def test_server_request_spans_stay_off_the_global_tracer(self, tmp_path):
        obs.configure(enabled=True, reset=True)
        try:
            with live_server(tmp_path,
                             window_s=WIDE_WINDOW_S) as (app, client):
                configs = SMOKE_SPEC.configs()[:2] * 3
                responses = _burst(client, configs)
                traced = client.post(
                    "/v1/evaluate",
                    {"config": SMOKE_SPEC.configs()[0], "trace": True})[1]
            names = [s["name"] for s in traced["trace"]["spans"]]
            assert "serve.request" in names and "serve.queue.wait" in names
            batch_names = {s["name"]
                           for s in traced["trace"]["batch_spans"]}
            assert "serve.batch" in batch_names
            # Nothing the server did landed on the process-global tracer.
            global_names = {s.name for s in
                            obs.global_tracer().finished_spans()}
            assert not {n for n in global_names
                        if n.startswith(("serve.", "dse."))}
        finally:
            obs.configure(enabled=False, reset=True)
