"""Unit tests for INT8 quantization."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor
from repro.quant import (INT8_QMAX, INT8_QMIN, ActivationCalibrator,
                         MinMaxObserver, PercentileObserver, QuantParams,
                         fake_quantize_per_channel, per_channel_params,
                         quantize_model_ptq, quantize_weight_int)


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestQuantParams:
    def test_roundtrip_error_bound(self, rng):
        x = rng.standard_normal(1000)
        params = QuantParams.from_tensor(x)
        err = np.abs(params.fake_quantize(x) - x)
        assert err.max() <= params.scale / 2 + 1e-12

    def test_symmetric_zero_maps_to_zero(self, rng):
        x = rng.standard_normal(100)
        params = QuantParams.from_tensor(x, symmetric=True)
        assert params.quantize(np.zeros(1))[0] == 0
        assert params.dequantize(np.zeros(1, dtype=int))[0] == 0.0

    def test_clipping(self):
        params = QuantParams(scale=1.0)
        q = params.quantize(np.array([500.0, -500.0]))
        assert q[0] == INT8_QMAX and q[1] == INT8_QMIN

    def test_affine_range(self):
        params = QuantParams.from_range(0.0, 10.0, symmetric=False)
        q = params.quantize(np.array([0.0, 10.0]))
        assert q[0] == INT8_QMIN
        assert q[1] == INT8_QMAX

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            QuantParams(scale=0.0)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            QuantParams.from_range(2.0, 1.0)

    def test_empty_tensor(self):
        with pytest.raises(ValueError):
            QuantParams.from_tensor(np.zeros(0))


class TestWeightQuant:
    def test_integer_extraction_preserves_zeros(self, rng):
        w = rng.standard_normal((8, 8))
        w[::2] = 0.0
        q, params = quantize_weight_int(w)
        assert (q[::2] == 0).all()
        assert np.issubdtype(q.dtype, np.integer)

    def test_range_within_int8(self, rng):
        q, _ = quantize_weight_int(rng.standard_normal((100,)) * 50)
        assert q.min() >= INT8_QMIN and q.max() <= INT8_QMAX

    def test_per_channel_tighter_than_per_tensor(self, rng):
        # channel 0 tiny, channel 1 huge: per-channel wins
        w = np.stack([rng.standard_normal(64) * 0.01,
                      rng.standard_normal(64) * 10.0])
        pc = fake_quantize_per_channel(w, axis=0)
        params = QuantParams.from_tensor(w)
        pt = params.fake_quantize(w)
        assert np.abs(pc[0] - w[0]).max() < np.abs(pt[0] - w[0]).max()

    def test_per_channel_params_count(self, rng):
        w = rng.standard_normal((5, 9))
        assert len(per_channel_params(w)) == 5


class TestObservers:
    def test_minmax_tracks_extremes(self):
        obs = MinMaxObserver()
        obs.observe(np.array([1.0, -3.0]))
        obs.observe(np.array([5.0]))
        assert obs.quant_range() == (-5.0, 5.0)

    def test_minmax_affine(self):
        obs = MinMaxObserver(symmetric=False)
        obs.observe(np.array([1.0, 4.0]))
        assert obs.quant_range() == (1.0, 4.0)

    def test_uninitialized_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxObserver().quant_range()

    def test_percentile_resists_outliers(self, rng):
        obs_p = PercentileObserver(percentile=99.0)
        obs_m = MinMaxObserver()
        data = rng.standard_normal(5000)
        data[0] = 1000.0  # single outlier
        obs_p.observe(data)
        obs_m.observe(data)
        assert obs_p.quant_range()[1] < obs_m.quant_range()[1] / 10

    def test_percentile_invalid(self):
        with pytest.raises(ValueError):
            PercentileObserver(percentile=10.0)


class TestModelPTQ:
    def _model(self):
        nn.set_seed(0)
        return nn.Sequential(nn.Linear(8, 16), nn.ReLU(), nn.Linear(16, 4))

    def test_weights_land_on_grid(self):
        model = self._model()
        quantize_model_ptq(model, per_channel=False)
        for _, mod in model.named_modules():
            if isinstance(mod, nn.Linear):
                w = mod.weight.data
                params = QuantParams.from_tensor(w)
                np.testing.assert_allclose(w, params.fake_quantize(w),
                                           atol=params.scale / 2)

    def test_outputs_close_to_fp32(self, rng):
        model = self._model()
        x = Tensor(rng.standard_normal((10, 8)))
        ref = model(x).data.copy()
        quantize_model_ptq(model)
        out = model(x).data
        # INT8 per-channel PTQ should track FP32 closely on a small model
        assert np.abs(out - ref).max() < 0.1 * (np.abs(ref).max() + 1)

    def test_trainable_only_skips_frozen(self):
        model = self._model()
        model.layers[0].weight.freeze()
        before = model.layers[0].weight.data.copy()
        report = quantize_model_ptq(model, trainable_only=True)
        np.testing.assert_array_equal(model.layers[0].weight.data, before)
        assert "layer0.weight" not in report

    def test_report_names(self):
        model = self._model()
        report = quantize_model_ptq(model)
        assert set(report) == {"layer0.weight", "layer2.weight"}


class TestActivationCalibrator:
    def test_collects_ranges(self, rng):
        cal = ActivationCalibrator()
        for _ in range(3):
            cal.observe("conv1", rng.standard_normal(100))
        params = cal.params()
        assert "conv1" in params
        assert params["conv1"].scale > 0


class TestHistogramObserver:
    def test_clips_long_tail(self, rng):
        from repro.quant import HistogramObserver
        data = rng.standard_normal(20000)
        data[:20] *= 100.0
        h = HistogramObserver()
        m = MinMaxObserver()
        h.observe(data)
        m.observe(data)
        assert h.quant_range()[1] < m.quant_range()[1] / 3

    def test_keeps_full_range_when_uniformish(self, rng):
        """With no outliers the KL threshold should stay near the max."""
        from repro.quant import HistogramObserver
        data = rng.uniform(-1, 1, 20000)
        h = HistogramObserver()
        h.observe(data)
        lo, hi = h.quant_range()
        assert hi > 0.8

    def test_multi_batch_accumulation(self, rng):
        from repro.quant import HistogramObserver
        h = HistogramObserver()
        for _ in range(5):
            h.observe(rng.standard_normal(1000))
        lo, hi = h.quant_range()
        assert 0 < hi < 10

    def test_uninitialized(self):
        from repro.quant import HistogramObserver
        import pytest as _pytest
        with _pytest.raises(RuntimeError):
            HistogramObserver().quant_range()

    def test_bin_validation(self):
        from repro.quant import HistogramObserver
        import pytest as _pytest
        with _pytest.raises(ValueError):
            HistogramObserver(bins=64, quant_levels=128)

    def test_symmetric_range(self, rng):
        from repro.quant import HistogramObserver
        h = HistogramObserver()
        h.observe(rng.standard_normal(5000))
        lo, hi = h.quant_range()
        assert lo == -hi
