"""Sweep-engine determinism, worker-failure robustness, and the CLI.

The headline guarantee under test: ``--workers 1`` and ``--workers N``
produce byte-identical frontier JSON, and a warm (fully cached) run
reproduces the cold one exactly.
"""

import json

import pytest

import repro.__main__ as repro_cli
import repro.dse.__main__ as dse_cli
from repro.dse import (SMOKE_SPEC, SweepSpec, dumps_canonical, frontier_doc,
                       normalize_config, run_sweep)

SPEC = SweepSpec(patterns=("1:4", "2:8"), bus_bits=(64, 128))

BAD_CONFIG = {"pattern": "9:4", "bus_bits": 128, "mram_rows": 1024,
              "weight_bits": 8, "device": "nominal"}
GOOD_CONFIG = {"pattern": "1:4", "bus_bits": 128, "mram_rows": 1024,
               "weight_bits": 8, "device": "nominal"}


class TestWorkerParity:
    def test_serial_and_pool_frontiers_are_byte_identical(self):
        serial = run_sweep(spec=SPEC, workers=1)
        pooled = run_sweep(spec=SPEC, workers=4)
        assert serial["records"] == pooled["records"]
        assert dumps_canonical(frontier_doc(serial)) == \
            dumps_canonical(frontier_doc(pooled))

    def test_worker_count_is_excluded_from_the_frontier_doc(self):
        result = run_sweep(spec=SPEC, workers=3)
        doc = frontier_doc(result)
        text = dumps_canonical(doc)
        assert "workers" not in doc
        assert "cache" not in doc
        assert '"workers"' not in text

    def test_pool_falls_back_to_serial_when_unavailable(self, monkeypatch):
        import repro.dse.engine as engine

        def broken_pool(*args, **kwargs):
            raise OSError("no process pool in this sandbox")

        monkeypatch.setattr(engine.concurrent.futures,
                            "ProcessPoolExecutor", broken_pool)
        oracle = run_sweep(spec=SPEC, workers=1)
        fallback = run_sweep(spec=SPEC, workers=4)
        assert fallback["records"] == oracle["records"]


class TestFaultIsolation:
    def test_failing_config_becomes_an_error_record(self):
        result = run_sweep(configs=[GOOD_CONFIG, BAD_CONFIG], workers=1)
        assert result["configs"] == 2
        assert len(result["errors"]) == 1
        error = result["errors"][0]["error"]
        assert error["type"] and error["message"]
        # The good config still completed and made the frontier.
        assert len(result["frontier"]) == 1
        assert result["frontier"][0]["config"]["pattern"] == "1:4"

    def test_serial_and_pool_agree_on_error_records(self):
        configs = [GOOD_CONFIG, BAD_CONFIG,
                   dict(GOOD_CONFIG, bus_bits=64)]
        serial = run_sweep(configs=configs, workers=1)
        pooled = run_sweep(configs=configs, workers=3)
        assert serial["records"] == pooled["records"]
        assert serial["errors"] == pooled["errors"]

    def test_all_failing_sweep_has_empty_frontier(self):
        result = run_sweep(configs=[BAD_CONFIG], workers=1)
        assert result["frontier"] == []
        assert len(result["errors"]) == 1


class TestMergeDeterminism:
    def test_input_order_does_not_change_the_frontier_doc(self):
        configs = SPEC.configs()
        forward = run_sweep(configs=configs, workers=1)
        backward = run_sweep(configs=list(reversed(configs)), workers=1)
        assert dumps_canonical(frontier_doc(forward)) == \
            dumps_canonical(frontier_doc(backward))

    def test_duplicate_configs_collapse_to_one_evaluation(self):
        result = run_sweep(configs=[GOOD_CONFIG, dict(GOOD_CONFIG),
                                    GOOD_CONFIG], workers=1)
        assert result["configs"] == 1
        assert len(result["records"]) == 1

    def test_records_follow_enumeration_order(self):
        result = run_sweep(spec=SPEC, workers=1)
        keys = [r["key"] for r in result["records"]]
        expected = [r["config"] for r in result["records"]]
        assert expected == [normalize_config(c) for c in SPEC.configs()]
        assert len(set(keys)) == SPEC.size

    def test_spec_and_explicit_configs_agree(self):
        via_spec = run_sweep(spec=SPEC, workers=1)
        via_list = run_sweep(configs=SPEC.configs(), workers=1)
        assert via_spec["records"] == via_list["records"]

    def test_needs_a_spec_or_configs(self):
        with pytest.raises(ValueError):
            run_sweep()


class TestCli:
    def run(self, argv, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        return dse_cli.main(argv)

    def smoke_args(self, extra):
        return ["--preset", "smoke"] + extra

    def test_cold_then_warm_round_trip(self, tmp_path, monkeypatch, capsys):
        code = self.run(self.smoke_args(["--out", "cold.json"]),
                        tmp_path, monkeypatch)
        assert code == 0
        # Warm run must serve every config from cache and agree exactly.
        code = self.run(self.smoke_args(
            ["--out", "warm.json", "--min-cache-hits",
             str(SMOKE_SPEC.size)]), tmp_path, monkeypatch)
        assert code == 0
        cold = (tmp_path / "cold.json").read_bytes()
        warm = (tmp_path / "warm.json").read_bytes()
        assert cold == warm
        out = capsys.readouterr().out
        assert f"{SMOKE_SPEC.size} hits" in out

    def test_min_cache_hits_fails_a_cold_run(self, tmp_path, monkeypatch):
        code = self.run(self.smoke_args(["--min-cache-hits", "1"]),
                        tmp_path, monkeypatch)
        assert code == 2

    def test_no_cache_writes_nothing(self, tmp_path, monkeypatch):
        code = self.run(self.smoke_args(["--no-cache"]),
                        tmp_path, monkeypatch)
        assert code == 0
        assert not (tmp_path / "results").exists()

    def test_workers_flag_matches_serial_output(self, tmp_path, monkeypatch):
        self.run(self.smoke_args(
            ["--no-cache", "--workers", "1", "--out", "serial.json"]),
            tmp_path, monkeypatch)
        self.run(self.smoke_args(
            ["--no-cache", "--workers", "4", "--out", "pooled.json"]),
            tmp_path, monkeypatch)
        assert (tmp_path / "serial.json").read_bytes() == \
            (tmp_path / "pooled.json").read_bytes()

    def test_csv_and_records_exports(self, tmp_path, monkeypatch):
        code = self.run(self.smoke_args(
            ["--no-cache", "--csv", "sweep.csv", "--records", "all.json"]),
            tmp_path, monkeypatch)
        assert code == 0
        csv_lines = (tmp_path / "sweep.csv").read_text().splitlines()
        assert len(csv_lines) == 1 + SMOKE_SPEC.size
        assert csv_lines[0].startswith("key,pattern")
        doc = json.loads((tmp_path / "all.json").read_text())
        assert doc["configs"] == SMOKE_SPEC.size

    def test_lever_overrides_shrink_the_sweep(self, tmp_path, monkeypatch):
        code = self.run(
            ["--patterns", "1:4", "--bus-bits", "128", "--mram-rows", "1024",
             "--weight-bits", "8", "--devices", "nominal", "--no-cache",
             "--records", "one.json"],
            tmp_path, monkeypatch)
        assert code == 0
        doc = json.loads((tmp_path / "one.json").read_text())
        assert doc["configs"] == 1

    def test_invalid_lever_override_is_a_usage_error(self, tmp_path,
                                                     monkeypatch, capsys):
        with pytest.raises(SystemExit) as excinfo:
            self.run(["--patterns", "banana"], tmp_path, monkeypatch)
        assert excinfo.value.code == 2
        assert "banana" in capsys.readouterr().err

    def test_all_configs_failing_exits_one(self, tmp_path, monkeypatch):
        def all_fail(spec=None, configs=None, workers=1, cache=None):
            return {"schema": "repro.dse/sweep/1", "spec": None,
                    "workers": workers, "configs": 1,
                    "records": [], "frontier": [],
                    "errors": [{"key": "k", "config": {},
                                "error": {"type": "ValueError",
                                          "message": "boom"}}],
                    "cache": None}

        monkeypatch.setattr(dse_cli, "run_sweep", all_fail)
        code = self.run(self.smoke_args(["--no-cache"]),
                        tmp_path, monkeypatch)
        assert code == 1

    def test_trace_writes_sweep_spans(self, tmp_path, monkeypatch):
        code = self.run(self.smoke_args(
            ["--no-cache", "--trace", "dse.trace.json"]),
            tmp_path, monkeypatch)
        assert code == 0
        trace = (tmp_path / "dse.trace.json").read_text()
        assert "dse.sweep" in trace
        assert "dse.reduce" in trace

    def test_top_level_cli_forwards_the_dse_subcommand(
            self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = repro_cli.main(["dse", "--preset", "smoke", "--no-cache",
                               "--out", "fwd.json"])
        assert code == 0
        doc = json.loads((tmp_path / "fwd.json").read_text())
        assert doc["schema"] == "repro.dse/frontier/1"

    def test_dse_is_listed_as_an_experiment(self):
        assert "dse" in repro_cli.EXPERIMENTS
