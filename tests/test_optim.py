"""Unit tests for optimizers and LR schedules."""

import numpy as np
import pytest

from repro.nn.modules import Parameter
from repro.nn.optim import (SGD, Adam, CosineAnnealingLR, StepLR,
                            clip_grad_norm)


def quadratic_param(start=5.0):
    """A parameter whose 'loss' is x^2 (gradient = 2x)."""
    return Parameter(np.array([start]))


def grad_step(p):
    p.grad = 2 * p.data


class TestSGD:
    def test_plain_descent_converges(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            grad_step(p)
            opt.step()
        assert abs(p.data[0]) < 1e-4

    def test_momentum_faster_than_plain(self):
        p1, p2 = quadratic_param(), quadratic_param()
        plain = SGD([p1], lr=0.02)
        mom = SGD([p2], lr=0.02, momentum=0.9)
        for _ in range(30):
            grad_step(p1); plain.step()
            grad_step(p2); mom.step()
        assert abs(p2.data[0]) < abs(p1.data[0])

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([quadratic_param()], lr=0.1, nesterov=True)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] == pytest.approx(1.0 - 0.1 * 0.5)

    def test_skips_frozen(self):
        p = quadratic_param()
        p.freeze()
        opt = SGD([p], lr=0.1)
        p.grad = np.array([1.0])  # grad set manually despite freeze
        p.trainable = False
        opt.step()
        assert p.data[0] == 5.0

    def test_mask_pins_zeros(self):
        p = Parameter(np.array([1.0, 2.0, 3.0, 4.0]))
        opt = SGD([p], lr=0.5)
        mask = np.array([1.0, 0.0, 1.0, 0.0])
        p.data = p.data * mask
        opt.set_mask(p, mask)
        p.grad = np.ones(4)
        opt.step()
        assert p.data[1] == 0.0 and p.data[3] == 0.0
        assert p.data[0] != 1.0  # unmasked weights move

    def test_mask_shape_check(self):
        p = Parameter(np.ones(4))
        opt = SGD([p], lr=0.1)
        with pytest.raises(ValueError):
            opt.set_mask(p, np.ones(3))

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_bad_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([quadratic_param()], lr=0.0)


class TestAdam:
    def test_converges(self):
        p = quadratic_param()
        opt = Adam([p], lr=0.3)
        for _ in range(200):
            grad_step(p)
            opt.step()
        assert abs(p.data[0]) < 1e-3

    def test_bias_correction_first_step(self):
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.1)
        p.grad = np.array([1.0])
        opt.step()
        # First Adam step moves by ~lr regardless of gradient scale.
        assert p.data[0] == pytest.approx(1.0 - 0.1, abs=1e-6)

    def test_mask_pins_zeros(self):
        p = Parameter(np.array([0.0, 2.0]))
        opt = Adam([p], lr=0.5)
        opt.set_mask(p, np.array([0.0, 1.0]))
        p.grad = np.ones(2)
        opt.step()
        assert p.data[0] == 0.0


class TestSchedulers:
    def test_step_lr(self):
        opt = SGD([quadratic_param()], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(opt.lr)
        assert lrs == [1.0, 0.1, 0.1, pytest.approx(0.01)]

    def test_cosine_endpoints(self):
        opt = SGD([quadratic_param()], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=10)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-12)

    def test_cosine_monotone_decrease(self):
        opt = SGD([quadratic_param()], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=20)
        prev = opt.lr
        for _ in range(20):
            sched.step()
            assert opt.lr <= prev + 1e-12
            prev = opt.lr

    def test_cosine_invalid_tmax(self):
        opt = SGD([quadratic_param()], lr=1.0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(opt, t_max=0)


class TestGradClip:
    def test_clips_large(self):
        p = Parameter(np.zeros(4))
        p.grad = np.ones(4) * 10  # norm 20
        total = clip_grad_norm([p], 1.0)
        assert total == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_leaves_small(self):
        p = Parameter(np.zeros(4))
        p.grad = np.ones(4) * 0.1
        clip_grad_norm([p], 10.0)
        np.testing.assert_allclose(p.grad, 0.1 * np.ones(4))
