"""Unit tests for NN functional ops (conv, pooling, losses)."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor

from .test_tensor import check_grad


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestIm2col:
    def test_roundtrip_shapes(self, rng):
        x = rng.standard_normal((2, 3, 8, 8))
        cols = F.im2col(x, 3, 3, 1, 1)
        assert cols.shape == (2 * 8 * 8, 3 * 9)

    def test_output_size(self):
        assert F.conv_output_size(8, 3, 1, 1) == 8
        assert F.conv_output_size(8, 3, 2, 1) == 4
        assert F.conv_output_size(7, 3, 1, 0) == 5

    def test_output_size_invalid(self):
        with pytest.raises(ValueError):
            F.conv_output_size(2, 5, 1, 0)

    def test_col2im_adjoint(self, rng):
        """<im2col(x), y> == <x, col2im(y)> — exact adjointness."""
        x = rng.standard_normal((1, 2, 6, 6))
        y = rng.standard_normal((1 * 4 * 4, 2 * 9))
        lhs = (F.im2col(x, 3, 3, 1, 0) * y).sum()
        rhs = (x * F.col2im(y, x.shape, 3, 3, 1, 0)).sum()
        np.testing.assert_allclose(lhs, rhs, rtol=1e-12)


class TestConv2d:
    def test_matches_direct_convolution(self, rng):
        x = rng.standard_normal((1, 2, 5, 5))
        w = rng.standard_normal((3, 2, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), stride=1, padding=0)
        # direct loop reference
        ref = np.zeros((1, 3, 3, 3))
        for f in range(3):
            for i in range(3):
                for j in range(3):
                    ref[0, f, i, j] = (x[0, :, i:i + 3, j:j + 3] * w[f]).sum()
        np.testing.assert_allclose(out.data, ref, rtol=1e-10)

    def test_gradients(self, rng):
        x = Tensor(rng.standard_normal((2, 2, 5, 5)), requires_grad=True)
        w = Tensor(rng.standard_normal((3, 2, 3, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal(3), requires_grad=True)
        check_grad(lambda: F.conv2d(x, w, b, stride=1, padding=1), [x, w, b])

    def test_strided_gradients(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 6, 6)), requires_grad=True)
        w = Tensor(rng.standard_normal((2, 2, 3, 3)), requires_grad=True)
        check_grad(lambda: F.conv2d(x, w, stride=2, padding=1), [x, w])

    def test_channel_mismatch(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 5, 5)))
        w = Tensor(rng.standard_normal((3, 4, 3, 3)))
        with pytest.raises(ValueError):
            F.conv2d(x, w)


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2)
        np.testing.assert_array_equal(out.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_gradients(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 6, 6)), requires_grad=True)
        check_grad(lambda: F.max_pool2d(x, 2), [x])

    def test_avg_pool_values(self):
        x = np.ones((1, 1, 4, 4))
        out = F.avg_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data, np.ones((1, 1, 2, 2)))

    def test_avg_pool_gradients(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 4, 4)), requires_grad=True)
        check_grad(lambda: F.avg_pool2d(x, 2), [x])

    def test_global_avg_pool(self, rng):
        x = rng.standard_normal((2, 3, 4, 4))
        out = F.global_avg_pool2d(Tensor(x))
        np.testing.assert_allclose(out.data, x.mean(axis=(2, 3)))


class TestLossesActivations:
    def test_softmax_rows_sum_to_one(self, rng):
        x = Tensor(rng.standard_normal((4, 7)))
        s = F.softmax(x)
        np.testing.assert_allclose(s.data.sum(axis=-1), np.ones(4), rtol=1e-10)

    def test_log_softmax_consistency(self, rng):
        x = Tensor(rng.standard_normal((3, 5)))
        np.testing.assert_allclose(F.log_softmax(x).data,
                                   np.log(F.softmax(x).data), rtol=1e-8)

    def test_cross_entropy_known_value(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_gradient(self, rng):
        logits = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        y = np.array([0, 1, 2, 1])
        loss = F.cross_entropy(logits, y)
        loss.backward()
        # analytic: softmax(p) - onehot, averaged
        p = F.softmax(Tensor(logits.data)).data
        onehot = np.eye(3)[y]
        np.testing.assert_allclose(logits.grad, (p - onehot) / 4, rtol=1e-8)

    def test_cross_entropy_rejects_2d_targets(self, rng):
        logits = Tensor(rng.standard_normal((4, 3)))
        with pytest.raises(ValueError):
            F.cross_entropy(logits, np.zeros((4, 3)))

    def test_mse(self, rng):
        a = Tensor(rng.standard_normal((3, 3)), requires_grad=True)
        b = rng.standard_normal((3, 3))
        loss = F.mse_loss(a, b)
        assert loss.item() == pytest.approx(((a.data - b) ** 2).mean())

    def test_accuracy(self):
        logits = Tensor(np.array([[1.0, 2.0], [3.0, 0.0]]))
        assert F.accuracy(logits, np.array([1, 0])) == 1.0
        assert F.accuracy(logits, np.array([0, 0])) == 0.5
