"""Tests for the reliability models: write-verify and sense-margin analysis."""

import math

import numpy as np
import pytest

from repro.core.write_verify import (WriteVerifyController,
                                     deployment_write_study)
from repro.energy.mtj import MTJParams
from repro.energy.sensing import (SenseConfig, margin_study,
                                  read_bit_error_rate, state_currents_ua)


class TestWriteVerifyAnalytic:
    def test_strong_drive_needs_one_pulse(self):
        ctrl = WriteVerifyController(write_current_ua=200.0)
        assert ctrl.switch_probability == 1.0
        assert ctrl.expected_attempts_per_bit() == pytest.approx(1.0)
        assert ctrl.expected_failure_rate() == 0.0

    def test_weak_drive_retries(self):
        ctrl = WriteVerifyController(write_current_ua=20.0, max_retries=5)
        assert 0.0 < ctrl.switch_probability < 1.0
        assert ctrl.expected_attempts_per_bit() > 1.0
        assert 0.0 < ctrl.expected_failure_rate() < 1.0

    def test_more_retries_fewer_failures(self):
        weak = dict(write_current_ua=15.0)
        few = WriteVerifyController(max_retries=1, **weak)
        many = WriteVerifyController(max_retries=8, **weak)
        assert many.expected_failure_rate() < few.expected_failure_rate()

    def test_energy_scales_with_attempts(self):
        strong = WriteVerifyController(write_current_ua=200.0)
        # identical pulse energy comparison requires same current; compare
        # attempts ratio instead
        weak = WriteVerifyController(write_current_ua=25.0, max_retries=10)
        assert weak.expected_energy_pj_per_bit() / weak._pulse_energy_pj == \
            pytest.approx(weak.expected_attempts_per_bit())
        assert strong.expected_attempts_per_bit() <= \
            weak.expected_attempts_per_bit()

    def test_invalid_retries(self):
        with pytest.raises(ValueError):
            WriteVerifyController(max_retries=-1)


class TestWriteVerifyMonteCarlo:
    def test_reliable_write_converges(self):
        ctrl = WriteVerifyController(write_current_ua=200.0)
        rng = np.random.default_rng(0)
        current = np.zeros(256, dtype=np.int8)
        target = rng.integers(0, 2, 256).astype(np.int8)
        result, report = ctrl.write_bits(current, target, rng)
        np.testing.assert_array_equal(result, target)
        assert report.failures == 0
        assert report.attempts == int(target.sum())  # only toggling bits

    def test_same_state_bits_cost_nothing(self):
        ctrl = WriteVerifyController(write_current_ua=200.0)
        bits = np.ones(64, dtype=np.int8)
        _, report = ctrl.write_bits(bits, bits, np.random.default_rng(0))
        assert report.attempts == 0
        assert report.energy_pj == 0.0

    def test_weak_drive_leaves_failures(self):
        ctrl = WriteVerifyController(write_current_ua=5.0, max_retries=1)
        rng = np.random.default_rng(1)
        current = np.zeros(512, dtype=np.int8)
        target = np.ones(512, dtype=np.int8)
        result, report = ctrl.write_bits(current, target, rng)
        assert report.failures > 0
        assert report.bit_error_rate > 0.5  # nearly nothing switches

    def test_monte_carlo_matches_analytic(self):
        ctrl = WriteVerifyController(write_current_ua=32.0, max_retries=3)
        rng = np.random.default_rng(2)
        current = np.zeros(20000, dtype=np.int8)
        target = np.ones(20000, dtype=np.int8)
        _, report = ctrl.write_bits(current, target, rng)
        mc_attempts = report.attempts / 20000
        assert mc_attempts == pytest.approx(ctrl.expected_attempts_per_bit(),
                                            rel=0.05)

    def test_shape_mismatch(self):
        ctrl = WriteVerifyController()
        with pytest.raises(ValueError):
            ctrl.write_bits(np.zeros(4, dtype=np.int8),
                            np.zeros(5, dtype=np.int8))


class TestDeploymentStudy:
    def test_paper_scale_deployment(self):
        """Deploying the compressed 26 MB backbone is a one-time, bounded cost."""
        bits = int(9.75 * 2**20 * 8)   # 1:4-compressed backbone
        study = deployment_write_study(bits)
        assert study["expected_failure_rate"] < 1e-3
        assert study["total_write_energy_pj"] > 0
        # energy per bit within ~2x of the Table 2 figure (retry overhead)
        assert study["energy_pj_per_bit"] < 0.2


class TestSensing:
    def test_state_currents_ordered(self):
        cur = state_currents_ua()
        assert cur["i_p_ua"] > cur["i_ref_ua"] > cur["i_ap_ua"]

    def test_low_variation_negligible_ber(self):
        ber = read_bit_error_rate(config=SenseConfig(resistance_sigma=0.02))
        assert ber < 1e-9

    def test_ber_monotone_in_variation(self):
        bers = [read_bit_error_rate(config=SenseConfig(resistance_sigma=s))
                for s in (0.02, 0.05, 0.10, 0.15)]
        assert bers == sorted(bers)

    def test_margin_study_keys(self):
        study = margin_study()
        assert study["tmr"] == pytest.approx(0.987, abs=0.01)
        assert study["sense_margin_ua"] > 0
        assert study["ber@sigma=0.05"] < study["ber@sigma=0.15"]

    def test_digital_readout_robust_at_nominal_variation(self):
        """The headline: at typical 5% variation the all-digital read path
        is effectively error-free — no ADC precision cliff."""
        assert read_bit_error_rate() < 1e-5

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            SenseConfig(resistance_sigma=0.7)
