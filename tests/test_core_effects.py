"""Runtime behaviour of the @reentrant / @effects contract decorators."""

import pickle

import pytest

from repro.core.effects import (EFFECTS_ATTR, REENTRANT_ATTR, effects,
                                reentrant)


def _top_level_worker(x):
    return x * 2


class TestReentrant:
    def test_bare_form_marks_and_returns_unchanged(self):
        def f(x):
            return x
        marked = reentrant(f)
        assert marked is f
        assert getattr(f, REENTRANT_ATTR) == {"reason": ""}

    def test_called_form_records_reason(self):
        @reentrant(reason="pool worker")
        def f(x):
            return x
        assert getattr(f, REENTRANT_ATTR) == {"reason": "pool worker"}

    def test_decorated_worker_stays_picklable(self):
        """No wrapper means process pools ship the function exactly as
        before — the property R10 exists to protect."""
        marked = reentrant(_top_level_worker)
        clone = pickle.loads(pickle.dumps(marked))
        assert clone(21) == 42


class TestEffects:
    def test_attaches_declared_summary(self):
        @effects("READS_GLOBAL", "IO", reason="reads a config file")
        def f():
            return 0
        assert getattr(f, EFFECTS_ATTR) == {
            "effects": ("READS_GLOBAL", "IO"),
            "reason": "reads a config file",
        }

    def test_empty_names_declare_purity(self):
        @effects(reason="observably pure")
        def f():
            return 0
        assert getattr(f, EFFECTS_ATTR)["effects"] == ()

    def test_unknown_effect_name_rejected(self):
        with pytest.raises(ValueError, match="unknown effect"):
            effects("LAUNDERS_STATE", reason="nope")

    def test_missing_reason_rejected(self):
        with pytest.raises(ValueError, match="reason"):
            effects("IO", reason="")

    def test_real_memo_carries_its_declaration(self):
        from repro.dse.evaluate import get_workload
        declared = getattr(get_workload, EFFECTS_ATTR)
        assert declared["effects"] == ("READS_GLOBAL",)
        assert declared["reason"]

    def test_real_worker_still_picklable_under_contract(self):
        from repro.dse.engine import _evaluate_record
        assert getattr(_evaluate_record, REENTRANT_ATTR)
        clone = pickle.loads(pickle.dumps(_evaluate_record))
        record = clone({"pattern": "1:4", "bus_bits": 64, "mram_rows": 512,
                        "weight_bits": 8, "device": "nominal"})
        assert "error" not in record
