"""Differential bit-exactness suite for the sparse-PE kernel layer.

Every (pattern, batch, shape) workload is executed once per registered
kernel implementation (``reference``, ``fast``, ``flat``) plus plain
``activations @ dense``, and all of them must agree bit-for-bit on int64,
for both kernel families (MRAM gather and SRAM bit-serial).  A second
class pins the switch's purity: every ``PEStats`` counter must be
identical under every implementation.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.csc import CSCMatrix
from repro.core.kernels import (DEFAULT_KERNEL, KERNEL_ENV_VAR,
                                KERNEL_IMPLEMENTATIONS, KernelPlan,
                                resolve_kernel, spmm_bitserial, spmm_gather)
from repro.core.mram_pe import MRAMDensePE, MRAMPEConfig, MRAMSparsePE
from repro.core.sram_pe import SRAMPEConfig, SRAMSparsePE
from repro.sparsity import NMPattern, compute_nm_mask

PATTERNS = [NMPattern(1, 4), NMPattern(2, 8), NMPattern(1, 8),
            NMPattern(2, 16)]
PATTERN_IDS = [str(p) for p in PATTERNS]
BATCHES = [1, 7, 16]
INPUT_BITS = 8


def nm_sparse(rng, shape, pattern):
    """Random signed-8-bit matrix pruned to the N:M pattern."""
    dense = rng.integers(-128, 128, size=shape)
    mask = compute_nm_mask(np.abs(dense).astype(float), pattern, axis=0)
    return (dense * mask).astype(np.int64)


def activations_for(rng, batch, in_dim):
    return rng.integers(-128, 128, size=(batch, in_dim), dtype=np.int64)


@pytest.fixture
def rng():
    return np.random.default_rng(0xC5C)


def assert_all_impls_equal(plan, x, dense):
    """fast == reference == x @ dense, for both kernel families."""
    expected = x.astype(np.int64) @ dense
    gather = {impl: spmm_gather(plan, x, impl=impl)
              for impl in KERNEL_IMPLEMENTATIONS}
    bitserial = {impl: spmm_bitserial(plan, x, INPUT_BITS, impl=impl)
                 for impl in KERNEL_IMPLEMENTATIONS}
    for impl in KERNEL_IMPLEMENTATIONS:
        assert gather[impl].dtype == np.int64
        assert bitserial[impl].dtype == np.int64
        np.testing.assert_array_equal(gather[impl], expected)
        np.testing.assert_array_equal(bitserial[impl], expected)


class TestDifferentialSweep:
    """Seeded-random sweep: patterns x batches x shapes."""

    @pytest.mark.parametrize("pattern", PATTERNS, ids=PATTERN_IDS)
    @pytest.mark.parametrize("batch", BATCHES)
    def test_random_nm_workloads(self, rng, pattern, batch):
        m = pattern.m
        for out_dim in (1, 8, 19):
            w = nm_sparse(rng, (m * 8, out_dim), pattern)
            csc = CSCMatrix.from_dense(w, pattern)
            plan = KernelPlan.from_csc(csc)
            x = activations_for(rng, batch, w.shape[0])
            assert_all_impls_equal(plan, x, w)

    @pytest.mark.parametrize("pattern", PATTERNS, ids=PATTERN_IDS)
    def test_in_dim_not_multiple_of_m(self, rng, pattern):
        """Ragged reduction dims are legal with strict=False."""
        m = pattern.m
        in_dim = m * 5 + max(1, m // 2)
        w = np.zeros((in_dim, 6), dtype=np.int64)
        nz = rng.random((in_dim, 6)) < 0.3
        w[nz] = rng.integers(-128, 128, size=int(nz.sum()))
        csc = CSCMatrix.from_dense(w, pattern, strict=False)
        plan = KernelPlan.from_csc(csc)
        for batch in BATCHES:
            assert_all_impls_equal(plan, activations_for(rng, batch, in_dim),
                                   w)

    @pytest.mark.parametrize("pattern", PATTERNS, ids=PATTERN_IDS)
    def test_empty_columns(self, rng, pattern):
        """Columns with zero non-zeros are skipped identically."""
        m = pattern.m
        w = nm_sparse(rng, (m * 4, 9), pattern)
        w[:, [0, 3, 8]] = 0
        csc = CSCMatrix.from_dense(w, pattern)
        plan = KernelPlan.from_csc(csc)
        assert_all_impls_equal(plan, activations_for(rng, 7, w.shape[0]), w)

    def test_all_zero_matrix(self, rng):
        pattern = NMPattern(1, 4)
        w = np.zeros((16, 5), dtype=np.int64)
        plan = KernelPlan.from_csc(CSCMatrix.from_dense(w, pattern))
        assert plan.nnz == 0
        assert_all_impls_equal(plan, activations_for(rng, 3, 16), w)

    def test_extreme_operands(self):
        """INT8 corner values exercise the two's-complement MSB path."""
        pattern = NMPattern(1, 4)
        w = np.zeros((8, 2), dtype=np.int64)
        w[0, 0], w[4, 1] = -128, 127
        plan = KernelPlan.from_csc(CSCMatrix.from_dense(w, pattern))
        x = np.array([[-128, 0, 0, 0, 127, 0, 0, 0],
                      [127, 0, 0, 0, -128, 0, 0, 0]])
        assert_all_impls_equal(plan, x, w)

    @pytest.mark.parametrize("pattern", PATTERNS, ids=PATTERN_IDS)
    @pytest.mark.parametrize("batch", BATCHES)
    def test_pe_models_agree_across_kernels(self, rng, pattern, batch):
        """End-to-end PE matmuls match under both kernel settings."""
        w_sram = nm_sparse(rng, (128, 8), pattern)
        w_mram = nm_sparse(rng, (pattern.m * 16, 32), pattern)
        x_sram = activations_for(rng, batch, 128)
        x_mram = activations_for(rng, batch, w_mram.shape[0])
        for cls, cfg, w, x in [
                (SRAMSparsePE, SRAMPEConfig(), w_sram, x_sram),
                (MRAMSparsePE, MRAMPEConfig(), w_mram, x_mram)]:
            expected = x @ w
            for impl in KERNEL_IMPLEMENTATIONS:
                pe = cls(cfg, kernel=impl)
                pe.load(w, pattern)
                np.testing.assert_array_equal(pe.matmul(x), expected)


class TestPlan:
    def test_decode_roundtrip(self, rng):
        pattern = NMPattern(2, 8)
        w = nm_sparse(rng, (64, 11), pattern)
        plan = KernelPlan.from_csc(CSCMatrix.from_dense(w, pattern))
        np.testing.assert_array_equal(plan.decode(), w)

    def test_plan_layout(self, rng):
        pattern = NMPattern(1, 4)
        w = nm_sparse(rng, (32, 6), pattern)
        plan = KernelPlan.from_csc(CSCMatrix.from_dense(w, pattern))
        assert plan.nnz == int((w != 0).sum())
        assert plan.col_ptr[0] == 0 and plan.col_ptr[-1] == plan.nnz
        assert plan.gather_rows.shape == (plan.max_column_nnz, 6)
        # padding slots must be (row 0, value 0) so they contribute nothing
        for c, _rows, vals in plan.column_slices():
            pad = plan.gather_values[len(vals):, c]
            np.testing.assert_array_equal(pad, 0)

    def test_shape_mismatch_raises(self, rng):
        pattern = NMPattern(1, 4)
        w = nm_sparse(rng, (16, 2), pattern)
        plan = KernelPlan.from_csc(CSCMatrix.from_dense(w, pattern))
        with pytest.raises(ValueError):
            spmm_gather(plan, np.zeros((1, 17), dtype=np.int64))
        with pytest.raises(ValueError):
            spmm_bitserial(plan, np.zeros((1, 17), dtype=np.int64),
                           INPUT_BITS)


class TestDispatch:
    def test_default_is_fast(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        assert resolve_kernel() == DEFAULT_KERNEL == "fast"

    def test_env_var_switch(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "reference")
        assert resolve_kernel() == "reference"
        # an explicit argument beats the environment
        assert resolve_kernel("fast") == "fast"

    def test_unknown_impl_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown kernel"):
            resolve_kernel("turbo")
        monkeypatch.setenv(KERNEL_ENV_VAR, "turbo")
        with pytest.raises(ValueError, match="unknown kernel"):
            resolve_kernel()

    def test_env_var_reaches_pe(self, rng, monkeypatch):
        pattern = NMPattern(1, 4)
        w = nm_sparse(rng, (32, 4), pattern)
        x = activations_for(rng, 2, 32)
        outs = {}
        for impl in KERNEL_IMPLEMENTATIONS:
            monkeypatch.setenv(KERNEL_ENV_VAR, impl)
            pe = SRAMSparsePE()
            pe.load(w, pattern)
            outs[impl] = pe.matmul(x)
        for impl in KERNEL_IMPLEMENTATIONS[1:]:
            np.testing.assert_array_equal(outs["reference"], outs[impl])


class TestFloatActivationRejection:
    """Float activations must fail loudly, never truncate silently."""

    def test_sram_sparse_rejects_floats(self, rng):
        pattern = NMPattern(1, 4)
        pe = SRAMSparsePE()
        pe.load(nm_sparse(rng, (32, 4), pattern), pattern)
        with pytest.raises(TypeError, match="consumes integer activations"):
            pe.matmul(np.ones((1, 32), dtype=np.float64))

    def test_mram_dense_rejects_floats(self, rng):
        pe = MRAMDensePE()
        pe.load(rng.integers(-8, 8, size=(16, 4)))
        with pytest.raises(TypeError, match="consumes integer activations"):
            pe.matmul(np.full((1, 16), 1.9))


class TestStatsInvariance:
    """The kernel switch must be observably pure: identical PEStats."""

    @pytest.mark.parametrize("pattern", PATTERNS, ids=PATTERN_IDS)
    def test_sram_stats_identical(self, rng, pattern):
        w = nm_sparse(rng, (128, 8), pattern)
        w2 = nm_sparse(rng, (128, 8), pattern)
        x = activations_for(rng, 5, 128)
        stats = {}
        for impl in KERNEL_IMPLEMENTATIONS:
            pe = SRAMSparsePE(kernel=impl)
            pe.load(w, pattern)
            pe.matmul(x)
            pe.update_weights(w2, pattern)
            pe.matmul(x)
            stats[impl] = pe.stats.as_dict()
        for impl in KERNEL_IMPLEMENTATIONS[1:]:
            assert stats["reference"] == stats[impl]

    @pytest.mark.parametrize("pattern", PATTERNS, ids=PATTERN_IDS)
    def test_mram_stats_identical(self, rng, pattern):
        w = nm_sparse(rng, (pattern.m * 16, 32), pattern)
        x = activations_for(rng, 5, w.shape[0])
        stats = {}
        for impl in KERNEL_IMPLEMENTATIONS:
            pe = MRAMSparsePE(kernel=impl)
            pe.load(w, pattern)
            pe.matmul(x)
            pe.matmul(x[:2])
            stats[impl] = pe.stats.as_dict()
        for impl in KERNEL_IMPLEMENTATIONS[1:]:
            assert stats["reference"] == stats[impl]

    def test_every_counter_compared(self):
        """Guard: the dict comparison above covers all PEStats fields."""
        from repro.core.stats import PEStats
        pe = SRAMSparsePE()
        assert set(pe.stats.as_dict()) == \
            {f.name for f in dataclasses.fields(PEStats)}
