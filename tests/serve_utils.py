"""Shared helpers for the ``repro.serve`` test suites.

A live-server context manager (real ``ThreadingHTTPServer`` on a free
loopback port) plus a tiny stdlib HTTP/JSON client, so the differential,
concurrency, and schema suites all exercise the actual wire path — body
framing, status codes, headers, JSON round-trip — not just
``ServeApp.dispatch``.
"""

import json
import threading
import time
import urllib.error
import urllib.request
from contextlib import contextmanager

from repro.dse.cache import DiskCache
from repro.serve import ServeApp, make_server

#: One config in the middle of the smoke sweep; handy as a default.
NOMINAL_CONFIG = {"pattern": "1:8", "bus_bits": 128, "mram_rows": 1024,
                  "weight_bits": 8, "device": "nominal"}


class Client:
    """Blocking HTTP/JSON client against a loopback server."""

    def __init__(self, port, host="127.0.0.1", timeout=60.0):
        self.base = f"http://{host}:{port}"
        self.timeout = timeout

    def request(self, method, path, doc=None, raw=None):
        """Returns ``(status, parsed_json_body, headers)``.

        4xx/5xx responses are returned, not raised — every repro.serve
        response body is JSON, including errors.
        """
        data = raw
        if doc is not None:
            data = json.dumps(doc).encode("utf-8")
        req = urllib.request.Request(self.base + path, data=data,
                                     method=method)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.status, json.loads(resp.read()), dict(
                    resp.headers)
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read()), dict(exc.headers)

    def get(self, path):
        return self.request("GET", path)

    def post(self, path, doc=None, raw=None):
        return self.request("POST", path, doc=doc, raw=raw)


@contextmanager
def live_server(tmp_path=None, **app_kwargs):
    """Yield ``(app, client)`` for a freshly bound server on a free port.

    ``cache`` defaults to a :class:`DiskCache` under ``tmp_path`` so the
    suites never touch the repo-level ``results/dse_cache``.
    """
    if "cache" not in app_kwargs:
        if tmp_path is None:
            raise ValueError("live_server needs tmp_path or an explicit cache")
        app_kwargs["cache"] = DiskCache(tmp_path / "serve_cache")
    app = ServeApp(**app_kwargs)
    server = make_server("127.0.0.1", 0, app)
    thread = threading.Thread(target=server.serve_forever, daemon=True,
                              name="repro-serve-test")
    thread.start()
    try:
        yield app, Client(server.server_address[1])
    finally:
        server.shutdown()
        server.server_close()
        app.shutdown()
        thread.join(timeout=10)


def wait_for_job(client, job_id, timeout=120.0):
    """Poll ``GET /v1/jobs/<id>`` until the job reaches a terminal state."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, doc, _ = client.get(f"/v1/jobs/{job_id}")
        assert status == 200, doc
        if doc["state"] in ("done", "failed", "cancelled"):
            return doc
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")
