"""Unit suite for the benchmark-regression gate (``repro.bench``).

Exercises the comparator directly (tolerances, direction, missing/new
metrics, per-metric overrides) and the CLI's exit-code contract via
``repro.bench.__main__.main`` with a fast model-metrics-only run.
"""

import copy
import json

import pytest

from repro.bench import (MODEL_RTOL, TIMING_RTOL, compare_metrics,
                         render_check_report)
from repro.bench.__main__ import main as bench_main


def doc(metrics):
    return {"schema": "repro.bench/1", "repeats": 1, "metrics": metrics}


def metric(value, kind="model", **extra):
    return {"value": value, "kind": kind, "unit": "x", **extra}


BASELINE = doc({
    "fig7.hybrid.area_rel": metric(0.37),
    "timing.kernel.sram_ms": metric(1.0, kind="timing"),
})


class TestCompareMetrics:
    def test_identical_runs_pass(self):
        results = compare_metrics(copy.deepcopy(BASELINE), BASELINE)
        assert all(r.status == "ok" for r in results)
        assert not any(r.failed for r in results)

    def test_model_drift_beyond_rtol_fails_both_directions(self):
        for sign in (+1, -1):
            cur = copy.deepcopy(BASELINE)
            cur["metrics"]["fig7.hybrid.area_rel"]["value"] *= \
                1 + sign * 10 * MODEL_RTOL
            (bad,) = [r for r in compare_metrics(cur, BASELINE) if r.failed]
            assert bad.name == "fig7.hybrid.area_rel"
            assert bad.status == "regressed"

    def test_model_drift_within_rtol_passes(self):
        cur = copy.deepcopy(BASELINE)
        cur["metrics"]["fig7.hybrid.area_rel"]["value"] *= 1 + MODEL_RTOL / 10
        assert not any(r.failed for r in compare_metrics(cur, BASELINE))

    def test_timing_regression_is_increase_only(self):
        slower = copy.deepcopy(BASELINE)
        slower["metrics"]["timing.kernel.sram_ms"]["value"] = \
            1.0 * (1 + TIMING_RTOL) * 1.1
        (bad,) = [r for r in compare_metrics(slower, BASELINE) if r.failed]
        assert bad.name == "timing.kernel.sram_ms"

        # A faster run is never a regression, however large the change.
        faster = copy.deepcopy(BASELINE)
        faster["metrics"]["timing.kernel.sram_ms"]["value"] = 1e-6
        assert not any(r.failed for r in compare_metrics(faster, BASELINE))

    def test_missing_metric_fails(self):
        cur = copy.deepcopy(BASELINE)
        del cur["metrics"]["fig7.hybrid.area_rel"]
        (bad,) = [r for r in compare_metrics(cur, BASELINE) if r.failed]
        assert bad.status == "missing"
        assert bad.name == "fig7.hybrid.area_rel"

    def test_new_metric_is_informational(self):
        cur = copy.deepcopy(BASELINE)
        cur["metrics"]["fig7.hybrid.power_rel"] = metric(0.01)
        results = compare_metrics(cur, BASELINE)
        assert not any(r.failed for r in results)
        (new,) = [r for r in results if r.status == "new"]
        assert new.name == "fig7.hybrid.power_rel"

    def test_per_metric_rtol_and_direction_overrides(self):
        base = doc({"m": metric(1.0, rtol=0.5, direction="increase")})
        within = doc({"m": metric(1.4)})
        assert not any(r.failed for r in compare_metrics(within, base))
        beyond = doc({"m": metric(1.6)})
        assert any(r.failed for r in compare_metrics(beyond, base))
        # increase-only override: a large decrease still passes
        faster = doc({"m": metric(0.1)})
        assert not any(r.failed for r in compare_metrics(faster, base))

    def test_decrease_direction_gates_throughput_drops_only(self):
        base = doc({"m": metric(10.0, kind="timing",
                                rtol=0.75, direction="decrease")})
        # Throughput gains (any size) and small dips pass...
        assert not any(r.failed for r in compare_metrics(
            doc({"m": metric(100.0)}), base))
        assert not any(r.failed for r in compare_metrics(
            doc({"m": metric(3.0)}), base))
        # ...but a drop beyond the tolerance fails.
        (bad,) = [r for r in compare_metrics(
            doc({"m": metric(1.0)}), base) if r.failed]
        assert bad.name == "m"
        assert bad.status == "regressed"

    def test_zero_baseline_uses_absolute_delta(self):
        base = doc({"m": metric(0.0)})
        assert not any(r.failed for r in compare_metrics(
            doc({"m": metric(0.0)}), base))
        assert any(r.failed for r in compare_metrics(
            doc({"m": metric(0.5)}), base))

    def test_report_renders_all_statuses(self):
        cur = copy.deepcopy(BASELINE)
        del cur["metrics"]["timing.kernel.sram_ms"]
        cur["metrics"]["brand.new"] = metric(1.0)
        text = render_check_report(compare_metrics(cur, BASELINE))
        assert "FAIL" in text and "OK" in text and "NEW" in text


@pytest.mark.slow
class TestBenchCli:
    """End-to-end exit codes with a real (model-metrics-only) run."""

    def run_cli(self, tmp_path, baseline_doc, extra=()):
        base = tmp_path / "baseline.json"
        base.write_text(json.dumps(baseline_doc))
        out = tmp_path / "BENCH_harness.json"
        return bench_main(["--no-timings", "--out", str(out),
                           "--baseline", str(base), *extra]), out

    def test_check_passes_against_own_output(self, tmp_path, capsys):
        out = tmp_path / "BENCH_harness.json"
        assert bench_main(["--no-timings", "--out", str(out),
                           "--baseline", str(tmp_path / "b.json"),
                           "--update-baseline"]) == 0
        produced = json.loads(out.read_text())
        code, _ = self.run_cli(tmp_path, produced, extra=["--check"])
        assert code == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_check_fails_on_perturbed_baseline(self, tmp_path, capsys):
        out = tmp_path / "BENCH_harness.json"
        bench_main(["--no-timings", "--out", str(out),
                    "--baseline", str(tmp_path / "b.json"),
                    "--update-baseline"])
        perturbed = json.loads(out.read_text())
        name = next(iter(perturbed["metrics"]))
        perturbed["metrics"][name]["value"] *= 1.5
        code, _ = self.run_cli(tmp_path, perturbed, extra=["--check"])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_check_without_baseline_errors(self, tmp_path):
        assert bench_main(["--no-timings",
                           "--out", str(tmp_path / "o.json"),
                           "--baseline", str(tmp_path / "absent.json"),
                           "--check"]) == 2
