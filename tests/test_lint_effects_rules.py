"""Rules R8/R9/R10 plus the SARIF reporter and the opt-in group plumbing."""

import json
from pathlib import Path

from repro.lint.engine import lint_sources
from repro.lint.registry import all_rules
from repro.lint.reporters import sarif_report

REPO_ROOT = Path(__file__).resolve().parent.parent


def _real_tree_sources():
    src = REPO_ROOT / "src" / "repro"
    return {p.relative_to(REPO_ROOT).as_posix(): p.read_text(encoding="utf-8")
            for p in sorted(src.rglob("*.py"))}


# ---------------------------------------------------------------------------
# R8 — reentrancy
# ---------------------------------------------------------------------------

class TestR8:
    #: The ISSUE's acceptance fixture: ambient RNG three calls deep under
    #: a @reentrant contract, witness chain required end to end.
    THREE_LEVELS = {"repro/deep.py": (
        "import numpy as np\n"
        "from repro.core.effects import reentrant\n"
        "def bottom():\n"
        "    return np.random.rand()\n"
        "def middle():\n"
        "    return bottom()\n"
        "@reentrant\n"
        "def top():\n"
        "    return middle()\n")}

    def test_transitive_ambient_rng_flagged_with_full_witness(self):
        result = lint_sources(self.THREE_LEVELS, codes=["R8"])
        assert len(result.findings) == 1
        f = result.findings[0]
        assert f.code == "R8"
        assert "AMBIENT_RNG" in f.message
        # The witness chain walks every hop to the local fact.
        for hop in ("repro.deep.top", "repro.deep.middle",
                    "repro.deep.bottom"):
            assert hop in f.message
        assert "numpy.random.rand" in f.message

    def test_clean_contracted_function_passes(self):
        result = lint_sources({"repro/ok.py": (
            "from repro.core.effects import reentrant\n"
            "@reentrant\n"
            "def pure(x):\n"
            "    return x * 2\n")}, codes=["R8"])
        assert result.ok

    def test_io_and_reads_are_allowed_under_contract(self):
        result = lint_sources({"repro/ok.py": (
            "from repro.core.effects import reentrant\n"
            "TABLE = {'a': 1}\n"
            "@reentrant\n"
            "def observe(k, path):\n"
            "    print(TABLE.get(k))\n"
            "    return open(path).read()\n")}, codes=["R8"])
        assert result.ok

    def test_global_write_flagged(self):
        result = lint_sources({"repro/bad.py": (
            "from repro.core.effects import reentrant\n"
            "CACHE = {}\n"
            "@reentrant\n"
            "def memo(k):\n"
            "    CACHE[k] = k\n"
            "    return CACHE[k]\n")}, codes=["R8"])
        assert [f.code for f in result.findings] == ["R8"]
        assert "WRITES_GLOBAL" in result.findings[0].message

    def test_set_iteration_flagged(self):
        result = lint_sources({"repro/bad.py": (
            "from repro.core.effects import reentrant\n"
            "@reentrant\n"
            "def merge(items):\n"
            "    return [x for x in set(items)]\n")}, codes=["R8"])
        assert [f.code for f in result.findings] == ["R8"]
        assert "NONDETERMINISTIC_ORDER" in result.findings[0].message

    def test_effects_override_trusted(self):
        result = lint_sources({"repro/ok.py": (
            "from repro.core.effects import effects, reentrant\n"
            "_MEMO = {}\n"
            "@effects('READS_GLOBAL', reason='idempotent memo')\n"
            "def lookup(k):\n"
            "    if k not in _MEMO:\n"
            "        _MEMO[k] = k\n"
            "    return _MEMO[k]\n"
            "@reentrant\n"
            "def top(k):\n"
            "    return lookup(k)\n")}, codes=["R8"])
        assert result.ok

    def test_malformed_effects_declaration_is_a_finding(self):
        result = lint_sources({"repro/bad.py": (
            "from repro.core.effects import effects\n"
            "@effects('READS_GLOBAL')\n"
            "def f(k):\n"
            "    return k\n")}, codes=["R8"])
        assert [f.code for f in result.findings] == ["R8"]
        assert "reason" in result.findings[0].message

    def test_pragma_can_suppress_r8(self):
        result = lint_sources({"repro/bad.py": (
            "from repro.core.effects import reentrant\n"
            "CACHE = {}\n"
            "@reentrant  # repro-lint: disable-line=R8\n"
            "def memo(k):\n"
            "    CACHE[k] = k\n")}, codes=["R8"])
        assert result.ok
        assert len(result.suppressed) == 1

    def test_real_tree_memo_without_override_is_caught(self):
        """Satellite 1's hazard: strip get_workload's @effects declaration
        and the _WORKLOADS memo write must flag every contracted caller."""
        sources = _real_tree_sources()
        ev = "src/repro/dse/evaluate.py"
        text = sources[ev]
        start = text.index('@effects("READS_GLOBAL",')
        end = text.index("def get_workload")
        sources[ev] = text[:start] + text[end:]
        result = lint_sources(sources, codes=["R8"])
        flagged = {f.path for f in result.findings}
        assert "src/repro/dse/engine.py" in flagged       # _evaluate_record
        assert "src/repro/dse/evaluate.py" in flagged     # evaluate_config
        assert any("_WORKLOADS" in f.message for f in result.findings)


# ---------------------------------------------------------------------------
# R9 — cache-key completeness
# ---------------------------------------------------------------------------

class TestR9:
    def test_real_tree_is_complete(self):
        result = lint_sources(_real_tree_sources(), codes=["R9"])
        assert result.ok

    def test_dropping_a_key_from_config_keys_is_caught(self):
        """The ISSUE's mutation test: remove "workload" from CONFIG_KEYS
        and the transitive read plus the normalizer drift must both fire."""
        sources = _real_tree_sources()
        spec = "src/repro/dse/spec.py"
        old = ',\n               "workload")'
        assert old in sources[spec]
        sources[spec] = sources[spec].replace(old, ")", 1)
        result = lint_sources(sources, codes=["R9"])
        assert not result.ok
        messages = [f.message for f in result.findings]
        assert any("reads config['workload']" in m for m in messages)
        assert any("normalize_config emits 'workload'" in m
                   for m in messages)

    def test_fixture_read_of_unkeyed_field_is_caught(self):
        result = lint_sources({
            "repro/dse/spec.py": (
                "CONFIG_KEYS = ('pattern', 'bus_bits')\n"
                "def normalize_config(config):\n"
                "    return {'pattern': str(config['pattern']),\n"
                "            'bus_bits': int(config['bus_bits'])}\n"),
            "repro/dse/evaluate.py": (
                "from .spec import normalize_config\n"
                "def evaluate_config(config):\n"
                "    cfg = normalize_config(config)\n"
                "    return cfg['pattern'], cfg['secret_lever']\n"),
        }, codes=["R9"])
        assert [f.code for f in result.findings] == ["R9"]
        assert "secret_lever" in result.findings[0].message

    def test_normalizer_missing_a_declared_key_is_caught(self):
        result = lint_sources({
            "repro/dse/spec.py": (
                "CONFIG_KEYS = ('pattern', 'bus_bits')\n"
                "def normalize_config(config):\n"
                "    return {'pattern': str(config['pattern'])}\n"),
            "repro/dse/evaluate.py": (
                "def evaluate_config(config):\n"
                "    return config['pattern']\n"),
        }, codes=["R9"])
        assert any("omits 'bus_bits'" in f.message for f in result.findings)

    def test_no_dse_entry_point_means_nothing_to_check(self):
        result = lint_sources({"repro/m.py": "def f(config):\n    return 1\n"},
                              codes=["R9"])
        assert result.ok


# ---------------------------------------------------------------------------
# R10 — worker shippability
# ---------------------------------------------------------------------------

class TestR10:
    def test_real_tree_workers_ship(self):
        result = lint_sources(_real_tree_sources(), codes=["R10"])
        assert result.ok

    def test_lambda_nested_and_method_workers_flagged(self):
        result = lint_sources({"repro/pools.py": (
            "import concurrent.futures\n"
            "def work(x):\n"
            "    return x\n"
            "class Owner:\n"
            "    def method(self, x):\n"
            "        return x\n"
            "def sweep(items):\n"
            "    owner = Owner()\n"
            "    with concurrent.futures.ProcessPoolExecutor() as pool:\n"
            "        a = list(pool.map(lambda x: x, items))\n"
            "        def inner(x):\n"
            "            return x\n"
            "        b = list(pool.map(inner, items))\n"
            "        c = list(pool.map(owner.method, items))\n"
            "        d = pool.submit(work, 1)\n"
            "    return a, b, c, d\n")}, codes=["R10"])
        messages = " | ".join(f.message for f in result.findings)
        assert len(result.findings) == 3
        assert "lambda" in messages
        assert "nested function 'inner'" in messages
        assert "owner.method" in messages

    def test_self_method_worker_flagged(self):
        result = lint_sources({"repro/pools.py": (
            "import concurrent.futures\n"
            "class Sweeper:\n"
            "    def eval_one(self, x):\n"
            "        return x\n"
            "    def run(self, items):\n"
            "        with concurrent.futures.ProcessPoolExecutor() as pool:\n"
            "            return list(pool.map(self.eval_one, items))\n")},
            codes=["R10"])
        assert len(result.findings) == 1
        assert "bound method" in result.findings[0].message

    def test_unpicklable_annotation_flagged(self):
        result = lint_sources({"repro/pools.py": (
            "import concurrent.futures\n"
            "import threading\n"
            "def work(x, lock: threading.Lock):\n"
            "    return x\n"
            "def sweep(items):\n"
            "    with concurrent.futures.ProcessPoolExecutor() as pool:\n"
            "        return pool.submit(work, items, None)\n")},
            codes=["R10"])
        assert len(result.findings) == 1
        assert "threading.Lock" in result.findings[0].message

    def test_toplevel_worker_passes_even_when_decorated(self):
        result = lint_sources({"repro/pools.py": (
            "import concurrent.futures\n"
            "from repro.core.effects import reentrant\n"
            "@reentrant\n"
            "def work(x):\n"
            "    return x\n"
            "def sweep(items):\n"
            "    with concurrent.futures.ProcessPoolExecutor() as pool:\n"
            "        return list(pool.map(work, items))\n")}, codes=["R10"])
        assert result.ok

    def test_thread_pools_are_exempt(self):
        result = lint_sources({"repro/pools.py": (
            "import concurrent.futures\n"
            "def sweep(items):\n"
            "    with concurrent.futures.ThreadPoolExecutor() as pool:\n"
            "        return list(pool.map(lambda x: x, items))\n")},
            codes=["R10"])
        assert result.ok


# ---------------------------------------------------------------------------
# Opt-in group plumbing
# ---------------------------------------------------------------------------

class TestOptinGroups:
    def test_default_rule_set_excludes_effects_rules(self):
        codes = [r.code for r in all_rules()]
        assert "R8" not in codes and "R9" not in codes and "R10" not in codes

    def test_include_optin_true_selects_every_family(self):
        codes = [r.code for r in all_rules(include_optin=True)]
        for code in ("R6", "R7", "R8", "R9", "R10"):
            assert code in codes

    def test_effects_group_selects_only_r8_to_r10(self):
        codes = [r.code for r in all_rules(include_optin=["effects"])]
        assert "R8" in codes and "R9" in codes and "R10" in codes
        assert "R6" not in codes and "R7" not in codes

    def test_dataflow_group_unchanged_by_effects_family(self):
        codes = [r.code for r in all_rules(include_optin=["dataflow"])]
        assert "R6" in codes and "R7" in codes
        assert "R8" not in codes

    def test_groups_compose(self):
        codes = [r.code for r in
                 all_rules(include_optin=["dataflow", "effects"])]
        for code in ("R6", "R7", "R8", "R9", "R10"):
            assert code in codes


# ---------------------------------------------------------------------------
# SARIF output
# ---------------------------------------------------------------------------

class TestSarif:
    def _result(self):
        return lint_sources(TestR8.THREE_LEVELS, codes=["R8"])

    def test_sarif_shape(self):
        doc = json.loads(sarif_report(self._result()))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == ["R8"]
        (res,) = run["results"]
        assert res["ruleId"] == "R8"
        assert res["level"] == "error"
        loc = res["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "repro/deep.py"
        assert loc["region"]["startLine"] >= 1
        assert loc["region"]["startColumn"] >= 1   # SARIF is 1-based

    def test_clean_run_serializes_empty_results(self):
        result = lint_sources({"repro/ok.py": "X = 1\n"}, codes=["R8"])
        doc = json.loads(sarif_report(result))
        assert doc["runs"][0]["results"] == []

    def test_cli_accepts_sarif_format(self, capsys):
        from repro.lint.cli import EXIT_CLEAN, main
        src = REPO_ROOT / "src" / "repro" / "lint" / "findings.py"
        assert main(["--format", "sarif", str(src)]) == EXIT_CLEAN
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
