"""Rules R11-R14 (the static concurrency verifier) plus group plumbing.

Fixture tests pin each rule's core judgment on minimal sources; the
mutation tests take the real tree, plant one specific concurrency bug
(removed lock, inverted acquisition order, unguarded field, non-daemon
unjoined thread) and require *exactly* the expected finding, witness
chain included — the acceptance seeds from the verifier's design issue.
"""

from pathlib import Path

from repro.lint.engine import lint_sources
from repro.lint.registry import all_rules

REPO_ROOT = Path(__file__).resolve().parent.parent

CONCURRENCY = ["R11", "R12", "R13", "R14"]


def _real_tree_sources():
    src = REPO_ROOT / "src" / "repro"
    return {p.relative_to(REPO_ROOT).as_posix(): p.read_text(encoding="utf-8")
            for p in sorted(src.rglob("*.py"))}


# ---------------------------------------------------------------------------
# R11 — guarded-field discipline
# ---------------------------------------------------------------------------

class TestR11:
    COUNTER = (
        "import threading\n"
        "from repro.core.concurrency import guarded_by\n"
        "@guarded_by('_lock', 'count')\n"
        "class Counter:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.count = 0\n"
        "    def bump(self):\n"
        "        with self._lock:\n"
        "            self.count += 1\n"
        "    def peek(self):\n"
        "        return self.count\n")

    def test_unguarded_read_flagged_guarded_access_not(self):
        result = lint_sources({"repro/c.py": self.COUNTER}, codes=["R11"])
        assert [f.code for f in result.findings] == ["R11"]
        f = result.findings[0]
        assert "peek" in f.message and "read of Counter.count" in f.message
        assert "witness:" in f.message

    def test_init_is_exempt(self):
        # The fixture's __init__ writes count with no lock; only peek fires.
        result = lint_sources({"repro/c.py": self.COUNTER}, codes=["R11"])
        assert all("__init__" not in f.message for f in result.findings)

    def test_entry_lockset_proves_private_snapshot_builders(self):
        result = lint_sources({"repro/c.py": (
            "import threading\n"
            "from repro.core.concurrency import guarded_by\n"
            "@guarded_by('_lock', 'count')\n"
            "class Counter:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.count = 0\n"
            "    def snapshot(self):\n"
            "        with self._lock:\n"
            "            return self._doc()\n"
            "    def _doc(self):\n"
            "        return {'count': self.count}\n")}, codes=["R11"])
        assert result.ok

    def test_one_lock_free_call_site_breaks_the_entry_proof(self):
        result = lint_sources({"repro/c.py": (
            "import threading\n"
            "from repro.core.concurrency import guarded_by\n"
            "@guarded_by('_lock', 'count')\n"
            "class Counter:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.count = 0\n"
            "    def snapshot(self):\n"
            "        with self._lock:\n"
            "            return self._doc()\n"
            "    def leak(self):\n"
            "        return self._doc()\n"
            "    def _doc(self):\n"
            "        return {'count': self.count}\n")}, codes=["R11"])
        assert len(result.findings) == 1
        f = result.findings[0]
        # The access reports once, inside _doc, with the lock-free caller
        # on the witness chain.
        assert "_doc" in f.message and "leak" in f.message

    def test_cross_class_owner_lock_contract(self):
        result = lint_sources({"repro/c.py": (
            "import threading\n"
            "from repro.core.concurrency import guarded_by\n"
            "@guarded_by('Store._lock', 'state')\n"
            "class Item:\n"
            "    def __init__(self):\n"
            "        self.state = 'new'\n"
            "class Store:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self.items = {}\n"
            "    def poke(self, item: Item):\n"
            "        item.state = 'old'\n")}, codes=["R11"])
        assert [f.code for f in result.findings] == ["R11"]
        assert "write of Item.state" in result.findings[0].message

    def test_undeclared_lock_attr_is_a_declaration_finding(self):
        result = lint_sources({"repro/c.py": (
            "from repro.core.concurrency import guarded_by\n"
            "@guarded_by('_missing', 'count')\n"
            "class Counter:\n"
            "    def __init__(self):\n"
            "        self.count = 0\n")}, codes=["R11"])
        assert [f.code for f in result.findings] == ["R11"]

    def test_mutation_unlocking_jobstore_get_fires_exactly_once(self):
        """The motivating bug: drop the lock around JobStore.get's
        registry read and R11 reports that access — and only it."""
        sources = _real_tree_sources()
        jobs = "src/repro/serve/jobs.py"
        old = ("        with self._lock:\n"
               "            return self._jobs.get(job_id)\n")
        assert old in sources[jobs]
        sources[jobs] = sources[jobs].replace(
            old, "        return self._jobs.get(job_id)\n", 1)
        result = lint_sources(sources, codes=["R11"])
        assert len(result.findings) == 1
        f = result.findings[0]
        assert f.path == jobs
        assert "JobStore.get" in f.message
        assert "JobStore._jobs" in f.message
        assert "witness:" in f.message

    def test_mutation_new_unguarded_field_fires_exactly_once(self):
        """Declare a new guarded field on Job and read it lock-free."""
        sources = _real_tree_sources()
        jobs = "src/repro/serve/jobs.py"
        text = sources[jobs]
        text = text.replace('"finished_ns")', '"finished_ns", "notes")', 1)
        old = "    def get(self, job_id: str) -> Optional[Job]:"
        assert old in text
        text = text.replace(old, (
            "    def peek_notes(self, job: Job) -> object:\n"
            "        return job.notes\n\n"
            + old), 1)
        sources[jobs] = text
        result = lint_sources(sources, codes=["R11"])
        assert len(result.findings) == 1
        assert "read of Job.notes" in result.findings[0].message


# ---------------------------------------------------------------------------
# R12 — no blocking while locked
# ---------------------------------------------------------------------------

class TestR12:
    def test_file_io_under_lock_flagged(self):
        result = lint_sources({"repro/s.py": (
            "import threading\n"
            "class Store:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def save(self, path, data):\n"
            "        with self._lock:\n"
            "            with open(path, 'w') as fh:\n"
            "                fh.write(data)\n")}, codes=["R12"])
        assert [f.code for f in result.findings] == ["R12"]
        assert "open" in result.findings[0].message

    def test_interprocedural_block_reports_at_the_locked_call_site(self):
        result = lint_sources({"repro/s.py": (
            "import threading\n"
            "class Store:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def _write(self, path):\n"
            "        open(path, 'w').close()\n"
            "    def save(self, path):\n"
            "        with self._lock:\n"
            "            self._write(path)\n")}, codes=["R12"])
        assert len(result.findings) == 1
        f = result.findings[0]
        assert "save" in f.message and "_write" in f.message
        assert "->" in f.message          # witness chain to the leaf

    def test_condition_wait_releases_its_own_lock(self):
        result = lint_sources({"repro/q.py": (
            "import threading\n"
            "class Queue:\n"
            "    def __init__(self):\n"
            "        self._cond = threading.Condition()\n"
            "        self._items = []\n"
            "    def get(self):\n"
            "        with self._cond:\n"
            "            while not self._items:\n"
            "                self._cond.wait(timeout=1.0)\n"
            "            return self._items.pop(0)\n")}, codes=["R12"])
        assert result.ok

    def test_event_wait_under_a_different_lock_flagged(self):
        result = lint_sources({"repro/q.py": (
            "import threading\n"
            "class Gate:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._ready = threading.Event()\n"
            "    def pass_through(self):\n"
            "        with self._lock:\n"
            "            self._ready.wait(timeout=5.0)\n")}, codes=["R12"])
        assert [f.code for f in result.findings] == ["R12"]

    def test_holds_no_locks_callee_under_lock_flagged(self):
        result = lint_sources({"repro/s.py": (
            "import threading\n"
            "from repro.core.concurrency import holds_no_locks\n"
            "@holds_no_locks(reason='opaque engine call')\n"
            "def heavy():\n"
            "    return 1\n"
            "class Driver:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def run(self):\n"
            "        with self._lock:\n"
            "            return heavy()\n")}, codes=["R12"])
        assert [f.code for f in result.findings] == ["R12"]
        assert "heavy" in result.findings[0].message


# ---------------------------------------------------------------------------
# R13 — deadlock freedom
# ---------------------------------------------------------------------------

class TestR13:
    INVERTED = (
        "import threading\n"
        "class Pair:\n"
        "    def __init__(self):\n"
        "        self._x = threading.Lock()\n"
        "        self._y = threading.Lock()\n"
        "    def xy(self):\n"
        "        with self._x:\n"
        "            with self._y:\n"
        "                return 1\n"
        "    def yx(self):\n"
        "        with self._y:\n"
        "            with self._x:\n"
        "                return 2\n")

    def test_mutation_inverted_order_is_exactly_one_cycle(self):
        result = lint_sources({"repro/p.py": self.INVERTED},
                              codes=["R13"])
        assert len(result.findings) == 1
        f = result.findings[0]
        assert "lock-order cycle" in f.message
        assert "xy" in f.message and "yx" in f.message   # both witnesses

    def test_consistent_order_is_clean(self):
        fixed = self.INVERTED.replace(
            "        with self._y:\n"
            "            with self._x:\n"
            "                return 2\n",
            "        with self._x:\n"
            "            with self._y:\n"
            "                return 2\n")
        result = lint_sources({"repro/p.py": fixed}, codes=["R13"])
        assert result.ok

    def test_interprocedural_cycle_found(self):
        result = lint_sources({"repro/p.py": (
            "import threading\n"
            "class Pair:\n"
            "    def __init__(self):\n"
            "        self._x = threading.Lock()\n"
            "        self._y = threading.Lock()\n"
            "    def _take_y(self):\n"
            "        with self._y:\n"
            "            return 1\n"
            "    def xy(self):\n"
            "        with self._x:\n"
            "            return self._take_y()\n"
            "    def _take_x(self):\n"
            "        with self._x:\n"
            "            return 2\n"
            "    def yx(self):\n"
            "        with self._y:\n"
            "            return self._take_x()\n")}, codes=["R13"])
        assert len(result.findings) == 1
        assert "lock-order cycle" in result.findings[0].message

    def test_reacquiring_a_plain_lock_flagged(self):
        result = lint_sources({"repro/p.py": (
            "import threading\n"
            "class Store:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def inner(self):\n"
            "        with self._lock:\n"
            "            return 1\n"
            "    def outer(self):\n"
            "        with self._lock:\n"
            "            return self.inner()\n")}, codes=["R13"])
        assert [f.code for f in result.findings] == ["R13"]
        assert "re-acquires" in result.findings[0].message

    def test_rlock_reacquisition_is_allowed(self):
        result = lint_sources({"repro/p.py": (
            "import threading\n"
            "class Store:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.RLock()\n"
            "    def inner(self):\n"
            "        with self._lock:\n"
            "            return 1\n"
            "    def outer(self):\n"
            "        with self._lock:\n"
            "            return self.inner()\n")}, codes=["R13"])
        assert result.ok


# ---------------------------------------------------------------------------
# R14 — thread hygiene
# ---------------------------------------------------------------------------

class TestR14:
    def test_mutation_non_daemon_unjoined_thread_fires_exactly_once(self):
        result = lint_sources({"repro/t.py": (
            "import threading\n"
            "def fire_and_forget(fn):\n"
            "    t = threading.Thread(target=fn)\n"
            "    t.start()\n")}, codes=CONCURRENCY)
        assert len(result.findings) == 1
        f = result.findings[0]
        assert f.code == "R14" and "non-daemon" in f.message

    def test_daemon_thread_is_clean(self):
        result = lint_sources({"repro/t.py": (
            "import threading\n"
            "def fire_and_forget(fn):\n"
            "    t = threading.Thread(target=fn, daemon=True)\n"
            "    t.start()\n")}, codes=["R14"])
        assert result.ok

    def test_attr_stored_thread_joined_elsewhere_is_clean(self):
        result = lint_sources({"repro/t.py": (
            "import threading\n"
            "class Worker:\n"
            "    def __init__(self):\n"
            "        self._thread = threading.Thread(target=self._run)\n"
            "        self._thread.start()\n"
            "    def _run(self):\n"
            "        pass\n"
            "    def shutdown(self):\n"
            "        self._thread.join(timeout=10)\n")}, codes=["R14"])
        assert result.ok

    def test_condition_wait_outside_a_loop_flagged(self):
        result = lint_sources({"repro/t.py": (
            "import threading\n"
            "class Queue:\n"
            "    def __init__(self):\n"
            "        self._cond = threading.Condition()\n"
            "    def wait_once(self):\n"
            "        with self._cond:\n"
            "            self._cond.wait(timeout=1.0)\n")}, codes=["R14"])
        assert [f.code for f in result.findings] == ["R14"]
        assert "predicate loop" in result.findings[0].message

    def test_event_wait_without_timeout_flagged(self):
        result = lint_sources({"repro/t.py": (
            "import threading\n"
            "def stall():\n"
            "    ev = threading.Event()\n"
            "    ev.wait()\n")}, codes=["R14"])
        assert [f.code for f in result.findings] == ["R14"]
        assert "timeout" in result.findings[0].message

    def test_event_wait_with_timeout_is_clean(self):
        result = lint_sources({"repro/t.py": (
            "import threading\n"
            "def stall():\n"
            "    ev = threading.Event()\n"
            "    return ev.wait(timeout=5.0)\n")}, codes=["R14"])
        assert result.ok

    def test_module_global_written_from_thread_target_flagged(self):
        result = lint_sources({"repro/t.py": (
            "import threading\n"
            "RESULTS = []\n"
            "def worker():\n"
            "    RESULTS.append(1)\n"
            "def start():\n"
            "    t = threading.Thread(target=worker, daemon=True)\n"
            "    t.start()\n")}, codes=["R14"])
        assert [f.code for f in result.findings] == ["R14"]
        assert "RESULTS" in result.findings[0].message

    def test_locked_global_write_from_thread_target_is_clean(self):
        result = lint_sources({"repro/t.py": (
            "import threading\n"
            "RESULTS = []\n"
            "_LOCK = threading.Lock()\n"
            "def worker():\n"
            "    with _LOCK:\n"
            "        RESULTS.append(1)\n"
            "def start():\n"
            "    t = threading.Thread(target=worker, daemon=True)\n"
            "    t.start()\n")}, codes=["R14"])
        assert result.ok


# ---------------------------------------------------------------------------
# The real tree and the group plumbing
# ---------------------------------------------------------------------------

class TestRealTree:
    def test_real_tree_is_concurrency_clean(self):
        result = lint_sources(_real_tree_sources(), codes=CONCURRENCY)
        assert result.ok, "\n".join(f.message for f in result.findings)

    def test_cli_gate_matches(self):
        from repro.lint.cli import EXIT_CLEAN, main
        src = REPO_ROOT / "src" / "repro"
        assert main(["--concurrency", "--strict", str(src)]) == EXIT_CLEAN


class TestOptinGroups:
    def test_default_rule_set_excludes_concurrency_rules(self):
        codes = [r.code for r in all_rules()]
        assert not set(CONCURRENCY) & set(codes)

    def test_concurrency_group_selects_r11_to_r14(self):
        codes = [r.code for r in all_rules(include_optin=["concurrency"])]
        assert set(CONCURRENCY) <= set(codes)
        assert "R6" not in codes and "R8" not in codes

    def test_groups_compose_with_effects(self):
        codes = [r.code for r in
                 all_rules(include_optin=["effects", "concurrency"])]
        for code in ("R8", "R9", "R10", "R11", "R12", "R13", "R14"):
            assert code in codes
