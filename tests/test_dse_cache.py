"""Disk-cache correctness: cold == warm, corruption detected, escape hatches.

The cold-compute result is the oracle: whatever the cache does — hit,
miss, reject, refresh — the sweep output must be byte-identical to a
cache-less run over the same spec.
"""

import json

import pytest

from repro.dse import (DiskCache, NullCache, SweepSpec, config_key,
                       dumps_canonical, frontier_doc, normalize_config,
                       run_sweep)
from repro.dse.cache import CACHE_SCHEMA, record_checksum

SPEC = SweepSpec(patterns=("1:8", "1:4"), bus_bits=(64, 128))


@pytest.fixture(scope="module")
def cold_result():
    """The cache-less oracle for SPEC."""
    return run_sweep(spec=SPEC, workers=1)


@pytest.fixture()
def warm_cache(tmp_path):
    """A cache pre-populated by one cold run over SPEC."""
    cache = DiskCache(tmp_path / "dse_cache")
    run_sweep(spec=SPEC, workers=1, cache=cache)
    return DiskCache(tmp_path / "dse_cache")


def entry_paths(cache):
    return sorted(cache.root.glob("*.json"))


class TestRoundTrip:
    def test_store_then_lookup_is_identity(self, tmp_path, cold_result):
        cache = DiskCache(tmp_path / "c")
        record = cold_result["records"][0]
        cache.store(record["key"], record)
        assert cache.stored == 1
        assert cache.lookup(record["key"]) == record
        assert cache.hits == 1 and cache.misses == 0

    def test_missing_key_is_a_miss(self, tmp_path):
        cache = DiskCache(tmp_path / "c")
        assert cache.lookup("0" * 64) is None
        assert cache.misses == 1 and cache.rejected == 0

    def test_no_tmp_files_left_behind(self, tmp_path, cold_result):
        cache = DiskCache(tmp_path / "c")
        for record in cold_result["records"]:
            cache.store(record["key"], record)
        leftovers = [p for p in cache.root.iterdir()
                     if not p.name.endswith(".json")]
        assert leftovers == []


class TestColdWarmIdentity:
    def test_warm_run_hits_every_config_and_matches_cold(
            self, warm_cache, cold_result):
        warm = run_sweep(spec=SPEC, workers=1, cache=warm_cache)
        assert warm_cache.hits == SPEC.size
        assert warm_cache.misses == 0
        assert warm["records"] == cold_result["records"]
        assert dumps_canonical(frontier_doc(warm)) == \
            dumps_canonical(frontier_doc(cold_result))

    def test_cold_cached_run_matches_cacheless_oracle(
            self, tmp_path, cold_result):
        cache = DiskCache(tmp_path / "c")
        result = run_sweep(spec=SPEC, workers=1, cache=cache)
        assert cache.hits == 0 and cache.misses == SPEC.size
        assert cache.stored == SPEC.size
        assert result["records"] == cold_result["records"]

    def test_refresh_recomputes_but_refills(self, warm_cache, cold_result):
        refreshing = DiskCache(warm_cache.root, refresh=True)
        result = run_sweep(spec=SPEC, workers=1, cache=refreshing)
        assert refreshing.hits == 0
        assert refreshing.misses == SPEC.size
        assert refreshing.stored == SPEC.size
        assert result["records"] == cold_result["records"]

    def test_null_cache_neither_reads_nor_writes(self, cold_result,
                                                 tmp_path):
        cache = NullCache()
        cache.root = tmp_path / "never-created"
        result = run_sweep(spec=SPEC, workers=1, cache=cache)
        assert result["records"] == cold_result["records"]
        assert cache.hits == 0 and cache.stored == 0
        assert not cache.root.exists()


class TestCorruptionRecovery:
    """Damaged entries are detected, skipped, and recomputed — never
    returned, never fatal."""

    def corrupt_one(self, cache, mutate):
        path = entry_paths(cache)[0]
        mutate(path)
        return path

    @pytest.mark.parametrize("mutate", [
        lambda p: p.write_text("{"),                       # truncated JSON
        lambda p: p.write_bytes(b"\x00\xff garbage"),      # binary garbage
        lambda p: p.write_text("[]"),                      # wrong shape
        lambda p: p.write_text(json.dumps({"schema": "other/1"})),
    ], ids=["truncated", "garbage", "non-dict", "wrong-schema"])
    def test_unreadable_entry_is_rejected_and_recomputed(
            self, warm_cache, cold_result, mutate):
        self.corrupt_one(warm_cache, mutate)
        result = run_sweep(spec=SPEC, workers=1, cache=warm_cache)
        assert warm_cache.rejected == 1
        assert warm_cache.hits == SPEC.size - 1
        assert warm_cache.misses == 1
        assert result["records"] == cold_result["records"]

    def test_tampered_payload_fails_the_checksum(
            self, warm_cache, cold_result):
        path = entry_paths(warm_cache)[0]
        entry = json.loads(path.read_text())
        entry["record"]["metrics"]["area_mm2"] = 0.001   # bent result
        path.write_text(json.dumps(entry))
        result = run_sweep(spec=SPEC, workers=1, cache=warm_cache)
        assert warm_cache.rejected == 1
        assert result["records"] == cold_result["records"]

    def test_entry_under_the_wrong_key_is_rejected(self, warm_cache):
        paths = entry_paths(warm_cache)
        # Copy entry 0's bytes over entry 1: internally consistent, but
        # filed under a key it does not belong to.
        paths[1].write_text(paths[0].read_text())
        wrong_key = paths[1].stem
        assert warm_cache.lookup(wrong_key) is None
        assert warm_cache.rejected == 1

    def test_recomputation_repairs_the_entry(self, warm_cache, cold_result):
        path = self.corrupt_one(warm_cache, lambda p: p.write_text("{"))
        run_sweep(spec=SPEC, workers=1, cache=warm_cache)
        # The rewritten entry validates again.
        fresh = DiskCache(warm_cache.root)
        assert fresh.lookup(path.stem) is not None
        assert fresh.hits == 1

    def test_checksum_is_over_canonical_record_json(self, cold_result):
        record = cold_result["records"][0]
        reordered = dict(reversed(list(record.items())))
        assert record_checksum(record) == record_checksum(reordered)


class TestEntrySchema:
    def test_entry_file_shape(self, warm_cache):
        path = entry_paths(warm_cache)[0]
        entry = json.loads(path.read_text())
        assert entry["schema"] == CACHE_SCHEMA
        assert entry["key"] == path.stem
        assert entry["checksum"] == record_checksum(entry["record"])

    def test_error_records_are_never_cached(self, tmp_path):
        cache = DiskCache(tmp_path / "c")
        bad = normalize_config({"pattern": "9:4", "bus_bits": 128,
                                "mram_rows": 1024, "weight_bits": 8,
                                "device": "nominal"})
        result = run_sweep(configs=[bad], workers=1, cache=cache)
        assert len(result["errors"]) == 1
        assert cache.stored == 0
        assert not entry_paths(cache)

    def test_key_is_the_config_content_hash(self, warm_cache, cold_result):
        record = cold_result["records"][0]
        assert record["key"] == config_key(record["config"])
        assert warm_cache.path_for(record["key"]).exists()
