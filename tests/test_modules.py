"""Unit tests for the module/layer system."""

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F
from repro.nn.modules import Parameter
from repro.nn.tensor import Tensor


@pytest.fixture(autouse=True)
def seed():
    nn.set_seed(0)


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestParameter:
    def test_freeze_unfreeze(self):
        p = Parameter(np.ones(3))
        assert p.trainable and p.requires_grad
        p.freeze()
        assert not p.trainable and not p.requires_grad
        p.unfreeze()
        assert p.trainable and p.requires_grad

    def test_freeze_clears_grad(self):
        p = Parameter(np.ones(3))
        p.grad = np.ones(3)
        p.freeze()
        assert p.grad is None


class TestModuleTraversal:
    def test_named_parameters_nested(self):
        model = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
        names = [n for n, _ in model.named_parameters()]
        assert "layer0.weight" in names
        assert "layer2.bias" in names
        assert len(model.parameters()) == 4

    def test_num_parameters(self):
        lin = nn.Linear(4, 8)
        assert lin.num_parameters() == 4 * 8 + 8
        lin.weight.freeze()
        assert lin.num_parameters(trainable_only=True) == 8

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Linear(2, 2), nn.Dropout(0.5))
        model.eval()
        assert not model.layers[1].training
        model.train()
        assert model.layers[1].training

    def test_zero_grad(self):
        lin = nn.Linear(3, 3)
        lin.weight.grad = np.ones((3, 3))
        lin.zero_grad()
        assert lin.weight.grad is None

    def test_state_dict_roundtrip(self):
        a = nn.Sequential(nn.Linear(3, 4), nn.ReLU(), nn.Linear(4, 2))
        b = nn.Sequential(nn.Linear(3, 4), nn.ReLU(), nn.Linear(4, 2))
        b.load_state_dict(a.state_dict())
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_state_dict_shape_check(self):
        a = nn.Linear(3, 4)
        with pytest.raises(ValueError):
            a.load_state_dict({"weight": np.zeros((2, 2))})

    def test_save_load(self, tmp_path):
        a = nn.Linear(3, 4)
        path = str(tmp_path / "model.pkl")
        a.save(path)
        b = nn.Linear(3, 4)
        b.load(path)
        np.testing.assert_array_equal(a.weight.data, b.weight.data)


class TestLayers:
    def test_linear_forward(self, rng):
        lin = nn.Linear(5, 3)
        x = rng.standard_normal((2, 5))
        out = lin(Tensor(x))
        np.testing.assert_allclose(
            out.data, x @ lin.weight.data.T + lin.bias.data, rtol=1e-6)

    def test_linear_no_bias(self):
        lin = nn.Linear(5, 3, bias=False)
        assert lin.bias is None
        assert len(lin.parameters()) == 1

    def test_conv_weight_matrix_view(self):
        conv = nn.Conv2d(3, 8, 3)
        assert conv.weight_matrix().shape == (8, 27)

    def test_conv_forward_shape(self, rng):
        conv = nn.Conv2d(3, 6, 3, stride=2, padding=1)
        out = conv(Tensor(rng.standard_normal((2, 3, 8, 8))))
        assert out.shape == (2, 6, 4, 4)

    def test_batchnorm_normalizes(self, rng):
        bn = nn.BatchNorm2d(4)
        x = Tensor(rng.standard_normal((8, 4, 5, 5)) * 3 + 2)
        out = bn(x)
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)),
                                   np.zeros(4), atol=1e-5)
        np.testing.assert_allclose(out.data.std(axis=(0, 2, 3)),
                                   np.ones(4), atol=1e-2)

    def test_batchnorm_eval_uses_running_stats(self, rng):
        bn = nn.BatchNorm2d(2)
        x = rng.standard_normal((16, 2, 4, 4)) + 5.0
        for _ in range(50):
            bn(Tensor(x))
        bn.eval()
        out = bn(Tensor(x))
        # running stats converged to batch stats -> output ~normalized
        assert abs(out.data.mean()) < 0.3

    def test_batchnorm_rejects_2d(self):
        bn = nn.BatchNorm2d(2)
        with pytest.raises(ValueError):
            bn(Tensor(np.zeros((3, 2))))

    def test_dropout_eval_identity(self, rng):
        drop = nn.Dropout(0.5)
        drop.eval()
        x = Tensor(rng.standard_normal((4, 4)))
        np.testing.assert_array_equal(drop(x).data, x.data)

    def test_dropout_scales(self, rng):
        drop = nn.Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((100, 100)))
        out = drop(x)
        assert out.data.mean() == pytest.approx(1.0, abs=0.05)

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.5)

    def test_sequential_indexing(self):
        model = nn.Sequential(nn.Linear(2, 2), nn.ReLU())
        assert isinstance(model[1], nn.ReLU)
        assert len(model) == 2

    def test_flatten(self, rng):
        flat = nn.Flatten()
        out = flat(Tensor(rng.standard_normal((2, 3, 4, 4))))
        assert out.shape == (2, 48)

    def test_pool_modules(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 8, 8)))
        assert nn.MaxPool2d(2)(x).shape == (1, 2, 4, 4)
        assert nn.AvgPool2d(2)(x).shape == (1, 2, 4, 4)
        assert nn.GlobalAvgPool2d()(x).shape == (1, 2)


class TestTrainingIntegration:
    def test_small_classifier_converges(self, rng):
        """End-to-end: a small MLP reaches high accuracy on separable data."""
        X = rng.standard_normal((150, 8))
        W = rng.standard_normal((8, 3))
        y = (X @ W).argmax(axis=1)
        model = nn.Sequential(nn.Linear(8, 16), nn.ReLU(), nn.Linear(16, 3))
        opt = nn.Adam(model.parameters(), lr=0.02)
        for _ in range(80):
            loss = F.cross_entropy(model(Tensor(X)), y)
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert F.accuracy(model(Tensor(X)), y) > 0.95

    def test_frozen_params_do_not_move(self, rng):
        model = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
        model.layers[0].weight.freeze()
        frozen_before = model.layers[0].weight.data.copy()
        opt = nn.SGD(model.parameters(), lr=0.5)
        X = rng.standard_normal((10, 4))
        y = rng.integers(0, 2, 10)
        loss = F.cross_entropy(model(Tensor(X)), y)
        opt.zero_grad()
        loss.backward()
        opt.step()
        np.testing.assert_array_equal(model.layers[0].weight.data, frozen_before)
