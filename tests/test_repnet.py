"""Unit + integration tests for the Rep-Net continual-learning stack."""

import numpy as np
import pytest

from repro.datasets import TaskSpec, generate_task
from repro.nn.tensor import Tensor
from repro.repnet import (Backbone, BackboneClassifier, BasicBlock,
                          ContinualLearner, RepNetModel, TrainConfig,
                          build_repnet_model, evaluate, pretrain_backbone,
                          quantize_backbone, sparsify_backbone)
from repro.sparsity import NMPattern, verify_nm


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def tiny_model(seed=0):
    return build_repnet_model(widths=(8, 8, 16), strides=(1, 2, 1),
                              repnet_width=4, seed=seed)


def tiny_task(num_classes=3, per_class=6, seed=0):
    spec = TaskSpec("tiny", num_classes=num_classes, train_per_class=per_class,
                    test_per_class=4, image_size=8, class_seed=seed)
    return generate_task(spec, seed=seed)


class TestBackbone:
    def test_block_shapes(self, rng):
        block = BasicBlock(8, 16, stride=2, rng=rng)
        out = block(Tensor(rng.standard_normal((2, 8, 8, 8)).astype(np.float32)))
        assert out.shape == (2, 16, 4, 4)

    def test_identity_skip_when_same_dims(self, rng):
        block = BasicBlock(8, 8, stride=1, rng=rng)
        assert block.shortcut is None

    def test_taps_count_and_shapes(self, rng):
        bb = Backbone(widths=(8, 16), strides=(1, 2), rng=rng)
        x = Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32))
        feats, taps = bb.forward_with_taps(x)
        assert len(taps) == 2
        assert taps[0].shape == (2, 8, 8, 8)
        assert taps[1].shape == (2, 16, 4, 4)
        assert feats.shape == (2, 16)

    def test_width_stride_mismatch(self):
        with pytest.raises(ValueError):
            Backbone(widths=(8, 16), strides=(1,))


class TestRepNetModel:
    def test_forward_shape(self, rng):
        model = tiny_model()
        model.add_task("t", 5)
        model.set_active_task("t")
        out = model(Tensor(rng.standard_normal((2, 3, 8, 8)).astype(np.float32)))
        assert out.shape == (2, 5)

    def test_multiple_task_heads(self, rng):
        model = tiny_model()
        model.add_task("a", 3)
        model.add_task("b", 7)
        x = Tensor(rng.standard_normal((1, 3, 8, 8)).astype(np.float32))
        assert model(x, "a").shape == (1, 3)
        assert model(x, "b").shape == (1, 7)

    def test_unknown_task(self):
        model = tiny_model()
        with pytest.raises(KeyError):
            model.set_active_task("nope")

    def test_no_active_task(self, rng):
        model = tiny_model()
        with pytest.raises(RuntimeError):
            model(Tensor(rng.standard_normal((1, 3, 8, 8)).astype(np.float32)))

    def test_freeze_backbone(self):
        model = tiny_model()
        model.freeze_backbone()
        assert all(not p.trainable for p in model.backbone.parameters())
        assert not model.backbone.training  # BN pinned to eval

    def test_learnable_fraction_small(self):
        model = build_repnet_model(seed=0)
        frac = model.learnable_fraction()
        assert 0.0 < frac < 0.15  # paper: ~5% of total weights

    def test_learnable_params_exclude_backbone(self):
        model = tiny_model()
        model.add_task("t", 3)
        model.set_active_task("t")
        model.freeze_backbone()
        backbone_ids = {id(p) for p in model.backbone.parameters()}
        for p in model.learnable_parameters():
            assert id(p) not in backbone_ids

    def test_train_keeps_frozen_backbone_in_eval(self):
        model = tiny_model()
        model.freeze_backbone()
        model.train()
        assert not model.backbone.training


class TestTrainingFlows:
    def test_pretrain_improves_over_chance(self):
        train, test = tiny_task(num_classes=3, per_class=20)
        model = tiny_model()
        cfg = TrainConfig(epochs=6, batch_size=16, lr=3e-3, seed=0)
        _, acc = pretrain_backbone(model.backbone, train, test, 3, cfg)
        assert acc > 1.0 / 3 + 0.1

    def test_sparsify_backbone_enforces_pattern(self):
        model = tiny_model()
        pattern = NMPattern(1, 4)
        sparsify_backbone(model.backbone, pattern)
        for name, mod in model.backbone.named_modules():
            if hasattr(mod, "weight") and mod.weight is not None \
                    and mod.weight.ndim >= 2:
                assert verify_nm(mod.weight.data, pattern), name

    def test_quantize_backbone_runs(self, rng):
        model = tiny_model()
        quantize_backbone(model.backbone)
        out = model.backbone(
            Tensor(rng.standard_normal((1, 3, 8, 8)).astype(np.float32)))
        assert np.isfinite(out.data).all()

    def test_continual_dense_task(self):
        train, test = tiny_task(num_classes=3, per_class=12, seed=9)
        model = tiny_model()
        learner = ContinualLearner(model)
        cfg = TrainConfig(epochs=3, batch_size=12, lr=3e-3)
        result = learner.learn_task("t", train, test, cfg)
        assert 0.0 <= result.accuracy <= 1.0
        assert result.sparsity == {}
        assert len(result.losses) == 3
        # training reduced the loss
        assert result.losses[-1] < result.losses[0]

    def test_continual_sparse_task_keeps_pattern(self):
        train, test = tiny_task(num_classes=3, per_class=10, seed=4)
        model = tiny_model()
        pattern = NMPattern(1, 4)
        learner = ContinualLearner(model, pattern=pattern)
        cfg = TrainConfig(epochs=2, batch_size=10, lr=3e-3)
        result = learner.learn_task("t", train, test, cfg)
        for name, ratio in result.sparsity.items():
            assert ratio == pytest.approx(pattern.sparsity, abs=0.1), name
        # backbone untouched (dense, frozen)
        assert all(not p.trainable for p in model.backbone.parameters())

    def test_continual_int8(self):
        train, test = tiny_task(num_classes=3, per_class=8, seed=2)
        model = tiny_model()
        learner = ContinualLearner(model, pattern=NMPattern(2, 8), int8=True)
        cfg = TrainConfig(epochs=1, batch_size=8, lr=3e-3)
        result = learner.learn_task("t", train, test, cfg)
        assert 0.0 <= result.accuracy <= 1.0
        # INT8 PTQ must preserve the N:M support (zeros stay zero); layers
        # with reduction dim < m are exempt from pruning by design.
        from repro.sparsity import prunable_parameters
        for name, p in prunable_parameters(model, min_reduction_dim=8):
            if p.trainable:
                assert verify_nm(p.data, NMPattern(2, 8)), name

    def test_backbone_frozen_through_task_learning(self):
        train, test = tiny_task(num_classes=3, per_class=8)
        model = tiny_model()
        before = {n: p.data.copy()
                  for n, p in model.backbone.named_parameters()}
        learner = ContinualLearner(model)
        learner.learn_task("t", train, test,
                           TrainConfig(epochs=1, batch_size=8))
        for n, p in model.backbone.named_parameters():
            np.testing.assert_array_equal(p.data, before[n]), n

    def test_evaluate_range(self):
        _, test = tiny_task()
        model = tiny_model()
        model.add_task("t", 3)
        model.set_active_task("t")
        acc = evaluate(model, test, task="t")
        assert 0.0 <= acc <= 1.0
