"""Integration tests for the top-level HybridAccelerator functional model."""

import numpy as np
import pytest

from repro.core.accelerator import HybridAccelerator
from repro.quant import QuantParams
from repro.sparsity import NMPattern

from .test_csc import sparse_int_matrix


@pytest.fixture
def rng():
    return np.random.default_rng(66)


@pytest.fixture
def acc():
    return HybridAccelerator(NMPattern(2, 8))


class TestLoading:
    def test_frozen_goes_to_mram(self, acc, rng):
        w = sparse_int_matrix(rng, (64, 8), acc.pattern)
        mapped = acc.load_gemm("bb", w, learnable=False)
        assert mapped.kind == "mram"

    def test_learnable_goes_to_sram(self, acc, rng):
        w = sparse_int_matrix(rng, (64, 8), acc.pattern)
        mapped = acc.load_gemm("rep", w, learnable=True)
        assert mapped.kind == "sram"

    def test_duplicate_name_rejected(self, acc, rng):
        w = sparse_int_matrix(rng, (16, 4), acc.pattern)
        acc.load_gemm("x", w, learnable=True)
        with pytest.raises(ValueError):
            acc.load_gemm("x", w, learnable=True)

    def test_float_rejected_on_int_path(self, acc, rng):
        with pytest.raises(TypeError):
            acc.load_gemm("f", rng.standard_normal((16, 4)), learnable=True)

    def test_pattern_violation_rejected(self, acc, rng):
        dense = rng.integers(1, 5, size=(16, 4))
        with pytest.raises(ValueError):
            acc.load_gemm("d", dense, learnable=True)

    def test_auto_prune(self, acc, rng):
        dense = rng.integers(-50, 50, size=(32, 4))
        acc.load_gemm("d", dense, learnable=True, auto_prune=True)
        from repro.sparsity import verify_nm
        assert verify_nm(acc.dense_weight("d"), acc.pattern, axis=0)

    def test_large_matrix_tiles_across_pes(self, acc, rng):
        w = sparse_int_matrix(rng, (512, 64), acc.pattern)  # >1 SRAM PE
        mapped = acc.load_gemm("big", w, learnable=True)
        assert mapped.pe_count > 1
        np.testing.assert_array_equal(acc.dense_weight("big"), w)


class TestExecution:
    def test_gemm_exact_small(self, acc, rng):
        w = sparse_int_matrix(rng, (64, 12), acc.pattern)
        acc.load_gemm("l", w, learnable=True)
        x = rng.integers(-128, 128, size=(5, 64))
        np.testing.assert_array_equal(acc.gemm("l", x), x @ w)

    def test_gemm_exact_tiled(self, acc, rng):
        """Multi-tile GEMMs recombine row/column partials exactly."""
        w = sparse_int_matrix(rng, (300, 40), acc.pattern)
        acc.load_gemm("l", w, learnable=False)
        x = rng.integers(-64, 64, size=(3, 300))
        np.testing.assert_array_equal(acc.gemm("l", x), x @ w)

    def test_unknown_gemm(self, acc, rng):
        with pytest.raises(KeyError):
            acc.gemm("nope", rng.integers(0, 2, size=(1, 8)))

    def test_dim_mismatch(self, acc, rng):
        w = sparse_int_matrix(rng, (32, 4), acc.pattern)
        acc.load_gemm("l", w, learnable=True)
        with pytest.raises(ValueError):
            acc.gemm("l", rng.integers(0, 2, size=(1, 16)))

    def test_float_linear_tracks_reference(self, acc, rng):
        w = rng.standard_normal((64, 8)) * 0.2
        mapped, params = acc.load_float_gemm("fc", w, learnable=True)
        x = rng.standard_normal((4, 64))
        y = acc.linear("fc", x)
        ref = x @ (acc.dense_weight("fc") * params.scale)
        # INT8 activation quantization error only
        assert np.abs(y - ref).max() < 0.1 * np.abs(ref).max() + 0.1

    def test_linear_with_pinned_input_params(self, acc, rng):
        w = rng.standard_normal((32, 4))
        acc.load_float_gemm("fc", w, learnable=True)
        x = rng.standard_normal((2, 32))
        pinned = QuantParams.from_range(-4.0, 4.0)
        y = acc.linear("fc", x, input_params=pinned)
        assert np.isfinite(y).all()

    def test_linear_requires_float_load(self, acc, rng):
        w = sparse_int_matrix(rng, (16, 2), acc.pattern)
        acc.load_gemm("raw", w, learnable=True)
        with pytest.raises(RuntimeError):
            acc.linear("raw", rng.standard_normal((1, 16)))


class TestTraining:
    def test_update_learnable(self, acc, rng):
        w1 = sparse_int_matrix(rng, (64, 8), acc.pattern)
        w2 = sparse_int_matrix(rng, (64, 8), acc.pattern, lo=-60, hi=61)
        acc.load_gemm("rep", w1, learnable=True)
        acc.update_gemm("rep", w2)
        x = rng.integers(-8, 8, size=(2, 64))
        np.testing.assert_array_equal(acc.gemm("rep", x), x @ w2)

    def test_update_frozen_forbidden(self, acc, rng):
        """The hybrid design never writes the MRAM backbone during learning."""
        w = sparse_int_matrix(rng, (64, 8), acc.pattern)
        acc.load_gemm("bb", w, learnable=False)
        with pytest.raises(RuntimeError):
            acc.update_gemm("bb", w)

    def test_update_must_keep_pattern(self, acc, rng):
        w = sparse_int_matrix(rng, (16, 4), acc.pattern)
        acc.load_gemm("rep", w, learnable=True)
        with pytest.raises(ValueError):
            acc.update_gemm("rep", np.ones((16, 4), dtype=np.int64))

    def test_backprop_through_learnable(self, acc, rng):
        w = sparse_int_matrix(rng, (64, 8), acc.pattern)
        acc.load_gemm("rep", w, learnable=True)
        delta = rng.integers(-20, 20, size=(4, 8))
        np.testing.assert_array_equal(acc.propagate_error("rep", delta),
                                      delta @ w.T)
        acts = rng.integers(-10, 10, size=(4, 64))
        np.testing.assert_array_equal(
            acc.weight_gradient("rep", acts, delta), acts.T @ delta)

    def test_backprop_through_frozen_forbidden(self, acc, rng):
        w = sparse_int_matrix(rng, (32, 4), acc.pattern)
        acc.load_gemm("bb", w, learnable=False)
        with pytest.raises(RuntimeError):
            acc.propagate_error("bb", rng.integers(0, 2, size=(1, 4)))


class TestAccounting:
    def test_stats_by_kind(self, acc, rng):
        wb = sparse_int_matrix(rng, (64, 8), acc.pattern)
        wr = sparse_int_matrix(rng, (32, 4), acc.pattern)
        acc.load_gemm("bb", wb, learnable=False)
        acc.load_gemm("rep", wr, learnable=True)
        acc.gemm("bb", rng.integers(-8, 8, size=(2, 64)))
        acc.gemm("rep", rng.integers(-8, 8, size=(2, 32)))
        stats = acc.stats()
        assert stats["mram"].macs > 0
        assert stats["sram"].macs > 0

    def test_energy_report_positive(self, acc, rng):
        w = sparse_int_matrix(rng, (64, 8), acc.pattern)
        acc.load_gemm("l", w, learnable=True)
        acc.gemm("l", rng.integers(-8, 8, size=(2, 64)))
        report = acc.energy_report()
        assert report["sram"].total_pj > 0
        assert report["sram"].write_pj > 0  # the load itself

    def test_mram_writes_cost_more_per_bit(self, acc, rng):
        """Loading identical matrices: MRAM write energy >> SRAM write energy."""
        w = sparse_int_matrix(rng, (64, 8), acc.pattern)
        acc.load_gemm("s", w, learnable=True)
        acc.load_gemm("m", w, learnable=False)
        report = acc.energy_report()
        assert report["mram"].write_pj > 5 * report["sram"].write_pj

    def test_pe_counts(self, acc, rng):
        w = sparse_int_matrix(rng, (64, 8), acc.pattern)
        acc.load_gemm("a", w, learnable=True)
        acc.load_gemm("b", w, learnable=False)
        counts = acc.pe_counts()
        assert counts["sram"] >= 1 and counts["mram"] >= 1
