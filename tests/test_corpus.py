"""Property suite for the deterministic pattern corpus (``repro.corpus``).

Three layers of guarantees, in order of severity:

1. **Structure**: every generated matrix obeys its class contract —
   exact N:M compliance per aligned group, exact magnitude-pruned
   counts, aligned block support, int8-range non-zero values.
2. **Determinism**: matrices and manifests are a pure function of the
   pinned seed and the item name — stable across calls, enumeration
   order, and serial-vs-sharded generation.
3. **The committed pin**: the repo's checked-in manifest regenerates
   byte-for-byte, and the CLI's exit codes distinguish clean (0) from
   drifted (2).
"""

import json

import numpy as np
import pytest

from repro.corpus import (BLOCK_DENSITY, CORPUS_SEED, RAND_DENSITY, SHAPES,
                          build_manifest, check_manifest, content_hash,
                          corpus_items, generate, generate_item, item_seed,
                          load_manifest, pattern_classes, render_manifest,
                          render_stats_table)
from repro.corpus.__main__ import main as corpus_main
from repro.corpus.manifest import MANIFEST_PATH, MANIFEST_SCHEMA
from repro.sparsity import NMPattern, verify_nm

NM_CLASSES = {"nm_1_4": NMPattern(1, 4), "nm_2_4": NMPattern(2, 4),
              "nm_1_8": NMPattern(1, 8), "nm_2_16": NMPattern(2, 16)}
MAG_CLASSES = {"mag_50": 0.50, "mag_25": 0.25, "mag_10": 0.10}
BLOCK_CLASSES = {"block_4x4": 4, "block_8x8": 8}

ITEMS = {item.name: item for item in corpus_items()}


def items_of(pattern_class):
    return [i for i in corpus_items() if i.pattern_class == pattern_class]


class TestEnumeration:
    def test_full_cross_product(self):
        items = corpus_items()
        assert len(items) == len(pattern_classes()) * len(SHAPES)
        assert len({i.name for i in items}) == len(items)
        for item in items:
            assert item.name == \
                f"{item.pattern_class}_{item.shape[0]}x{item.shape[1]}"

    def test_shapes_cover_paper_geometries(self):
        assert (128, 8) in SHAPES and (256, 32) in SHAPES

    def test_generate_item_by_name_and_unknown(self):
        item = items_of("mag_50")[0]
        np.testing.assert_array_equal(generate_item(item.name),
                                      generate(item))
        with pytest.raises(KeyError, match="nope"):
            generate_item("nope")


class TestValueContract:
    """All classes: int64 storage, |w| in [1, 127] on the support."""

    @pytest.mark.parametrize("name", sorted(ITEMS))
    def test_values_are_nonzero_int8_range(self, name):
        w = generate(ITEMS[name])
        assert w.dtype == np.int64
        assert w.shape == ITEMS[name].shape
        support = w[w != 0]
        assert support.size > 0
        assert np.abs(support).min() >= 1
        assert np.abs(support).max() <= 127


class TestClassStructure:
    @pytest.mark.parametrize("cls", sorted(NM_CLASSES))
    def test_nm_exact_compliance(self, cls):
        pattern = NM_CLASSES[cls]
        for item in items_of(cls):
            w = generate(item)
            assert verify_nm(w != 0, pattern, axis=0)
            # exactly n survivors per aligned group, in every column
            groups = (w != 0).reshape(-1, pattern.m, w.shape[1])
            np.testing.assert_array_equal(groups.sum(axis=1), pattern.n)

    @pytest.mark.parametrize("cls", sorted(MAG_CLASSES))
    def test_magnitude_exact_counts(self, cls):
        density = MAG_CLASSES[cls]
        for item in items_of(cls):
            w = generate(item)
            assert np.count_nonzero(w) == int(round(density * w.size))

    @pytest.mark.parametrize("cls", sorted(BLOCK_CLASSES))
    def test_block_support_is_tile_aligned(self, cls):
        blk = BLOCK_CLASSES[cls]
        for item in items_of(cls):
            w = generate(item)
            rows, cols = item.shape
            tiles = (w != 0).reshape(rows // blk, blk, cols // blk, blk)
            occupancy = tiles.transpose(0, 2, 1, 3).reshape(
                -1, blk * blk).sum(axis=1)
            # every tile is either fully kept or fully dropped
            assert set(np.unique(occupancy)) <= {0, blk * blk}
            kept = int((occupancy == blk * blk).sum())
            assert kept == int(round(BLOCK_DENSITY * occupancy.size))

    def test_uniform_random_exact_count(self):
        for item in items_of("rand_30"):
            w = generate(item)
            size = item.shape[0] * item.shape[1]
            assert np.count_nonzero(w) == int(round(RAND_DENSITY * size))


class TestDeterminism:
    def test_item_seed_depends_on_name_only(self):
        assert item_seed("mag_50_128x8").entropy == \
            item_seed("mag_50_128x8").entropy
        assert item_seed("mag_50_128x8").entropy != \
            item_seed("mag_25_128x8").entropy
        assert CORPUS_SEED in item_seed("mag_50_128x8").entropy

    def test_regeneration_is_bit_identical(self):
        item = items_of("rand_30")[1]
        np.testing.assert_array_equal(generate(item), generate(item))

    def test_content_hash_sensitivity(self):
        w = generate(items_of("mag_50")[0])
        assert content_hash(w) == content_hash(w.copy())
        tampered = w.copy()
        tampered[0, 0] += 1
        assert content_hash(tampered) != content_hash(w)
        # dtype is part of the hash even when the bytes agree
        assert content_hash(w.astype(np.uint64)) != content_hash(w)

    def test_manifest_stable_across_in_process_builds(self):
        assert render_manifest(build_manifest()) == \
            render_manifest(build_manifest())

    @pytest.mark.slow
    def test_manifest_stable_serial_vs_sharded(self):
        serial = render_manifest(build_manifest(workers=1))
        sharded = render_manifest(build_manifest(workers=2))
        assert serial == sharded


class TestCommittedManifest:
    """The repo pin: benchmarks/corpus/CORPUS_MANIFEST.json."""

    def test_committed_manifest_regenerates_exactly(self):
        assert check_manifest(MANIFEST_PATH) == []

    def test_committed_bytes_are_canonical(self):
        with open(MANIFEST_PATH) as f:
            committed = f.read()
        assert committed == render_manifest(load_manifest(MANIFEST_PATH))

    def test_manifest_shape(self):
        doc = load_manifest(MANIFEST_PATH)
        assert doc["schema"] == MANIFEST_SCHEMA
        assert doc["seed"] == CORPUS_SEED
        names = [e["name"] for e in doc["items"]]
        assert names == [i.name for i in corpus_items()]
        for entry in doc["items"]:
            assert set(entry) == {"name", "pattern_class", "shape", "nnz",
                                  "density", "col_nnz_min", "col_nnz_max",
                                  "sha256"}

    def test_check_reports_tampered_entries(self, tmp_path):
        doc = load_manifest(MANIFEST_PATH)
        doc["items"][3]["sha256"] = "0" * 64
        bad = tmp_path / "tampered.json"
        bad.write_text(render_manifest(doc))
        problems = check_manifest(str(bad))
        assert len(problems) == 1
        name = doc["items"][3]["name"]
        assert problems[0] == f"{name}: drifted (sha256)"

    def test_check_reports_missing_and_extra_entries(self, tmp_path):
        doc = load_manifest(MANIFEST_PATH)
        dropped = doc["items"].pop(0)["name"]
        doc["items"].append(dict(doc["items"][0], name="zzz_bogus_1x1"))
        bad = tmp_path / "edited.json"
        bad.write_text(render_manifest(doc))
        problems = check_manifest(str(bad))
        assert f"{dropped}: missing from manifest" in problems
        assert "zzz_bogus_1x1: in manifest but not in corpus" in problems


class TestCli:
    def test_check_clean_exits_zero(self, capsys):
        assert corpus_main(["--check", MANIFEST_PATH]) == 0
        assert "byte-for-byte" in capsys.readouterr().out

    def test_check_drift_exits_two(self, tmp_path, capsys):
        doc = load_manifest(MANIFEST_PATH)
        doc["items"][0]["nnz"] += 1
        bad = tmp_path / "drifted.json"
        bad.write_text(render_manifest(doc))
        assert corpus_main(["--check", str(bad)]) == 2
        assert "drifted" in capsys.readouterr().err

    def test_out_writes_committed_bytes(self, tmp_path):
        out = tmp_path / "fresh.json"
        assert corpus_main(["--out", str(out)]) == 0
        with open(MANIFEST_PATH) as f:
            assert out.read_text() == f.read()

    def test_stats_file_and_stdout_table(self, tmp_path, capsys):
        stats = tmp_path / "stats.txt"
        assert corpus_main(["--stats", str(stats)]) == 0
        table = stats.read_text()
        assert "mag_50_128x8" in table
        capsys.readouterr()
        assert corpus_main([]) == 0
        assert "mag_50_128x8" in capsys.readouterr().out

    def test_stats_table_matches_manifest(self):
        table = render_stats_table(load_manifest(MANIFEST_PATH))
        for item in corpus_items():
            assert item.name in table
