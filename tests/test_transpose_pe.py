"""Unit tests for the transposed SRAM PE buffers and backprop engine."""

import numpy as np
import pytest

from repro.core.sram_pe import SRAMPEConfig
from repro.core.transpose_pe import BackpropEngine, TransposedSRAMPE
from repro.sparsity import NMPattern

from .test_csc import sparse_int_matrix


@pytest.fixture
def rng():
    return np.random.default_rng(55)


class TestTransposedPE:
    def test_stores_transpose(self, rng):
        pattern = NMPattern(1, 4)
        w = sparse_int_matrix(rng, (32, 8), pattern)
        buf = TransposedSRAMPE()
        buf.load_transposed(w, pattern)
        np.testing.assert_array_equal(buf.dense_weight(), w.T)

    def test_error_propagation_matmul(self, rng):
        pattern = NMPattern(2, 8)
        w = sparse_int_matrix(rng, (64, 8), pattern)
        delta = rng.integers(-100, 100, size=(4, 8))
        buf = TransposedSRAMPE()
        buf.load_transposed(w, pattern)
        np.testing.assert_array_equal(buf.matmul(delta), delta @ w.T)

    def test_write_traffic_charged(self, rng):
        pattern = NMPattern(1, 4)
        w = sparse_int_matrix(rng, (32, 8), pattern)
        buf = TransposedSRAMPE()
        buf.load_transposed(w, pattern)
        nnz = int((w != 0).sum())
        assert buf.stats.weight_bits_written == nnz * 8

    def test_transpose_preserves_nnz(self, rng):
        """Transposition never changes storage volume (same non-zeros)."""
        pattern = NMPattern(1, 8)
        w = sparse_int_matrix(rng, (64, 8), pattern)
        buf = TransposedSRAMPE()
        buf.load_transposed(w, pattern)
        assert buf.pe.csc.nnz == int((w != 0).sum())


class TestBackpropEngine:
    def test_error_propagation(self, rng):
        pattern = NMPattern(1, 4)
        w = sparse_int_matrix(rng, (48, 12), pattern)
        delta = rng.integers(-64, 64, size=(6, 12))
        eng = BackpropEngine()
        np.testing.assert_array_equal(
            eng.propagate_error(w, delta, pattern), delta @ w.T)

    def test_weight_gradient(self, rng):
        pattern = NMPattern(1, 4)
        acts = rng.integers(-32, 32, size=(6, 48))
        delta = rng.integers(-32, 32, size=(6, 12))
        eng = BackpropEngine()
        np.testing.assert_array_equal(
            eng.weight_gradient(acts, delta, pattern), acts.T @ delta)

    def test_batch_mismatch(self, rng):
        eng = BackpropEngine()
        with pytest.raises(ValueError):
            eng.weight_gradient(rng.integers(0, 2, size=(4, 8)),
                                rng.integers(0, 2, size=(5, 3)),
                                NMPattern(1, 4))

    def test_weight_update_shift_lr(self):
        eng = BackpropEngine()
        w = np.array([[256, -256]], dtype=np.int64)
        g = np.array([[256, 512]], dtype=np.int64)
        new_w, bits = eng.weight_update(w, g, lr_shift=8)
        np.testing.assert_array_equal(new_w, [[255, -258]])
        assert bits == 2 * 8  # both weights changed

    def test_weight_update_counts_changed_only(self):
        eng = BackpropEngine()
        w = np.array([[100, 200]], dtype=np.int64)
        g = np.array([[0, 256]], dtype=np.int64)  # first weight unchanged
        _, bits = eng.weight_update(w, g, lr_shift=8)
        assert bits == 8

    def test_weight_update_shape_check(self):
        eng = BackpropEngine()
        with pytest.raises(ValueError):
            eng.weight_update(np.zeros((2, 2), dtype=np.int64),
                              np.zeros((2, 3), dtype=np.int64))

    def test_full_layer_backward_consistency(self, rng):
        """Integer backward pass: numbers match the numpy reference flow."""
        pattern = NMPattern(2, 8)
        w = sparse_int_matrix(rng, (64, 16), pattern, lo=-20, hi=21)
        x = rng.integers(-10, 10, size=(8, 64))
        delta_out = rng.integers(-10, 10, size=(8, 16))
        eng = BackpropEngine()

        delta_in = eng.propagate_error(w, delta_out, pattern)
        grad = eng.weight_gradient(x, delta_out, pattern)
        new_w, _ = eng.weight_update(w, grad, lr_shift=6)

        np.testing.assert_array_equal(delta_in, delta_out @ w.T)
        np.testing.assert_array_equal(grad, x.T @ delta_out)
        np.testing.assert_array_equal(new_w, w - (grad >> 6))

    def test_stats_accumulate_across_calls(self, rng):
        pattern = NMPattern(1, 4)
        w = sparse_int_matrix(rng, (32, 8), pattern)
        eng = BackpropEngine()
        eng.propagate_error(w, rng.integers(-8, 8, size=(2, 8)), pattern)
        first = eng.stats.cycles
        eng.propagate_error(w, rng.integers(-8, 8, size=(2, 8)), pattern)
        assert eng.stats.cycles > first
