"""Tests for the Table 1 harness internals at tiny scale."""

import numpy as np
import pytest

from repro.harness.table1 import (TABLE1_ROWS, Table1Config, _backbone_accuracy,
                                  _pretrain, _recovered_sparse_state,
                                  _variant_model)
from repro.datasets.synthetic import generate_task
from repro.sparsity import NMPattern, prunable_parameters, verify_nm


@pytest.fixture(scope="module")
def tiny_config():
    return Table1Config(base_classes=3, base_train_per_class=8,
                        base_test_per_class=4, pretrain_epochs=1,
                        recovery_epochs=1, task_scale=0.3, task_epochs=1,
                        tasks=("pets",))


@pytest.fixture(scope="module")
def pretrained(tiny_config):
    return _pretrain(tiny_config)


class TestRows:
    def test_paper_row_order(self):
        labels = [label for label, _, _ in TABLE1_ROWS]
        assert labels[0].startswith("Dense")
        assert "1:8" in labels[1] and "1:8" in labels[2]
        assert "1:4" in labels[3] and "1:4" in labels[4]

    def test_precision_flags(self):
        int8_flags = [int8 for _, _, int8 in TABLE1_ROWS]
        assert int8_flags == [False, False, True, False, True]


class TestPretrain:
    def test_returns_consistent_states(self, pretrained, tiny_config):
        state, head_w, head_b, acc, base_test, spec = pretrained
        assert 0.0 <= acc <= 1.0
        assert head_w.shape == (spec.num_classes, 64 + 0) or head_w.shape[0] \
            == spec.num_classes
        assert "stem.weight" in state


class TestVariantModel:
    def test_dense_variant_loads_backbone(self, pretrained, tiny_config):
        state = pretrained[0]
        model = _variant_model(tiny_config, state, None, False)
        np.testing.assert_array_equal(
            dict(model.backbone.named_parameters())["stem.weight"].data,
            state["stem.weight"])

    def test_sparse_variant_without_recovery_prunes(self, pretrained,
                                                    tiny_config):
        state = pretrained[0]
        pattern = NMPattern(1, 4)
        model = _variant_model(tiny_config, state, pattern, False)
        for name, p in prunable_parameters(model.backbone,
                                           min_reduction_dim=pattern.m):
            assert verify_nm(p.data, pattern), name

    def test_recovered_state_keeps_pattern(self, pretrained, tiny_config):
        state, head_w, head_b, _, _, spec = pretrained
        base_train, _ = generate_task(spec, seed=tiny_config.seed)
        pattern = NMPattern(1, 4)
        recovered = _recovered_sparse_state(tiny_config, state, head_w,
                                            head_b, base_train, pattern)
        model = _variant_model(tiny_config, state, pattern, False,
                               {str(pattern): recovered})
        for name, p in prunable_parameters(model.backbone,
                                           min_reduction_dim=pattern.m):
            assert verify_nm(p.data, pattern), name

    def test_recovery_changes_surviving_weights(self, pretrained, tiny_config):
        state, head_w, head_b, _, _, spec = pretrained
        base_train, _ = generate_task(spec, seed=tiny_config.seed)
        pattern = NMPattern(1, 4)
        recovered = _recovered_sparse_state(tiny_config, state, head_w,
                                            head_b, base_train, pattern)
        # recovered weights differ from one-shot-pruned weights
        oneshot = _variant_model(tiny_config, state, pattern, False)
        rec = _variant_model(tiny_config, state, pattern, False,
                             {str(pattern): recovered})
        a = dict(oneshot.backbone.named_parameters())["stem.weight"].data
        b = dict(rec.backbone.named_parameters())["stem.weight"].data
        assert not np.array_equal(a, b)

    def test_backbone_accuracy_helper(self, pretrained, tiny_config):
        state, head_w, head_b, acc, base_test, spec = pretrained
        model = _variant_model(tiny_config, state, None, False)
        measured = _backbone_accuracy(model, head_w, head_b, base_test,
                                      spec.num_classes,
                                      tiny_config.batch_size)
        assert measured == pytest.approx(acc, abs=1e-9)
