"""NVM endurance and technology-portability study.

The paper's introduction argues that finite NVM write endurance makes
in-place training on NVM untenable, and Sec. 3 claims the hybrid
architecture ports to other NVM technologies (RRAM).  This example runs
both analyses at paper scale:

1. device-level: wear a simulated RRAM cell out and watch it fail,
2. design-level: lifetime (in downstream-task adaptations) of every
   training configuration, and the hybrid's EDP with RRAM as its NVM.

Run: ``python examples/nvm_lifetime_study.py``
"""

import numpy as np

from repro.core import paper_workload
from repro.energy import (MTJ, RRAMCell, RRAMParams, compare_nvm_write_cost,
                          tasks_until_failure, training_lifetime_study)
from repro.harness.endurance import build_endurance, render_endurance

# ------------------------------------------------------- 1. device level
print("=== device level ===")
mtj = MTJ()
print(f"STT-MRAM MTJ: R_P={mtj.params.resistance_p_ohm:.0f} ohm, "
      f"R_AP={mtj.params.resistance_ap_ohm:.0f} ohm, "
      f"TMR={mtj.tmr:.1%}, retention {mtj.retention_years():.1e} years")

cell = RRAMCell(RRAMParams(endurance_cycles=1000))
writes = 0
while cell.write(writes % 2) and writes < 10_000:
    writes += 1
print(f"RRAM cell (endurance budget 1000): failed after {writes} toggling "
      f"writes, on/off ratio {cell.on_off_ratio:.0f}x")

rram_e, mram_e = compare_nvm_write_cost()
print(f"write energy: RRAM {rram_e:.2f} pJ/bit vs MRAM {mram_e:.3f} pJ/bit "
      f"({rram_e / mram_e:.0f}x)")

# ------------------------------------------------------- 2. design level
print("\n=== design level (paper-scale workload) ===")
result = build_endurance(paper_workload())
print(render_endurance(result))

print("""
Takeaway: in-place fine-tuning burns an RRAM-class weight memory out after
a few thousand task adaptations; the hybrid design's NVM is written once at
deployment, so its learning lifetime is bounded only by SRAM — while its
training EDP stays two orders of magnitude below in-place NVM training even
when the NVM is RRAM.""")
