"""Quickstart: map a sparse layer onto the hybrid accelerator and run it.

Demonstrates the core public API in ~40 lines:
1. take a float weight matrix,
2. magnitude-prune it to the 2:8 structured pattern and quantize to INT8,
3. load it into the functional hybrid accelerator (frozen -> MRAM PEs),
4. run a batch of activations through the simulated PE arrays,
5. compare against the numpy reference and print the hardware cost.

Run: ``python examples/quickstart.py``
"""

import numpy as np

from repro.core import HybridAccelerator
from repro.sparsity import NMPattern

rng = np.random.default_rng(0)
pattern = NMPattern(2, 8)          # 2 of every 8 weights survive (75% sparse)
acc = HybridAccelerator(pattern)

# A 256-input, 32-output layer (think: one GEMM tile of a conv layer).
weight = rng.standard_normal((256, 32)) * 0.1

# Prune + INT8-quantize + CSC-encode + map onto MRAM sparse PEs.
mapped, wparams = acc.load_float_gemm("layer0", weight, learnable=False)
print(f"mapped 'layer0' onto {mapped.pe_count} {mapped.kind.upper()} PE(s), "
      f"weight scale {wparams.scale:.5f}")

# Stream a batch of activations through the simulated arrays.
x = rng.standard_normal((8, 256))
y = acc.linear("layer0", x)

# Reference: the same INT8 math in numpy.
ref = x @ (acc.dense_weight("layer0") * wparams.scale)
err = np.abs(y - ref).max() / (np.abs(ref).max() + 1e-9)
print(f"output {y.shape}, relative deviation vs FP reference: {err:.4f} "
      "(INT8 activation quantization only)")

# What did it cost?  Event counters -> Table 2-calibrated energies.
stats = acc.stats()["mram"]
energy = acc.energy_report()["mram"]
print(f"cycles={stats.cycles}  real MACs={stats.macs} "
      f"(dense equivalent {stats.dense_equivalent_macs}, "
      f"{stats.mac_efficiency:.0%} executed)")
print(f"energy: compute={energy.compute_pj:.0f} pJ  "
      f"write(one-time deploy)={energy.write_pj:.0f} pJ  "
      f"buffer={energy.buffer_pj:.1f} pJ")
