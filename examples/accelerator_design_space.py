"""Design-space exploration over the paper-scale workload.

Sweeps the N:M pattern across the hardware's supported range and compares
the hybrid design against both dense baselines on the three axes of the
paper's evaluation: area (Fig. 7 right), inference power (Fig. 7 left) and
continual-learning EDP (Fig. 8).  Also prints the storage/core mapping view
(the "26 MB dense needs dual-core, compressed fits one core" observation).

Run: ``python examples/accelerator_design_space.py``
"""

from repro.core import (CoreConfig, DenseCIMDesign, HybridMapper,
                        HybridSparseDesign, dense_core_requirement,
                        paper_workload)
from repro.harness.reporting import format_table
from repro.sparsity import NMPattern

workload = paper_workload()
print(f"workload: {workload.name}")
print(f"  dense storage: {workload.dense_bytes() / 2**20:.1f} MB "
      f"(INT8), learnable fraction {workload.learnable_fraction:.1%}, "
      f"{workload.total_macs / 1e9:.1f} GMACs/inference")
print(f"  dense mapping needs {dense_core_requirement(workload)} cores "
      f"of {CoreConfig().mram_capacity_bytes / 2**20:.0f} MB\n")

# ------------------------------------------------------------ pattern sweep
rows = []
sram_ref = DenseCIMDesign("sram", "all", name="SRAM[29]")
ref_area = sram_ref.area(workload).total_mm2
ref_power = sram_ref.inference(workload).avg_power_mw
edp_ref = None

for pattern in [NMPattern(1, 16), NMPattern(1, 8), NMPattern(2, 8),
                NMPattern(1, 4), NMPattern(2, 4)]:
    design = HybridSparseDesign(pattern)
    area = design.area(workload).total_mm2
    perf = design.inference(workload)
    train = design.training_step(workload)
    mapper = HybridMapper(pattern)
    storage = mapper.storage_report(workload)
    if edp_ref is None and str(pattern) == "1:8":
        edp_ref = train.edp_js
    rows.append([str(pattern), f"{pattern.sparsity:.0%}",
                 storage["cores_used"],
                 (storage["sram_bytes"] + storage["mram_bytes"]) / 2**20,
                 area / ref_area,
                 perf.avg_power_mw / ref_power,
                 train.edp_js])

edp_ref = edp_ref or rows[0][-1]
for row in rows:
    row[-1] = row[-1] / edp_ref

print(format_table(
    ["Pattern", "Sparsity", "Cores", "Storage (MB)", "Area (rel SRAM)",
     "Power (rel SRAM)", "Train EDP (rel 1:8)"],
    rows, title="Hybrid design: N:M pattern sweep"))

# ---------------------------------------------------- baseline comparison
print()
baseline_rows = []
for label, design in [
        ("SRAM[29] dense", DenseCIMDesign("sram", "learnable")),
        ("MRAM[30] dense", DenseCIMDesign("mram", "learnable")),
        ("Hybrid 1:4", HybridSparseDesign(NMPattern(1, 4))),
        ("Hybrid 1:8", HybridSparseDesign(NMPattern(1, 8)))]:
    area = design.area(workload).total_mm2
    perf = design.inference(workload)
    train = design.training_step(workload)
    baseline_rows.append([label, area / ref_area,
                          perf.avg_power_mw / ref_power,
                          train.edp_js / edp_ref])

print(format_table(
    ["Design", "Area (rel)", "Power (rel)", "RepNet-train EDP (rel 1:8)"],
    baseline_rows, title="Hybrid vs single-technology designs"))
