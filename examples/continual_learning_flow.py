"""End-to-end on-device continual learning, the paper's algorithm flow.

1. Pre-train a compact ResNet backbone on the synthetic base distribution
   (the ImageNet stand-in).
2. Freeze it; magnitude-prune it to 1:4 (destined for MRAM PEs).
3. Attach the Rep-Net path + a new task head, run the paper's recipe on a
   downstream task: one-epoch gradient saliency -> fix the N:M mask ->
   masked fine-tuning -> INT8 PTQ of the learned weights.
4. Report accuracies, achieved per-layer sparsity, and the learnable
   fraction (the paper's ~5% claim).

Run: ``python examples/continual_learning_flow.py``  (~2 minutes)
"""

import numpy as np

from repro.datasets import base_pretraining_spec, generate_task, load_downstream_task
from repro.repnet import (ContinualLearner, TrainConfig, build_repnet_model,
                          pretrain_backbone, sparsify_backbone)
from repro.sparsity import NMPattern

SEED = 0
pattern = NMPattern(1, 4)

# ---------------------------------------------------------- 1. pre-training
spec = base_pretraining_spec(num_classes=8, train_per_class=30,
                             test_per_class=12)
base_train, base_test = generate_task(spec, seed=SEED)
model = build_repnet_model(repnet_width=16, seed=SEED)

print("pre-training the backbone on the base distribution ...")
cfg = TrainConfig(epochs=8, batch_size=32, lr=2e-3, seed=SEED)
_, base_acc = pretrain_backbone(model.backbone, base_train, base_test,
                                spec.num_classes, cfg)
print(f"  backbone@base accuracy: {base_acc:.1%}")

# ----------------------------------------------- 2. sparsify + freeze (MRAM)
sparsify_backbone(model.backbone, pattern)
print(f"backbone magnitude-pruned to {pattern} "
      f"({pattern.sparsity:.0%} zeros) and frozen")

# --------------------------------------------------- 3. learn a new task
train_set, test_set = load_downstream_task("pets", seed=SEED + 1)
learner = ContinualLearner(model, pattern=pattern, int8=True)
print(f"learning task 'pets' ({train_set.num_classes} classes, "
      f"{len(train_set)} samples) with sparse INT8 Rep-Net ...")
result = learner.learn_task(
    "pets", train_set, test_set,
    TrainConfig(epochs=20, batch_size=32, lr=6e-3, seed=SEED))

# ------------------------------------------------------------- 4. report
print(f"\nnew-task accuracy: {result.accuracy:.1%}")
print(f"learnable fraction of the model: {result.learnable_fraction:.1%} "
      "(paper reports ~5%)")
print("achieved sparsity on the learnable path:")
for name, ratio in sorted(result.sparsity.items()):
    print(f"  {name:32s} {ratio:.0%}")
print(f"\ntraining loss: {result.losses[0]:.3f} -> {result.losses[-1]:.3f} "
      f"over {len(result.losses)} masked epochs")
