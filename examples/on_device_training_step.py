"""One integer training step executed on the simulated hardware.

Walks the paper's Sec. 4 backpropagation dataflow (Eqs. 1-3) through the
functional PE models, bit-exactly:

* forward:            ``y = x @ W``        on an SRAM sparse PE,
* error propagation:  ``dx = dy @ W^T``    via a transposed SRAM PE buffer,
* gradient:           ``G  = x^T @ dy``    via a transposed SRAM PE buffer,
* update:             ``W <- W - (G >> s)`` with the N:M mask re-applied,
  then the updated weights are rewritten into the (fast, cheap) SRAM PE.

Every intermediate is checked against the numpy integer reference, and the
step's write traffic — the quantity Fig. 8 is about — is reported at both
SRAM and hypothetical-MRAM cost.

Run: ``python examples/on_device_training_step.py``
"""

import numpy as np

from repro.core import BackpropEngine, HybridAccelerator
from repro.energy import CostModel
from repro.sparsity import NMPattern, compute_nm_mask

rng = np.random.default_rng(7)
pattern = NMPattern(2, 8)
acc = HybridAccelerator(pattern)
engine = BackpropEngine()
cost = CostModel()

# A learnable Rep-Net layer: 128 inputs -> 16 outputs, INT8, 2:8 sparse.
dense = rng.integers(-64, 64, size=(128, 16))
mask = compute_nm_mask(np.abs(dense).astype(float), pattern, axis=0)
weight = (dense * mask).astype(np.int64)
acc.load_gemm("rep.fc", weight, learnable=True)

x = rng.integers(-32, 32, size=(4, 128))       # INT8 activations
target_delta = rng.integers(-16, 16, size=(4, 16))  # error from the layer above

# ---------------------------------------------------------------- forward
y = acc.gemm("rep.fc", x)
assert (y == x @ weight).all()
print(f"forward: y {y.shape} bit-exact on the SRAM sparse PE")

# ------------------------------------------------- backward (Eqs. 1 and 2)
dx = acc.propagate_error("rep.fc", target_delta)
assert (dx == target_delta @ weight.T).all()
grad = acc.weight_gradient("rep.fc", x, target_delta)
assert (grad == x.T @ target_delta).all()
print("backward: error propagation and gradient bit-exact via transposed "
      "SRAM PE buffers")

# ------------------------------------------------------- update (Eq. 3)
new_weight, bits_written = engine.weight_update(weight, grad, lr_shift=8)
new_weight = (new_weight * mask).astype(np.int64)  # N:M support is pinned
acc.update_gemm("rep.fc", new_weight)
y2 = acc.gemm("rep.fc", x)
assert (y2 == x @ new_weight).all()
print(f"update: {bits_written} weight bits changed, mask preserved, "
      "PE rewritten")

# ------------------------------------------------------------ cost report
stats = acc.stats()["sram"]
write_bits = stats.weight_bits_written + stats.index_bits_written
e_sram = cost.write_energy_pj(write_bits, "sram")
e_mram = cost.write_energy_pj(write_bits, "mram")
print(f"\nwrite traffic this step: {write_bits} bits")
print(f"  in SRAM (the hybrid's choice): {e_sram:.2f} pJ")
print(f"  same writes in MRAM:           {e_mram:.2f} pJ "
      f"({e_mram / e_sram:.0f}x more)")
print("-> this asymmetry, times millions of training steps, is Fig. 8.")
