"""Multi-task switching: adaptors as swappable SRAM contents.

The hybrid architecture's continual-learning end-game (paper Sec. 4): each
downstream task owns a tiny sparse adaptor in SRAM; the MRAM backbone is
shared and never rewritten.  Switching tasks is an SRAM rewrite of a few
kilobytes — this example measures that, and demonstrates the architecture's
*zero catastrophic forgetting*: after learning task B, task A's accuracy is
bit-identical once its adaptor is reloaded.

Run: ``python examples/task_switching.py``  (~2 minutes)
"""

import numpy as np

from repro.datasets import base_pretraining_spec, generate_task, load_downstream_task
from repro.energy import CostModel
from repro.repnet import (SequentialLearner, TrainConfig, build_repnet_model,
                          pretrain_backbone, sparsify_backbone)
from repro.sparsity import NMPattern

SEED = 0
pattern = NMPattern(1, 4)

# Pre-train + sparsify + freeze the shared backbone.
spec = base_pretraining_spec(num_classes=8, train_per_class=30,
                             test_per_class=12)
base_train, base_test = generate_task(spec, seed=SEED)
model = build_repnet_model(repnet_width=16, seed=SEED)
print("pre-training the shared backbone ...")
_, base_acc = pretrain_backbone(model.backbone, base_train, base_test,
                                spec.num_classes,
                                TrainConfig(epochs=8, batch_size=32, lr=2e-3))
sparsify_backbone(model.backbone, pattern)
print(f"  backbone@base {base_acc:.1%}, pruned to {pattern}, frozen\n")

# Learn two tasks in sequence; each adaptor is snapshotted into the library.
learner = SequentialLearner(model, pattern=pattern)
tasks = {
    "pets": load_downstream_task("pets", seed=SEED + 1, scale=0.7),
    "cifar10": load_downstream_task("cifar10", seed=SEED + 2, scale=0.7),
}
cfg = TrainConfig(epochs=15, batch_size=32, lr=6e-3, seed=SEED)
print("learning tasks sequentially ...")
accs = learner.learn_sequence(tasks, cfg)
for task, acc in accs.items():
    print(f"  {task}: {acc:.1%} right after learning")

# The forgetting test: re-activate each adaptor and re-evaluate.
print("\nre-activating adaptors after the full sequence:")
final = learner.accuracy_matrix()
for task, acc in final.items():
    drop = accs[task] - acc
    print(f"  {task}: {acc:.1%}  (forgetting: {drop:+.2%})")
assert all(abs(accs[t] - final[t]) < 1e-9 for t in accs), \
    "zero forgetting is architectural — adaptors are per-task"

# What does a task switch cost the hardware?
lib = learner.library
cost = CostModel()
bits = lib.switch_cost_bits("pets", pattern)
print(f"\ntask switch = SRAM rewrite of {bits / 8 / 1024:.1f} KB "
      f"({bits} bits)")
print(f"  energy: {cost.write_energy_pj(bits, 'sram') / 1e3:.2f} nJ, "
      f"latency: {cost.cycles_to_s(cost.write_latency_cycles(bits, 'sram', 8)) * 1e6:.1f} us")
print(f"  the same rewrite in MRAM would cost "
      f"{cost.write_energy_pj(bits, 'mram') / 1e3:.2f} nJ and wear the array")
