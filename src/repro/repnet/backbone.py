"""Compact residual backbone (the "fixed main branch" mapped to MRAM PEs).

Stands in for the paper's ImageNet-pretrained ResNet-50 (see DESIGN.md,
"Substitutions").  The structure mirrors a ResNet: a stem convolution followed
by residual basic blocks in three width stages.  Every block output is a *tap
point* that a Rep-Net activation connector can read, matching the paper's
Fig. 6 where each learnable module taps one fixed block.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..nn import functional as F
from ..nn.modules import (BatchNorm2d, Conv2d, GlobalAvgPool2d, Linear, Module,
                          ReLU, Sequential)
from ..nn.tensor import Tensor


class BasicBlock(Module):
    """Two 3x3 conv-BN pairs with an identity/projection skip."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride,
                            padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(out_channels)
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1,
                            padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Conv2d(in_channels, out_channels, 1, stride=stride,
                                   bias=False, rng=rng)
        else:
            self.shortcut = None
        self.out_channels = out_channels
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        h = self.bn1(self.conv1(x)).relu()
        h = self.bn2(self.conv2(h))
        skip = self.shortcut(x) if self.shortcut is not None else x
        return (h + skip).relu()


class Backbone(Module):
    """Stem + a chain of :class:`BasicBlock`; exposes per-block activations.

    Parameters
    ----------
    widths:
        Channel width of each block, e.g. ``(16, 16, 32, 32, 64, 64)`` — six
        blocks so that the paper's six Rep-Net modules each get a tap point.
    strides:
        Stride of each block (2 = spatial downsample).
    """

    def __init__(self, in_channels: int = 3,
                 widths: Sequence[int] = (16, 16, 32, 32, 64, 64),
                 strides: Sequence[int] = (1, 1, 2, 1, 2, 1),
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if len(widths) != len(strides):
            raise ValueError("widths and strides must have equal length")
        self.widths = tuple(widths)
        self.strides = tuple(strides)
        self.stem = Conv2d(in_channels, widths[0], 3, stride=1, padding=1,
                           bias=False, rng=rng)
        self.stem_bn = BatchNorm2d(widths[0])
        blocks = []
        prev = widths[0]
        for i, (w, s) in enumerate(zip(widths, strides)):
            block = BasicBlock(prev, w, stride=s, rng=rng)
            setattr(self, f"block{i}", block)
            blocks.append(block)
            prev = w
        self.blocks = blocks
        self.feature_dim = widths[-1]

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def forward(self, x: Tensor) -> Tensor:
        feats, _ = self.forward_with_taps(x)
        return feats

    def forward_with_taps(self, x: Tensor) -> Tuple[Tensor, List[Tensor]]:
        """Return ``(pooled_features, [block activations])``."""
        h = self.stem_bn(self.stem(x)).relu()
        taps: List[Tensor] = []
        for block in self.blocks:
            h = block(h)
            taps.append(h)
        pooled = F.global_avg_pool2d(h)
        return pooled, taps


class BackboneClassifier(Module):
    """Backbone + linear head, used only for base-distribution pre-training."""

    def __init__(self, backbone: Backbone, num_classes: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.backbone = backbone
        self.head = Linear(backbone.feature_dim, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.head(self.backbone(x))
