"""Multi-task adaptor management: task switching as SRAM reprogramming.

The hybrid architecture's continual-learning story (paper Sec. 4) is that
each downstream task owns a tiny sparse adaptor (Rep-Net path + classifier)
living in SRAM, while the MRAM backbone is shared and immutable.  Switching
the device between tasks is therefore *just an SRAM rewrite* of a few
hundred kilobytes — fast, cheap, and with **zero catastrophic forgetting by
construction**: task A's adaptor is bit-identical when reloaded, and the
backbone it modulates never changed.

:class:`TaskLibrary` implements that mechanism over a
:class:`~repro.repnet.model.RepNetModel`: snapshot the learnable state per
task, re-activate any task later, and account the SRAM write traffic a
switch costs.  :class:`SequentialLearner` drives a sequence of tasks and
produces the accuracy matrix used in forgetting analyses.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..nn.data import TensorDataset
from ..quant import quantize_model_ptq
from ..sparsity.nm import NMPattern
from .continual import ContinualLearner, TrainConfig, evaluate
from .model import RepNetModel


class TaskLibrary:
    """Per-task snapshots of the learnable (SRAM-resident) state."""

    def __init__(self, model: RepNetModel):
        self.model = model
        self._snapshots: Dict[str, Dict[str, np.ndarray]] = {}

    # ------------------------------------------------------------- snapshots
    def _learnable_state(self, task: str) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        mods = ([("rep_stem", self.model.rep_stem)]
                + [(f"rep_module{i}", m)
                   for i, m in enumerate(self.model.rep_modules)]
                + [(f"connector{i}", c)
                   for i, c in enumerate(self.model.connectors)]
                + [(f"head_{task}", self.model.head(task))])
        for prefix, mod in mods:
            for name, p in mod.named_parameters():
                state[f"{prefix}.{name}"] = p.data.copy()
        return state

    def snapshot(self, task: str) -> None:
        """Save the current learnable state as ``task``'s adaptor."""
        if task not in self.model.tasks:
            raise KeyError(f"model has no head for task {task!r}")
        self._snapshots[task] = self._learnable_state(task)

    def activate(self, task: str) -> None:
        """Reprogram the SRAM-resident state with ``task``'s adaptor."""
        if task not in self._snapshots:
            raise KeyError(f"no snapshot for task {task!r}; "
                           f"have {sorted(self._snapshots)}")
        state = self._snapshots[task]
        mods = ([("rep_stem", self.model.rep_stem)]
                + [(f"rep_module{i}", m)
                   for i, m in enumerate(self.model.rep_modules)]
                + [(f"connector{i}", c)
                   for i, c in enumerate(self.model.connectors)]
                + [(f"head_{task}", self.model.head(task))])
        for prefix, mod in mods:
            for name, p in mod.named_parameters():
                p.data = state[f"{prefix}.{name}"].copy()
        self.model.set_active_task(task)

    @property
    def tasks(self) -> List[str]:
        return sorted(self._snapshots)

    # ------------------------------------------------------------- switching
    def adaptor_weights(self, task: str) -> int:
        """Number of weights in one task's adaptor."""
        if task not in self._snapshots:
            raise KeyError(f"no snapshot for task {task!r}")
        return int(sum(v.size for v in self._snapshots[task].values()))

    def switch_cost_bits(self, task: str,
                         pattern: Optional[NMPattern] = None,
                         weight_bits: int = 8, index_bits: int = 4) -> int:
        """SRAM bits rewritten when activating ``task``.

        With an N:M pattern, only the compressed (weight, index) pairs move;
        dense adaptors rewrite every weight.
        """
        weights = self.adaptor_weights(task)
        if pattern is None:
            return weights * weight_bits
        kept = int(weights * pattern.density)
        return kept * (weight_bits + index_bits)


class SequentialLearner:
    """Learn a sequence of tasks, snapshotting each adaptor.

    After the sequence, :meth:`accuracy_matrix` evaluates every task with
    every stage's adaptors — the standard forgetting analysis.  Because the
    backbone is frozen and adaptors are per-task, the diagonal equals the
    final row: zero forgetting, which is the architecture's claim.
    """

    def __init__(self, model: RepNetModel, pattern: Optional[NMPattern] = None,
                 int8: bool = False):
        self.model = model
        self.pattern = pattern
        self.int8 = int8
        self.library = TaskLibrary(model)
        self.learner = ContinualLearner(model, pattern=pattern, int8=int8)
        self._test_sets: Dict[str, TensorDataset] = {}
        self._initial_state: Optional[Dict[str, np.ndarray]] = None

    def learn_sequence(self, tasks: Dict[str, tuple],
                       config: TrainConfig) -> Dict[str, float]:
        """Learn ``{task: (train_set, test_set)}`` in order; returns the
        accuracy measured right after each task was learned."""
        accs: Dict[str, float] = {}
        for task, (train_set, test_set) in tasks.items():
            self._reset_learnable_path(config.seed)
            result = self.learner.learn_task(task, train_set, test_set, config)
            self.library.snapshot(task)
            self._test_sets[task] = test_set
            accs[task] = result.accuracy
        return accs

    def _reset_learnable_path(self, seed: int) -> None:
        """Fresh adaptor initialization before each new task (the previous
        task's adaptor is already safe in the library)."""
        if self._initial_state is None:
            # capture the pristine init once, before any task
            self._initial_state = {
                name: p.data.copy()
                for name, p in self.model.named_parameters()
                if p.trainable or not name.startswith("backbone")}
        for name, p in self.model.named_parameters():
            if name in self._initial_state and not name.startswith("head_"):
                p.data = self._initial_state[name].copy()

    def evaluate_task(self, task: str, batch_size: int = 64) -> float:
        """Activate ``task``'s adaptor and evaluate it."""
        self.library.activate(task)
        return evaluate(self.model, self._test_sets[task],
                        batch_size=batch_size, task=task)

    def accuracy_matrix(self, batch_size: int = 64) -> Dict[str, float]:
        """Final accuracy of every learned task (adaptor re-activated)."""
        return {task: self.evaluate_task(task, batch_size)
                for task in self.library.tasks}
