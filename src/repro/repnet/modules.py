"""Rep-Net learnable modules and activation connectors (mapped to SRAM PEs).

Per the paper (Sec. 5.1): each Rep-Net module consists of "1 pooling layer and
2 convolution layers where one of the convolution kernel is 1x1".  An
*activation connector* (a learnable 1x1 projection) injects the corresponding
fixed-backbone activation into the running Rep-Net state, so the tiny parallel
path can reprogram the frozen features for the new task.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import functional as F
from ..nn.modules import AvgPool2d, Conv2d, Module
from ..nn.tensor import Tensor


class ActivationConnector(Module):
    """1x1 projection from a backbone tap into the Rep-Net channel space."""

    def __init__(self, backbone_channels: int, repnet_channels: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.proj = Conv2d(backbone_channels, repnet_channels, 1, bias=False,
                           rng=rng)

    def forward(self, tap: Tensor) -> Tensor:
        return self.proj(tap)


class RepNetModule(Module):
    """One Rep-Net stage: (optional) pool, 3x3 conv, ReLU, 1x1 conv.

    ``pool_stride`` > 1 shrinks the running state to track the backbone's
    spatial downsampling at this tap point.
    """

    def __init__(self, channels: int, pool_stride: int = 1,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.channels = channels
        self.pool_stride = pool_stride
        if pool_stride > 1:
            self.pool = AvgPool2d(pool_stride, pool_stride)
        else:
            self.pool = None
        self.conv3 = Conv2d(channels, channels, 3, padding=1, bias=True, rng=rng)
        self.conv1 = Conv2d(channels, channels, 1, bias=True, rng=rng)

    def forward(self, state: Tensor, injected: Tensor) -> Tensor:
        """Advance the Rep-Net state given the connector-projected tap.

        The injected activation is already at this stage's output resolution,
        so pooling applies to the carried state only.
        """
        if self.pool is not None:
            state = self.pool(state)
        h = state + injected
        h = self.conv3(h).relu()
        return self.conv1(h)
