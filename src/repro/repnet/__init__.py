"""Rep-Net continual learning: frozen backbone + tiny learnable parallel path."""

from .backbone import Backbone, BackboneClassifier, BasicBlock
from .continual import (ContinualLearner, TaskResult, TrainConfig, evaluate,
                        pretrain_backbone, quantize_backbone, sparsify_backbone)
from .model import RepNetModel, build_repnet_model
from .multitask import SequentialLearner, TaskLibrary
from .modules import ActivationConnector, RepNetModule

__all__ = [
    "Backbone", "BasicBlock", "BackboneClassifier",
    "RepNetModule", "ActivationConnector",
    "RepNetModel", "build_repnet_model",
    "ContinualLearner", "TaskResult", "TrainConfig",
    "TaskLibrary", "SequentialLearner",
    "evaluate", "pretrain_backbone", "sparsify_backbone", "quantize_backbone",
]
