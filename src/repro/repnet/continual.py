"""Continual-learning driver: pre-train, adapt per task, sparsify, quantize.

This module is the algorithmic engine behind Table 1.  The flow per
configuration is the paper's (Sec. 5.1):

1. pre-train a backbone on the base distribution (ImageNet-analogue),
2. optionally N:M-sparsify + INT8-PTQ the backbone (frozen thereafter),
3. per downstream task: attach a fresh classifier head, run the one-epoch
   gradient saliency pass, fix the N:M mask on the Rep-Net path, fine-tune
   the masked weights, then (for INT8 rows) PTQ the learned weights,
4. report new-task accuracy.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..nn import functional as F
from ..nn.data import DataLoader, TensorDataset
from ..nn.modules import Module
from ..nn.optim import Adam, SGD, clip_grad_norm
from ..nn.tensor import Tensor, no_grad
from ..quant import quantize_model_ptq
from ..sparsity import NMPattern, NMPruner, prune_model
from .backbone import Backbone, BackboneClassifier
from .model import RepNetModel


@dataclasses.dataclass
class TrainConfig:
    """Hyper-parameters for one training run."""

    epochs: int = 10
    batch_size: int = 32
    lr: float = 1e-3
    weight_decay: float = 0.0
    grad_clip: float = 5.0
    seed: int = 0
    verbose: bool = False


def evaluate(model: Module, dataset: TensorDataset, batch_size: int = 64,
             task: Optional[str] = None) -> float:
    """Top-1 accuracy of ``model`` on ``dataset`` (graph-free)."""
    model.eval()
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    correct = 0
    with no_grad():
        for x, y in loader:
            logits = (model(Tensor(x), task) if isinstance(model, RepNetModel)
                      else model(Tensor(x)))
            correct += int((logits.data.argmax(axis=-1) == y).sum())
    return correct / len(dataset)


def _run_epochs(model: Module, params, train_set: TensorDataset,
                config: TrainConfig, forward) -> List[float]:
    """Shared epoch loop; ``forward(x)`` must return logits."""
    opt = Adam(params, lr=config.lr, weight_decay=config.weight_decay)
    loader = DataLoader(train_set, batch_size=config.batch_size, shuffle=True,
                        rng=np.random.default_rng(config.seed))
    losses: List[float] = []
    for epoch in range(config.epochs):
        model.train()
        epoch_loss = 0.0
        for x, y in loader:
            logits = forward(Tensor(x))
            loss = F.cross_entropy(logits, y)
            opt.zero_grad()
            loss.backward()
            if config.grad_clip:
                clip_grad_norm(params, config.grad_clip)
            opt.step()
            epoch_loss += loss.item() * len(y)
        losses.append(epoch_loss / len(train_set))
        if config.verbose:
            print(f"  epoch {epoch + 1}/{config.epochs}: loss={losses[-1]:.4f}")
    return losses


def pretrain_backbone(backbone: Backbone, train_set: TensorDataset,
                      test_set: TensorDataset, num_classes: int,
                      config: TrainConfig) -> Tuple[BackboneClassifier, float]:
    """Train the backbone on the base distribution; returns (model, accuracy)."""
    clf = BackboneClassifier(backbone, num_classes,
                             rng=np.random.default_rng(config.seed))
    _run_epochs(clf, clf.parameters(), train_set, config, lambda x: clf(x))
    return clf, evaluate(clf, test_set, batch_size=config.batch_size)


def sparsify_backbone(backbone: Backbone, pattern: NMPattern) -> Dict[str, np.ndarray]:
    """One-shot magnitude N:M pruning of the frozen backbone (paper: PTQ'd
    backbone with the N:M pattern applied, no re-training)."""
    return prune_model(backbone, pattern)


def quantize_backbone(backbone: Backbone) -> None:
    """INT8 PTQ on the backbone weights (per-channel symmetric)."""
    quantize_model_ptq(backbone, per_channel=True)


@dataclasses.dataclass
class TaskResult:
    """Outcome of adapting to one downstream task."""

    task: str
    accuracy: float
    losses: List[float]
    sparsity: Dict[str, float]
    learnable_fraction: float


class ContinualLearner:
    """Orchestrates per-task adaptation of a :class:`RepNetModel`.

    Parameters
    ----------
    model:
        The RepNet model (backbone should already be pre-trained).
    pattern:
        ``None`` trains the dense Rep-Net baseline; otherwise the N:M pattern
        applied to the learnable path via the gradient-calibrated pruner.
    int8:
        If True, PTQ the learned (Rep-Net + head) weights after fine-tuning
        and report INT8 accuracy, matching Table 1's INT8 rows.
    """

    def __init__(self, model: RepNetModel, pattern: Optional[NMPattern] = None,
                 int8: bool = False):
        self.model = model
        self.pattern = pattern
        self.int8 = int8
        self.results: Dict[str, TaskResult] = {}
        model.freeze_backbone()

    def learn_task(self, task: str, train_set: TensorDataset,
                   test_set: TensorDataset, config: TrainConfig) -> TaskResult:
        model = self.model
        model.add_task(task, train_set.num_classes)
        model.set_active_task(task)
        params = model.learnable_parameters()

        forward = lambda x: model(x, task)
        sparsity_report: Dict[str, float] = {}

        if self.pattern is not None:
            # One-epoch gradient saliency on a throwaway warm-up, then mask.
            warm_loader = DataLoader(train_set, batch_size=config.batch_size,
                                     shuffle=True,
                                     rng=np.random.default_rng(config.seed + 1))
            # Brief dense warm-up so gradients reflect useful directions.
            warm_cfg = dataclasses.replace(config, epochs=1)
            _run_epochs(model, params, train_set, warm_cfg, forward)

            pruner = NMPruner(model, self.pattern, trainable_only=True)
            pruner.calibrate(warm_loader)
            opt_for_mask = Adam(params, lr=config.lr)
            pruner.apply(opt_for_mask)
            sparsity_report = pruner.sparsity_report()

            # Masked fine-tuning: reuse the optimizer holding the masks.
            losses = self._finetune_masked(opt_for_mask, train_set, config, forward)
            assert pruner.verify(), "N:M constraint violated after fine-tuning"
        else:
            losses = _run_epochs(model, params, train_set, config, forward)

        if self.int8:
            quantize_model_ptq(model, per_channel=True, trainable_only=True)

        acc = evaluate(model, test_set, batch_size=config.batch_size, task=task)
        result = TaskResult(task=task, accuracy=acc, losses=losses,
                            sparsity=sparsity_report,
                            learnable_fraction=model.learnable_fraction())
        self.results[task] = result
        return result

    def _finetune_masked(self, opt, train_set: TensorDataset,
                         config: TrainConfig, forward) -> List[float]:
        loader = DataLoader(train_set, batch_size=config.batch_size,
                            shuffle=True, rng=np.random.default_rng(config.seed))
        losses: List[float] = []
        for epoch in range(config.epochs):
            self.model.train()
            epoch_loss = 0.0
            for x, y in loader:
                logits = forward(Tensor(x))
                loss = F.cross_entropy(logits, y)
                opt.zero_grad()
                loss.backward()
                if config.grad_clip:
                    clip_grad_norm(opt.params, config.grad_clip)
                opt.step()
                epoch_loss += loss.item() * len(y)
            losses.append(epoch_loss / len(train_set))
            if config.verbose:
                print(f"  [masked] epoch {epoch + 1}/{config.epochs}: "
                      f"loss={losses[-1]:.4f}")
        return losses
