"""The full Rep-Net continual-learning model: fixed backbone + learnable path.

Structure (paper Fig. 6):

* the frozen :class:`~repro.repnet.backbone.Backbone` produces per-block
  activations (taps),
* a chain of :class:`~repro.repnet.modules.RepNetModule` carries a parallel
  low-width state, each stage absorbing one tap through its
  :class:`~repro.repnet.modules.ActivationConnector`,
* a per-task linear classifier consumes the concatenated global-pooled
  backbone features and Rep-Net state.

Only the Rep-Net path + active classifier are trainable; the backbone is
frozen (``freeze_backbone``), exactly matching the hardware mapping where
backbone weights live in write-expensive MRAM and the Rep-Net path lives in
SRAM.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..nn import functional as F
from ..nn.modules import Conv2d, Linear, Module, Parameter
from ..nn.tensor import Tensor, concatenate
from .backbone import Backbone
from .modules import ActivationConnector, RepNetModule


class RepNetModel(Module):
    """Backbone + Rep-Net path + swappable per-task classifier heads."""

    def __init__(self, backbone: Backbone, repnet_width: int = 8,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.backbone = backbone
        self.repnet_width = repnet_width

        # Rep-Net stem: project the raw input into the narrow channel space.
        in_ch = backbone.stem.in_channels
        self.rep_stem = Conv2d(in_ch, repnet_width, 1, bias=False, rng=rng)

        # One module + connector per backbone block.
        self.num_modules = backbone.num_blocks
        modules: List[RepNetModule] = []
        connectors: List[ActivationConnector] = []
        for i in range(self.num_modules):
            mod = RepNetModule(repnet_width, pool_stride=backbone.strides[i],
                               rng=rng)
            conn = ActivationConnector(backbone.widths[i], repnet_width, rng=rng)
            setattr(self, f"rep_module{i}", mod)
            setattr(self, f"connector{i}", conn)
            modules.append(mod)
            connectors.append(conn)
        self.rep_modules = modules
        self.connectors = connectors

        self.feature_dim = backbone.feature_dim + repnet_width
        self._heads: Dict[str, Linear] = {}
        self.active_task: Optional[str] = None
        self._rng = rng or np.random.default_rng(0)

    # ------------------------------------------------------------------ heads
    def add_task(self, task: str, num_classes: int) -> Linear:
        """Create (or replace) the classifier head for ``task``."""
        head = Linear(self.feature_dim, num_classes, rng=self._rng)
        self._heads[task] = head
        setattr(self, f"head_{task}", head)
        return head

    def set_active_task(self, task: str) -> None:
        if task not in self._heads:
            raise KeyError(f"unknown task {task!r}; call add_task first")
        self.active_task = task

    def head(self, task: Optional[str] = None) -> Linear:
        task = task or self.active_task
        if task is None:
            raise RuntimeError("no active task set")
        return self._heads[task]

    @property
    def tasks(self) -> List[str]:
        return list(self._heads)

    # ---------------------------------------------------------------- freezing
    def freeze_backbone(self) -> None:
        """Freeze backbone weights and pin its BN statistics (eval mode)."""
        self.backbone.freeze()
        self.backbone.eval()

    def learnable_modules(self) -> List[Module]:
        """Modules holding the trainable (SRAM-mapped) parameters."""
        mods: List[Module] = [self.rep_stem] + list(self.rep_modules) \
            + list(self.connectors)
        if self.active_task is not None:
            mods.append(self.head())
        return mods

    def learnable_parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for mod in self.learnable_modules():
            params.extend(mod.parameters())
        return params

    def learnable_fraction(self) -> float:
        """Trainable / total parameter count — the paper reports ~5%."""
        learnable = sum(p.size for p in self.learnable_parameters())
        total = self.num_parameters()
        return learnable / total if total else 0.0

    # ----------------------------------------------------------------- forward
    def features(self, x: Tensor) -> Tensor:
        """Concatenated (backbone || Rep-Net) global feature vector."""
        pooled, taps = self.backbone.forward_with_taps(x)
        state = self.rep_stem(x)
        for mod, conn, tap in zip(self.rep_modules, self.connectors, taps):
            state = mod(state, conn(tap))
        rep_pooled = F.global_avg_pool2d(state)
        return concatenate([pooled, rep_pooled], axis=1)

    def forward(self, x: Tensor, task: Optional[str] = None) -> Tensor:
        return self.head(task)(self.features(x))

    # ---------------------------------------------------------------- training
    def train(self) -> "RepNetModel":
        super().train()
        # The frozen backbone must keep using running statistics.
        if not any(p.trainable for p in self.backbone.parameters()):
            self.backbone.eval()
        return self


def build_repnet_model(in_channels: int = 3,
                       widths: Tuple[int, ...] = (16, 16, 32, 32, 64, 64),
                       strides: Tuple[int, ...] = (1, 1, 2, 1, 2, 1),
                       repnet_width: int = 8,
                       seed: int = 0) -> RepNetModel:
    """Convenience constructor with the default six-module configuration."""
    rng = np.random.default_rng(seed)
    backbone = Backbone(in_channels=in_channels, widths=widths,
                        strides=strides, rng=rng)
    return RepNetModel(backbone, repnet_width=repnet_width, rng=rng)
