"""Range observers for quantization calibration.

The paper applies INT8 post-training quantization (PTQ) to both the backbone
and the fine-tuned sparse Rep-Net weights (Table 1).  Observers watch tensors
during a calibration pass and produce the scale/zero-point used by
:mod:`repro.quant.int8`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class MinMaxObserver:
    """Track running min/max of observed tensors (symmetric or affine)."""

    def __init__(self, symmetric: bool = True):
        self.symmetric = symmetric
        self.min_val: Optional[float] = None
        self.max_val: Optional[float] = None

    def observe(self, tensor: np.ndarray) -> None:
        tensor = np.asarray(tensor)
        if tensor.size == 0:
            return
        lo, hi = float(tensor.min()), float(tensor.max())
        self.min_val = lo if self.min_val is None else min(self.min_val, lo)
        self.max_val = hi if self.max_val is None else max(self.max_val, hi)

    @property
    def initialized(self) -> bool:
        return self.min_val is not None

    def quant_range(self) -> Tuple[float, float]:
        if not self.initialized:
            raise RuntimeError("observer saw no data")
        if self.symmetric:
            bound = max(abs(self.min_val), abs(self.max_val))
            return -bound, bound
        return self.min_val, self.max_val


class PercentileObserver(MinMaxObserver):
    """Clip the range to a percentile of |x| to resist activation outliers."""

    def __init__(self, percentile: float = 99.9, symmetric: bool = True):
        super().__init__(symmetric=symmetric)
        if not 50.0 < percentile <= 100.0:
            raise ValueError(f"percentile must be in (50, 100], got {percentile}")
        self.percentile = percentile
        self._samples: list[np.ndarray] = []

    def observe(self, tensor: np.ndarray) -> None:
        tensor = np.asarray(tensor)
        if tensor.size == 0:
            return
        # Keep a bounded reservoir of absolute values for the percentile.
        flat = np.abs(tensor.ravel())
        if flat.size > 4096:
            idx = np.linspace(0, flat.size - 1, 4096).astype(int)
            flat = np.sort(flat)[idx]
        self._samples.append(flat)
        super().observe(tensor)

    def quant_range(self) -> Tuple[float, float]:
        if not self._samples:
            raise RuntimeError("observer saw no data")
        pooled = np.concatenate(self._samples)
        bound = float(np.percentile(pooled, self.percentile))
        if bound == 0.0:
            bound = max(abs(self.min_val or 0.0), abs(self.max_val or 0.0)) or 1.0
        if self.symmetric:
            return -bound, bound
        return max(self.min_val, -bound), min(self.max_val, bound)


class HistogramObserver(MinMaxObserver):
    """KL-divergence (entropy) calibration, TensorRT-style.

    Builds a histogram of |x| over the calibration pass, then picks the clip
    threshold whose induced INT8 distribution has minimal KL divergence from
    the original — a much better range for long-tailed activation
    distributions than min/max or percentiles.
    """

    def __init__(self, bins: int = 2048, symmetric: bool = True,
                 quant_levels: int = 128):
        super().__init__(symmetric=symmetric)
        if bins < quant_levels * 2:
            raise ValueError(
                f"need at least {quant_levels * 2} bins for {quant_levels} "
                "quantization levels")
        self.bins = bins
        self.quant_levels = quant_levels
        self._counts: Optional[np.ndarray] = None
        self._width: Optional[float] = None

    def observe(self, tensor: np.ndarray) -> None:
        tensor = np.asarray(tensor)
        if tensor.size == 0:
            return
        super().observe(tensor)
        magnitudes = np.abs(tensor.ravel())
        hi = max(abs(self.min_val), abs(self.max_val)) or 1e-12
        if self._counts is None or hi / self.bins != self._width:
            # (Re)bin everything at the new width; keep old mass by
            # rebinning the existing histogram approximately.
            new_width = hi / self.bins
            new_counts = np.zeros(self.bins)
            if self._counts is not None and self._width:
                centers = (np.arange(self.bins) + 0.5) * self._width
                idx = np.minimum((centers / new_width).astype(int),
                                 self.bins - 1)
                np.add.at(new_counts, idx, self._counts)
            self._counts = new_counts
            self._width = new_width
        idx = np.minimum((magnitudes / self._width).astype(int), self.bins - 1)
        np.add.at(self._counts, idx, 1.0)

    @staticmethod
    def _kl(p: np.ndarray, q: np.ndarray) -> float:
        mask = p > 0
        q = np.where(q > 0, q, 1e-12)
        return float(np.sum(p[mask] * np.log(p[mask] / q[mask])))

    def quant_range(self) -> Tuple[float, float]:
        if self._counts is None:
            raise RuntimeError("observer saw no data")
        counts = self._counts
        best_kl = np.inf
        best_bin = self.bins
        # Candidate thresholds: from one bin per level up to all bins.
        for t in range(self.quant_levels, self.bins + 1,
                       max(1, self.bins // 128)):
            ref = counts[:t].copy()
            outliers = counts[t:].sum()
            ref[t - 1] += outliers           # clip tail into the last bin
            p = ref / max(ref.sum(), 1e-12)
            # quantize: merge t bins into quant_levels buckets, then expand
            edges = np.linspace(0, t, self.quant_levels + 1).astype(int)
            q = np.zeros(t)
            for b in range(self.quant_levels):
                lo, hi = edges[b], edges[b + 1]
                seg = counts[lo:hi]
                nz = (seg > 0).sum()
                if nz:
                    q[lo:hi] = np.where(seg > 0, seg.sum() / nz, 0.0)
            qs = q / max(q.sum(), 1e-12)
            kl = self._kl(p, qs)
            if kl < best_kl:
                best_kl = kl
                best_bin = t
        bound = best_bin * self._width
        if self.symmetric:
            return -bound, bound
        return max(self.min_val, -bound), min(self.max_val, bound)
