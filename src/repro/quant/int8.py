"""INT8 quantization primitives and post-training quantization (PTQ).

The hardware stores INT8 weights (8-bit weight columns in both PE designs,
Sec. 3.1) and streams activations bit-serially.  This module provides:

* :class:`QuantParams` — scale/zero-point pairs with quantize/dequantize.
* per-tensor and per-channel weight quantization,
* :func:`quantize_model_ptq` — fake-quantize a model's weights in place
  (simulating INT8 deployment for the Table 1 accuracy study),
* exact integer weight extraction for the PE functional simulators
  (:func:`quantize_weight_int`), which is what actually gets CSC-encoded and
  mapped to the arrays.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from ..nn.modules import Conv2d, Linear, Module
from .observer import MinMaxObserver

INT8_QMIN = -127  # symmetric, reserve -128 to keep |q| <= 127
INT8_QMAX = 127


@dataclasses.dataclass(frozen=True)
class QuantParams:
    """Affine quantization parameters ``q = round(x / scale) + zero_point``."""

    scale: float
    zero_point: int = 0
    qmin: int = INT8_QMIN
    qmax: int = INT8_QMAX

    def __post_init__(self):
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.qmin >= self.qmax:
            raise ValueError("qmin must be < qmax")

    def quantize(self, x: np.ndarray) -> np.ndarray:
        q = np.round(np.asarray(x) / self.scale) + self.zero_point
        return np.clip(q, self.qmin, self.qmax).astype(np.int32)

    def dequantize(self, q: np.ndarray) -> np.ndarray:
        return (np.asarray(q, dtype=np.float64) - self.zero_point) * self.scale

    def fake_quantize(self, x: np.ndarray) -> np.ndarray:
        """Round-trip through the integer grid (simulated quantization)."""
        return self.dequantize(self.quantize(x))

    @classmethod
    def from_range(cls, lo: float, hi: float, symmetric: bool = True,
                   qmin: int = INT8_QMIN, qmax: int = INT8_QMAX) -> "QuantParams":
        if hi < lo:
            raise ValueError(f"invalid range [{lo}, {hi}]")
        if symmetric:
            bound = max(abs(lo), abs(hi), 1e-12)
            return cls(scale=bound / qmax, zero_point=0, qmin=qmin, qmax=qmax)
        span = max(hi - lo, 1e-12)
        scale = span / (qmax - qmin)
        zp = int(round(qmin - lo / scale))
        return cls(scale=scale, zero_point=zp, qmin=qmin, qmax=qmax)

    @classmethod
    def from_tensor(cls, x: np.ndarray, symmetric: bool = True) -> "QuantParams":
        x = np.asarray(x)
        if x.size == 0:
            raise ValueError("cannot calibrate on an empty tensor")
        return cls.from_range(float(x.min()), float(x.max()), symmetric=symmetric)


def quantize_weight_int(weight: np.ndarray, symmetric: bool = True
                        ) -> Tuple[np.ndarray, QuantParams]:
    """Quantize a weight tensor to true INT8 integers (for the PE simulators).

    Zero weights stay exactly zero (zero_point = 0 in symmetric mode), which
    is required for the CSC encoding to preserve the N:M support.
    """
    params = QuantParams.from_tensor(weight, symmetric=symmetric)
    return params.quantize(weight), params


def per_channel_params(weight: np.ndarray, axis: int = 0) -> list:
    """Per-output-channel symmetric QuantParams (sharper than per-tensor)."""
    weight = np.asarray(weight)
    moved = np.moveaxis(weight, axis, 0).reshape(weight.shape[axis], -1)
    return [QuantParams.from_tensor(row) for row in moved]


def fake_quantize_per_channel(weight: np.ndarray, axis: int = 0) -> np.ndarray:
    """Round-trip each output channel through its own INT8 grid."""
    weight = np.asarray(weight)
    moved = np.moveaxis(weight, axis, 0)
    flat = moved.reshape(moved.shape[0], -1)
    out = np.empty_like(flat)
    for i, row in enumerate(flat):
        out[i] = QuantParams.from_tensor(row).fake_quantize(row)
    return np.moveaxis(out.reshape(moved.shape), 0, axis)


def quantize_model_ptq(model: Module, per_channel: bool = True,
                       trainable_only: bool = False) -> Dict[str, QuantParams]:
    """INT8 PTQ: replace every Linear/Conv2d weight by its fake-quantized value.

    This mirrors the paper's flow ("We only performed INT8 Post-Training
    Quantization"): weights move onto the INT8 grid; activations are handled
    by the bit-serial hardware at full observed range, so accuracy impact is
    dominated by the weight grid, which is what we simulate.

    Returns per-tensor :class:`QuantParams` (the per-channel variant returns
    the params of the flattened tensor for reporting, while quantizing each
    channel with its own scale).
    """
    report: Dict[str, QuantParams] = {}
    for name, mod in model.named_modules():
        if not isinstance(mod, (Linear, Conv2d)):
            continue
        w = mod.weight
        if trainable_only and not w.trainable:
            continue
        key = (name + "." if name else "") + "weight"
        report[key] = QuantParams.from_tensor(w.data)
        if per_channel:
            w.data = fake_quantize_per_channel(w.data, axis=0)
        else:
            w.data = report[key].fake_quantize(w.data)
    return report


class ActivationCalibrator:
    """Collect activation ranges layer-by-layer during a calibration pass.

    The PE simulators need an activation scale to run true-integer matmuls;
    this helper observes the inputs of chosen layers via forward hooks.
    """

    def __init__(self, symmetric: bool = True):
        self.symmetric = symmetric
        self.observers: Dict[str, MinMaxObserver] = {}

    def observe(self, name: str, activation: np.ndarray) -> None:
        obs = self.observers.setdefault(name, MinMaxObserver(self.symmetric))
        obs.observe(activation)

    def params(self) -> Dict[str, QuantParams]:
        return {name: QuantParams.from_range(*obs.quant_range(),
                                             symmetric=self.symmetric)
                for name, obs in self.observers.items() if obs.initialized}
