"""Quantization-aware training (QAT) — extension beyond the paper's PTQ.

The paper applies post-training quantization only ("We only performed INT8
Post-Training Quantization").  QAT — training against the straight-through
estimator (STE) of the quantizer — is the standard upgrade when PTQ loses
accuracy, and fits the hybrid system naturally: the SRAM-resident learnable
path is being trained anyway, so simulating the INT8 grid during that
training is free.

Implementation: :class:`FakeQuantize` wraps the round-to-grid operation as
an autograd node whose backward passes gradients straight through (STE),
and :func:`attach_qat` hot-wires it into existing ``Linear``/``Conv2d``
layers' forward paths without changing the model structure, so the N:M
pruner and the optimizer masks keep working unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..nn.modules import Conv2d, Linear, Module
from ..nn.tensor import Tensor
from .int8 import INT8_QMAX, INT8_QMIN, QuantParams


def fake_quantize_ste(x: Tensor, scale: float,
                      qmin: int = INT8_QMIN, qmax: int = INT8_QMAX) -> Tensor:
    """Round ``x`` to the INT8 grid with a straight-through gradient.

    Forward: ``clip(round(x / s), qmin, qmax) * s``.
    Backward: identity inside the clip range, zero outside (the standard
    clipped STE).
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    q = np.clip(np.round(x.data / scale), qmin, qmax) * scale
    out = x._make_child(q, (x,))
    if out.requires_grad:
        inside = (x.data >= qmin * scale) & (x.data <= qmax * scale)

        def _backward(g: np.ndarray) -> None:
            x._accumulate(g * inside)
        out._backward = _backward
    return out


class FakeQuantize:
    """Stateful weight fake-quantizer with a periodically refreshed scale."""

    def __init__(self, refresh_every: int = 16):
        if refresh_every < 1:
            raise ValueError("refresh_every must be >= 1")
        self.refresh_every = refresh_every
        self.scale: Optional[float] = None
        self._step = 0

    def __call__(self, weight: Tensor) -> Tensor:
        if self.scale is None or self._step % self.refresh_every == 0:
            bound = float(np.abs(weight.data).max()) or 1e-8
            self.scale = bound / INT8_QMAX
        self._step += 1
        return fake_quantize_ste(weight, self.scale)


def attach_qat(model: Module, trainable_only: bool = True,
               refresh_every: int = 16) -> Dict[str, FakeQuantize]:
    """Enable QAT on every Linear/Conv2d layer of ``model``.

    Replaces each layer's ``forward`` with a variant that fake-quantizes the
    weight (STE) before the matmul/convolution.  Returns the per-layer
    quantizers (keyed by module path) so callers can inspect scales.
    """
    quantizers: Dict[str, FakeQuantize] = {}
    for name, mod in model.named_modules():
        if not isinstance(mod, (Linear, Conv2d)):
            continue
        if trainable_only and not mod.weight.trainable:
            continue
        fq = FakeQuantize(refresh_every=refresh_every)
        quantizers[name or type(mod).__name__] = fq
        _wrap_forward(mod, fq)
    return quantizers


def _wrap_forward(mod: Module, fq: FakeQuantize) -> None:
    from ..nn import functional as F

    if isinstance(mod, Linear):
        def forward(x: Tensor, _mod=mod, _fq=fq) -> Tensor:
            return F.linear(x, _fq(_mod.weight), _mod.bias)
    else:
        def forward(x: Tensor, _mod=mod, _fq=fq) -> Tensor:
            return F.conv2d(x, _fq(_mod.weight), _mod.bias,
                            stride=_mod.stride, padding=_mod.padding)
    object.__setattr__(mod, "forward", forward)


def detach_qat(model: Module) -> None:
    """Remove QAT wrappers (restore the class-level forward)."""
    for _, mod in model.named_modules():
        if isinstance(mod, (Linear, Conv2d)) and "forward" in mod.__dict__:
            object.__delattr__(mod, "forward")


def finalize_qat(model: Module, trainable_only: bool = True
                 ) -> Dict[str, QuantParams]:
    """Bake the learned weights onto the INT8 grid and remove the wrappers.

    After this the model is a plain PTQ'd model whose weights were *trained
    to like* the grid.
    """
    report: Dict[str, QuantParams] = {}
    for name, mod in model.named_modules():
        if not isinstance(mod, (Linear, Conv2d)):
            continue
        if trainable_only and not mod.weight.trainable:
            continue
        params = QuantParams.from_tensor(mod.weight.data)
        mod.weight.data = params.fake_quantize(mod.weight.data)
        report[(name or type(mod).__name__) + ".weight"] = params
    detach_qat(model)
    return report
