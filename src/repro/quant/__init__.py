"""INT8 quantization: observers, quant params, PTQ and integer extraction."""

from .int8 import (INT8_QMAX, INT8_QMIN, ActivationCalibrator, QuantParams,
                   fake_quantize_per_channel, per_channel_params,
                   quantize_model_ptq, quantize_weight_int)
from .observer import (HistogramObserver, MinMaxObserver,
                       PercentileObserver)
from .qat import (FakeQuantize, attach_qat, detach_qat, fake_quantize_ste,
                  finalize_qat)

__all__ = [
    "QuantParams", "quantize_weight_int", "per_channel_params",
    "fake_quantize_per_channel", "quantize_model_ptq", "ActivationCalibrator",
    "INT8_QMIN", "INT8_QMAX",
    "MinMaxObserver", "PercentileObserver", "HistogramObserver",
    "FakeQuantize", "fake_quantize_ste", "attach_qat", "detach_qat",
    "finalize_qat",
]
