"""Benchmark collection: model metrics + timing metrics -> BENCH_harness.json.

Two metric families, tagged by ``kind``:

``model``
    Deterministic analytical outputs — Fig. 7 normalized area/power per
    design, Fig. 8 normalized EDP per configuration, the Table 2 MTJ
    write-energy compact-model check.  Bit-stable across runs, so the
    regression gate holds them to a tight relative tolerance.

``timing``
    Simulator throughput — PE-kernel matmuls at the paper's geometries
    (every implementation), plan construction (charged separately from
    the matmuls), CSC encode, harness build wall times, and the
    per-pattern-class corpus sweep (``ns/nnz`` + GFLOP-equiv/s per
    corpus item and impl).  Measured with monotonic ``perf_counter_ns``
    warmed best-of-N; inherently machine-dependent, so the gate only
    fails on large slowdowns (or, for throughput, large drops).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

import numpy as np

from ..core.effects import reentrant

#: Schema tag stamped into every benchmark document.
BENCH_SCHEMA = "repro.bench/1"

#: Canonical output filename (what CI uploads as an artifact).
CANONICAL_OUTPUT = "BENCH_harness.json"

#: The committed baseline the ``--check`` gate compares against.
BASELINE_PATH = "benchmarks/baselines/BENCH_harness.json"

#: Best-of-N repeats for the timing family (small: CI minutes are shared).
DEFAULT_REPEATS = 5

#: Batch rows for the corpus throughput sweep.
CORPUS_BATCH = 64

#: Implementations raced over the corpus ("reference" is left to the
#: differential suite — racing it here would dominate CI minutes).
CORPUS_IMPLS = ("fast", "flat")

#: Lower-only tolerance for throughput metrics: fail when GFLOP-equiv/s
#: drops by more than this fraction (0.75 ~ the 4x-slower limit the
#: duration family's ``TIMING_RTOL`` allows, expressed as a decrease).
GFLOPS_RTOL = 0.75


def _metric(value: float, kind: str, unit: str,
            rtol: Optional[float] = None,
            direction: Optional[str] = None) -> Dict[str, object]:
    entry: Dict[str, object] = {
        "value": float(value), "kind": kind, "unit": unit}
    if rtol is not None:
        entry["rtol"] = rtol               # per-metric gate override
    if direction is not None:
        entry["direction"] = direction     # 'both'|'increase'|'decrease'
    return entry


def _slug(label: str) -> str:
    """Design labels -> stable metric-key fragments (no spaces)."""
    return label.replace(" ", "_")


# ---------------------------------------------------------------------------
# Model metrics (deterministic)
# ---------------------------------------------------------------------------

@reentrant(reason="model metrics feed the regression gate: any hidden "
                  "state would turn gate failures into flakes")
def collect_model_metrics() -> Dict[str, Dict[str, object]]:
    """Key model outputs of the fig7/fig8/table2 harnesses."""
    from ..harness.fig7 import build_fig7
    from ..harness.fig8 import build_fig8
    from ..harness.table2 import build_table2

    metrics: Dict[str, Dict[str, object]] = {}

    fig7 = build_fig7()
    for row in fig7["rows"]:
        design = _slug(row["design"])
        metrics[f"fig7.{design}.area_rel"] = _metric(
            row["area_rel"], "model", "x")
        metrics[f"fig7.{design}.power_rel"] = _metric(
            row["power_rel"], "model", "x")

    fig8 = build_fig8()
    for row in fig8["rows"]:
        key = f"fig8.{_slug(row['group'])}.{_slug(row['design'])}"
        metrics[f"{key}.edp_rel"] = _metric(row["edp_rel"], "model", "x")

    table2 = build_table2()
    dev = table2["mtj_device"]
    metrics["table2.mtj.set_reset_energy_pj_model"] = _metric(
        dev["set_reset_energy_pj_model"], "model", "pJ")
    metrics["table2.mtj.sense_margin_ua"] = _metric(
        dev["sense_margin_ua_at_0p1v"], "model", "uA")
    return metrics


@reentrant(reason="the smoke sweep runs serial and cache-less so the "
                  "gate can pin its frontier bit-exactly")
def collect_dse_metrics() -> Dict[str, Dict[str, object]]:
    """Frontier invariants of the smoke design-space sweep (``repro.dse``).

    Serial, cache-less, pure-analytical — bit-stable like every other
    model metric, so the gate pins the sweep's Pareto reduction end to
    end: frontier size plus each objective's best value across the
    frontier.
    """
    from ..dse import SMOKE_SPEC, NullCache, run_sweep

    result = run_sweep(spec=SMOKE_SPEC, workers=1, cache=NullCache())
    frontier = result["frontier"]
    metrics: Dict[str, Dict[str, object]] = {
        "dse.smoke.frontier_size": _metric(
            len(frontier), "model", "configs"),
        "dse.smoke.errors": _metric(
            len(result["errors"]), "model", "configs"),
    }
    if frontier:
        values = {k: [r["metrics"][k] for r in frontier]
                  for k in ("area_mm2", "inference_power_mw",
                            "training_edp_js", "density")}
        metrics["dse.smoke.area_mm2_min"] = _metric(
            min(values["area_mm2"]), "model", "mm2")
        metrics["dse.smoke.inference_power_mw_min"] = _metric(
            min(values["inference_power_mw"]), "model", "mW")
        metrics["dse.smoke.training_edp_js_min"] = _metric(
            min(values["training_edp_js"]), "model", "Js")
        metrics["dse.smoke.density_max"] = _metric(
            max(values["density"]), "model", "frac")
    return metrics


# ---------------------------------------------------------------------------
# Timing metrics (machine-dependent)
# ---------------------------------------------------------------------------

def _best_of(fn: Callable[[], object], repeats: int,
             warmup: int = 1) -> float:
    """Best-of-N wall time of ``fn()`` in milliseconds (monotonic clock).

    The untimed warmup calls populate lazily-built state (kernel plans,
    flat layouts, the workspace pool) so the measured best reflects
    steady-state cost, never first-call construction — plan build has
    its own ``timing.kernel.plan_build.*`` metrics.
    """
    for _ in range(warmup):
        fn()
    best_ns: Optional[int] = None
    for _ in range(repeats):
        start = time.perf_counter_ns()
        fn()
        elapsed = time.perf_counter_ns() - start
        if best_ns is None or elapsed < best_ns:
            best_ns = elapsed
    return (best_ns or 0) / 1e6


def _make_sparse(rng: np.random.Generator, shape, pattern) -> np.ndarray:
    from ..sparsity import compute_nm_mask

    dense = rng.integers(-127, 128, size=shape)
    mask = compute_nm_mask(np.abs(dense).astype(float), pattern, axis=0)
    return (dense * mask).astype(np.int64)


@reentrant(reason="timing inputs are seeded and clocks are allowed "
                  "ambient state; only durations may vary across runs")
def collect_timing_metrics(repeats: int = DEFAULT_REPEATS
                           ) -> Dict[str, Dict[str, object]]:
    """PE-kernel micro-benchmarks + harness build wall times."""
    from ..core.csc import CSCMatrix
    from ..core.kernels import KERNEL_IMPLEMENTATIONS, KernelPlan
    from ..core.mram_pe import MRAMSparsePE
    from ..core.sram_pe import SRAMSparsePE
    from ..harness.fig7 import build_fig7
    from ..harness.fig8 import build_fig8
    from ..sparsity import NMPattern

    rng = np.random.default_rng(0)
    pattern = NMPattern(1, 4)
    metrics: Dict[str, Dict[str, object]] = {}

    # PE matmuls at the paper's geometries, every kernel implementation
    # (mirrors benchmarks/test_bench_pe_kernels.py).  ``load`` builds the
    # plan once and ``_best_of``'s warmup call absorbs any lazy per-plan
    # state, so these time the steady-state matmul alone.
    sram_w = _make_sparse(rng, (128, 8), pattern)
    sram_x = rng.integers(-128, 128, size=(16, 128))
    mram_w = _make_sparse(rng, (256, 32), pattern)
    mram_x = rng.integers(-128, 128, size=(16, 256))
    for impl in KERNEL_IMPLEMENTATIONS:
        sram_pe = SRAMSparsePE(kernel=impl)
        sram_pe.load(sram_w, pattern)
        metrics[f"timing.kernel.sram_matmul.{impl}_ms"] = _metric(
            _best_of(lambda pe=sram_pe: pe.matmul(sram_x), repeats),
            "timing", "ms")
        mram_pe = MRAMSparsePE(kernel=impl)
        mram_pe.load(mram_w, pattern)
        metrics[f"timing.kernel.mram_matmul.{impl}_ms"] = _metric(
            _best_of(lambda pe=mram_pe: pe.matmul(mram_x), repeats),
            "timing", "ms")

    # Plan construction, charged separately from the matmuls above so a
    # flat-vs-fast comparison never hides build cost in either column.
    sram_csc = CSCMatrix.from_dense(sram_w, pattern)
    mram_csc = CSCMatrix.from_dense(mram_w, pattern)
    metrics["timing.kernel.plan_build.sram_ms"] = _metric(
        _best_of(lambda: KernelPlan.from_csc(sram_csc), repeats),
        "timing", "ms")
    metrics["timing.kernel.plan_build.mram_ms"] = _metric(
        _best_of(lambda: KernelPlan.from_csc(mram_csc), repeats),
        "timing", "ms")
    metrics["timing.kernel.plan_build.mram_flat_ms"] = _metric(
        _best_of(lambda: KernelPlan.from_csc(mram_csc).flat_layout, repeats),
        "timing", "ms")

    csc_w = _make_sparse(rng, (1024, 64), pattern)
    metrics["timing.kernel.csc_encode_ms"] = _metric(
        _best_of(lambda: CSCMatrix.from_dense(csc_w, pattern), repeats),
        "timing", "ms")

    # Harness builds (analytical design sweeps — the DSE inner loop).
    metrics["timing.harness.fig7_build_ms"] = _metric(
        _best_of(build_fig7, max(2, repeats // 2)), "timing", "ms")
    metrics["timing.harness.fig8_build_ms"] = _metric(
        _best_of(build_fig8, max(2, repeats // 2)), "timing", "ms")
    return metrics


# ---------------------------------------------------------------------------
# Corpus throughput (per pattern-class x shape x impl)
# ---------------------------------------------------------------------------

@reentrant(reason="corpus inputs are manifest-pinned and clocks are "
                  "allowed ambient state; only durations may vary")
def collect_corpus_metrics(repeats: int = DEFAULT_REPEATS
                           ) -> Dict[str, Dict[str, object]]:
    """Gather-family throughput over the sparse-pattern corpus.

    One plan per corpus item, raced across :data:`CORPUS_IMPLS` at a
    fixed batch.  Two timing views per (item, impl): ``ns_per_nnz``
    (wall nanoseconds per multiply-accumulate — the size-normalized
    number that is comparable across shapes and densities) and
    ``gflops`` (GFLOP-equivalent/s at 2 ops per MAC, gated lower-only
    via ``direction: decrease``).  Each item's nnz rides along as a
    model metric, pinning the corpus structure into the baseline.
    """
    from ..core.csc import CSCMatrix
    from ..core.kernels import KernelPlan, spmm_gather
    from ..corpus import corpus_items, generate
    from ..sparsity import NMPattern

    rng = np.random.default_rng(1)
    # Encoding group only (any sparsity accepted): the corpus spans
    # patterns far outside N:M, so the CSC check runs non-strict.
    group = NMPattern(16, 16)
    metrics: Dict[str, Dict[str, object]] = {}
    for item in corpus_items():
        weights = generate(item)
        plan = KernelPlan.from_csc(
            CSCMatrix.from_dense(weights, group, strict=False))
        acts = rng.integers(-127, 128, size=(CORPUS_BATCH, item.shape[0]))
        macs = plan.nnz * CORPUS_BATCH
        if macs == 0:
            continue
        metrics[f"corpus.{item.name}.nnz"] = _metric(
            plan.nnz, "model", "nnz")
        for impl in CORPUS_IMPLS:
            ms = _best_of(
                lambda impl=impl: spmm_gather(plan, acts, impl=impl),
                repeats)
            metrics[f"timing.corpus.{item.name}.{impl}.ns_per_nnz"] = \
                _metric(ms * 1e6 / macs, "timing", "ns")
            metrics[f"timing.corpus.{item.name}.{impl}.gflops"] = _metric(
                2.0 * macs / (ms * 1e6), "timing", "GFLOP/s",
                rtol=GFLOPS_RTOL, direction="decrease")
    return metrics


def render_corpus_table(metrics: Dict[str, Dict[str, object]]) -> str:
    """Per-(pattern-class x shape) timing table (the CI artifact)."""
    from ..corpus import corpus_items
    from ..harness.reporting import format_table

    rows = []
    for item in corpus_items():
        key = f"timing.corpus.{item.name}"
        if f"{key}.fast.ns_per_nnz" not in metrics:
            continue
        fast_ns = metrics[f"{key}.fast.ns_per_nnz"]["value"]
        flat_ns = metrics[f"{key}.flat.ns_per_nnz"]["value"]
        rows.append([
            item.pattern_class, f"{item.shape[0]}x{item.shape[1]}",
            int(metrics[f"corpus.{item.name}.nnz"]["value"]),
            fast_ns, flat_ns,
            metrics[f"{key}.fast.gflops"]["value"],
            metrics[f"{key}.flat.gflops"]["value"],
            f"{fast_ns / flat_ns:.2f}x",
        ])
    return format_table(
        ["Class", "Shape", "nnz", "fast ns/nnz", "flat ns/nnz",
         "fast GFLOP/s", "flat GFLOP/s", "flat speedup"],
        rows,
        title=f"Corpus throughput (gather family, batch {CORPUS_BATCH})")


# ---------------------------------------------------------------------------
# The full run
# ---------------------------------------------------------------------------

def run_bench(repeats: int = DEFAULT_REPEATS,
              include_timings: bool = True,
              include_corpus: bool = True) -> Dict[str, object]:
    """Run the whole suite; returns the canonical benchmark document."""
    from ..obs import get_tracer

    tracer = get_tracer()
    metrics: Dict[str, Dict[str, object]] = {}
    with tracer.span("bench.model_metrics"):
        metrics.update(collect_model_metrics())
    with tracer.span("bench.dse_metrics"):
        metrics.update(collect_dse_metrics())
    if include_timings:
        with tracer.span("bench.timing_metrics", repeats=repeats):
            metrics.update(collect_timing_metrics(repeats=repeats))
        if include_corpus:
            with tracer.span("bench.corpus_metrics", repeats=repeats):
                metrics.update(collect_corpus_metrics(repeats=repeats))
    return {
        "schema": BENCH_SCHEMA,
        "repeats": repeats,
        "metrics": metrics,
    }
