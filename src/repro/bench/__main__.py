"""``python -m repro.bench`` — run the benchmark suite / regression gate.

.. code-block:: bash

    python -m repro.bench                     # run, write BENCH_harness.json
    python -m repro.bench --check             # + compare vs committed baseline
    python -m repro.bench --update-baseline   # rewrite the baseline
    python -m repro.bench --corpus            # corpus throughput sweep only
    python -m repro.bench --corpus-table corpus.txt  # per-class timing table
    python -m repro.bench --trace bench.trace.json   # + smoke Chrome trace
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional

from .compare import compare_metrics, render_check_report
from .runner import BASELINE_PATH, CANONICAL_OUTPUT, DEFAULT_REPEATS, run_bench


def _write(path: pathlib.Path, doc: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the model/timing benchmark suite and optionally "
                    "gate against the committed baseline.")
    parser.add_argument("--out", default=CANONICAL_OUTPUT,
                        help=f"output JSON path (default: {CANONICAL_OUTPUT})")
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help=f"baseline JSON path (default: {BASELINE_PATH})")
    parser.add_argument("--check", action="store_true",
                        help="compare against the baseline; exit nonzero on "
                             "any regression or missing metric")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from this run")
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS,
                        help="best-of-N repeats for timing metrics "
                             f"(default: {DEFAULT_REPEATS})")
    parser.add_argument("--no-timings", action="store_true",
                        help="model metrics only (deterministic subset)")
    parser.add_argument("--corpus", action="store_true",
                        help="run only the per-pattern corpus throughput "
                             "sweep and print its table (quick local mode; "
                             "not combinable with --check)")
    parser.add_argument("--no-corpus", action="store_true",
                        help="skip the corpus sweep in a full run")
    parser.add_argument("--corpus-table", default=None, metavar="PATH",
                        help="write the per-pattern-class timing table "
                             "here (the CI artifact)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="enable span tracing; write a Chrome "
                             "trace_events file here")
    args = parser.parse_args(argv)

    from ..harness.reporting import begin_trace, finish_trace
    from .runner import BENCH_SCHEMA, collect_corpus_metrics, \
        render_corpus_table

    if args.corpus:
        if args.check or args.update_baseline:
            print("error: --corpus is a subset run; it cannot gate or "
                  "rewrite the full baseline", file=sys.stderr)
            return 2
        begin_trace(args.trace)
        metrics = collect_corpus_metrics(repeats=args.repeats)
        finish_trace(args.trace)
        doc = {"schema": BENCH_SCHEMA, "repeats": args.repeats,
               "metrics": metrics}
        out_path = pathlib.Path(args.out)
        _write(out_path, doc)
        table = render_corpus_table(metrics)
        if args.corpus_table is not None:
            table_path = pathlib.Path(args.corpus_table)
            table_path.parent.mkdir(parents=True, exist_ok=True)
            table_path.write_text(table + "\n")
        print(table)
        print(f"\nwrote {out_path} ({len(metrics)} metrics)")
        return 0

    begin_trace(args.trace)
    doc = run_bench(repeats=args.repeats,
                    include_timings=not args.no_timings,
                    include_corpus=not args.no_corpus)
    finish_trace(args.trace)

    out_path = pathlib.Path(args.out)
    _write(out_path, doc)
    print(f"wrote {out_path} ({len(doc['metrics'])} metrics)")

    if args.corpus_table is not None:
        table_path = pathlib.Path(args.corpus_table)
        table_path.parent.mkdir(parents=True, exist_ok=True)
        table_path.write_text(render_corpus_table(doc["metrics"]) + "\n")
        print(f"wrote corpus timing table to {table_path}")

    if args.update_baseline:
        base_path = pathlib.Path(args.baseline)
        _write(base_path, doc)
        print(f"updated baseline {base_path}")
        return 0

    if not args.check:
        return 0

    base_path = pathlib.Path(args.baseline)
    if not base_path.exists():
        print(f"error: baseline {base_path} not found "
              "(run with --update-baseline to create it)", file=sys.stderr)
        return 2
    with open(base_path, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)

    results = compare_metrics(doc, baseline)
    print()
    print(render_check_report(results))
    failed = [r for r in results if r.failed]
    if failed:
        for r in failed:
            print(f"FAIL {r.name}: {r.detail}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
