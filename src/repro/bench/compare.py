"""The ``--check`` comparator: current run vs the committed baseline.

Every baseline metric must be present in the current run and within its
relative tolerance.  Tolerances are per-metric: an explicit ``rtol`` /
``direction`` on the baseline entry wins; otherwise the ``kind`` default
applies — tight two-sided for deterministic ``model`` outputs, generous
increase-only for machine-dependent ``timing`` values (faster is never a
regression).  Throughput-style metrics where *bigger* is better declare
``direction: decrease`` on their baseline entries and fail only on large
drops.  Metrics only present in the current run are reported as
``new`` (informational, so adding a benchmark never breaks the gate —
commit an updated baseline to start gating it).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping

#: Default relative tolerance for deterministic model outputs (two-sided).
MODEL_RTOL = 1e-6

#: Default relative tolerance for timings: fail only when the current run
#: is slower than baseline by more than this fraction (3.0 -> 4x slower),
#: absorbing cross-machine and CI-runner noise.
TIMING_RTOL = 3.0

#: Statuses that make the gate fail.
FAILING = ("regressed", "missing")


@dataclasses.dataclass
class CheckResult:
    """One metric's verdict."""

    name: str
    status: str                # 'ok' | 'regressed' | 'missing' | 'new'
    baseline: float = float("nan")
    current: float = float("nan")
    rel_delta: float = 0.0     # (current - baseline) / |baseline|
    limit: float = 0.0         # the tolerance that applied
    detail: str = ""

    @property
    def failed(self) -> bool:
        return self.status in FAILING


def _tolerance(entry: Mapping[str, object]) -> float:
    if "rtol" in entry:
        return float(entry["rtol"])           # explicit per-metric override
    return TIMING_RTOL if entry.get("kind") == "timing" else MODEL_RTOL


def _direction(entry: Mapping[str, object]) -> str:
    if "direction" in entry:
        return str(entry["direction"])        # 'both'|'increase'|'decrease'
    return "increase" if entry.get("kind") == "timing" else "both"


def compare_metrics(current: Mapping[str, object],
                    baseline: Mapping[str, object]) -> List[CheckResult]:
    """Compare two benchmark documents; one :class:`CheckResult` per metric."""
    cur_metrics: Dict[str, Mapping[str, object]] = dict(
        current.get("metrics", {}))
    base_metrics: Mapping[str, Mapping[str, object]] = baseline.get(
        "metrics", {})
    results: List[CheckResult] = []

    for name in sorted(base_metrics):
        entry = base_metrics[name]
        base_value = float(entry["value"])
        rtol = _tolerance(entry)
        direction = _direction(entry)
        cur_entry = cur_metrics.pop(name, None)
        if cur_entry is None:
            results.append(CheckResult(
                name=name, status="missing", baseline=base_value, limit=rtol,
                detail="metric absent from the current run"))
            continue
        cur_value = float(cur_entry["value"])
        denom = abs(base_value) if base_value else 1.0
        rel = (cur_value - base_value) / denom
        if direction == "increase":
            exceeded = rel > rtol          # slower-only (durations)
        elif direction == "decrease":
            exceeded = rel < -rtol         # lower-only (throughput)
        else:
            exceeded = abs(rel) > rtol     # two-sided (model outputs)
        results.append(CheckResult(
            name=name, status="regressed" if exceeded else "ok",
            baseline=base_value, current=cur_value, rel_delta=rel,
            limit=rtol,
            detail=f"rel delta {rel:+.3g} vs rtol {rtol:g} ({direction})"))

    for name in sorted(cur_metrics):
        results.append(CheckResult(
            name=name, status="new",
            current=float(cur_metrics[name]["value"]),
            detail="not in baseline (informational)"))
    return results


def render_check_report(results: List[CheckResult]) -> str:
    """Fixed-width report of a comparison (the CI log format)."""
    from ..harness.reporting import format_table

    rows = []
    for r in results:
        rows.append([
            "FAIL" if r.failed else r.status.upper(),
            r.name,
            "-" if r.status == "new" else f"{r.baseline:.6g}",
            "-" if r.status == "missing" else f"{r.current:.6g}",
            "-" if r.status in ("new", "missing") else f"{r.rel_delta:+.3g}",
        ])
    failed = [r for r in results if r.failed]
    title = (f"bench --check: {len(failed)} failing / {len(results)} metrics"
             if failed else
             f"bench --check: all {len(results)} metrics within tolerance")
    return format_table(["Status", "Metric", "Baseline", "Current", "Rel d"],
                        rows, title=title)
