"""``repro.bench`` — the benchmark/regression harness behind CI's bench gate.

``python -m repro.bench`` runs a fixed suite of *model metrics* (the
deterministic normalized area/power/EDP outputs behind Fig. 7/Fig. 8 and
the Table 2 device checks) and *timing metrics* (PE-kernel matmul
micro-benchmarks plus harness build wall times, monotonic best-of-N), and
emits the canonical ``BENCH_harness.json``.

``--check`` compares the run against the committed baseline under
``benchmarks/baselines/`` with per-metric relative tolerances — exact-ish
for model outputs (they must not drift at all), generous and
slower-only for timings (cross-machine noise) — and exits nonzero on any
regression or missing metric.  ``--update-baseline`` rewrites the
baseline after an intentional change (see README "Updating the benchmark
baseline").
"""

from .compare import (CheckResult, MODEL_RTOL, TIMING_RTOL, compare_metrics,
                      render_check_report)
from .runner import (BASELINE_PATH, BENCH_SCHEMA, CANONICAL_OUTPUT,
                     collect_model_metrics, collect_timing_metrics, run_bench)

__all__ = [
    "BENCH_SCHEMA", "CANONICAL_OUTPUT", "BASELINE_PATH",
    "run_bench", "collect_model_metrics", "collect_timing_metrics",
    "CheckResult", "MODEL_RTOL", "TIMING_RTOL", "compare_metrics",
    "render_check_report",
]
