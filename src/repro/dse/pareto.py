"""Deterministic Pareto reduction over evaluation records.

Objectives (all minimized; density is maximized via sign flip):
area, inference power, training EDP, negated density — the four axes of
the ROADMAP's production sweep.

Determinism contract: :func:`pareto_reduce` is a function of the record
*set* — the result is identical under any input permutation (worker
count, completion order, cache hit pattern).  Achieved by sorting on the
signed objective vector with the config content hash as the final
tie-break, then a single skyline pass.  Tie handling: records whose
objective vectors are exactly equal keep exactly one canonical
representative (the first in sort order), never zero, never both.
Idempotent: ``pareto_reduce(pareto_reduce(x)) == pareto_reduce(x)``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

#: (metric key, sign) — signed values are minimized.
OBJECTIVES: Tuple[Tuple[str, float], ...] = (
    ("area_mm2", 1.0),
    ("inference_power_mw", 1.0),
    ("training_edp_js", 1.0),
    ("density", -1.0),
)

#: The metric keys the frontier is computed over (export metadata).
OBJECTIVE_KEYS = tuple(key for key, _ in OBJECTIVES)


def objective_vector(record: Mapping[str, object]) -> Tuple[float, ...]:
    """The record's signed (minimize-all) objective values."""
    metrics = record["metrics"]
    return tuple(sign * float(metrics[key]) for key, sign in OBJECTIVES)


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Vector dominance: ``a`` no worse everywhere, strictly better once."""
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b))


def record_sort_key(record: Mapping[str, object]) -> Tuple:
    """Total order: objectives, then the content hash as a stable tie-break."""
    return objective_vector(record) + (str(record.get("key", "")),)


def pareto_reduce(records: Sequence[Mapping[str, object]]
                  ) -> List[Dict[str, object]]:
    """The non-dominated records, in canonical sort order.

    Error records (no ``metrics``) are excluded up front.  Single skyline
    pass over the lexicographically sorted records: a later record can
    never dominate an earlier one (dominance would force it to sort
    first), so each candidate only needs checking against the accepted
    front — O(n * front) instead of O(n^2).
    """
    valid = [r for r in records if "error" not in r and "metrics" in r]
    ordered = sorted(valid, key=record_sort_key)
    front: List[Dict[str, object]] = []
    front_vectors: List[Tuple[float, ...]] = []
    seen: set = set()
    for record in ordered:
        vec = objective_vector(record)
        if vec in seen:
            continue                      # duplicate of a processed vector
        seen.add(vec)
        if any(dominates(f, vec) for f in front_vectors):
            continue
        front.append(dict(record))
        front_vectors.append(vec)
    return front
