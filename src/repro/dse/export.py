"""Deterministic exports: frontier/records JSON, CSV, stdout tables."""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Dict, List, Mapping, Optional, Sequence

from ..harness.reporting import format_table
from .evaluate import METRIC_KEYS
from .spec import CONFIG_KEYS


def dumps_canonical(doc: Mapping[str, object]) -> str:
    """Sorted-keys, indented JSON with a trailing newline — the byte-stable
    serialization the determinism tests and the CI ``cmp`` rely on."""
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def write_json(doc: Mapping[str, object], path) -> pathlib.Path:
    p = pathlib.Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with open(p, "w", encoding="utf-8") as fh:
        fh.write(dumps_canonical(doc))
    return p


def write_csv(records: Sequence[Mapping[str, object]], path) -> pathlib.Path:
    """One row per record: config levers, metrics, error (stable columns)."""
    p = pathlib.Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    fields = (["key"] + list(CONFIG_KEYS) + list(METRIC_KEYS) + ["error"])
    with open(p, "w", encoding="utf-8", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields)
        writer.writeheader()
        for record in records:
            row: Dict[str, object] = {"key": record.get("key", "")}
            config = record.get("config", {})
            row.update({k: config.get(k, "") for k in CONFIG_KEYS})
            metrics = record.get("metrics", {})
            row.update({k: metrics.get(k, "") for k in METRIC_KEYS})
            error = record.get("error")
            row["error"] = (f"{error['type']}: {error['message']}"
                            if error else "")
            writer.writerow(row)
    return p


def render_frontier(result: Mapping[str, object],
                    limit: Optional[int] = 20) -> str:
    """Stdout table of the Pareto frontier (truncated for big sweeps)."""
    frontier: List[Mapping[str, object]] = list(result["frontier"])
    shown = frontier if limit is None else frontier[:limit]
    rows = []
    for record in shown:
        cfg, met = record["config"], record["metrics"]
        rows.append([
            cfg["pattern"], cfg["bus_bits"], cfg["mram_rows"],
            cfg["weight_bits"], cfg["device"],
            met["area_mm2"], met["inference_power_mw"],
            met["training_edp_js"], met["density"],
        ])
    title = (f"Pareto frontier — {len(frontier)} of "
             f"{result['configs']} configs")
    if len(shown) < len(frontier):
        title += f" (showing {len(shown)})"
    return format_table(
        ["Pattern", "Bus", "Rows", "Wbits", "Device", "Area (mm2)",
         "Power (mW)", "EDP (Js)", "Density"],
        rows, title=title)


def render_summary(result: Mapping[str, object]) -> str:
    """The one-line sweep accounting (cache hits, errors, frontier size)."""
    cache = result.get("cache") or {}
    parts = [f"{result['configs']} configs",
             f"{len(result['frontier'])} on frontier",
             f"{len(result['errors'])} errors"]
    if cache:
        parts.append(f"cache: {cache['hits']} hits / {cache['misses']} "
                     f"misses / {cache['rejected']} rejected")
    return ", ".join(parts)
