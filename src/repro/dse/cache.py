"""Content-hash disk cache: canonical-JSON config -> evaluation record.

One file per config under the cache root, named by the config's SHA-256
key (see :func:`repro.dse.spec.config_key`).  Each entry wraps the record
with a schema tag and a checksum over the record's canonical JSON, so a
truncated, corrupted, or hand-edited file is *detected and recomputed*,
never returned as a result:

* unreadable / non-JSON / non-dict payload        -> rejected
* wrong entry schema or wrong embedded key        -> rejected
* checksum mismatch (any byte of the record bent) -> rejected
* record schema drift (format upgraded)           -> rejected

Writes are atomic (tmp file + ``os.replace``) so a crashed sweep can never
leave a half-written entry that passes validation.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import threading
from typing import Dict, Optional, Tuple

from ..core.concurrency import guarded_by
from ..core.effects import reentrant
from .evaluate import RECORD_SCHEMA
from .spec import canonical_json

#: Schema tag of one cache-entry file.
CACHE_SCHEMA = "repro.dse/cache/1"

#: Where ``python -m repro.dse`` caches by default.
DEFAULT_CACHE_DIR = os.path.join("results", "dse_cache")


def record_checksum(record: Dict[str, object]) -> str:
    """SHA-256 over the record's canonical JSON."""
    return hashlib.sha256(canonical_json(record).encode("ascii")).hexdigest()


@guarded_by("_lock", "hits", "misses", "rejected", "stored")
class DiskCache:
    """Keyed record store with hit/miss/rejection accounting.

    One instance is shared by every request-handler thread behind the
    serve layer's batching queue, so the counters are guarded by
    ``_lock`` (declared above, verified by lint rule R11).  File IO
    stays *outside* the lock (rule R12): entry bytes are self-validating
    and writes are atomic ``tmp + os.replace``, so the lock only has to
    make the accounting consistent, never the files.

    The cache never crosses a process boundary — sweep shards receive
    bare config dicts, not the cache — so holding an (unpicklable) lock
    here does not conflict with rule R10 worker-shippability.
    """

    def __init__(self, root: os.PathLike = DEFAULT_CACHE_DIR,
                 enabled: bool = True, refresh: bool = False):
        self.root = pathlib.Path(root)
        self.enabled = enabled
        #: ``refresh=True``: ignore existing entries (recompute) but still
        #: store the fresh results — the ``--refresh`` escape hatch.
        self.refresh = refresh
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.rejected = 0
        self.stored = 0

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    # ------------------------------------------------------------------ read
    @reentrant(reason="cache reads race with concurrent sweeps; validation "
                      "must depend on the entry bytes alone (counters on "
                      "self are caller-owned, not module state)")
    def lookup(self, key: str) -> Optional[Dict[str, object]]:
        """The cached record for ``key``, or None (counted as miss).

        Any validation failure counts as *rejected* (and a miss): the
        caller recomputes, then :meth:`store` overwrites the bad entry.
        """
        if not self.enabled or self.refresh:
            with self._lock:
                self.misses += 1
            return None
        record, rejected = self._validated(key)      # file IO, lock-free
        with self._lock:
            if rejected:
                self.rejected += 1
            if record is None:
                self.misses += 1
            else:
                self.hits += 1
        return record

    def _validated(self, key: str
                   ) -> Tuple[Optional[Dict[str, object]], bool]:
        """``(record, rejected)`` from the entry file, touching no counters.

        ``rejected`` is True when a file existed but failed validation
        (the caller accounts for it under the lock); a missing file is
        ``(None, False)`` — a plain miss.
        """
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            return None, False
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None, True
        if not isinstance(entry, dict) or entry.get("schema") != CACHE_SCHEMA:
            return None, True
        record = entry.get("record")
        if (entry.get("key") != key or not isinstance(record, dict)
                or record.get("schema") != RECORD_SCHEMA
                or record.get("key") != key):
            return None, True
        try:
            checksum = record_checksum(record)
        except (TypeError, ValueError):
            return None, True
        if entry.get("checksum") != checksum:
            return None, True
        return record, False

    # ----------------------------------------------------------------- write
    @reentrant(reason="atomic tmp+replace write: safe under concurrent "
                      "stores of the same key from racing shards")
    def store(self, key: str, record: Dict[str, object]) -> None:
        if not self.enabled:
            return
        entry = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "checksum": record_checksum(record),
            "record": record,
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        with self._lock:
            self.stored += 1

    # ------------------------------------------------------------------ misc
    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {"enabled": self.enabled, "refresh": self.refresh,
                    "root": str(self.root), "hits": self.hits,
                    "misses": self.misses, "rejected": self.rejected,
                    "stored": self.stored}


class NullCache(DiskCache):
    """The ``--no-cache`` cache: never reads, never writes."""

    def __init__(self):
        super().__init__(root=DEFAULT_CACHE_DIR, enabled=False)
