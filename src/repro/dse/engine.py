"""The sharded sweep engine: enumerate -> cache -> evaluate -> reduce.

Execution model:

* Configs are normalized and content-hashed up front, in spec enumeration
  order — that order is the merge order, so results are independent of how
  shards complete.
* Cache lookups run first; only misses are evaluated.
* Evaluation shards across worker processes
  (``concurrent.futures.ProcessPoolExecutor``) when ``workers > 1``, with
  an automatic serial fallback when a pool cannot be created (sandboxed
  environments) or breaks.  ``pool.map`` preserves input order and the
  evaluator is a pure function, so ``workers=1`` and ``workers=N`` produce
  bit-identical results.
* A shard whose evaluator raises yields a per-config *error record*
  (exception type + message) instead of sinking the sweep; serial and
  pooled paths build that record through the same code path, so they
  behave identically.
* Reduction (:func:`repro.dse.pareto.pareto_reduce`) and the exported
  frontier document are functions of the record set alone.
"""

from __future__ import annotations

import concurrent.futures
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.concurrency import holds_no_locks
from ..core.effects import reentrant
from ..obs import get_tracer
from .cache import DiskCache
from .evaluate import RECORD_SCHEMA, evaluate_config
from .pareto import OBJECTIVE_KEYS, pareto_reduce, record_sort_key
from .spec import SweepSpec, config_key, normalize_config

#: Schema tags of the engine's two result documents.
SWEEP_SCHEMA = "repro.dse/sweep/1"
FRONTIER_SCHEMA = "repro.dse/frontier/1"


@reentrant(reason="the process-pool worker entry point: any hidden state "
                  "here would make workers=1 and workers=N diverge")
def _evaluate_record(config: Dict[str, object]) -> Dict[str, object]:
    """Worker entry point (module-level: picklable by the process pool).

    Never raises on a bad config: failures become error records carrying
    the exception type and message, keyed like any other result.
    """
    try:
        return evaluate_config(config)
    except Exception as exc:  # noqa: BLE001 — per-shard fault isolation
        return {
            "schema": RECORD_SCHEMA,
            "key": config_key(normalize_config(config)),
            "config": normalize_config(config),
            "error": {"type": type(exc).__name__, "message": str(exc)},
        }


def _evaluate_many(configs: Sequence[Dict[str, object]],
                   workers: int) -> List[Dict[str, object]]:
    """Evaluate configs in input order, sharded when ``workers > 1``."""
    if workers <= 1 or len(configs) <= 1:
        return [_evaluate_record(cfg) for cfg in configs]
    chunksize = max(1, len(configs) // (workers * 4))
    try:
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers) as pool:
            return list(pool.map(_evaluate_record, configs,
                                 chunksize=chunksize))
    except (OSError, concurrent.futures.process.BrokenProcessPool,
            PermissionError):
        # No usable process pool here — same results, just serial.
        return [_evaluate_record(cfg) for cfg in configs]


@holds_no_locks(reason="file IO plus a possibly process-pooled evaluation "
                       "pass: callers must never enter this under a lock")
@reentrant(reason="the cache-through evaluation core shared by run_sweep "
                  "and the serve layer's batching queue: results must be "
                  "a function of the (key, config) list and cache bytes "
                  "alone, never of who called it or in which thread")
def evaluate_batch(keyed: Sequence[Tuple[str, Dict[str, object]]],
                   workers: int = 1,
                   cache: Optional[DiskCache] = None
                   ) -> Tuple[Dict[str, Dict[str, object]], Dict[str, str]]:
    """Evaluate already-normalized, deduplicated ``(key, config)`` pairs.

    The single engine call behind both a sweep shard and a coalesced
    serve batch: cache lookups first, one (optionally sharded)
    evaluation pass over the misses in input order, successful fresh
    records stored back.  Returns ``(records, served)`` where
    ``records`` maps key -> record and ``served`` maps key ->
    ``"hit"`` / ``"miss"`` (cache provenance, for client-visible
    counters).  Error records are never cached.
    """
    tracer = get_tracer()
    records: Dict[str, Dict[str, object]] = {}
    served: Dict[str, str] = {}
    pending: List[Tuple[str, Dict[str, object]]] = []
    with tracer.span("dse.cache.lookup", configs=len(keyed)):
        for key, cfg in keyed:
            hit = cache.lookup(key) if cache is not None else None
            if hit is not None:
                records[key] = hit
                served[key] = "hit"
            else:
                pending.append((key, cfg))
                served[key] = "miss"
    with tracer.span("dse.evaluate", pending=len(pending), workers=workers):
        fresh = _evaluate_many([cfg for _, cfg in pending], workers)
    for (key, _), record in zip(pending, fresh):
        records[key] = record
        if cache is not None and "error" not in record:
            cache.store(key, record)
    return records, served


@reentrant(reason="the serve layer's single-request path: one normalized "
                  "config through the same cache and evaluator as a "
                  "sweep, so HTTP responses are byte-identical to "
                  "library calls")
def evaluate_one(config: Mapping[str, object],
                 cache: Optional[DiskCache] = None
                 ) -> Tuple[Dict[str, object], str]:
    """Evaluate one config through the cache; ``(record, "hit"|"miss")``.

    Raises ``ValueError`` for configs that do not even normalize (unknown
    or missing keys, uncoercible types) — exactly like ``run_sweep``;
    configs that normalize but fail evaluation come back as error
    records, byte-identical to the records a sweep would produce.
    """
    cfg = normalize_config(config)
    key = config_key(cfg)
    records, served = evaluate_batch([(key, cfg)], workers=1, cache=cache)
    return records[key], served[key]


@holds_no_locks(reason="drives evaluate_batch (blocking engine work) and "
                       "must be entered lock-free for the same reason")
def run_sweep(spec: Optional[SweepSpec] = None,
              configs: Optional[Sequence[Mapping[str, object]]] = None,
              workers: int = 1,
              cache: Optional[DiskCache] = None) -> Dict[str, object]:
    """Run one sweep; returns the full sweep document.

    Exactly one of ``spec`` / ``configs`` supplies the config list
    (``configs`` wins when both are given — the spec is then metadata
    only).  Duplicate configs are collapsed to one evaluation.
    """
    if spec is None and configs is None:
        raise ValueError("run_sweep needs a spec or an explicit config list")
    raw = list(configs) if configs is not None else spec.configs()
    tracer = get_tracer()

    keyed: List[tuple] = []
    seen_keys: set = set()
    for raw_cfg in raw:
        cfg = normalize_config(raw_cfg)
        key = config_key(cfg)
        if key in seen_keys:
            continue
        seen_keys.add(key)
        keyed.append((key, cfg))

    with tracer.span("dse.sweep", configs=len(keyed), workers=workers) as sp:
        records, served = evaluate_batch(keyed, workers=workers, cache=cache)
        evaluated = sum(1 for origin in served.values() if origin == "miss")

        # Merge in enumeration order — never in completion order.
        ordered = [records[key] for key, _ in keyed]
        with tracer.span("dse.reduce"):
            frontier = pareto_reduce(ordered)

        errors = [r for r in ordered if "error" in r]
        sp.count(evaluated=evaluated, errors=len(errors),
                 frontier=len(frontier))

    return {
        "schema": SWEEP_SCHEMA,
        "spec": spec.as_dict() if spec is not None else None,
        "workers": workers,
        "configs": len(keyed),
        "records": ordered,
        "errors": errors,
        "frontier": frontier,
        "cache": cache.stats() if cache is not None else None,
    }


def frontier_doc(result: Mapping[str, object]) -> Dict[str, object]:
    """The exportable frontier: a pure function of the evaluated set.

    Deliberately excludes worker count, cache statistics, and anything
    else machine- or run-dependent, so ``--workers 1`` and ``--workers N``
    (and cold vs warm cache) runs serialize to byte-identical JSON.
    """
    frontier = list(result["frontier"])
    return {
        "schema": FRONTIER_SCHEMA,
        "objectives": list(OBJECTIVE_KEYS),
        "configs": result["configs"],
        "frontier": sorted(frontier, key=record_sort_key),
    }
