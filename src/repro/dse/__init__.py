"""``repro.dse`` — sharded, cached design-space exploration.

The production-scale sweep engine over the hybrid accelerator's levers
(ROADMAP item 1): a declarative :class:`SweepSpec` enumerates the cross
product of (N:M pattern x bus width x MRAM geometry x precision x device
corner), each point is evaluated by the reentrant analytical models behind
the fig7/fig8 harnesses, evaluation shards across worker processes with a
serial fallback, results land in a content-hash disk cache so repeated
sweeps are incremental, and everything reduces to a deterministic Pareto
frontier over (area, inference power, training EDP, density).

Determinism guarantees (enforced by ``tests/test_dse_*.py``):

* ``workers=1`` and ``workers=N`` produce byte-identical frontier JSON;
* a warm (fully cached) run reproduces the cold run exactly;
* the frontier is a function of the config *set* — input order, shard
  completion order, and duplicate configs never change it;
* duplicated metric vectors keep exactly one canonical representative.

Entry point: ``python -m repro.dse`` (or ``python -m repro dse``).
"""

from .cache import CACHE_SCHEMA, DEFAULT_CACHE_DIR, DiskCache, NullCache
from .engine import (FRONTIER_SCHEMA, SWEEP_SCHEMA, evaluate_batch,
                     evaluate_one, frontier_doc, run_sweep)
from .evaluate import (METRIC_KEYS, RECORD_SCHEMA, build_tech,
                       evaluate_config, get_workload)
from .export import (dumps_canonical, render_frontier, render_summary,
                     write_csv, write_json)
from .pareto import (OBJECTIVE_KEYS, OBJECTIVES, dominates, objective_vector,
                     pareto_reduce, record_sort_key)
from .spec import (CONFIG_KEYS, DEVICE_CORNERS, PRESETS, SPEC_SCHEMA,
                   DEFAULT_SPEC, FULL_SPEC, SMOKE_SPEC, SweepSpec,
                   canonical_json, config_key, config_sort_key,
                   normalize_config)

__all__ = [
    "SweepSpec", "SMOKE_SPEC", "DEFAULT_SPEC", "FULL_SPEC", "PRESETS",
    "SPEC_SCHEMA", "CONFIG_KEYS", "DEVICE_CORNERS",
    "canonical_json", "config_key", "config_sort_key", "normalize_config",
    "evaluate_config", "build_tech", "get_workload",
    "METRIC_KEYS", "RECORD_SCHEMA",
    "DiskCache", "NullCache", "CACHE_SCHEMA", "DEFAULT_CACHE_DIR",
    "run_sweep", "evaluate_batch", "evaluate_one", "frontier_doc",
    "SWEEP_SCHEMA", "FRONTIER_SCHEMA",
    "pareto_reduce", "dominates", "objective_vector", "record_sort_key",
    "OBJECTIVES", "OBJECTIVE_KEYS",
    "write_json", "write_csv", "dumps_canonical", "render_frontier",
    "render_summary",
]
