"""Declarative sweep specifications: the cross-product of design levers.

A :class:`SweepSpec` names the values each lever may take; enumeration is
the full cross product, in a fixed lexicographic lever order, so the config
list — and therefore every downstream artifact (records, cache keys,
frontier JSON) — is a pure function of the spec, independent of worker
count, completion order, or dict iteration quirks.

Levers (all orthogonal):

* ``patterns`` — N:M structured-sparsity patterns (``"1:4"`` strings).
* ``bus_bits`` — shared activation-bus width, bits/cycle.
* ``mram_rows`` — MRAM sub-array depth (array area scales with it, so the
  µm²/bit density of Table 2 is preserved).
* ``weight_bits`` — datapath weight precision (packing + write volumes).
* ``devices`` — named technology corners over :mod:`repro.energy.tech`
  (write energy/latency, leakage).

Config identity is a content hash: the canonical JSON (sorted keys,
compact separators) of the normalized config dict, SHA-256'd.  Two dicts
with the same items in any insertion order hash identically.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

from ..sparsity.nm import NMPattern

#: Schema tag stamped into spec dumps.
SPEC_SCHEMA = "repro.dse/spec/1"

#: The exact key set of a normalized config dict.
CONFIG_KEYS = ("pattern", "bus_bits", "mram_rows", "weight_bits", "device",
               "workload")

#: Named device corners: dotted ``<spec>.<field>`` overrides applied to the
#: frozen Table 2 technology dataclasses via ``dataclasses.replace``.
#: Values bracket the literature ranges the tech module's ASSUMPTION
#: comments cite (STT-MRAM write pulse 3-30 ns; SRAM leakage halved by a
#: low-leakage cell/back-bias option).
DEVICE_CORNERS: Dict[str, Dict[str, object]] = {
    "nominal": {},
    "mram-fast-write": {"mram.write_latency_cycles": 3,
                        "mram.write_energy_pj_per_bit": 0.030},
    "mram-slow-write": {"mram.write_latency_cycles": 10,
                        "mram.write_energy_pj_per_bit": 0.080},
    "sram-low-leak": {"sram.leakage_mw_per_mb": 4.0},
}

#: Workload names the evaluator accepts (resolved in repro.dse.evaluate).
WORKLOAD_NAMES = ("paper",)


# ---------------------------------------------------------------------------
# Canonical hashing
# ---------------------------------------------------------------------------

def canonical_json(mapping: Mapping[str, object]) -> str:
    """Order-independent JSON: sorted keys, compact separators."""
    return json.dumps(dict(mapping), sort_keys=True,
                      separators=(",", ":"), ensure_ascii=True)


def config_key(config: Mapping[str, object]) -> str:
    """SHA-256 content hash of a config's canonical JSON."""
    return hashlib.sha256(canonical_json(config).encode("ascii")).hexdigest()


def normalize_config(config: Mapping[str, object]) -> Dict[str, object]:
    """Coerce a raw mapping to the canonical config shape.

    Fills the ``workload`` default, coerces lever types, and rejects
    unknown keys — but does *not* validate lever values (a normalized
    config with a nonsense pattern must still flow to a worker so the
    sweep can report a per-config error instead of dying up front).
    """
    unknown = set(config) - set(CONFIG_KEYS)
    if unknown:
        raise ValueError(f"unknown config keys: {sorted(unknown)}")
    missing = set(CONFIG_KEYS) - {"workload"} - set(config)
    if missing:
        raise ValueError(f"missing config keys: {sorted(missing)}")
    return {
        "pattern": str(config["pattern"]),
        "bus_bits": int(config["bus_bits"]),
        "mram_rows": int(config["mram_rows"]),
        "weight_bits": int(config["weight_bits"]),
        "device": str(config["device"]),
        "workload": str(config.get("workload", "paper")),
    }


def _pattern_sort_key(pattern: str) -> Tuple[int, int]:
    """Numeric (m, n) order so '1:16' sorts after '1:4', not before."""
    p = NMPattern.parse(pattern)
    return (p.m, p.n)


def config_sort_key(config: Mapping[str, object]) -> Tuple:
    """Canonical total order over configs (stable merges and exports)."""
    return (str(config["workload"]),
            _pattern_sort_key(str(config["pattern"])),
            int(config["bus_bits"]), int(config["mram_rows"]),
            int(config["weight_bits"]), str(config["device"]))


# ---------------------------------------------------------------------------
# The spec
# ---------------------------------------------------------------------------

def _unique(name: str, values: Sequence) -> Tuple:
    out = tuple(values)
    if not out:
        raise ValueError(f"spec lever {name!r} must be non-empty")
    if len(set(out)) != len(out):
        raise ValueError(f"spec lever {name!r} has duplicate values: {out}")
    return out


@dataclasses.dataclass(frozen=True)
class SweepSpec:
    """The declarative cross product of design levers."""

    patterns: Tuple[str, ...] = ("1:4", "1:8")
    bus_bits: Tuple[int, ...] = (128,)
    mram_rows: Tuple[int, ...] = (1024,)
    weight_bits: Tuple[int, ...] = (8,)
    devices: Tuple[str, ...] = ("nominal",)
    workload: str = "paper"

    def __post_init__(self):
        object.__setattr__(self, "patterns",
                           _unique("patterns", self.patterns))
        object.__setattr__(self, "bus_bits",
                           _unique("bus_bits", [int(b) for b in self.bus_bits]))
        object.__setattr__(self, "mram_rows",
                           _unique("mram_rows",
                                   [int(r) for r in self.mram_rows]))
        object.__setattr__(self, "weight_bits",
                           _unique("weight_bits",
                                   [int(w) for w in self.weight_bits]))
        object.__setattr__(self, "devices", _unique("devices", self.devices))
        for pattern in self.patterns:
            NMPattern.parse(pattern)      # raises on malformed patterns
        for bus in self.bus_bits:
            if bus < 8:
                raise ValueError(f"bus width {bus} below one operand byte")
        for rows in self.mram_rows:
            if rows < 1:
                raise ValueError(f"mram_rows must be >= 1, got {rows}")
        for bits in self.weight_bits:
            if not 2 <= bits <= 8:
                raise ValueError(
                    f"weight_bits {bits} outside the modeled 2..8 range")
        for device in self.devices:
            if device not in DEVICE_CORNERS:
                raise ValueError(
                    f"unknown device corner {device!r} "
                    f"(known: {sorted(DEVICE_CORNERS)})")
        if self.workload not in WORKLOAD_NAMES:
            raise ValueError(f"unknown workload {self.workload!r} "
                             f"(known: {WORKLOAD_NAMES})")

    @property
    def size(self) -> int:
        return (len(self.patterns) * len(self.bus_bits) * len(self.mram_rows)
                * len(self.weight_bits) * len(self.devices))

    def enumerate(self) -> Iterator[Dict[str, object]]:
        """All configs, in the fixed lexicographic lever order."""
        for pattern, bus, rows, bits, device in itertools.product(
                self.patterns, self.bus_bits, self.mram_rows,
                self.weight_bits, self.devices):
            yield {"pattern": pattern, "bus_bits": bus, "mram_rows": rows,
                   "weight_bits": bits, "device": device,
                   "workload": self.workload}

    def configs(self) -> List[Dict[str, object]]:
        return list(self.enumerate())

    def as_dict(self) -> Dict[str, object]:
        return {"schema": SPEC_SCHEMA,
                "patterns": list(self.patterns),
                "bus_bits": list(self.bus_bits),
                "mram_rows": list(self.mram_rows),
                "weight_bits": list(self.weight_bits),
                "devices": list(self.devices),
                "workload": self.workload}


def _all_patterns(group_sizes: Sequence[int]) -> Tuple[str, ...]:
    """Every n:m with n < m for the given group sizes (densities < 1)."""
    return tuple(f"{n}:{m}" for m in group_sizes for n in range(1, m))


#: Small fixed sweep: the CI smoke job and the bench-gate model metrics.
SMOKE_SPEC = SweepSpec(
    patterns=("1:8", "2:8", "1:4", "2:4"),
    bus_bits=(64, 128),
    mram_rows=(1024,),
    weight_bits=(8,),
    devices=("nominal",),
)

#: The everyday sweep: paper levers plus geometry/precision/device corners.
DEFAULT_SPEC = SweepSpec(
    patterns=("1:16", "1:8", "2:8", "1:4", "2:4", "4:8"),
    bus_bits=(64, 128, 256),
    mram_rows=(512, 1024, 2048),
    weight_bits=(4, 8),
    devices=("nominal", "mram-fast-write", "sram-low-leak"),
)

#: Production-scale exploration: every representable N:M pattern x full
#: lever ranges — thousands of configs (ROADMAP item 1 scale).
FULL_SPEC = SweepSpec(
    patterns=_all_patterns((4, 8, 16)),
    bus_bits=(32, 64, 128, 256, 512),
    mram_rows=(512, 1024, 2048),
    weight_bits=(4, 6, 8),
    devices=tuple(sorted(DEVICE_CORNERS)),
)

PRESETS: Dict[str, SweepSpec] = {
    "smoke": SMOKE_SPEC,
    "default": DEFAULT_SPEC,
    "full": FULL_SPEC,
}
