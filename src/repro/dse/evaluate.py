"""Per-point evaluator: one normalized config -> one metric record.

This is the reentrant library form of the fig7/fig8-style analytical
evaluation: build the technology variant the config names, instantiate the
hybrid design at the config's pattern/bus width, and charge the paper
workload through the same area/latency/energy models the harnesses use.
Pure function of its input — no global state, no clocks, no randomness —
so shards evaluated in any process, in any order, produce bit-identical
records, and the content-hash cache can treat the record as a function of
the config alone.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Dict, Mapping

from ..core.designs import HybridSparseDesign
from ..core.effects import effects, reentrant
from ..core.workload import Workload, paper_workload
from ..energy.tech import DEFAULT_TECH, TechnologyModel
from ..sparsity.nm import NMPattern
from .spec import DEVICE_CORNERS, config_key, normalize_config

#: Schema tag stamped into every evaluation record.
RECORD_SCHEMA = "repro.dse/record/1"

#: Metric keys every successful record carries, in canonical order.
METRIC_KEYS = ("area_mm2", "density", "inference_latency_s",
               "inference_power_mw", "training_edp_js", "training_latency_s")

#: Per-process workload cache: paper-scale extraction is cheap but not free,
#: and a sharded sweep evaluates thousands of configs per worker.  Written
#: only under ``_WORKLOADS_LOCK`` — concurrent serve threads reach this
#: memo through the batching worker (lint rule R14 tracks the path).
_WORKLOADS: Dict[str, Workload] = {}
_WORKLOADS_LOCK = threading.Lock()


@effects("READS_GLOBAL",
         reason="idempotent per-process memo: every store writes the value "
                "paper_workload() deterministically computes for that name, "
                "so concurrent or repeated calls observe identical results; "
                "callers see a pure lookup")
def get_workload(name: str) -> Workload:
    with _WORKLOADS_LOCK:
        if name not in _WORKLOADS:
            if name != "paper":
                raise ValueError(f"unknown workload {name!r}")
            _WORKLOADS[name] = paper_workload()
        return _WORKLOADS[name]


@reentrant(reason="sharded sweeps build tech variants in every worker")
def build_tech(config: Mapping[str, object]) -> TechnologyModel:
    """The technology variant a config names, from the Table 2 defaults.

    Geometry: scaling ``mram_rows`` scales the sub-array storage *and* its
    Table 2 array area by the same factor, preserving the calibrated
    µm²/bit density (the periphery constants stay fixed — deeper arrays
    amortize periphery, which is exactly the lever being studied).
    Precision: ``weight_bits`` narrows both datapaths' stored operand
    width (packing + write volumes).  Device: a named corner applies its
    dotted field overrides.
    """
    sram, mram = DEFAULT_TECH.sram, DEFAULT_TECH.mram

    rows = int(config["mram_rows"])
    if rows < 1:
        raise ValueError(f"mram_rows must be >= 1, got {rows}")
    if rows != mram.rows:
        mram = dataclasses.replace(
            mram, rows=rows, array_area=mram.array_area * rows / mram.rows)

    bits = int(config["weight_bits"])
    if not 2 <= bits <= 8:
        raise ValueError(f"weight_bits {bits} outside the modeled 2..8 range")
    if bits != sram.weight_bits:
        sram = dataclasses.replace(sram, weight_bits=bits)
    if bits != mram.weight_bits:
        mram = dataclasses.replace(mram, weight_bits=bits)

    device = str(config["device"])
    if device not in DEVICE_CORNERS:
        raise ValueError(f"unknown device corner {device!r}")
    for dotted, value in sorted(DEVICE_CORNERS[device].items()):
        target, field = dotted.split(".", 1)
        if target == "sram":
            sram = dataclasses.replace(sram, **{field: value})
        elif target == "mram":
            mram = dataclasses.replace(mram, **{field: value})
        else:
            raise ValueError(f"device corner targets unknown spec {target!r}")

    return dataclasses.replace(DEFAULT_TECH, sram=sram, mram=mram)


@reentrant(reason="the per-point evaluator: must be a pure function of "
                  "the config so shards merge deterministically and the "
                  "cache can key records by config content alone")
def evaluate_config(config: Mapping[str, object]) -> Dict[str, object]:
    """Evaluate one design config; returns the canonical record dict.

    Raises on invalid configs — the engine turns exceptions into
    per-config error records so one bad shard never sinks a sweep.
    """
    cfg = normalize_config(config)
    pattern = NMPattern.parse(str(cfg["pattern"]))
    tech = build_tech(cfg)
    workload = get_workload(str(cfg["workload"]))
    design = HybridSparseDesign(pattern, tech=tech,
                                bus_bits=int(cfg["bus_bits"]))

    area = design.area(workload)
    inference = design.inference(workload)
    training = design.training_step(workload)
    metrics = {
        "area_mm2": area.total_mm2,
        "density": pattern.density,
        "inference_latency_s": inference.latency_s,
        "inference_power_mw": inference.avg_power_mw,
        "training_edp_js": training.edp_js,
        "training_latency_s": training.latency_s,
    }
    return {
        "schema": RECORD_SCHEMA,
        "key": config_key(cfg),
        "config": cfg,
        "metrics": metrics,
    }
