"""``python -m repro.dse`` — the sharded, cached design-space sweep.

.. code-block:: bash

    python -m repro.dse                          # default preset, serial
    python -m repro.dse --preset full --workers 8
    python -m repro.dse --preset smoke --out frontier.json --csv sweep.csv
    python -m repro.dse --patterns 1:4,1:8 --bus-bits 64,128,256
    python -m repro.dse --no-cache               # always recompute
    python -m repro.dse --refresh                # recompute, refill cache
    python -m repro.dse --min-cache-hits 1       # CI warm-run assertion
    python -m repro.dse --trace dse.trace.json   # span-traced run
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional

from ..harness.reporting import begin_trace, finish_trace
from .cache import DEFAULT_CACHE_DIR, DiskCache, NullCache
from .engine import frontier_doc, run_sweep
from .export import render_frontier, render_summary, write_csv, write_json
from .spec import PRESETS, SweepSpec


def _csv_list(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _int_list(text: str) -> List[int]:
    return [int(item) for item in _csv_list(text)]


def build_spec(args: argparse.Namespace) -> SweepSpec:
    """The preset, with any lever overridden from the command line."""
    spec = PRESETS[args.preset]
    overrides = {}
    if args.patterns:
        overrides["patterns"] = tuple(_csv_list(args.patterns))
    if args.bus_bits:
        overrides["bus_bits"] = tuple(_int_list(args.bus_bits))
    if args.mram_rows:
        overrides["mram_rows"] = tuple(_int_list(args.mram_rows))
    if args.weight_bits:
        overrides["weight_bits"] = tuple(_int_list(args.weight_bits))
    if args.devices:
        overrides["devices"] = tuple(_csv_list(args.devices))
    if overrides:
        spec = dataclasses.replace(spec, **overrides)
    return spec


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.dse",
        description="Sharded, cached design-space exploration over the "
                    "hybrid accelerator's levers, reduced to Pareto "
                    "frontiers (area/power/EDP/density).")
    parser.add_argument("--preset", choices=sorted(PRESETS),
                        default="default",
                        help="base sweep spec (default: default)")
    parser.add_argument("--patterns", default=None, metavar="1:4,1:8",
                        help="override the N:M pattern lever")
    parser.add_argument("--bus-bits", default=None, metavar="64,128",
                        help="override the activation-bus-width lever")
    parser.add_argument("--mram-rows", default=None, metavar="512,1024",
                        help="override the MRAM sub-array depth lever")
    parser.add_argument("--weight-bits", default=None, metavar="4,8",
                        help="override the weight-precision lever")
    parser.add_argument("--devices", default=None,
                        metavar="nominal,mram-fast-write",
                        help="override the device-corner lever")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker processes (1 = serial; results are "
                             "bit-identical either way)")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        metavar="DIR",
                        help=f"record cache root (default: "
                             f"{DEFAULT_CACHE_DIR})")
    parser.add_argument("--no-cache", action="store_true",
                        help="neither read nor write the record cache")
    parser.add_argument("--refresh", action="store_true",
                        help="ignore cached records but refill the cache")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the frontier JSON here")
    parser.add_argument("--records", default=None, metavar="PATH",
                        help="write the full sweep document (all records) "
                             "here")
    parser.add_argument("--csv", default=None, metavar="PATH",
                        help="write all records as CSV here")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="enable span tracing; write a Chrome "
                             "trace_events file here")
    parser.add_argument("--min-cache-hits", type=int, default=None,
                        metavar="N",
                        help="exit 2 unless the run served >= N cache hits "
                             "(CI warm-run assertion)")
    args = parser.parse_args(argv)

    try:
        spec = build_spec(args)
    except ValueError as exc:
        parser.error(str(exc))
    if args.no_cache:
        cache: DiskCache = NullCache()
    else:
        cache = DiskCache(args.cache_dir, refresh=args.refresh)

    begin_trace(args.trace)
    result = run_sweep(spec=spec, workers=args.workers, cache=cache)
    finish_trace(args.trace)

    print(render_frontier(result))
    print()
    print(render_summary(result))
    for record in result["errors"]:
        error = record["error"]
        print(f"error: {record['config']} -> {error['type']}: "
              f"{error['message']}", file=sys.stderr)

    if args.out:
        path = write_json(frontier_doc(result), args.out)
        print(f"frontier: {path}")
    if args.records:
        path = write_json(result, args.records)
        print(f"records: {path}")
    if args.csv:
        path = write_csv(result["records"], args.csv)
        print(f"csv: {path}")

    if result["configs"] and len(result["errors"]) == result["configs"]:
        print("error: every config failed", file=sys.stderr)
        return 1
    hits = cache.stats()["hits"]
    if args.min_cache_hits is not None and hits < args.min_cache_hits:
        print(f"error: {hits} cache hits < required "
              f"{args.min_cache_hits}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
