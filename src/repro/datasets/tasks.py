"""The five downstream tasks of Table 1, as synthetic analogues.

Each analogue keeps the *relative* statistical character of its namesake
(class count scaled down ~10x to stay laptop-trainable, per-class sample
budget and difficulty preserved qualitatively):

============  =====================  =============================================
paper         analogue               character preserved
============  =====================  =============================================
flower102     ``flower102-syn``      many classes, clean/highly separable, small
                                     per-class budget -> highest accuracies
pets          ``pets-syn``           moderate classes, moderate difficulty
food101       ``food101-syn``        small per-class budget + high intra-class
                                     variance -> dense model overfits; sparse 1:4
                                     can *beat* dense (paper Sec. 5.1 note)
cifar10       ``cifar10-syn``        few classes, large sample budget, moderate
                                     noise -> high accuracy
cifar100      ``cifar100-syn``       many classes, few samples each, noisy ->
                                     lowest accuracy of the five
============  =====================  =============================================
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..nn.data import TensorDataset
from .synthetic import TaskSpec, generate_task

#: Ordered task names exactly as they appear in Table 1's columns.
TABLE1_TASKS: List[str] = ["flower102", "pets", "food101", "cifar10", "cifar100"]


def downstream_specs(image_size: int = 16, scale: float = 1.0) -> Dict[str, TaskSpec]:
    """Specs for the five downstream tasks.

    ``scale`` < 1 shrinks sample budgets proportionally (used by the fast test
    configuration); class counts never drop below 2.
    """
    def _n(x: int) -> int:
        return max(2, int(round(x * scale)))

    def _s(x: int) -> int:
        return max(4, int(round(x * scale)))

    return {
        "flower102": TaskSpec(
            name="flower102", num_classes=_n(10), train_per_class=_s(24),
            test_per_class=_s(12), image_size=image_size,
            noise=0.12, jitter=1, class_seed=101),
        "pets": TaskSpec(
            name="pets", num_classes=_n(8), train_per_class=_s(30),
            test_per_class=_s(12), image_size=image_size,
            noise=0.22, jitter=2, class_seed=202),
        "food101": TaskSpec(
            name="food101", num_classes=_n(8), train_per_class=_s(16),
            test_per_class=_s(12), image_size=image_size,
            noise=0.38, jitter=2, class_seed=303),
        "cifar10": TaskSpec(
            name="cifar10", num_classes=_n(6), train_per_class=_s(50),
            test_per_class=_s(16), image_size=image_size,
            noise=0.25, jitter=2, class_seed=404),
        "cifar100": TaskSpec(
            name="cifar100", num_classes=_n(12), train_per_class=_s(16),
            test_per_class=_s(10), image_size=image_size,
            noise=0.35, jitter=2, class_seed=505),
    }


def load_downstream_task(name: str, seed: int = 0, image_size: int = 16,
                         scale: float = 1.0
                         ) -> Tuple[TensorDataset, TensorDataset]:
    """Generate ``(train, test)`` for one of the Table 1 tasks by name."""
    specs = downstream_specs(image_size=image_size, scale=scale)
    if name not in specs:
        raise KeyError(f"unknown task {name!r}; choose from {sorted(specs)}")
    return generate_task(specs[name], seed=seed)
