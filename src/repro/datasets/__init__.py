"""Synthetic datasets: base pre-training distribution + Table 1 downstream tasks."""

from .synthetic import ClassPrototype, TaskSpec, base_pretraining_spec, generate_task
from .tasks import TABLE1_TASKS, downstream_specs, load_downstream_task

__all__ = [
    "TaskSpec", "ClassPrototype", "generate_task", "base_pretraining_spec",
    "TABLE1_TASKS", "downstream_specs", "load_downstream_task",
]
