"""Synthetic image-classification distributions.

The paper evaluates continual learning on ImageNet-pretrained features
transferred to Flowers102/Pets/Food101/CIFAR10/CIFAR100.  Offline we cannot
ship those datasets, so we build a *procedural family* of image classes whose
statistics we can dial (class count, samples per class, intra-class variance)
— see DESIGN.md "Substitutions".

Every class is a textured prototype: a mixture of oriented sinusoidal
gratings and Gaussian blobs drawn from a class-specific seed.  Samples jitter
the prototype with per-instance phase shifts, brightness/contrast changes,
spatial translation and additive noise.  Because *all* tasks draw from the
same generative family, a backbone pre-trained on one split learns features
(orientation/frequency/blob detectors) that genuinely transfer to held-out
classes — reproducing the transfer-learning structure the paper relies on.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from ..nn.data import TensorDataset


@dataclasses.dataclass(frozen=True)
class TaskSpec:
    """Parameters of one synthetic classification task."""

    name: str
    num_classes: int
    train_per_class: int
    test_per_class: int
    image_size: int = 16
    channels: int = 3
    noise: float = 0.25          # additive pixel noise std (intra-class variance)
    jitter: int = 2              # max translation in pixels
    class_seed: int = 0          # offsets the class-prototype RNG stream

    def __post_init__(self):
        if self.num_classes < 2:
            raise ValueError("a classification task needs >= 2 classes")
        if self.train_per_class < 1 or self.test_per_class < 1:
            raise ValueError("need at least one sample per class per split")


class ClassPrototype:
    """Deterministic textured prototype for one class."""

    def __init__(self, seed: int, image_size: int, channels: int):
        rng = np.random.default_rng(seed)
        self.image_size = image_size
        self.channels = channels
        self.n_gratings = int(rng.integers(2, 5))
        self.freqs = rng.uniform(0.5, 3.0, size=self.n_gratings)
        self.angles = rng.uniform(0, np.pi, size=self.n_gratings)
        self.phases = rng.uniform(0, 2 * np.pi, size=self.n_gratings)
        self.amps = rng.uniform(0.4, 1.0, size=self.n_gratings)
        self.channel_mix = rng.uniform(0.2, 1.0, size=(channels, self.n_gratings))
        self.n_blobs = int(rng.integers(1, 4))
        self.blob_pos = rng.uniform(0.2, 0.8, size=(self.n_blobs, 2))
        self.blob_sigma = rng.uniform(0.08, 0.25, size=self.n_blobs)
        self.blob_amp = rng.uniform(-1.0, 1.0, size=self.n_blobs)

    def render(self, rng: np.random.Generator, noise: float, jitter: int
               ) -> np.ndarray:
        """Render one sample ``(C, H, W)`` with per-instance perturbations."""
        s = self.image_size
        yy, xx = np.meshgrid(np.linspace(0, 1, s), np.linspace(0, 1, s),
                             indexing="ij")
        if jitter:
            dy = rng.integers(-jitter, jitter + 1) / s
            dx = rng.integers(-jitter, jitter + 1) / s
        else:
            dy = dx = 0.0
        img = np.zeros((self.channels, s, s))
        phase_jit = rng.normal(0, 0.3, size=self.n_gratings)
        for g in range(self.n_gratings):
            u = ((xx + dx) * np.cos(self.angles[g])
                 + (yy + dy) * np.sin(self.angles[g]))
            wave = self.amps[g] * np.sin(
                2 * np.pi * self.freqs[g] * u * 4 + self.phases[g] + phase_jit[g])
            for ch in range(self.channels):
                img[ch] += self.channel_mix[ch, g] * wave
        for b in range(self.n_blobs):
            by, bx = self.blob_pos[b]
            blob = self.blob_amp[b] * np.exp(
                -(((yy + dy) - by) ** 2 + ((xx + dx) - bx) ** 2)
                / (2 * self.blob_sigma[b] ** 2))
            img += blob[None, :, :]
        brightness = rng.normal(0, 0.15)
        contrast = rng.uniform(0.85, 1.15)
        img = img * contrast + brightness
        img += rng.normal(0, noise, size=img.shape)
        return img.astype(np.float32)


def generate_task(spec: TaskSpec, seed: int = 0
                  ) -> Tuple[TensorDataset, TensorDataset]:
    """Generate ``(train, test)`` datasets for a task spec.

    The class prototypes are derived from ``spec.class_seed`` (so distinct
    tasks have disjoint class sets), while sampling noise is driven by
    ``seed`` (so repeated generation with a different seed gives fresh draws
    from the same classes).
    """
    rng = np.random.default_rng(seed)
    protos = [ClassPrototype(spec.class_seed * 1000 + c, spec.image_size,
                             spec.channels)
              for c in range(spec.num_classes)]

    def _split(per_class: int) -> TensorDataset:
        xs, ys = [], []
        for c, proto in enumerate(protos):
            for _ in range(per_class):
                xs.append(proto.render(rng, spec.noise, spec.jitter))
                ys.append(c)
        x = np.stack(xs)
        y = np.array(ys, dtype=np.int64)
        order = rng.permutation(len(y))
        # Normalize per-dataset to zero mean / unit std, like the paper's
        # standard input normalization.
        x = (x - x.mean()) / (x.std() + 1e-8)
        return TensorDataset(x[order], y[order])

    return _split(spec.train_per_class), _split(spec.test_per_class)


def base_pretraining_spec(num_classes: int = 16, train_per_class: int = 60,
                          test_per_class: int = 20, image_size: int = 16
                          ) -> TaskSpec:
    """The "ImageNet-analogue" distribution used to pre-train the backbone."""
    return TaskSpec(
        name="base@synthetic",
        num_classes=num_classes,
        train_per_class=train_per_class,
        test_per_class=test_per_class,
        image_size=image_size,
        noise=0.25,
        jitter=2,
        class_seed=7,
    )
