"""Top-level command-line interface: ``python -m repro <experiment>``.

Single entry point over the experiment harness:

.. code-block:: bash

    python -m repro table2                  # one experiment to stdout
    python -m repro fig7 --json out.json    # plus a JSON dump
    python -m repro table1 --fast           # quick accuracy study
    python -m repro all --out results/      # everything except table1-full
    python -m repro dse --preset smoke      # design-space sweep (repro.dse)
    python -m repro serve --port 8321       # HTTP service (repro.serve)
    python -m repro corpus --stats s.txt    # pattern corpus (repro.corpus)
    python -m repro info                    # package overview
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

EXPERIMENTS = ("table1", "table2", "fig7", "fig8", "figures", "endurance",
               "ablations", "dse", "serve", "corpus", "all", "info")


def _run_info() -> None:
    import repro
    print(repro.__doc__)
    print(f"version {repro.__version__}")
    print("experiments:", ", ".join(e for e in EXPERIMENTS
                                    if e not in ("all", "info")))


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv and argv[0] == "dse":
        # The sweep engine owns its own (much larger) flag set; forward
        # everything after the subcommand verbatim.
        from .dse.__main__ import main as dse_main
        return dse_main(argv[1:])
    if argv and argv[0] == "serve":
        # Same pattern for the HTTP service.
        from .serve.__main__ import main as serve_main
        return serve_main(argv[1:])
    if argv and argv[0] == "corpus":
        # Same pattern for the sparse-pattern corpus tool.
        from .corpus.__main__ import main as corpus_main
        return corpus_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables/figures and the "
                    "extension studies.")
    parser.add_argument("experiment", choices=EXPERIMENTS,
                        help="which experiment to run")
    parser.add_argument("--fast", action="store_true",
                        help="table1 only: use the quick test budget")
    parser.add_argument("--json", default=None,
                        help="write the structured result to this JSON path")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="enable span tracing; write a Chrome "
                             "trace_events file (chrome://tracing) here")
    parser.add_argument("--out", default="results",
                        help="output directory for 'all' (default: results/)")
    args = parser.parse_args(argv)

    if args.experiment == "info":
        _run_info()
        return 0

    from .harness import (ablations, endurance, fig7, fig8, figures, table1,
                          table2)

    if args.experiment == "table1":
        table1.main(json_path=args.json, fast=args.fast,
                    trace_path=args.trace)
    elif args.experiment == "table2":
        table2.main(json_path=args.json, trace_path=args.trace)
    elif args.experiment == "fig7":
        fig7.main(json_path=args.json, trace_path=args.trace)
    elif args.experiment == "fig8":
        fig8.main(json_path=args.json, trace_path=args.trace)
    elif args.experiment == "figures":
        figures.main(trace_path=args.trace)
    elif args.experiment == "endurance":
        endurance.main(json_path=args.json, trace_path=args.trace)
    elif args.experiment == "ablations":
        ablations.main(json_path=args.json, trace_path=args.trace)
    elif args.experiment == "all":
        # Everything that runs in seconds; the full table1 is its own command.
        table2.main(json_path=f"{args.out}/table2.json")
        fig7.main(json_path=f"{args.out}/fig7.json")
        fig8.main(json_path=f"{args.out}/fig8.json")
        figures.main()
        endurance.main(json_path=f"{args.out}/endurance.json")
        ablations.main(json_path=f"{args.out}/ablations.json")
        table1.main(json_path=f"{args.out}/table1_fast.json", fast=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
