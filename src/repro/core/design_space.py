"""Automated design-space exploration over the hybrid accelerator's levers.

The paper evaluates two pattern points (1:4, 1:8).  A downstream adopter
choosing a configuration for their own workload wants the whole frontier:
which (N:M pattern, SRAM-pool size, bus width) combinations are
Pareto-optimal in (area, training EDP, inference latency, accuracy-proxy
density)?  This module sweeps the levers through the analytical design
models and extracts the Pareto set.

The accuracy axis is proxied by weight *density* (higher density = less
pruning pressure = closer to dense accuracy — the monotone relationship
Table 1 exhibits); a user with training budget can substitute measured
accuracies via ``DesignPoint.metrics`` overrides.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from ..sparsity.nm import NMPattern
from .designs import DenseCIMDesign, HybridSparseDesign
from .workload import Workload, paper_workload

DEFAULT_PATTERNS = (NMPattern(1, 16), NMPattern(1, 8), NMPattern(2, 8),
                    NMPattern(1, 4), NMPattern(2, 4), NMPattern(4, 8))
DEFAULT_BUS_WIDTHS = (64, 128, 256)


@dataclasses.dataclass
class DesignPoint:
    """One evaluated configuration."""

    pattern: str
    bus_bits: int
    area_mm2: float
    training_edp_js: float
    inference_latency_s: float
    density: float                 # accuracy proxy (higher = better)

    def metrics(self) -> Dict[str, float]:
        """Objectives as minimize-all values (density negated)."""
        return {
            "area_mm2": self.area_mm2,
            "training_edp_js": self.training_edp_js,
            "inference_latency_s": self.inference_latency_s,
            "neg_density": -self.density,
        }

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance: no worse on all objectives, better on one."""
        mine, theirs = self.metrics(), other.metrics()
        no_worse = all(mine[k] <= theirs[k] + 1e-15 for k in mine)
        better = any(mine[k] < theirs[k] - 1e-15 for k in mine)
        return no_worse and better

    def metric_vector(self) -> tuple:
        """The objective values in a fixed order (duplicate detection)."""
        m = self.metrics()
        return tuple(m[k] for k in sorted(m))

    def sort_key(self) -> tuple:
        """Canonical total order: objectives first, then the config levers
        as the tie-break — so equal-metric duplicates have a stable,
        input-order-independent representative."""
        return self.metric_vector() + (self.pattern, self.bus_bits)


def sweep(workload: Optional[Workload] = None,
          patterns: Sequence[NMPattern] = DEFAULT_PATTERNS,
          bus_widths: Sequence[int] = DEFAULT_BUS_WIDTHS
          ) -> List[DesignPoint]:
    """Evaluate every (pattern, bus width) combination."""
    workload = workload or paper_workload()
    points: List[DesignPoint] = []
    for pattern in patterns:
        for bus in bus_widths:
            design = HybridSparseDesign(pattern, bus_bits=bus)
            points.append(DesignPoint(
                pattern=str(pattern),
                bus_bits=bus,
                area_mm2=design.area(workload).total_mm2,
                training_edp_js=design.training_step(workload).edp_js,
                inference_latency_s=design.inference(workload).latency_s,
                density=pattern.density,
            ))
    return points


def pareto_front(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """The non-dominated subset, sorted by area.

    Tie handling: points with *identical* metric vectors do not dominate
    each other, so a naive filter would keep every duplicate (and a
    strict-dominance variant would keep none).  Here exactly one canonical
    representative survives per duplicated vector — the first in
    :meth:`DesignPoint.sort_key` order — so the front is a function of the
    point *set*, not of the input ordering.
    """
    ordered = sorted(points, key=DesignPoint.sort_key)
    front: List[DesignPoint] = []
    seen: set = set()
    for p in ordered:
        if any(q.dominates(p) for q in ordered if q is not p):
            continue
        vec = p.metric_vector()
        if vec in seen:
            continue
        seen.add(vec)
        front.append(p)
    return sorted(front, key=lambda p: (p.area_mm2,) + p.sort_key())


def explore(workload: Optional[Workload] = None,
            patterns: Sequence[NMPattern] = DEFAULT_PATTERNS,
            bus_widths: Sequence[int] = DEFAULT_BUS_WIDTHS) -> Dict:
    """Full exploration: all points + the Pareto set."""
    points = sweep(workload, patterns, bus_widths)
    front = pareto_front(points)
    return {
        "points": [dataclasses.asdict(p) for p in points],
        "pareto": [dataclasses.asdict(p) for p in front],
        "pareto_fraction": len(front) / len(points) if points else 0.0,
    }
