"""Reentrancy contracts and effect declarations for hot-path functions.

The sharded DSE engine and the future serve layer call harness functions
from worker processes and (eventually) concurrent requests.  That is only
sound when the per-call evaluators are *reentrant*: transitively free of
module-global writes, ambient RNG, and hash-order-dependent iteration —
so two calls with equal arguments return equal results no matter which
process runs them, in what order, or what ran before.

:func:`reentrant` declares that contract on a function.  Like
:func:`repro.core.widths.width_contract`, it is a no-op at runtime beyond
attaching metadata: the interprocedural effect verifier in
:mod:`repro.lint.effects` (rule R8, ``python -m repro.lint --effects``)
re-reads the same declaration from the AST and *proves* the property over
the package-wide call graph, reporting the offending call chain when it
does not hold.

:func:`effects` is the trusted escape hatch for leaves the analysis
cannot or should not see through: it declares a function's effect summary
explicitly (with a mandatory human justification), and the verifier uses
the declaration *instead of* analysing the body.  The canonical use is an
idempotent memo — observably pure to callers, but implemented with a
module-level cache the write-detector would otherwise flag.

Keeping both decorators in ``repro.core`` (not ``repro.lint``) means the
contracted modules never import the analysis that checks them.
"""

from __future__ import annotations

from typing import Callable, Optional, TypeVar

#: Attribute name :func:`reentrant` stores its metadata under.
REENTRANT_ATTR = "__reentrant__"

#: Attribute name :func:`effects` stores its declared summary under.
EFFECTS_ATTR = "__effects__"

#: Effect names :func:`effects` accepts (mirrors the lint lattice).
EFFECT_NAMES = ("READS_GLOBAL", "WRITES_GLOBAL", "AMBIENT_RNG", "IO",
                "NONDETERMINISTIC_ORDER")

_F = TypeVar("_F", bound=Callable)


def reentrant(fn: Optional[_F] = None, *, reason: str = "") -> _F:
    """Declare a function reentrant (stateless-per-call, shard-safe).

    Usable bare (``@reentrant``) or called (``@reentrant(reason=...)``).
    Returns the function unchanged — no wrapper, so decorated workers
    remain picklable by the process pool exactly as before.

    Rule R8 verifies the declaration: the function must be transitively
    free of ``WRITES_GLOBAL``, ``AMBIENT_RNG`` and
    ``NONDETERMINISTIC_ORDER`` effects (reads of module state, IO and
    clocks are allowed — caches and tracers may observe the world, they
    just may not let one call perturb the next).
    """
    def mark(func: _F) -> _F:
        setattr(func, REENTRANT_ATTR, {"reason": reason})
        return func
    if fn is not None:
        return mark(fn)
    return mark  # type: ignore[return-value]


def effects(*names: str, reason: str) -> Callable[[_F], _F]:
    """Declare a function's effect summary, overriding inference.

    ``names`` are drawn from :data:`EFFECT_NAMES`; an empty list declares
    the function pure.  ``reason`` is mandatory — a declared summary is a
    trust statement, and the justification must travel with it (the
    verifier surfaces declarations in its reports, and the suppression
    audit treats an unjustified one as a defect).
    """
    unknown = [n for n in names if n not in EFFECT_NAMES]
    if unknown:
        raise ValueError(f"unknown effect name(s) {unknown}; "
                         f"choose from {EFFECT_NAMES}")
    if not reason:
        raise ValueError("effects(...) requires a non-empty reason=")

    def mark(func: _F) -> _F:
        setattr(func, EFFECTS_ATTR,
                {"effects": tuple(names), "reason": reason})
        return func
    return mark
