"""Mapping: weight matrices -> PE tiles -> the core/bank hierarchy.

Implements the paper's data-mapping strategy (Sec. 4 / Fig. 6):

* frozen backbone layers -> MRAM sparse PEs (written once at deployment),
* learnable Rep-Net layers -> SRAM sparse PEs (rewritten during learning),
* each architecture core provides 4x4 banks x 4x4 MRAM sub-arrays
  (= 16 MB per core, Sec. 5.2) plus the SRAM sparse PE pool.

Tiling: a ``(in_dim, out_dim)`` integer matrix is cut into row blocks that
are multiples of the N:M group size (so group alignment survives) and into
column blocks sized so each tile's *compressed* pairs fit one PE.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..obs import get_tracer
from ..sparsity.nm import NMPattern
from .mram_pe import MRAMPEConfig
from .sram_pe import SRAMPEConfig
from .workload import LayerWorkload, Workload


@dataclasses.dataclass(frozen=True)
class CoreConfig:
    """One hybrid core (paper Sec. 5.2: 4x4 banks of 4x4 MRAM sub-arrays)."""

    banks: int = 16                 # 4x4
    subarrays_per_bank: int = 16    # 4x4
    mram: MRAMPEConfig = dataclasses.field(default_factory=MRAMPEConfig)
    sram: SRAMPEConfig = dataclasses.field(default_factory=SRAMPEConfig)

    @property
    def mram_pes(self) -> int:
        return self.banks * self.subarrays_per_bank

    @property
    def mram_capacity_bytes(self) -> int:
        """16 MB with the default geometry — matching the paper's claim that
        a single core stores 16 MB (so the 26 MB dense model needs 2 cores)."""
        return self.mram_pes * self.mram.array_bits // 8


@dataclasses.dataclass
class Tile:
    """One PE-sized block of a layer's weight matrix."""

    layer: str
    row_offset: int
    col_offset: int
    rows: int
    cols: int
    pairs: int                      # compressed (weight, index) pairs
    kind: str                       # 'sram' | 'mram'
    pe_index: int = -1              # assigned by the mapper


@dataclasses.dataclass
class MappingPlan:
    """Where every layer's tiles live."""

    pattern: NMPattern
    tiles: List[Tile]
    sram_pes_used: int
    mram_pes_used: int
    cores_used: int

    def layer_tiles(self, layer: str) -> List[Tile]:
        return [t for t in self.tiles if t.layer == layer]

    @property
    def total_pairs(self) -> int:
        return sum(t.pairs for t in self.tiles)


def tile_layer_shapes(in_dim: int, out_dim: int, pattern: NMPattern,
                      pe_pairs: int, max_rows: int = 1024
                      ) -> List[Tuple[int, int, int, int]]:
    """Cut a matrix into (row_off, col_off, rows, cols) blocks.

    Row blocks are multiples of ``pattern.m`` (group alignment); column
    blocks are sized so the worst-case compressed pairs of a block —
    ``rows_per_block * density * cols`` — fit in ``pe_pairs``.
    """
    if in_dim <= 0 or out_dim <= 0:
        raise ValueError("matrix dimensions must be positive")
    m = pattern.m
    row_block = min(in_dim, max_rows)
    row_block = max(m, (row_block // m) * m)
    pairs_per_col = math.ceil(row_block * pattern.density)
    col_block = max(1, pe_pairs // max(1, pairs_per_col))

    blocks = []
    for r in range(0, in_dim, row_block):
        rows = min(row_block, in_dim - r)
        for c in range(0, out_dim, col_block):
            cols = min(col_block, out_dim - c)
            blocks.append((r, c, rows, cols))
    return blocks


class HybridMapper:
    """Maps a workload onto the hybrid core hierarchy."""

    def __init__(self, pattern: NMPattern,
                 core: Optional[CoreConfig] = None):
        self.pattern = pattern
        self.core = core or CoreConfig()

    def map_workload(self, workload: Workload) -> MappingPlan:
        """Assign every layer's tiles to PEs; frozen -> MRAM, learnable -> SRAM."""
        with get_tracer().span("mapper.map_workload",
                               workload=workload.name,
                               pattern=str(self.pattern)) as sp:
            plan = self._map_workload(workload)
            sp.count(tiles=len(plan.tiles), pairs=plan.total_pairs,
                     sram_pes=plan.sram_pes_used,
                     mram_pes=plan.mram_pes_used)
        return plan

    def _map_workload(self, workload: Workload) -> MappingPlan:
        tiles: List[Tile] = []
        sram_next = 0
        mram_next = 0
        sram_pairs = self.core.sram.pair_capacity
        mram_pairs = self.core.mram.rows * (
            self.core.mram.row_bits
            // (self.core.mram.weight_bits + self.core.mram.index_bits))

        for layer in workload.layers:
            kind = "sram" if layer.learnable else "mram"
            pe_pairs = sram_pairs if kind == "sram" else mram_pairs
            max_rows = (self.core.sram.rows if kind == "sram"
                        else self.core.mram.rows)
            for r, c, rows, cols in tile_layer_shapes(
                    layer.in_dim, layer.out_dim, self.pattern, pe_pairs,
                    max_rows=max_rows):
                pairs = math.ceil(rows * self.pattern.density) * cols
                if kind == "sram":
                    pe = sram_next
                    sram_next += 1
                else:
                    pe = mram_next
                    mram_next += 1
                tiles.append(Tile(layer.name, r, c, rows, cols, pairs,
                                  kind, pe))

        cores = max(1, math.ceil(mram_next / self.core.mram_pes))
        return MappingPlan(pattern=self.pattern, tiles=tiles,
                           sram_pes_used=sram_next, mram_pes_used=mram_next,
                           cores_used=cores)

    def storage_report(self, workload: Workload) -> Dict[str, float]:
        """Bytes by residence, plus the dense baseline for comparison."""
        plan = self.map_workload(workload)
        pair_bits = 8 + 4
        sram_bits = sum(t.pairs for t in plan.tiles if t.kind == "sram") * pair_bits
        mram_bits = sum(t.pairs for t in plan.tiles if t.kind == "mram") * pair_bits
        return {
            "sram_bytes": sram_bits / 8,
            "mram_bytes": mram_bits / 8,
            "dense_bytes": float(workload.dense_bytes()),
            "compression_ratio": (sram_bits + mram_bits)
            / max(1, workload.total_weights * 8),
            "cores_used": plan.cores_used,
            "sram_pes": plan.sram_pes_used,
            "mram_pes": plan.mram_pes_used,
        }


def dense_core_requirement(workload: Workload,
                           core: Optional[CoreConfig] = None) -> int:
    """Cores a *dense* (uncompressed) mapping needs — the paper's dual-core
    observation: 26 MB dense RepNet > 16 MB/core -> 2 cores."""
    core = core or CoreConfig()
    return max(1, math.ceil(workload.dense_bytes() / core.mram_capacity_bytes))
