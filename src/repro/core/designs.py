"""Design points: the two dense CIM baselines and the hybrid sparse design.

These classes turn a :class:`~repro.core.workload.Workload` into the area,
inference-power and continual-learning-EDP numbers behind the paper's
Fig. 7 and Fig. 8:

* :class:`DenseCIMDesign` ``kind='sram'`` — the ISSCC'21-class all-digital
  SRAM CIM [29]: whole dense model resident in SRAM, all arrays compute in
  parallel (8 bit-serial cycles per activation vector), large leakage.
* :class:`DenseCIMDesign` ``kind='mram'`` — the ISCAS'23-class digital
  STT-MRAM CIM [30]: near-memory row-sequential compute (rows x 8 cycles
  per vector), negligible array leakage, expensive writes.
* :class:`HybridSparseDesign` — this paper: N:M-compressed backbone in
  sparse MRAM PEs, learnable Rep-Net path in a small set of sparse SRAM PEs
  (plus transposed buffers); training writes touch SRAM only.

All latency/energy formulas mirror the functional PE simulators'
cycle-charging rules (see :mod:`repro.core.sram_pe` / ``mram_pe``), applied
analytically so paper-scale (26 MB, GMAC) workloads are tractable.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional

from ..energy.area import AreaModel, AreaReport
from ..energy.cost import CostModel, EnergyBreakdown
from ..energy.tech import DEFAULT_TECH, TechnologyModel
from ..sparsity.nm import NMPattern
from .mram_pe import PIPELINE_DEPTH
from .workload import LayerWorkload, Workload


@dataclasses.dataclass
class PerfReport:
    """Latency + energy of one workload execution on one design."""

    design: str
    phase: str                 # 'inference' | 'training_step'
    latency_s: float
    energy: EnergyBreakdown

    @property
    def energy_j(self) -> float:
        return self.energy.total_pj * 1e-12

    @property
    def avg_power_mw(self) -> float:
        if self.latency_s <= 0:
            return 0.0
        return self.energy_j / self.latency_s * 1e3

    @property
    def edp_js(self) -> float:
        """Energy-delay product (J*s) — the Fig. 8 metric."""
        return self.energy_j * self.latency_s

    def as_dict(self) -> Dict[str, float]:
        d = {"design": self.design, "phase": self.phase,
             "latency_s": self.latency_s, "avg_power_mw": self.avg_power_mw,
             "edp_js": self.edp_js}
        d.update(self.energy.as_dict())
        return d


class DenseCIMDesign:
    """A dense (no sparsity support) CIM design in one memory technology.

    ``update_scope`` controls the training study: ``'all'`` fine-tunes every
    weight (the paper's "Finetune All Weight" bars); ``'learnable'`` trains
    only the Rep-Net path ("RepNet without Sparsity") but still stores and
    updates it in this design's memory.
    """

    #: Dense weights per SRAM PIM array (128 rows x 8 weight columns).
    SRAM_ARRAY_WEIGHTS = 128 * 8
    #: Dense weights per MRAM sub-array (1024 rows x 64 INT8 words).
    MRAM_ARRAY_WEIGHTS = 1024 * 64
    MRAM_WEIGHTS_PER_ROW = 64
    #: Activation-broadcast bandwidth cap: how many arrays the shared buses
    #: and the global buffer can feed simultaneously (same cap for every
    #: design, so relative results are bandwidth-fair).
    PARALLEL_ARRAY_CAP = 256
    #: Shared activation-bus width (bits/cycle).  Every design must deliver a
    #: layer's input vector (in_dim x 8 bits) over this bus; in-memory
    #: compute can be no faster than its inputs arrive.  Sparse index-phase
    #: processing reuses each delivered vector for m phases, so it hides the
    #: bus latency that bounds the dense designs.
    ACTIVATION_BUS_BITS = 128

    def __init__(self, kind: str, update_scope: str = "all",
                 tech: TechnologyModel = DEFAULT_TECH, name: str = "",
                 bus_bits: Optional[int] = None):
        if kind not in ("sram", "mram"):
            raise ValueError(f"unknown memory kind {kind!r}")
        if update_scope not in ("all", "learnable"):
            raise ValueError(f"unknown update scope {update_scope!r}")
        self.kind = kind
        self.update_scope = update_scope
        self.tech = tech
        self.cost = CostModel(tech)
        self.area_model = AreaModel(tech)
        self.name = name or f"dense-{kind}"
        #: Per-instance activation-bus width; defaults to the class-level
        #: ACTIVATION_BUS_BITS so subclass overrides keep working.
        self.bus_bits = (self.ACTIVATION_BUS_BITS if bus_bits is None
                         else int(bus_bits))
        if self.bus_bits <= 0:
            raise ValueError(f"bus_bits must be positive, got {bus_bits}")

    # ------------------------------------------------------------------ area
    def provisioned_arrays(self, workload: Workload) -> int:
        per_array = (self.SRAM_ARRAY_WEIGHTS if self.kind == "sram"
                     else self.MRAM_ARRAY_WEIGHTS)
        return math.ceil(workload.total_weights / per_array)

    def area(self, workload: Workload) -> AreaReport:
        bits = workload.total_weights * 8
        return self.area_model.dense_design_area(bits, self.kind)

    # ------------------------------------------------------------- inference
    def _layer_vector_cycles(self, layer: LayerWorkload) -> float:
        """Cycles to stream one activation vector through ``layer``."""
        bus_cycles = layer.in_dim * 8.0 / self.bus_bits
        if self.kind == "sram":
            tiles = max(1, math.ceil(layer.weights / self.SRAM_ARRAY_WEIGHTS))
            serialization = math.ceil(tiles / self.PARALLEL_ARRAY_CAP)
            return max(serialization * 8.0, bus_cycles)
        arrays = max(1, math.ceil(layer.weights / self.MRAM_ARRAY_WEIGHTS))
        rows = math.ceil(layer.weights / (arrays * self.MRAM_WEIGHTS_PER_ROW))
        return max((rows + PIPELINE_DEPTH - 1) * 8.0, bus_cycles)

    def _leakage_power_mw(self, workload: Workload) -> float:
        if self.kind == "sram":
            return self.cost.leakage_power_mw(
                sram_bytes=workload.total_weights, mram_arrays=0)
        return self.cost.leakage_power_mw(
            sram_bytes=0, mram_arrays=self.provisioned_arrays(workload))

    def inference(self, workload: Workload, batch: int = 1) -> PerfReport:
        cycles = 0.0
        compute = 0.0
        buffer_bits = 0.0
        for layer in workload.layers:
            vectors = layer.positions * batch
            cycles += vectors * self._layer_vector_cycles(layer)
            compute += self.cost.mac_energy_pj(layer.macs * batch, self.kind)
            buffer_bits += vectors * (layer.in_dim + layer.out_dim) * 8

        latency = self.cost.cycles_to_s(cycles)
        leak_pj = self._leakage_power_mw(workload) * 1e-3 * latency * 1e12
        energy = EnergyBreakdown(
            leakage_pj=leak_pj, compute_pj=compute,
            buffer_pj=self.cost.buffer_energy_pj(buffer_bits))
        return PerfReport(self.name, "inference", latency, energy)

    # -------------------------------------------------------------- training
    def training_step(self, workload: Workload, batch: int = 32,
                      include_forward: bool = False) -> PerfReport:
        """The learning phase of one SGD step: backward pass + weight update.

        By default the (design-independent, inference-identical) forward pass
        is excluded: the paper attributes the Fig. 8 EDP differences to "the
        volume of weight updates" and the backward machinery, and charging
        every design its own forward cost would double-count what Fig. 7
        already compares.  Pass ``include_forward=True`` for the full step.
        """
        scope = (workload.layers if self.update_scope == "all"
                 else [l for l in workload.layers if l.learnable])

        bwd_cycles = 0.0
        bwd_compute = 0.0
        buffer_bits = 0.0
        update_bits = 0.0
        grad_operand_bits = 0.0
        for layer in scope:
            vectors = layer.positions * batch
            # Error propagation + gradient: two transposed matmuls of the
            # layer's MAC volume each.
            bwd_cycles += 2 * vectors * self._layer_vector_cycles(layer)
            bwd_compute += 2 * self.cost.mac_energy_pj(
                layer.macs * batch, self.kind)
            # Errors staged through the global buffer.
            buffer_bits += 2 * vectors * layer.out_dim * 8
            update_bits += layer.weights * 8
            # Gradient computation (G = a^T delta) needs the transposed
            # activation matrix written into the compute arrays.
            grad_operand_bits += vectors * layer.in_dim * 8

        arrays = max(1, min(self.provisioned_arrays(workload),
                            self.PARALLEL_ARRAY_CAP))
        # Transposed weights + transposed activations re-written each step.
        transpose_bits = update_bits + grad_operand_bits
        write_cycles = self.cost.write_latency_cycles(
            update_bits + transpose_bits, self.kind, parallel_arrays=arrays)

        latency = self.cost.cycles_to_s(bwd_cycles + write_cycles)
        compute = bwd_compute
        buffer = self.cost.buffer_energy_pj(buffer_bits)
        if include_forward:
            fwd = self.inference(workload, batch=batch)
            latency += fwd.latency_s
            compute += fwd.energy.compute_pj
            buffer += fwd.energy.buffer_pj
        leak_pj = self._leakage_power_mw(workload) * 1e-3 * latency * 1e12
        energy = EnergyBreakdown(
            leakage_pj=leak_pj,
            compute_pj=compute,
            write_pj=self.cost.write_energy_pj(
                update_bits + transpose_bits, self.kind),
            buffer_pj=buffer)
        return PerfReport(self.name, "training_step", latency, energy)


class HybridSparseDesign:
    """The paper's hybrid: sparse MRAM backbone + sparse SRAM learnable path.

    Provisioning (paper Secs. 4/5.2): the compressed backbone fills MRAM
    sub-arrays; the compressed Rep-Net weights are "proportionately reserved"
    in SRAM, plus a small *fixed* set of SRAM sparse compute PEs — half for
    the forward direction and half as transposed buffers for
    backpropagation — through which learnable layers are time-multiplexed.
    """

    SRAM_PE_PAIRS = 128 * 8
    #: The compute-PE pool is sized once at design time for the *sparsest*
    #: supported pattern (the hardware's N:16-class lower bound on density);
    #: denser runtime patterns time-multiplex extra passes through it.
    REFERENCE_DENSITY = 1.0 / 8.0

    def __init__(self, pattern: NMPattern,
                 tech: TechnologyModel = DEFAULT_TECH, name: str = "",
                 bus_bits: Optional[int] = None):
        self.pattern = pattern
        self.tech = tech
        self.cost = CostModel(tech)
        self.area_model = AreaModel(tech)
        self.name = name or f"hybrid-{pattern}"
        #: Shared activation-bus width; the hybrid competes on the same bus
        #: as the dense baselines unless a sweep overrides it per point.
        self.bus_bits = (DenseCIMDesign.ACTIVATION_BUS_BITS if bus_bits is None
                         else int(bus_bits))
        if self.bus_bits <= 0:
            raise ValueError(f"bus_bits must be positive, got {bus_bits}")
        self._mram_pairs_per_row = tech.mram.row_bits // (
            tech.mram.weight_bits + tech.mram.index_bits)
        if self._mram_pairs_per_row < 1:
            raise ValueError(
                f"MRAM row ({tech.mram.row_bits} bits) cannot hold one "
                f"(weight, index) pair at {tech.mram.weight_bits}+"
                f"{tech.mram.index_bits} bits")
        self._mram_array_pairs = tech.mram.rows * self._mram_pairs_per_row

    # --------------------------------------------------------------- sizing
    def _layer_pairs(self, layer: LayerWorkload) -> int:
        """Compressed (weight, index) pairs of one layer."""
        return math.ceil(layer.weights * self.pattern.density)

    def sram_storage_bits(self, workload: Workload) -> int:
        """Compressed Rep-Net weight storage resident in SRAM."""
        return workload.compressed_bits(
            self.pattern, weight_bits=self.tech.sram.weight_bits,
            index_bits=self.tech.sram.index_bits, scope="learnable")

    def sram_fwd_pe_count(self, workload: Workload) -> int:
        """Forward-direction SRAM compute PEs (paper Sec. 4: bounded by the
        maximum learnable layer, at the design's reference density)."""
        learnable = [l for l in workload.layers if l.learnable]
        if not learnable:
            return 1
        return max(math.ceil(math.ceil(l.weights * self.REFERENCE_DENSITY)
                             / self.SRAM_PE_PAIRS) for l in learnable)

    def sram_compute_pe_count(self, workload: Workload) -> int:
        """Total SRAM compute PEs: forward pool + equal transposed-buffer pool."""
        return 2 * self.sram_fwd_pe_count(workload)

    def mram_array_count(self, workload: Workload) -> int:
        frozen_pairs = sum(self._layer_pairs(l) for l in workload.layers
                           if not l.learnable)
        return max(1, math.ceil(frozen_pairs / self._mram_array_pairs))

    def backbone_compressed_bits(self, workload: Workload) -> int:
        return workload.compressed_bits(
            self.pattern, weight_bits=self.tech.mram.weight_bits,
            index_bits=self.tech.mram.index_bits, scope="frozen")

    def area(self, workload: Workload) -> AreaReport:
        return self.area_model.hybrid_design_area(
            self.backbone_compressed_bits(workload),
            self.sram_compute_pe_count(workload),
            sram_storage_bits=self.sram_storage_bits(workload))

    # ------------------------------------------------------------- inference
    def _frozen_vector_cycles(self, layer: LayerWorkload) -> float:
        bus_cycles = layer.in_dim * 8.0 / self.bus_bits
        pairs = self._layer_pairs(layer)
        arrays = max(1, math.ceil(pairs / self._mram_array_pairs))
        rows = math.ceil(pairs / (arrays * self._mram_pairs_per_row))
        return max((rows + PIPELINE_DEPTH - 1) * 8.0, bus_cycles)

    def _learnable_vector_cycles(self, layer: LayerWorkload,
                                 fwd_pes: int) -> float:
        bus_cycles = layer.in_dim * 8.0 / self.bus_bits
        tiles = max(1, math.ceil(self._layer_pairs(layer) / self.SRAM_PE_PAIRS))
        serialization = math.ceil(tiles / max(1, fwd_pes))
        return max(serialization * self.pattern.m * 8.0, bus_cycles)

    def _leakage_power_mw(self, workload: Workload) -> float:
        sram_bytes = (self.sram_storage_bits(workload) // 8
                      + self.sram_compute_pe_count(workload)
                      * self.tech.sram.storage_bytes)
        return self.cost.leakage_power_mw(
            sram_bytes=sram_bytes,
            mram_arrays=self.mram_array_count(workload))

    def inference(self, workload: Workload, batch: int = 1) -> PerfReport:
        fwd_pes = self.sram_fwd_pe_count(workload)
        cycles = 0.0
        compute = 0.0
        buffer_bits = 0.0
        for layer in workload.layers:
            vectors = layer.positions * batch
            nnz = self._layer_pairs(layer)
            if layer.learnable:
                cycles += vectors * self._learnable_vector_cycles(layer, fwd_pes)
                compute += self.cost.mac_energy_pj(
                    nnz * vectors, "sram", sparse=True)
            else:
                cycles += vectors * self._frozen_vector_cycles(layer)
                compute += self.cost.mac_energy_pj(
                    nnz * vectors, "mram", sparse=True)
            buffer_bits += vectors * (layer.in_dim + layer.out_dim) * 8

        latency = self.cost.cycles_to_s(cycles)
        leak_pj = self._leakage_power_mw(workload) * 1e-3 * latency * 1e12
        energy = EnergyBreakdown(
            leakage_pj=leak_pj, compute_pj=compute,
            buffer_pj=self.cost.buffer_energy_pj(buffer_bits))
        return PerfReport(self.name, "inference", latency, energy)

    # -------------------------------------------------------------- training
    def training_step(self, workload: Workload, batch: int = 32,
                      include_forward: bool = False) -> PerfReport:
        """Learning phase of one continual-learning step.

        Backward runs only over the learnable (Rep-Net) layers on the SRAM
        sparse compute PEs; weight updates and transposed-buffer rewrites
        touch SRAM only — the MRAM backbone is never written.  Forward is
        excluded by default for the same reason as in
        :meth:`DenseCIMDesign.training_step`.
        """
        learnable = [l for l in workload.layers if l.learnable]
        fwd_pes = self.sram_fwd_pe_count(workload)

        bwd_cycles = 0.0
        bwd_compute = 0.0
        buffer_bits = 0.0
        update_bits = 0.0
        transpose_bits = 0.0
        for layer in learnable:
            vectors = layer.positions * batch
            nnz = self._layer_pairs(layer)
            bwd_cycles += 2 * vectors * self._learnable_vector_cycles(layer, fwd_pes)
            bwd_compute += 2 * self.cost.mac_energy_pj(
                nnz * vectors, "sram", sparse=True)
            buffer_bits += 2 * vectors * layer.out_dim * 8
            pair_bits = nnz * (self.tech.sram.weight_bits
                               + self.tech.sram.index_bits)
            update_bits += nnz * self.tech.sram.weight_bits
            transpose_bits += pair_bits  # W^T re-written into transpose PEs
            # a^T written for the masked gradient: only the activation rows
            # feeding surviving (N:M-kept) weights are needed.
            transpose_bits += vectors * layer.in_dim * 8 * self.pattern.density

        write_cycles = self.cost.write_latency_cycles(
            update_bits + transpose_bits, "sram",
            parallel_arrays=self.sram_compute_pe_count(workload))

        latency = self.cost.cycles_to_s(bwd_cycles + write_cycles)
        compute = bwd_compute
        buffer = self.cost.buffer_energy_pj(buffer_bits)
        if include_forward:
            fwd = self.inference(workload, batch=batch)
            latency += fwd.latency_s
            compute += fwd.energy.compute_pj
            buffer += fwd.energy.buffer_pj
        leak_pj = self._leakage_power_mw(workload) * 1e-3 * latency * 1e12
        energy = EnergyBreakdown(
            leakage_pj=leak_pj,
            compute_pj=compute,
            write_pj=self.cost.write_energy_pj(
                update_bits + transpose_bits, "sram"),
            buffer_pj=buffer)
        return PerfReport(self.name, "training_step", latency, energy)
