"""Compressed Sparse Column (CSC) encoding of N:M-sparse weight matrices.

Orientation convention (used everywhere in :mod:`repro.core`): a weight
matrix is stored PIM-style as ``(in_dim, out_dim)`` — rows are the reduction
(input) dimension driven by the shared input word lines, columns are output
neurons accumulated by the adder trees.  The N:M pattern runs **down each
column** (along the reduction dimension, as in NVIDIA's 2:4), i.e. every
aligned group of ``m`` consecutive rows of a column holds at most ``n``
non-zeros.

CSC compresses each column: only the non-zero values survive, each paired
with its position within its group of ``m`` — a ``ceil(log2(m))``-bit index
(4 bits for the hardware's N:16 upper bound).  This is exactly the
``(compressed weight matrix, index matrix)`` pair of the paper's Fig. 4.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from ..sparsity.nm import NMPattern, verify_nm


@dataclasses.dataclass
class CSCColumn:
    """One compressed column: parallel arrays of values / group ids / indices."""

    values: np.ndarray        # int, non-zero weight values in row order
    group_ids: np.ndarray     # which group of m each value came from
    intra_indices: np.ndarray  # position within the group (0..m-1)

    def __post_init__(self):
        if not (len(self.values) == len(self.group_ids) == len(self.intra_indices)):
            raise ValueError("CSCColumn arrays must be parallel")
        # Same runtime guard as the kernel layer (lint rule R1's surface):
        # a float value sneaking in here would be silently truncated by the
        # int64 casts at decode/plan time.
        from .kernels import require_integer_values
        self.values = require_integer_values(self.values, "CSCColumn")
        self.group_ids = require_integer_values(
            self.group_ids, "CSCColumn group ids")
        self.intra_indices = require_integer_values(
            self.intra_indices, "CSCColumn intra indices")

    @property
    def nnz(self) -> int:
        return len(self.values)

    def row_indices(self, m: int) -> np.ndarray:
        """Original (uncompressed) row index of every stored value."""
        return self.group_ids * m + self.intra_indices


class CSCMatrix:
    """An N:M-sparse matrix in compressed sparse column form.

    Use :meth:`from_dense` to encode; :meth:`decode` round-trips back to the
    dense array (tested property: exact for any matrix satisfying the
    pattern).
    """

    def __init__(self, columns: List[CSCColumn], shape: Tuple[int, int],
                 pattern: NMPattern):
        if len(columns) != shape[1]:
            raise ValueError(f"{len(columns)} columns for shape {shape}")
        self.columns = columns
        self.shape = shape
        self.pattern = pattern
        # nnz is read on every matmul's stats charge; columns are fixed after
        # construction, so cache the sum instead of re-walking out_dim columns.
        self._nnz = sum(col.nnz for col in columns)

    # -------------------------------------------------------------- encoding
    @classmethod
    def from_dense(cls, matrix: np.ndarray, pattern: NMPattern,
                   strict: bool = True) -> "CSCMatrix":
        """Encode a dense ``(in_dim, out_dim)`` matrix.

        ``strict=True`` (default) raises if any group violates the N:M
        budget; ``strict=False`` accepts arbitrary sparsity (the row-wise
        accumulator hardware tolerates uneven columns, Sec. 3.1, at a cycle
        cost the PE simulator charges).
        """
        matrix = np.asarray(matrix)
        if matrix.ndim != 2:
            raise ValueError(f"expected a 2-D matrix, got shape {matrix.shape}")
        if not np.issubdtype(matrix.dtype, np.integer):
            raise TypeError(
                "CSC encodes integer (quantized) weights; quantize first "
                f"(got dtype {matrix.dtype})")
        if strict and not verify_nm(matrix, pattern, axis=0):
            raise ValueError(
                f"matrix violates the {pattern} pattern along the reduction "
                "dimension; prune first or pass strict=False")

        in_dim, out_dim = matrix.shape
        m = pattern.m
        columns: List[CSCColumn] = []
        for c in range(out_dim):
            col = matrix[:, c]
            rows = np.nonzero(col)[0]
            columns.append(CSCColumn(
                values=col[rows].astype(np.int64),
                group_ids=(rows // m).astype(np.int64),
                intra_indices=(rows % m).astype(np.int64),
            ))
        return cls(columns, (in_dim, out_dim), pattern)

    # -------------------------------------------------------------- decoding
    def decode(self) -> np.ndarray:
        """Reconstruct the dense matrix (exact)."""
        from .kernels import KernelPlan
        return KernelPlan.from_csc(self).decode()

    # ------------------------------------------------------------ statistics
    @property
    def nnz(self) -> int:
        return self._nnz

    def storage_bits(self, weight_bits: int = 8,
                     index_bits: Optional[int] = None) -> int:
        """Bits to store the compressed (value, index) pairs."""
        index_bits = self.pattern.index_bits if index_bits is None else index_bits
        return self.nnz * (weight_bits + index_bits)

    def dense_storage_bits(self, weight_bits: int = 8) -> int:
        return self.shape[0] * self.shape[1] * weight_bits

    def compression_ratio(self, weight_bits: int = 8,
                          index_bits: Optional[int] = None) -> float:
        """compressed bits / dense bits (< 1 is a win)."""
        dense = self.dense_storage_bits(weight_bits)
        if dense == 0:
            return 1.0
        return self.storage_bits(weight_bits, index_bits) / dense

    def max_column_nnz(self) -> int:
        return max((col.nnz for col in self.columns), default=0)

    def column_nnz(self) -> np.ndarray:
        return np.array([col.nnz for col in self.columns], dtype=np.int64)


def tile_matrix(matrix: np.ndarray, tile_rows: int, tile_cols: int
                ) -> List[Tuple[int, int, np.ndarray]]:
    """Split a dense matrix into PE-sized tiles.

    Returns ``(row_offset, col_offset, tile)`` triples covering the matrix;
    edge tiles may be smaller.  ``tile_rows`` must be a multiple of the N:M
    group size used downstream so that group alignment survives tiling (the
    callers assert this).
    """
    matrix = np.asarray(matrix)
    if tile_rows <= 0 or tile_cols <= 0:
        raise ValueError("tile dimensions must be positive")
    tiles = []
    for r in range(0, matrix.shape[0], tile_rows):
        for c in range(0, matrix.shape[1], tile_cols):
            tiles.append((r, c, matrix[r:r + tile_rows, c:c + tile_cols]))
    return tiles
