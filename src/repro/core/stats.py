"""Event counters shared by all PE/array simulators.

Every functional simulator in :mod:`repro.core` counts the micro-architectural
events that the cost models in :mod:`repro.energy` convert into energy, delay
and EDP: memory reads/writes (bit granularity), adder-tree activations,
accumulator updates, MAC operations and cycles.
"""

from __future__ import annotations

import dataclasses
from typing import Dict


@dataclasses.dataclass
class PEStats:
    """Counters accumulated by a PE simulator run."""

    cycles: int = 0
    weight_bits_read: int = 0
    weight_bits_written: int = 0
    index_bits_read: int = 0
    index_bits_written: int = 0
    activation_bits_read: int = 0
    macs: int = 0                 # real (non-zero) multiply-accumulates
    dense_equivalent_macs: int = 0  # MACs a dense engine would have executed
    adder_tree_ops: int = 0
    shift_acc_ops: int = 0
    comparator_ops: int = 0
    mux_ops: int = 0
    rowwise_acc_ops: int = 0
    pipeline_stalls: int = 0

    def merge(self, other: "PEStats") -> "PEStats":
        """Accumulate another stats block into this one (returns self)."""
        for field in dataclasses.fields(self):
            setattr(self, field.name,
                    getattr(self, field.name) + getattr(other, field.name))
        return self

    def scaled(self, factor: int) -> "PEStats":
        """Return a copy with every counter multiplied by ``factor``.

        Used when one simulated tile stands for ``factor`` identical tiles
        running in parallel (SIMT replication across cores/banks).
        """
        out = PEStats()
        for field in dataclasses.fields(self):
            setattr(out, field.name, getattr(self, field.name) * factor)
        return out

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)

    @property
    def mac_efficiency(self) -> float:
        """Real MACs / dense-equivalent MACs (1.0 = no skipped work)."""
        if self.dense_equivalent_macs == 0:
            return 0.0
        return self.macs / self.dense_equivalent_macs

    def __add__(self, other: "PEStats") -> "PEStats":
        out = PEStats()
        out.merge(self)
        out.merge(other)
        return out
