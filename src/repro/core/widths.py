"""Datapath bit-width constants and the ``@width_contract`` declaration.

This module is the *single source of truth* for the integer widths the
functional simulator implements and the energy model charges for:

* INT8 weights and activations (paper Sec. 3.1: "8-bit weight, 4-bit
  index" pairs, bit-serial INT8 activations);
* 1-bit comparator-gated partial products (the 8T AND / MUX-select
  output that the all-digital sense path resolves);
* 64-bit numpy accumulators in the kernel layer, whose headroom against
  worst-case ``bits x lanes x column-height`` growth is *proved* by the
  flow-sensitive verifier in :mod:`repro.lint.dataflow` (rule R6) and
  cross-checked against :mod:`repro.energy.sensing` / to
  :mod:`repro.energy.cost` (rule R7).

:func:`width_contract` is a no-op at runtime beyond attaching metadata;
the lint dataflow pass reads the same declaration from the AST.  Keeping
the decorator in ``repro.core`` (not ``repro.lint``) means the datapath
modules never import the analysis that checks them.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Union

#: Signed activation width the PEs consume (INT8, two's complement).
ACTIVATION_BITS = 8

#: Signed stored-weight width (INT8, two's complement).
WEIGHT_BITS = 8

#: Unsigned intra-group index width (N:M patterns up to m=16).
INDEX_BITS = 4

#: Signed accumulator width of the functional kernels (numpy int64).
ACCUM_BITS = 64

#: Width of one comparator-gated partial product (the in-array AND output
#: that the all-digital sense amplifiers resolve — 1 bit, no ADC).
PARTIAL_PRODUCT_BITS = 1

#: Bit-serial plane decomposition is exercised (and proven exact) for
#: every signed width in [BITSERIAL_MIN_BITS, BITSERIAL_MAX_BITS].
BITSERIAL_MIN_BITS = 2
BITSERIAL_MAX_BITS = 16

#: Global bound on the fan-in of any single reduction the kernel layer
#: performs (worst-case CSC column height after spill; every plan the
#: mapper emits is orders of magnitude below this).
MAX_REDUCTION_DEPTH = 1 << 20

#: Bound on how many row tiles one logical GEMM accumulates across
#: (:meth:`repro.core.accelerator.HybridAccelerator.gemm`).
MAX_ROW_TILES = 1 << 12

#: Bound on physical rows of any bit-cell array variant.
MAX_ARRAY_ROWS = 1 << 10

#: Attribute name the decorator stores its metadata under.
WIDTH_CONTRACT_ATTR = "__width_contract__"

#: Keyword arguments :func:`width_contract` accepts.
CONTRACT_FIELDS = ("inputs", "weights", "accum", "depth", "returns",
                   "bounds", "params")


def width_contract(inputs: Optional[str] = None,
                   weights: Optional[str] = None,
                   accum: Optional[str] = None,
                   depth: Optional[str] = None,
                   returns: Optional[str] = None,
                   bounds: Optional[Mapping[str, int]] = None,
                   params: Optional[Mapping[str, str]] = None):
    """Declare the bit-width contract of a datapath entry point.

    ``inputs`` / ``weights`` / ``accum``
        Width specs (``"i8"`` signed 8-bit, ``"u1"`` unsigned 1-bit, ...)
        for the activation operand, the stored operand and the
        accumulator the function's reductions must fit in.
    ``depth``
        Worst-case reduction fan-in as an expression over named bounds
        and :mod:`repro.core.widths` constants (e.g.
        ``"MAX_ARRAY_ROWS * BITSERIAL_MAX_BITS"``).
    ``returns``
        Worst-case magnitude of the return value: a width spec, an
        expression, or the name of another contracted function whose
        declared return range this one inherits.
    ``bounds``
        Upper bounds for free names used in expressions and seeded into
        the abstract environment (``{"bits": BITSERIAL_MAX_BITS}``).
    ``params``
        Environment declarations: variable names (dotted allowed, e.g.
        ``"plan.gather_values"``) pinned to a role (``"inputs"`` /
        ``"weights"``) or a direct width spec.  The verifier treats these
        as trusted range assertions — they are exactly what the runtime
        guards (``require_integer_activations`` et al.) enforce.

    The decorated function is returned unchanged apart from a metadata
    attribute; ``repro.lint.dataflow`` re-reads the declaration from the
    source AST, so the contract is checkable without importing the code.
    """
    spec: Dict[str, Union[str, Mapping]] = {}
    for key, value in (("inputs", inputs), ("weights", weights),
                       ("accum", accum), ("depth", depth),
                       ("returns", returns)):
        if value is not None:
            if not isinstance(value, str):
                raise TypeError(f"width_contract {key}= must be a string")
            spec[key] = value
    if bounds is not None:
        if not all(isinstance(k, str) and isinstance(v, int)
                   and not isinstance(v, bool)
                   for k, v in dict(bounds).items()):
            raise TypeError("width_contract bounds= maps names to ints")
        spec["bounds"] = dict(bounds)
    if params is not None:
        if not all(isinstance(k, str) and isinstance(v, str)
                   for k, v in dict(params).items()):
            raise TypeError("width_contract params= maps names to specs")
        spec["params"] = dict(params)

    def decorate(fn):
        setattr(fn, WIDTH_CONTRACT_ATTR, spec)
        return fn

    return decorate
