"""Bit-level model of the SRAM PIM array (paper Fig. 3, circuits 1-2).

Where :class:`~repro.core.sram_pe.SRAMSparsePE` models the PE at the
dataflow level (vectorized, fast), this module models it at the *bit-cell*
level: every stored weight is 8 physical bit-cells, every stored index 4
bit-cells, and each cycle evaluates the actual circuit primitives —

* the 8T cell's pass-gate AND of its stored bit with the shared input word
  line (one input bit per row per cycle),
* the per-pair 4-bit comparator against the lane's index-generator phase,
* the lane's adder tree summing the comparator-gated, bit-weighted columns
  (two's-complement weighting: the weight MSB column carries −128), and
* the shift accumulator applying the input bit-plane weight.

It is deliberately loop-heavy and slow; its purpose is *cross-validation*:
the test suite drives both models over the same packed contents and
requires bit-identical results, anchoring the fast model's arithmetic to
the circuit description.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..sparsity.nm import NMPattern
from .bitserial import plane_weight
from .csc import CSCMatrix
from .kernels import (KernelPlan, require_integer_activations,
                      spmm_bitserial)
from .sram_pe import SRAMPEConfig
from .widths import width_contract


class BitCellArray:
    """Raw bit storage + per-cycle circuit evaluation for one PE array."""

    def __init__(self, config: Optional[SRAMPEConfig] = None):
        self.config = config or SRAMPEConfig()
        cfg = self.config
        # 8T compute cells: weight bits, one plane per bit position.
        self.weight_bits = np.zeros(
            (cfg.rows, cfg.lanes, cfg.weight_bits), dtype=np.uint8)
        # 6T index cells adjacent to each weight word.
        self.index_bits = np.zeros(
            (cfg.rows, cfg.lanes, cfg.index_bits), dtype=np.uint8)
        self.valid = np.zeros((cfg.rows, cfg.lanes), dtype=bool)

    # ------------------------------------------------------------------ store
    def store_pair(self, row: int, lane: int, weight: int, index: int) -> None:
        """Write one (weight, index) pair into its bit-cells."""
        cfg = self.config
        lo, hi = -(1 << (cfg.weight_bits - 1)), (1 << (cfg.weight_bits - 1)) - 1
        if not lo <= weight <= hi:
            raise ValueError(f"weight {weight} outside signed range")
        if not 0 <= index < (1 << cfg.index_bits):
            raise ValueError(f"index {index} outside {cfg.index_bits}-bit range")
        unsigned = weight + (1 << cfg.weight_bits) if weight < 0 else weight
        for b in range(cfg.weight_bits):
            self.weight_bits[row, lane, b] = (unsigned >> b) & 1
        for b in range(cfg.index_bits):
            self.index_bits[row, lane, b] = (index >> b) & 1
        self.valid[row, lane] = True

    def stored_weight(self, row: int, lane: int) -> int:
        """Decode the two's-complement weight back from its bit-cells."""
        cfg = self.config
        value = 0
        for b in range(cfg.weight_bits):
            value += plane_weight(b, cfg.weight_bits) \
                * int(self.weight_bits[row, lane, b])
        return value

    def stored_index(self, row: int, lane: int) -> int:
        return int(sum(int(self.index_bits[row, lane, b]) << b
                       for b in range(self.config.index_bits)))

    # ------------------------------------------------------------------ cycle
    @width_contract(inputs="u1", weights="u1", accum="i64",
                    depth="MAX_ARRAY_ROWS * BITSERIAL_MAX_BITS",
                    returns="MAX_ARRAY_ROWS * BITSERIAL_MAX_BITS"
                            " * (1 << (BITSERIAL_MAX_BITS - 1))",
                    params={"input_bits": "inputs"})
    def evaluate_cycle(self, input_bits: np.ndarray,
                       phase: int) -> np.ndarray:
        """One array cycle: AND, compare, adder-tree — per lane.

        ``input_bits``: one bit per row (the input word lines this cycle).
        ``phase``: the index generators' current value (shared across lanes
        here; per-lane phases are a trivial generalization).

        Returns the per-lane adder-tree outputs (signed partial sums).
        """
        cfg = self.config
        input_bits = np.asarray(input_bits)
        if input_bits.shape != (cfg.rows,):
            raise ValueError(
                f"need one input bit per row ({cfg.rows}), got "
                f"{input_bits.shape}")
        sums = np.zeros(cfg.lanes, dtype=np.int64)
        for lane in range(cfg.lanes):
            acc = 0
            for row in range(cfg.rows):
                if not self.valid[row, lane]:
                    continue
                # 4-bit comparator: stored index vs the generator phase.
                if self.stored_index(row, lane) != phase:
                    continue
                if input_bits[row] == 0:
                    continue  # pass-gate AND yields all-zero columns
                # 8T AND per bit column, summed with two's-complement
                # weights by the adder tree.
                for b in range(cfg.weight_bits):
                    if self.weight_bits[row, lane, b]:
                        acc += plane_weight(b, cfg.weight_bits)
            sums[lane] = acc
        return sums


class BitLevelSparsePE:
    """A complete sparse-matmul flow on :class:`BitCellArray`.

    Packs a CSC matrix with the same column-major policy as
    :class:`~repro.core.sram_pe.SRAMSparsePE` and executes the full
    phase x bit-plane schedule, including the shift accumulator and the
    row-wise (cross-lane) accumulation for spilled columns.
    """

    def __init__(self, config: Optional[SRAMPEConfig] = None,
                 kernel: Optional[str] = None):
        self.config = config or SRAMPEConfig()
        self.kernel = kernel  # None -> REPRO_KERNEL env var -> default
        self.array = BitCellArray(self.config)
        self._placements: List[List[Tuple[int, int]]] = []  # per column: cells
        self._col_rows: List[np.ndarray] = []
        self._plan: Optional[KernelPlan] = None
        self._pattern: Optional[NMPattern] = None
        self._shape: Optional[Tuple[int, int]] = None

    def load(self, matrix: np.ndarray, pattern: NMPattern) -> None:
        csc = CSCMatrix.from_dense(np.asarray(matrix), pattern, strict=False)
        cfg = self.config
        if csc.nnz > cfg.pair_capacity:
            raise ValueError("matrix exceeds PE capacity; tile first")
        lane, row = 0, 0
        self._placements = []
        self._col_rows = []
        for col in csc.columns:
            cells: List[Tuple[int, int]] = []
            for value, intra in zip(col.values, col.intra_indices):
                if row == cfg.rows:
                    lane, row = lane + 1, 0
                self.array.store_pair(row, lane, int(value), int(intra))
                cells.append((row, lane))
                row += 1
            self._placements.append(cells)
            self._col_rows.append(col.row_indices(pattern.m))
        self._pattern = pattern
        self._shape = csc.shape
        self._plan = self._plan_from_cells()

    def _plan_from_cells(self) -> KernelPlan:
        """Rebuild the kernel plan by decoding the stored bit-cells.

        Every weight goes through :meth:`BitCellArray.stored_weight` — the
        per-bit two's-complement decode over the physical cells — so the
        matmul operands are anchored to the bit-level storage, not to the
        CSC input that produced it.
        """
        columns: List[Tuple[np.ndarray, np.ndarray]] = []
        for cells, rows in zip(self._placements, self._col_rows):
            values = np.array([self.array.stored_weight(r, l)
                               for r, l in cells], dtype=np.int64)
            columns.append((np.asarray(rows, dtype=np.int64), values))
        return KernelPlan.from_columns(columns, self._shape)

    @width_contract(inputs="i8", weights="i8", accum="i64",
                    depth="MAX_REDUCTION_DEPTH",
                    returns="spmm_bitserial",
                    params={"activations": "inputs"})
    def matmul(self, activations: np.ndarray) -> np.ndarray:
        """Exact sparse matmul over the bit-cell contents.

        The operands are read back bit-by-bit from the array (see
        :meth:`_plan_from_cells`); the phase x bit-plane schedule itself is
        executed by the shared :func:`~repro.core.kernels.spmm_bitserial`
        kernel, so this model cross-validates the storage circuits while the
        differential suite cross-validates the kernels.
        """
        if self._pattern is None:
            raise RuntimeError("load() a matrix first")
        cfg = self.config
        activations = np.atleast_2d(np.asarray(activations))
        batch, in_dim = activations.shape
        if in_dim != self._shape[0]:
            raise ValueError("activation dim mismatch")
        require_integer_activations(activations, "bit-level SRAM PE")
        return spmm_bitserial(self._plan, activations, cfg.input_bits,
                              impl=self.kernel)
