"""Transposed SRAM PE buffers for on-device backpropagation (paper Fig. 6-2).

Training the Rep-Net path needs (Sec. 4, Eqs. 1-3):

* error propagation      ``delta^{l-1} = (W^l)^T  delta^l``
* gradient computation   ``G^l = a^l (delta^l)^T``
* weight update          ``W^l <- W^l - eta * G^l``

Matrix multiplication hardware only streams along one orientation, so the
transposed operands are *written* into dedicated transposed SRAM PE buffers
each step — cheap precisely because SRAM writes are fast, which is the
hybrid design's point.  The number of such buffers is bounded by the largest
learnable layer (the error/weight transposes are consumed layer-by-layer),
and shrinks with the model's N:M sparsity.

:class:`TransposedSRAMPE` wraps the sparse PE with a transpose-on-write
path.  :class:`BackpropEngine` strings the three steps together for one
layer and exposes the aggregate write/read/cycle traffic that the Fig. 8 EDP
study charges to training.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..sparsity.nm import NMPattern
from .sram_pe import SRAMPEConfig, SRAMSparsePE
from .stats import PEStats


class TransposedSRAMPE:
    """An SRAM sparse PE that stores the transpose of a weight/error matrix.

    After :meth:`load_transposed`, ``matmul(delta)`` computes
    ``delta @ W^T`` — i.e. error propagation through layer ``W`` (stored
    here as ``(out_dim, in_dim)``).

    The transpose of an N:M matrix is *not* N:M along its own columns, so
    the transposed buffer stores with ``strict=False``; the hardware
    tolerates this because the PE's row-wise accumulator absorbs uneven
    columns (at the cycle cost the simulator charges).  Total non-zeros (and
    hence storage) are unchanged by transposition.
    """

    def __init__(self, config: Optional[SRAMPEConfig] = None):
        self.pe = SRAMSparsePE(config)

    @property
    def stats(self) -> PEStats:
        return self.pe.stats

    def load_transposed(self, matrix: np.ndarray, pattern: NMPattern) -> None:
        """Write ``matrix.T`` into the buffer (charged as SRAM writes)."""
        self.pe.load(np.asarray(matrix).T, pattern, strict=False)

    def matmul(self, activations: np.ndarray) -> np.ndarray:
        return self.pe.matmul(activations)

    def dense_weight(self) -> np.ndarray:
        return self.pe.dense_weight()


class BackpropEngine:
    """One layer's backward pass on transposed SRAM PE buffers.

    Works on integer (quantized) operands, mirroring the INT8 training-step
    dataflow; the learning-rate application and re-quantization live in the
    algorithm layer, so :meth:`weight_update` returns the raw integer
    gradient alongside the updated weights.
    """

    def __init__(self, config: Optional[SRAMPEConfig] = None):
        self.config = config or SRAMPEConfig()
        self.stats = PEStats()

    def propagate_error(self, weight: np.ndarray, delta: np.ndarray,
                        pattern: NMPattern) -> np.ndarray:
        """``delta^{l-1} = delta^l @ W^T`` via a transposed buffer.

        ``weight``: integer ``(in_dim, out_dim)`` (PIM orientation).
        ``delta``: integer ``(batch, out_dim)``.
        """
        buf = TransposedSRAMPE(self.config)
        buf.load_transposed(weight, pattern)
        out = buf.matmul(delta)
        self.stats.merge(buf.stats)
        return out

    def weight_gradient(self, activations: np.ndarray, delta: np.ndarray,
                        pattern: NMPattern) -> np.ndarray:
        """``G = a^T @ delta`` — outer-product gradient via a transposed buffer.

        The *activation* matrix is transposed and written; each batch row of
        ``delta`` then streams through the array.  Returns the integer
        gradient ``(in_dim, out_dim)``.
        """
        activations = np.atleast_2d(np.asarray(activations))
        delta = np.atleast_2d(np.asarray(delta))
        if activations.shape[0] != delta.shape[0]:
            raise ValueError(
                f"batch mismatch: activations {activations.shape[0]} vs "
                f"delta {delta.shape[0]}")
        buf = TransposedSRAMPE(self.config)
        # a^T is (in_dim, batch); streaming delta^T columns yields a^T @ delta.
        buf.pe.load(activations.astype(np.int64), pattern, strict=False)
        grad = buf.matmul(delta.T.astype(np.int64)).T
        self.stats.merge(buf.stats)
        return grad

    def weight_update(self, weight: np.ndarray, grad: np.ndarray,
                      lr_shift: int = 8) -> Tuple[np.ndarray, int]:
        """Integer SGD step ``W <- W - (G >> lr_shift)``.

        A power-of-two learning rate (arithmetic shift) is the standard
        integer-training trick; returns ``(new_weight, bits_written)`` so the
        caller can charge the SRAM write traffic.
        """
        weight = np.asarray(weight, dtype=np.int64)
        grad = np.asarray(grad, dtype=np.int64)
        if weight.shape != grad.shape:
            raise ValueError(
                f"weight {weight.shape} and grad {grad.shape} differ")
        step = grad >> lr_shift if lr_shift >= 0 else grad << (-lr_shift)
        new_weight = weight - step
        changed = int((new_weight != weight).sum())
        bits_written = changed * self.config.weight_bits
        self.stats.weight_bits_written += bits_written
        return new_weight, bits_written
