"""Fault injection: what read bit-errors do to the computation.

Closes the loop between the device-level reliability models
(:mod:`repro.energy.sensing` — read BER vs variation) and the algorithm:
flip stored weight bits at a given bit-error rate and measure how the
sparse matmul output (and downstream classification) degrades.  Used by the
robustness ablation to show the operating margin the all-digital design
enjoys — at realistic BERs (< 1e-6) the computation is bit-exact with
overwhelming probability, and even pessimistic BERs degrade gracefully.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..sparsity.nm import NMPattern
from .sram_pe import SRAMSparsePE


def inject_weight_bit_flips(matrix: np.ndarray, ber: float,
                            rng: Optional[np.random.Generator] = None,
                            weight_bits: int = 8) -> np.ndarray:
    """Flip each stored weight bit independently with probability ``ber``.

    Operates on the two's-complement representation, exactly as a read
    upset would; returns a new integer matrix.  Zero weights are stored too
    (their bit-cells can also flip) — but in the *sparse* storage only
    non-zero weights occupy cells, so flips are restricted to the CSC
    support (zeros stay zero), matching the hardware.
    """
    if not 0.0 <= ber <= 1.0:
        raise ValueError(f"bit error rate must be in [0, 1], got {ber}")
    matrix = np.asarray(matrix)
    if not np.issubdtype(matrix.dtype, np.integer):
        raise TypeError("fault injection operates on integer weights")
    rng = rng or np.random.default_rng(0)
    if ber == 0.0:
        return matrix.astype(np.int64).copy()

    support = matrix != 0
    unsigned = np.where(matrix < 0, matrix + (1 << weight_bits),
                        matrix).astype(np.int64)
    flips = rng.random((weight_bits,) + matrix.shape) < ber
    for b in range(weight_bits):
        mask = flips[b] & support
        unsigned = np.where(mask, unsigned ^ (1 << b), unsigned)
    signed = np.where(unsigned >= (1 << (weight_bits - 1)),
                      unsigned - (1 << weight_bits), unsigned)
    return signed.astype(np.int64)


def gemm_error_study(weight: np.ndarray, activations: np.ndarray,
                     pattern: NMPattern, bers: Sequence[float],
                     trials: int = 3,
                     rng: Optional[np.random.Generator] = None
                     ) -> List[Dict[str, float]]:
    """Relative output error of the sparse PE matmul across read BERs.

    For each BER: corrupt the stored weights, run the PE, compare against
    the fault-free output.  Returns one record per BER with mean/max
    relative output error over ``trials`` corruption draws.
    """
    rng = rng or np.random.default_rng(0)
    weight = np.asarray(weight)
    clean_pe = SRAMSparsePE()
    clean_pe.load(weight, pattern, strict=False)
    clean = clean_pe.matmul(activations).astype(np.float64)
    denom = np.abs(clean).max() + 1e-12

    out: List[Dict[str, float]] = []
    for ber in bers:
        rel_errors = []
        for _ in range(trials):
            corrupted = inject_weight_bit_flips(weight, ber, rng)
            pe = SRAMSparsePE()
            pe.load(corrupted, pattern, strict=False)
            dirty = pe.matmul(activations).astype(np.float64)
            rel_errors.append(float(np.abs(dirty - clean).max()) / denom)
        out.append({
            "ber": float(ber),
            "mean_rel_error": float(np.mean(rel_errors)),
            "max_rel_error": float(np.max(rel_errors)),
        })
    return out


def classification_flip_rate(logits_clean: np.ndarray,
                             logits_faulty: np.ndarray) -> float:
    """Fraction of samples whose argmax changed under faults."""
    a = np.asarray(logits_clean).argmax(axis=-1)
    b = np.asarray(logits_faulty).argmax(axis=-1)
    if a.shape != b.shape:
        raise ValueError("logit shapes differ")
    return float((a != b).mean())
