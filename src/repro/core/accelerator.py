"""Top-level functional model of the hybrid MRAM-SRAM sparse accelerator.

:class:`HybridAccelerator` is the bit-true execution path: integer weight
matrices are N:M-pruned, CSC-encoded, tiled and loaded into actual
:class:`~repro.core.sram_pe.SRAMSparsePE` / :class:`~repro.core.mram_pe.MRAMSparsePE`
instances (frozen layers -> MRAM, learnable layers -> SRAM, per the paper's
mapping), and GEMMs run through the simulated PEs with exact integer
results.  Event counters feed the :class:`~repro.energy.cost.CostModel` for
energy accounting, so small end-to-end runs produce both *numbers that match
a numpy reference bit-for-bit* and *hardware cost estimates*.

For paper-scale studies use the analytical :mod:`repro.core.designs` path;
this class is meant for functional verification and the examples.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..energy.cost import CostModel, EnergyBreakdown
from ..energy.tech import DEFAULT_TECH, TechnologyModel
from ..obs import counter_delta, flatten_stats, get_tracer, nonzero
from ..quant.int8 import QuantParams, quantize_weight_int
from ..sparsity.nm import NMPattern, compute_nm_mask, verify_nm
from .mapper import tile_layer_shapes
from .mram_pe import MRAMPEConfig, MRAMSparsePE
from .sram_pe import SRAMPEConfig, SRAMSparsePE
from .stats import PEStats
from .transpose_pe import BackpropEngine
from .widths import width_contract


@dataclasses.dataclass
class MappedGemm:
    """One weight matrix resident on the accelerator."""

    name: str
    in_dim: int
    out_dim: int
    learnable: bool
    kind: str
    tiles: List[Tuple[int, int, object]]   # (row_off, col_off, PE)
    weight_params: Optional[QuantParams] = None

    @property
    def pe_count(self) -> int:
        return len(self.tiles)


class HybridAccelerator:
    """Functional hybrid accelerator: load layers, run exact integer GEMMs."""

    def __init__(self, pattern: NMPattern,
                 sram_config: Optional[SRAMPEConfig] = None,
                 mram_config: Optional[MRAMPEConfig] = None,
                 tech: TechnologyModel = DEFAULT_TECH,
                 kernel: Optional[str] = None):
        self.pattern = pattern
        self.sram_config = sram_config or SRAMPEConfig()
        self.mram_config = mram_config or MRAMPEConfig()
        # Kernel implementation for every PE this accelerator instantiates
        # (None -> the REPRO_KERNEL env var -> the "fast" default).  Purely a
        # simulator-speed knob: stats/energy are identical either way.
        self.kernel = kernel
        self.cost = CostModel(tech)
        self.gemms: Dict[str, MappedGemm] = {}
        self.backprop = BackpropEngine(self.sram_config)

    # ------------------------------------------------------------------ load
    def load_gemm(self, name: str, weight_int: np.ndarray,
                  learnable: bool, auto_prune: bool = False) -> MappedGemm:
        """Tile and load an integer ``(in_dim, out_dim)`` matrix.

        ``auto_prune=True`` applies magnitude N:M pruning along the reduction
        dimension first; otherwise the matrix must already satisfy the
        pattern (checked by the PEs on load).
        """
        weight_int = np.asarray(weight_int)
        if weight_int.ndim != 2:
            raise ValueError(f"expected a 2-D GEMM matrix, got {weight_int.shape}")
        if not np.issubdtype(weight_int.dtype, np.integer):
            raise TypeError("load_gemm expects integer (quantized) weights; "
                            "use load_float_gemm for float matrices")
        if name in self.gemms:
            raise ValueError(f"GEMM {name!r} already loaded")
        if auto_prune:
            mask = compute_nm_mask(np.abs(weight_int).astype(np.float64),
                                   self.pattern, axis=0)
            weight_int = (weight_int * mask).astype(weight_int.dtype)
        elif not verify_nm(weight_int, self.pattern, axis=0):
            raise ValueError(
                f"matrix {name!r} violates {self.pattern} along the "
                "reduction dimension; prune first or pass auto_prune=True")

        kind = "sram" if learnable else "mram"
        pe_pairs = (self.sram_config.pair_capacity if kind == "sram"
                    else self.mram_config.pair_capacity)
        max_rows = (self.sram_config.rows if kind == "sram"
                    else self.mram_config.rows)
        in_dim, out_dim = weight_int.shape

        tiles: List[Tuple[int, int, object]] = []
        with get_tracer().span("accel.load_gemm", gemm=name, kind=kind) as sp:
            for r, c, rows, cols in tile_layer_shapes(
                    in_dim, out_dim, self.pattern, pe_pairs, max_rows=max_rows):
                block = weight_int[r:r + rows, c:c + cols]
                pe = (SRAMSparsePE(self.sram_config, kernel=self.kernel)
                      if kind == "sram"
                      else MRAMSparsePE(self.mram_config, kernel=self.kernel))
                pe.load(block, self.pattern)
                tiles.append((r, c, pe))
            sp.count(tiles=len(tiles), weights=int(in_dim) * int(out_dim))

        mapped = MappedGemm(name=name, in_dim=in_dim, out_dim=out_dim,
                            learnable=learnable, kind=kind, tiles=tiles)
        self.gemms[name] = mapped
        return mapped

    def load_float_gemm(self, name: str, weight: np.ndarray,
                        learnable: bool) -> Tuple[MappedGemm, QuantParams]:
        """Quantize a float matrix to INT8, magnitude-prune to N:M, load it."""
        weight = np.asarray(weight, dtype=np.float64)
        mask = compute_nm_mask(np.abs(weight), self.pattern, axis=0)
        weight_int, params = quantize_weight_int(weight * mask)
        mapped = self.load_gemm(name, weight_int * mask.astype(np.int64),
                                learnable)
        mapped.weight_params = params
        return mapped, params

    # ------------------------------------------------------------------- run
    @width_contract(inputs="i8", weights="i8", accum="i64",
                    depth="MAX_ROW_TILES",
                    returns="MAX_ROW_TILES * spmm_bitserial",
                    params={"activations": "inputs"})
    def gemm(self, name: str, activations: np.ndarray) -> np.ndarray:
        """Exact integer GEMM ``activations @ W`` through the mapped tiles."""
        mapped = self._get(name)
        activations = np.atleast_2d(np.asarray(activations))
        if activations.shape[1] != mapped.in_dim:
            raise ValueError(
                f"activation dim {activations.shape[1]} != GEMM in_dim "
                f"{mapped.in_dim}")
        tracer = get_tracer()
        if tracer.enabled:
            with tracer.span("accel.gemm", gemm=name, kind=mapped.kind,
                             tiles=mapped.pe_count,
                             batch=activations.shape[0]) as sp:
                before = self._probe_counters()
                out = self._run_tiles(mapped, activations)
                sp.count(**nonzero(counter_delta(before,
                                                 self._probe_counters())))
            return out
        return self._run_tiles(mapped, activations)

    @width_contract(inputs="i8", weights="i8", accum="i64",
                    depth="MAX_ROW_TILES",
                    returns="MAX_ROW_TILES * spmm_bitserial",
                    params={"activations": "inputs"})
    def _run_tiles(self, mapped: MappedGemm,
                   activations: np.ndarray) -> np.ndarray:
        out = np.zeros((activations.shape[0], mapped.out_dim), dtype=np.int64)
        for r, c, pe in mapped.tiles:
            rows = pe.csc.shape[0]
            cols = pe.csc.shape[1]
            out[:, c:c + cols] += pe.matmul(activations[:, r:r + rows])
        return out

    def _probe_counters(self) -> Dict[str, float]:
        """Tracing probe: PEStats counters + energy totals, flattened.

        Only evaluated while the tracer is enabled — walks every PE, so the
        disabled path never pays for it.
        """
        counters = flatten_stats(self.stats())
        for kind, breakdown in self.energy_report().items():
            counters[f"{kind}.energy_pj"] = breakdown.total_pj
        return counters

    def linear(self, name: str, x: np.ndarray,
               input_params: Optional[QuantParams] = None) -> np.ndarray:
        """Float-in/float-out linear layer via INT8 PE execution.

        Activations are symmetrically quantized (per call unless
        ``input_params`` pins the scale), multiplied on the PEs, then
        dequantized with the product of scales.
        """
        mapped = self._get(name)
        if mapped.weight_params is None:
            raise RuntimeError(
                f"GEMM {name!r} was loaded as raw integers; use gemm()")
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        params = input_params or QuantParams.from_tensor(x)
        x_int = params.quantize(x)
        y_int = self.gemm(name, x_int)
        return y_int * (params.scale * mapped.weight_params.scale)

    # -------------------------------------------------------------- training
    def update_gemm(self, name: str, weight_int: np.ndarray) -> None:
        """Rewrite a learnable GEMM in place (a weight-update step)."""
        mapped = self._get(name)
        if not mapped.learnable:
            raise RuntimeError(
                f"GEMM {name!r} is frozen backbone state on MRAM; the hybrid "
                "design never rewrites it during learning")
        weight_int = np.asarray(weight_int)
        if weight_int.shape != (mapped.in_dim, mapped.out_dim):
            raise ValueError("update shape mismatch")
        if not verify_nm(weight_int, self.pattern, axis=0):
            raise ValueError("update violates the N:M pattern")
        for r, c, pe in mapped.tiles:
            rows, cols = pe.csc.shape
            pe.update_weights(weight_int[r:r + rows, c:c + cols], self.pattern)

    def propagate_error(self, name: str, delta_int: np.ndarray) -> np.ndarray:
        """Error propagation ``delta @ W^T`` via transposed SRAM buffers."""
        mapped = self._get(name)
        if not mapped.learnable:
            raise RuntimeError("backprop only runs through learnable layers")
        weight = self.dense_weight(name)
        return self.backprop.propagate_error(weight, delta_int, self.pattern)

    def weight_gradient(self, name: str, activations_int: np.ndarray,
                        delta_int: np.ndarray) -> np.ndarray:
        """Gradient ``a^T @ delta`` via transposed SRAM buffers."""
        mapped = self._get(name)
        if not mapped.learnable:
            raise RuntimeError("backprop only runs through learnable layers")
        return self.backprop.weight_gradient(activations_int, delta_int,
                                             self.pattern)

    # ------------------------------------------------------------- inspection
    def _get(self, name: str) -> MappedGemm:
        if name not in self.gemms:
            raise KeyError(f"no GEMM named {name!r}; loaded: {sorted(self.gemms)}")
        return self.gemms[name]

    def dense_weight(self, name: str) -> np.ndarray:
        """Reassembled dense matrix from the tiles (for verification)."""
        mapped = self._get(name)
        out = np.zeros((mapped.in_dim, mapped.out_dim), dtype=np.int64)
        for r, c, pe in mapped.tiles:
            rows, cols = pe.csc.shape
            out[r:r + rows, c:c + cols] = pe.dense_weight()
        return out

    def stats(self) -> Dict[str, PEStats]:
        """Aggregate PE statistics by memory kind (plus transposed buffers)."""
        agg = {"sram": PEStats(), "mram": PEStats()}
        for mapped in self.gemms.values():
            for _, _, pe in mapped.tiles:
                agg[mapped.kind].merge(pe.stats)
        agg["sram"].merge(self.backprop.stats)
        return agg

    def energy_report(self) -> Dict[str, EnergyBreakdown]:
        """Energy of everything executed so far, from the event counters."""
        stats = self.stats()
        return {kind: self.cost.pe_stats_energy(s, kind)
                for kind, s in stats.items()}

    def pe_counts(self) -> Dict[str, int]:
        counts = {"sram": 0, "mram": 0}
        for mapped in self.gemms.values():
            counts[mapped.kind] += mapped.pe_count
        return counts
