"""Lock-discipline contracts for the threaded serving stack.

``repro.serve`` made the repo a threaded system: one HTTP handler thread
per request, a coalescing batch-worker thread, a job executor, a
lock-guarded tracer.  The invariants that keep it correct — *which lock
guards which field*, and *which entry points may never be called with a
lock held* — live in code review today.  These decorators make them
declarations the static concurrency verifier in
:mod:`repro.lint.concurrency` (rules R11-R14, ``python -m repro.lint
--concurrency``) re-reads from the AST and proves over the package-wide
call graph.

:func:`guarded_by` is the Eraser-style field contract: it names a lock
and the fields that may only be read or written while that lock is held.
Rule R11 runs a lockset analysis over every method (propagating held-lock
sets interprocedurally) and flags any access to a declared field whose
statically-held lockset misses the declared lock.

:func:`holds_no_locks` marks a *blocking* entry point — one that may
sleep on an event, join a worker, or run a multi-second engine call — and
promises its callers never invoke it while holding any lock.  Rule R12
enforces the promise at every call site.

Both decorators follow :func:`repro.core.effects.reentrant`: they attach
metadata attributes and return their target unchanged — no wrappers, no
``__dict__`` growth on instances — so contracted classes stay picklable
and zero-overhead at runtime.
"""

from __future__ import annotations

from typing import Callable, Optional, Type, TypeVar

#: Attribute name :func:`guarded_by` stores its field->lock map under.
GUARDED_BY_ATTR = "__guarded_by__"

#: Attribute name :func:`holds_no_locks` stores its metadata under.
HOLDS_NO_LOCKS_ATTR = "__holds_no_locks__"

_C = TypeVar("_C", bound=Type)
_F = TypeVar("_F", bound=Callable)


def guarded_by(lock: str, *fields: str) -> Callable[[_C], _C]:
    """Class decorator: ``fields`` may only be touched with ``lock`` held.

    ``lock`` names either a synchronization attribute of the decorated
    class itself (``"_lock"``, ``"_cond"``) or, dotted, one of another
    class in the same module (``"JobStore._lock"``) — the pattern where a
    registry object's lock guards the mutable fields of the records it
    owns.  ``fields`` are attribute names of the decorated class.

    Stackable: several ``@guarded_by`` decorations on one class merge,
    so different locks can guard different field groups.  The decorator
    only records the declaration; rule R11 (``python -m repro.lint
    --concurrency``) is what verifies every access site.
    """
    if not lock or not isinstance(lock, str):
        raise ValueError("guarded_by() needs a lock attribute name")
    if not fields:
        raise ValueError(f"guarded_by({lock!r}) declares no fields; "
                         "name the attributes the lock guards")
    bad = [f for f in fields if not f or not isinstance(f, str)]
    if bad:
        raise ValueError(f"guarded_by({lock!r}): field names must be "
                         f"non-empty strings, got {bad!r}")

    def mark(cls: _C) -> _C:
        # Copy before merging: subclasses must not mutate a base's map.
        table = dict(getattr(cls, GUARDED_BY_ATTR, None) or {})
        for field in fields:
            table[field] = lock
        setattr(cls, GUARDED_BY_ATTR, table)
        return cls
    return mark


def holds_no_locks(fn: Optional[_F] = None, *, reason: str = "") -> _F:
    """Declare that a function blocks and must be called lock-free.

    Usable bare (``@holds_no_locks``) or called
    (``@holds_no_locks(reason=...)``).  Returns the function unchanged.

    Rule R12 enforces the contract from both sides: every call site
    reached with a non-empty static lockset is a finding, and so is any
    lock the function itself still holds when it reaches a blocking
    operation.  The declaration also marks the function as *may-block*
    for interprocedural propagation, even when the analysis cannot see
    the blocking leaf (an opaque C call, a subprocess).
    """
    def mark(func: _F) -> _F:
        setattr(func, HOLDS_NO_LOCKS_ATTR, {"reason": reason})
        return func
    if fn is not None:
        return mark(fn)
    return mark  # type: ignore[return-value]


def guarded_fields(cls: type) -> dict:
    """The merged ``{field: lock}`` map declared on ``cls`` (possibly {})."""
    return dict(getattr(cls, GUARDED_BY_ATTR, None) or {})
