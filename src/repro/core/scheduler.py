"""SIMT scheduler: dispatches tile work-groups and builds execution timelines.

The paper's scheduler (Fig. 1, block 2) "manages data distribution and
orchestrates execution in a Single-Instruction-Multiple-Thread (SIMT)
manner": every PE holding a tile of the current layer executes the same
stream-vector instruction on its own tile.  Layers are processed in order
(data dependency), tiles within a layer in parallel up to the activation
broadcast bandwidth.

This module is the cycle-accounting middle layer between the mapper and the
cost models: it produces a per-layer timeline of (start, end) cycles plus
aggregate busy statistics, for both dense-batch inference and the
backpropagation passes.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional

from ..obs import get_tracer
from .designs import DenseCIMDesign
from .mapper import MappingPlan, Tile
from .mram_pe import PIPELINE_DEPTH
from .workload import Workload


@dataclasses.dataclass
class LayerSchedule:
    """Timeline entry for one layer."""

    layer: str
    kind: str
    start_cycle: float
    end_cycle: float
    tiles: int
    vectors: int

    @property
    def cycles(self) -> float:
        return self.end_cycle - self.start_cycle


@dataclasses.dataclass
class ScheduleResult:
    """A full workload schedule."""

    layers: List[LayerSchedule]

    @property
    def total_cycles(self) -> float:
        return self.layers[-1].end_cycle if self.layers else 0.0

    def by_kind(self, kind: str) -> float:
        return sum(l.cycles for l in self.layers if l.kind == kind)

    def bottleneck(self) -> Optional[LayerSchedule]:
        return max(self.layers, key=lambda l: l.cycles, default=None)


class SIMTScheduler:
    """Builds execution timelines from a mapping plan."""

    def __init__(self, plan: MappingPlan, input_bits: int = 8,
                 mram_pairs_per_row: int = 42,
                 bus_bits: int = DenseCIMDesign.ACTIVATION_BUS_BITS):
        self.plan = plan
        self.input_bits = input_bits
        self.mram_pairs_per_row = mram_pairs_per_row
        self.bus_bits = bus_bits

    # -------------------------------------------------------------- per-layer
    def _vector_cycles(self, tiles: List[Tile], in_dim: int) -> float:
        """Cycles for one activation vector through one layer's tile set."""
        bus_cycles = in_dim * self.input_bits / self.bus_bits
        kind = tiles[0].kind
        if kind == "sram":
            compute = self.plan.pattern.m * self.input_bits
        else:
            rows = max(math.ceil(t.pairs / self.mram_pairs_per_row)
                       for t in tiles)
            compute = (rows + PIPELINE_DEPTH - 1) * self.input_bits
        return max(compute, bus_cycles)

    def schedule_inference(self, workload: Workload, batch: int = 1,
                           pipelined: bool = False) -> ScheduleResult:
        """Inference timeline.

        ``pipelined=False`` (default): layer-sequential, tile-parallel — the
        conservative bound used everywhere the designs are compared.

        ``pipelined=True``: the row-stationary, buffer-decoupled dataflow of
        the paper's Sec. 3 ("the data buffer facilitates pipelined
        execution"): all layers stay resident, samples stream through the
        layer pipeline, and steady-state throughput is set by the bottleneck
        layer.  Total cycles = pipeline fill (one sample through every
        layer) + (samples - 1) x bottleneck-layer cycles.
        """
        with get_tracer().span("sched.inference", workload=workload.name,
                               batch=batch, pipelined=pipelined) as sp:
            result = self._schedule_inference(workload, batch, pipelined)
            sp.count(total_cycles=result.total_cycles,
                     layers=len(result.layers))
        return result

    def _schedule_inference(self, workload: Workload, batch: int,
                            pipelined: bool) -> ScheduleResult:
        timeline: List[LayerSchedule] = []
        cursor = 0.0
        per_layer = []
        for layer in workload.layers:
            tiles = self.plan.layer_tiles(layer.name)
            if not tiles:
                continue
            per_vec = self._vector_cycles(tiles, layer.in_dim)
            per_layer.append((layer, tiles, per_vec))

        if not pipelined:
            for layer, tiles, per_vec in per_layer:
                vectors = layer.positions * batch
                end = cursor + vectors * per_vec
                timeline.append(LayerSchedule(
                    layer=layer.name, kind=tiles[0].kind, start_cycle=cursor,
                    end_cycle=end, tiles=len(tiles), vectors=vectors))
                cursor = end
            return ScheduleResult(timeline)

        # Pipelined: fill with sample 0, then bottleneck-bound streaming.
        fill = 0.0
        for layer, tiles, per_vec in per_layer:
            sample_cycles = layer.positions * per_vec
            timeline.append(LayerSchedule(
                layer=layer.name, kind=tiles[0].kind, start_cycle=fill,
                end_cycle=fill + sample_cycles, tiles=len(tiles),
                vectors=layer.positions * batch))
            fill += sample_cycles
        bottleneck = max(l.positions * pv for l, _, pv in per_layer)
        total = fill + (batch - 1) * bottleneck
        # Extend the last entry to cover the streamed tail so total_cycles
        # reflects the full batch.
        if timeline and batch > 1:
            last = timeline[-1]
            timeline[-1] = LayerSchedule(
                layer=last.layer, kind=last.kind, start_cycle=last.start_cycle,
                end_cycle=total, tiles=last.tiles, vectors=last.vectors)
        return ScheduleResult(timeline)

    def schedule_backward(self, workload: Workload,
                          batch: int = 1) -> ScheduleResult:
        """Backward timeline over the learnable layers (reverse order):
        error propagation then gradient per layer, on transposed buffers."""
        with get_tracer().span("sched.backward", workload=workload.name,
                               batch=batch) as sp:
            result = self._schedule_backward(workload, batch)
            sp.count(total_cycles=result.total_cycles,
                     layers=len(result.layers))
        return result

    def _schedule_backward(self, workload: Workload,
                           batch: int) -> ScheduleResult:
        timeline: List[LayerSchedule] = []
        cursor = 0.0
        for layer in reversed([l for l in workload.layers if l.learnable]):
            tiles = self.plan.layer_tiles(layer.name)
            if not tiles:
                continue
            vectors = layer.positions * batch
            per_vec = self._vector_cycles(tiles, layer.in_dim)
            # Two transposed matmuls: delta @ W^T and a^T @ delta.
            end = cursor + 2 * vectors * per_vec
            timeline.append(LayerSchedule(
                layer=f"{layer.name}:bwd", kind=tiles[0].kind,
                start_cycle=cursor, end_cycle=end, tiles=len(tiles),
                vectors=2 * vectors))
            cursor = end
        return ScheduleResult(timeline)

    # ---------------------------------------------------------------- summary
    def utilization(self, workload: Workload) -> Dict[str, float]:
        """Fraction of provisioned PEs that hold live tiles, by kind."""
        live_sram = len({t.pe_index for t in self.plan.tiles
                         if t.kind == "sram"})
        live_mram = len({t.pe_index for t in self.plan.tiles
                         if t.kind == "mram"})
        return {
            "sram_pes_live": float(live_sram),
            "mram_pes_live": float(live_mram),
            "sram_occupancy": (sum(t.pairs for t in self.plan.tiles
                                   if t.kind == "sram")
                               / max(1, live_sram * 1024)),
            "mram_occupancy": (sum(t.pairs for t in self.plan.tiles
                                   if t.kind == "mram")
                               / max(1, live_mram * 43008)),
        }
