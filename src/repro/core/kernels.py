"""Sparse-PE compute kernels: one contract, three interchangeable implementations.

Both PE functional models reduce to the same two primitives:

* :func:`spmm_gather` — the MRAM near-memory dataflow (Fig. 5): per stored
  (weight, index) pair the activation-buffer MUX gathers ``x[group*m + idx]``
  and the shift-and-accumulators fold the products per output column.
* :func:`spmm_bitserial` — the SRAM in-memory dataflow (Fig. 3): activations
  stream as two's-complement bit planes, comparator-gated partial products
  are adder-tree-summed per plane, and the shift accumulator recombines the
  planes.

Each primitive ships in three implementations selected by the ``impl``
argument, the ``REPRO_KERNEL`` environment variable, or the default:

``reference``
    The readable per-column Python loops the PE models originally inlined.
    One numpy call per output column (and per bit plane for the SRAM
    kernel) — easy to audit against the paper's dataflow description, slow.

``fast``
    Fully vectorized.  A :class:`KernelPlan` built once at ``load()`` time
    flattens the CSC columns into contiguous ``values`` / ``row_indices`` /
    ``col_ptr`` arrays plus a zero-padded ``(max_nnz, out_dim)`` gather
    matrix, so an entire matmul is one fancy-index gather plus one einsum —
    and the SRAM bit-plane loop collapses into a single
    ``(bits, batch, nnz)``-shaped tensor contraction.

``flat``
    Plan-free inner loops over the contiguous CSC triplet.  Columns are
    grouped into at most :data:`FLAT_MAX_BUCKETS` nnz buckets (a small
    dynamic program minimizes padded work, so skewed magnitude-pruned
    column histograms don't pay the ``fast`` tier's pad-to-global-max
    tax), then concatenated column-major into one flat gather stream
    folded by a single segmented ``np.add.reduceat`` per batch block.
    The batch axis is blocked (at most :data:`FLAT_BATCH_BLOCK` rows,
    shrunk to fit :data:`FLAT_WORKSET_ELEMS`) for cache locality, and
    gather/reduction scratch comes from a bounded per-process workspace
    pool reused across ``matmul`` calls instead of being reallocated
    per call.

All implementations are bit-identical on int64 (enforced by
``tests/test_kernels_differential.py``), and the choice is observably pure:
stats charging lives in the PE models and is analytical (derived from nnz,
geometry and batch — never from loop trip counts), so switching kernels can
never change reported cycles, energy or any other hardware number.
"""

from __future__ import annotations

import collections
import dataclasses
import functools
import os
import threading
from typing import (TYPE_CHECKING, Dict, Iterator, List, NamedTuple, Optional,
                    Sequence, Tuple)

import numpy as np

from ..obs import get_tracer
from .bitserial import from_partials, to_bit_planes
from .concurrency import guarded_by
from .effects import effects
from .widths import BITSERIAL_MAX_BITS, width_contract

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .csc import CSCMatrix

#: Environment variable selecting the process-wide default implementation.
KERNEL_ENV_VAR = "REPRO_KERNEL"

#: Implementation used when neither ``impl`` nor the env var says otherwise.
DEFAULT_KERNEL = "fast"

#: The recognised implementation names.
KERNEL_IMPLEMENTATIONS = ("reference", "fast", "flat")

#: Upper bound on nnz buckets per plan for the ``flat`` tier.  More buckets
#: means less padding waste but more per-bucket dispatch overhead; 8 keeps
#: the padded work within a few percent of ideal on DLMC-style histograms.
FLAT_MAX_BUCKETS = 8

#: Largest batch block the ``flat`` tier processes at once.
FLAT_BATCH_BLOCK = 64

#: Per-block working-set budget (int64 elements, ~16 MiB) — the batch
#: block shrinks below :data:`FLAT_BATCH_BLOCK` when the padded gather
#: stream is wide enough that a full block would thrash the cache.
FLAT_WORKSET_ELEMS = 1 << 21

#: Eviction bound of the shared workspace pool: at most this many free
#: scratch buffers are retained process-wide; beyond it, the least
#: recently used capacity class loses a buffer.
WORKSPACE_MAX_ENTRIES = 8


def resolve_kernel(impl: Optional[str] = None) -> str:
    """Resolve an implementation name: argument > ``REPRO_KERNEL`` > default."""
    name = impl or os.environ.get(KERNEL_ENV_VAR) or DEFAULT_KERNEL
    if name not in KERNEL_IMPLEMENTATIONS:
        raise ValueError(
            f"unknown kernel implementation {name!r}; "
            f"choose from {KERNEL_IMPLEMENTATIONS}")
    return name


def require_integer_activations(activations: np.ndarray, pe_name: str) -> None:
    """Reject float activations up front (silent truncation is a footgun)."""
    if not np.issubdtype(np.asarray(activations).dtype, np.integer):
        raise TypeError(f"{pe_name} consumes integer activations")


def require_integer_values(values: np.ndarray, context: str) -> np.ndarray:
    """Reject float weight/index arrays before an ``astype`` truncates them.

    The runtime counterpart of lint rule R1: every array entering the
    kernel plan must already be integer (quantize first), so the int64
    casts inside the plan builder are always exact.  Returns the array
    (as ``np.asarray``) for call-site convenience.
    """
    values = np.asarray(values)
    if values.dtype == np.bool_:
        raise TypeError(
            f"{context} stores integer values; got booleans "
            "(cast explicitly if 0/1 planes are intended)")
    if values.dtype == object:
        # np.asarray falls back to object for ints beyond int64 and for
        # ragged/mixed inputs; neither can enter the kernel plan exactly.
        raise TypeError(
            f"{context} stores integer values; got object dtype "
            "(ints beyond int64 or mixed element types)")
    # Empty arrays default to float64 without meaning it; nothing to truncate.
    if values.size and not np.issubdtype(values.dtype, np.integer):
        raise TypeError(
            f"{context} stores integer values; got dtype {values.dtype} "
            f"(quantize before encoding)")
    if values.ndim == 0:
        # Python ints and 0-d arrays normalise to a 0-d int64 array, so
        # scalars flow through the same dtype path as 1-d+ inputs.
        return values.astype(np.int64)
    return values


@dataclasses.dataclass(frozen=True)
class KernelPlan:
    """A CSC matrix flattened into kernel-ready arrays, built once per load.

    ``values`` / ``row_indices`` / ``col_ptr`` are the classic compressed
    sparse column triplet (``col_ptr`` has ``out_dim + 1`` entries; column
    ``c`` owns the half-open slice ``col_ptr[c]:col_ptr[c+1]``).  On top of
    that, ``gather_rows`` / ``gather_values`` are the same data padded into
    dense ``(max_nnz, out_dim)`` matrices — padding slots carry row 0 with
    value 0, so they gather a real activation but contribute nothing — which
    is what lets the fast kernels run the whole matmul as one gather + one
    contraction.
    """

    shape: Tuple[int, int]
    values: np.ndarray        # (nnz,) int64 — non-zero weights, column-major
    row_indices: np.ndarray   # (nnz,) int64 — original (dense) row of each value
    col_ptr: np.ndarray       # (out_dim + 1,) int64 — column start offsets
    gather_rows: np.ndarray   # (max_nnz, out_dim) int64 — padded row indices
    gather_values: np.ndarray  # (max_nnz, out_dim) int64 — padded values

    # ------------------------------------------------------------ construction
    @classmethod
    def from_columns(cls, columns: Sequence[Tuple[np.ndarray, np.ndarray]],
                     shape: Tuple[int, int]) -> "KernelPlan":
        """Build a plan from per-column ``(row_indices, values)`` pairs."""
        out_dim = shape[1]
        if len(columns) != out_dim:
            raise ValueError(f"{len(columns)} columns for shape {shape}")
        counts = np.array([len(rows) for rows, _ in columns], dtype=np.int64)
        col_ptr = np.zeros(out_dim + 1, dtype=np.int64)
        np.cumsum(counts, out=col_ptr[1:])
        nnz = int(col_ptr[-1])
        if nnz:
            row_indices = np.concatenate(
                [require_integer_values(rows, "KernelPlan row indices")
                 .astype(np.int64) for rows, _ in columns])
            values = np.concatenate(
                [require_integer_values(vals, "KernelPlan values")
                 .astype(np.int64) for _, vals in columns])
        else:
            row_indices = np.zeros(0, dtype=np.int64)
            values = np.zeros(0, dtype=np.int64)

        max_nnz = int(counts.max()) if out_dim else 0
        gather_rows = np.zeros((max_nnz, out_dim), dtype=np.int64)
        gather_values = np.zeros((max_nnz, out_dim), dtype=np.int64)
        for c in range(out_dim):
            lo, hi = col_ptr[c], col_ptr[c + 1]
            gather_rows[:hi - lo, c] = row_indices[lo:hi]
            gather_values[:hi - lo, c] = values[lo:hi]
        return cls(shape=shape, values=values, row_indices=row_indices,
                   col_ptr=col_ptr, gather_rows=gather_rows,
                   gather_values=gather_values)

    @classmethod
    def from_csc(cls, csc: "CSCMatrix") -> "KernelPlan":
        """Flatten a :class:`~repro.core.csc.CSCMatrix` into a plan."""
        m = csc.pattern.m
        return cls.from_columns(
            [(col.row_indices(m), col.values) for col in csc.columns],
            csc.shape)

    # -------------------------------------------------------------- inspection
    @property
    def nnz(self) -> int:
        return len(self.values)

    @property
    def max_column_nnz(self) -> int:
        return self.gather_rows.shape[0]

    def column_slices(self) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(column, row_indices, values)`` — the reference kernels'
        view of the plan, identical to walking ``csc.columns``."""
        for c in range(self.shape[1]):
            lo, hi = self.col_ptr[c], self.col_ptr[c + 1]
            yield c, self.row_indices[lo:hi], self.values[lo:hi]

    def decode(self) -> np.ndarray:
        """Scatter the plan back to the dense ``(in_dim, out_dim)`` matrix."""
        dense = np.zeros(self.shape, dtype=np.int64)
        if self.nnz:
            col_ids = np.repeat(np.arange(self.shape[1], dtype=np.int64),
                                np.diff(self.col_ptr))
            dense[self.row_indices, col_ids] = self.values
        return dense

    @functools.cached_property
    def flat_buckets(self) -> Tuple["_FlatBucket", ...]:
        """The ``flat`` tier's nnz-bucketed view of this plan (built lazily,
        cached on the instance — ``cached_property`` writes the instance
        ``__dict__`` directly, which frozen dataclasses permit)."""
        return _build_flat_buckets(self)

    @functools.cached_property
    def flat_layout(self) -> Optional["_FlatLayout"]:
        """The buckets concatenated into one flat gather stream (lazy,
        cached; ``None`` when the plan has no non-empty column)."""
        return _build_flat_layout(self)


class _FlatBucket(NamedTuple):
    """One nnz bucket of a plan: a group of output columns padded to the
    bucket-local maximum column nnz (pad slots gather row 0 with value 0,
    exactly like the plan-wide gather matrices, but the pad width is the
    bucket's own maximum instead of the global one)."""

    cols: np.ndarray   # (ncols,) int64 — output column ids in this bucket
    rows: np.ndarray   # (width, ncols) int64 — padded row indices
    vals: np.ndarray   # (width, ncols) int64 — padded values


def _partition_column_counts(sorted_counts: np.ndarray,
                             max_buckets: int) -> List[Tuple[int, int]]:
    """Split ascending column-nnz counts into ≤ ``max_buckets`` segments.

    Returns half-open ``(start, end)`` index ranges over the sorted column
    order, chosen to minimize total padded work
    ``sum(seg_max_nnz * seg_ncols)`` — the exact element count the flat
    kernels gather and contract.  With few distinct counts every distinct
    count gets its own zero-waste segment; otherwise a small dynamic
    program over distinct counts picks the optimal boundaries.
    """
    n = len(sorted_counts)
    if n == 0:
        return []
    distinct, first = np.unique(sorted_counts, return_index=True)
    d = len(distinct)
    ends = np.append(first[1:], n).astype(np.int64)    # cols through bucket d
    if d <= max_buckets:
        return [(int(first[i]), int(ends[i])) for i in range(d)]

    starts = np.concatenate(([0], ends[:-1]))          # cols before distinct i
    # dp[b][j]: minimal padded work covering distinct counts 0..j with
    # b+1 segments; choice[b][j] is the distinct index starting the last
    # segment.  cand[j, i] = dp[b-1][i-1] + distinct[j] * (ends[j] -
    # starts[i]) vectorizes to one (d, d) matrix per bucket level.
    dp = (distinct * ends).astype(np.int64)
    choice = np.zeros((max_buckets, d), dtype=np.int64)
    lower = np.tril(np.ones((d, d), dtype=bool))       # valid starts: i <= j
    for b in range(1, max_buckets):
        prev = np.concatenate(([0], dp[:-1]))
        cand = prev[None, :] + distinct[:, None] * (ends[:, None]
                                                    - starts[None, :])
        cand = np.where(lower, cand, np.iinfo(np.int64).max)
        choice[b] = np.argmin(cand, axis=1)
        dp = cand[np.arange(d), choice[b]]

    segments: List[Tuple[int, int]] = []
    j = d - 1
    for b in range(max_buckets - 1, -1, -1):
        i = int(choice[b, j]) if b > 0 else 0
        segments.append((int(starts[i]), int(ends[j])))
        if i == 0:
            break
        j = i - 1
    segments.reverse()
    return segments


def _build_flat_buckets(plan: KernelPlan) -> Tuple[_FlatBucket, ...]:
    """Group a plan's non-empty columns into padded nnz buckets."""
    counts = np.diff(plan.col_ptr)
    nonempty = np.flatnonzero(counts).astype(np.int64)
    if len(nonempty) == 0:
        return ()
    # Stable (count, column) order: deterministic buckets for a given plan.
    order = np.lexsort((nonempty, counts[nonempty]))
    sorted_cols = nonempty[order]
    sorted_counts = counts[sorted_cols]

    buckets = []
    for start, end in _partition_column_counts(sorted_counts,
                                               FLAT_MAX_BUCKETS):
        cols = sorted_cols[start:end]
        width = int(sorted_counts[end - 1])     # ascending: last is the max
        rows = np.zeros((width, len(cols)), dtype=np.int64)
        vals = np.zeros((width, len(cols)), dtype=np.int64)
        for j, c in enumerate(cols):
            lo, hi = plan.col_ptr[c], plan.col_ptr[c + 1]
            rows[:hi - lo, j] = plan.row_indices[lo:hi]
            vals[:hi - lo, j] = plan.values[lo:hi]
        buckets.append(_FlatBucket(cols=cols, rows=rows, vals=vals))
    return tuple(buckets)


class _FlatLayout(NamedTuple):
    """The buckets concatenated into one contiguous gather stream.

    Entries are column-major within each bucket, so every output column
    owns one contiguous run of ``widths[i]`` (bucket-padded) slots —
    which is exactly the segment structure ``np.add.reduceat`` folds in
    a single call, independent of how many buckets the partition chose.
    Pad slots gather row 0 with value 0 and so contribute nothing.
    """

    cols: np.ndarray     # (C,) int64 — non-empty output columns
    starts: np.ndarray   # (C,) int64 — segment start offsets into rows/vals
    widths: np.ndarray   # (C,) int64 — bucket-padded segment widths
    rows: np.ndarray     # (P,) int64 — padded row indices, column-major
    vals: np.ndarray     # (P,) int64 — padded values, column-major


def _build_flat_layout(plan: KernelPlan) -> Optional[_FlatLayout]:
    """Flatten a plan's nnz buckets into the reduceat-ready stream."""
    buckets = plan.flat_buckets
    if not buckets:
        return None
    cols = np.concatenate([b.cols for b in buckets])
    rows = np.concatenate([b.rows.T.reshape(-1) for b in buckets])
    vals = np.concatenate([b.vals.T.reshape(-1) for b in buckets])
    widths = np.concatenate(
        [np.full(len(b.cols), b.rows.shape[0], dtype=np.int64)
         for b in buckets])
    starts = np.zeros(len(cols), dtype=np.int64)
    np.cumsum(widths[:-1], out=starts[1:])
    return _FlatLayout(cols=cols, starts=starts, widths=widths,
                       rows=rows, vals=vals)


def _flat_block(batch: int, per_row_elems: int) -> int:
    """Batch rows per flat block: capped, working-set-budgeted, ≥ 1."""
    budget = max(1, FLAT_WORKSET_ELEMS // max(1, per_row_elems))
    return max(1, min(batch, FLAT_BATCH_BLOCK, budget))


# ---------------------------------------------------------------------------
# Workspace pool — preallocated scratch reused across flat matmul calls
# ---------------------------------------------------------------------------

def _workspace_capacity(nelems: int) -> int:
    """Round a request up to its power-of-two capacity class (min 1)."""
    return 1 << max(0, int(nelems) - 1).bit_length()


@guarded_by("_lock", "_buffers", "_total", "_hits", "_misses", "_evictions")
class _WorkspaceCache:
    """A bounded pool of int64 scratch buffers, checkout/checkin style.

    ``checkout`` *pops* a free buffer (or allocates a fresh one on a
    miss), so the caller owns it exclusively until ``checkin`` returns
    it — concurrent serve threads running flat matmuls simply populate
    the pool with one buffer each instead of racing on shared scratch.
    Capacities are power-of-two classes; the pool retains at most
    ``max_entries`` free buffers and evicts from the least recently
    used class beyond that, so mixed-shape call patterns cannot grow
    the pool without bound.
    """

    def __init__(self, max_entries: int = WORKSPACE_MAX_ENTRIES):
        self._lock = threading.Lock()
        self._max_entries = int(max_entries)
        # capacity class -> stack of free buffers, LRU order over classes.
        self._buffers: "collections.OrderedDict[int, List[np.ndarray]]" = \
            collections.OrderedDict()
        self._total = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def checkout(self, nelems: int) -> np.ndarray:
        """An exclusively-owned scratch buffer of ≥ ``nelems`` int64 slots."""
        cap = _workspace_capacity(nelems)
        with self._lock:
            stack = self._buffers.get(cap)
            if stack:
                buf = stack.pop()
                if not stack:
                    del self._buffers[cap]
                self._total -= 1
                self._hits += 1
                return buf
            self._misses += 1
        # Allocate outside the critical section: misses are the slow path.
        return np.empty(cap, dtype=np.int64)

    def checkin(self, buf: np.ndarray) -> None:
        """Return a checked-out buffer to the pool (LRU-bounded)."""
        cap = int(buf.size)
        with self._lock:
            stack = self._buffers.setdefault(cap, [])
            stack.append(buf)
            self._buffers.move_to_end(cap)
            self._total += 1
            while self._total > self._max_entries:
                oldest_cap, oldest = next(iter(self._buffers.items()))
                oldest.pop()
                if not oldest:
                    del self._buffers[oldest_cap]
                self._total -= 1
                self._evictions += 1

    def stats(self) -> Dict[str, int]:
        """Pool counters snapshot (testing/observability)."""
        with self._lock:
            return {
                "buffers": self._total,
                "classes": len(self._buffers),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
            }

    def clear(self) -> None:
        """Drop every pooled buffer and zero the counters."""
        with self._lock:
            self._buffers.clear()
            self._total = 0
            self._hits = 0
            self._misses = 0
            self._evictions = 0


#: The per-process pool behind the flat kernels.
_WORKSPACES = _WorkspaceCache()


@effects("READS_GLOBAL",
         reason="bounded per-process buffer pool: checkout pops a free "
                "buffer under the pool lock (exclusive ownership) or "
                "allocates a fresh one, so callers always receive private "
                "scratch; recycling allocations can never change a "
                "kernel's result, only its allocation rate")
def _workspace_checkout(nelems: int) -> np.ndarray:
    return _WORKSPACES.checkout(nelems)


@effects("READS_GLOBAL",
         reason="returns a private scratch buffer to the bounded pool; "
                "eviction only drops spare allocations, never data a "
                "caller can still observe")
def _workspace_checkin(buf: np.ndarray) -> None:
    _WORKSPACES.checkin(buf)


def workspace_stats() -> Dict[str, int]:
    """Counters of the flat kernels' shared workspace pool."""
    return _WORKSPACES.stats()


def clear_workspaces() -> None:
    """Empty the flat kernels' workspace pool (tests, memory pressure)."""
    _WORKSPACES.clear()


def _check_activations(plan: KernelPlan, activations: np.ndarray) -> np.ndarray:
    activations = np.atleast_2d(np.asarray(activations))
    if activations.shape[1] != plan.shape[0]:
        raise ValueError(
            f"activation dim {activations.shape[1]} != matrix in_dim "
            f"{plan.shape[0]}")
    return activations


# ---------------------------------------------------------------------------
# spmm_gather — MRAM-style MUX-select dataflow
# ---------------------------------------------------------------------------

@width_contract(inputs="i8", weights="i8", accum="i64",
                depth="MAX_REDUCTION_DEPTH",
                returns="depth * inputs * weights",
                params={"activations": "inputs", "vals": "weights",
                        "plan.values": "weights"})
def _spmm_gather_reference(plan: KernelPlan,
                           activations: np.ndarray) -> np.ndarray:
    """Per-column loop, moved verbatim from ``MRAMSparsePE.matmul``."""
    batch = activations.shape[0]
    out = np.zeros((batch, plan.shape[1]), dtype=np.int64)
    for c, rows, vals in plan.column_slices():
        if len(rows) == 0:
            continue
        # Stage 2: MUX-select activations by (group, intra-index).
        selected = activations[:, rows].astype(np.int64)
        # Stage 3: parallel shift-and-accumulate, then adder-tree fold.
        out[:, c] = selected @ vals
    return out


@width_contract(inputs="i8", weights="i8", accum="i64",
                depth="MAX_REDUCTION_DEPTH",
                returns="depth * inputs * weights",
                params={"activations": "inputs",
                        "plan.gather_values": "weights"})
def _spmm_gather_fast(plan: KernelPlan, activations: np.ndarray) -> np.ndarray:
    """One fancy-index gather + one einsum over the padded plan."""
    batch = activations.shape[0]
    if plan.nnz == 0:
        return np.zeros((batch, plan.shape[1]), dtype=np.int64)
    gathered = activations.astype(np.int64)[:, plan.gather_rows]
    return np.einsum("bkc,kc->bc", gathered, plan.gather_values)


@width_contract(inputs="i8", weights="i8", accum="i64",
                depth="MAX_REDUCTION_DEPTH",
                returns="depth * inputs * weights",
                params={"activations": "inputs", "layout.vals": "weights"})
def _spmm_gather_flat(plan: KernelPlan,
                      activations: np.ndarray) -> np.ndarray:
    """Flat CSC stream: one gather, one multiply, one segmented fold.

    The nnz buckets (see :func:`_build_flat_buckets`) are concatenated
    column-major into a single padded stream, so each batch block is
    three numpy calls regardless of bucket count: ``take`` into pooled
    scratch, an in-place multiply by the flat values (pad slots go to
    zero), and ``np.add.reduceat`` over the per-column segments.  The
    batch axis is blocked against a working-set budget for locality.
    """
    batch = activations.shape[0]
    out = np.zeros((batch, plan.shape[1]), dtype=np.int64)
    layout = plan.flat_layout
    if layout is None:
        return out
    acts = activations.astype(np.int64)
    padded = layout.rows.shape[0]
    ncols = layout.cols.shape[0]
    block = _flat_block(batch, padded)
    gather_ws = _workspace_checkout(block * padded)
    reduce_ws = _workspace_checkout(block * ncols)
    try:
        for b0 in range(0, batch, block):
            blk = acts[b0:b0 + block]
            bs = blk.shape[0]
            # mode="clip" keeps numpy on the unbuffered fast path for the
            # out= write; plan indices are in-range, so it never clips.
            prods = blk.take(layout.rows, axis=1, mode="clip",
                             out=gather_ws[:bs * padded].reshape(bs, padded))
            prods *= layout.vals
            sums = np.add.reduceat(
                prods, layout.starts, axis=1,
                out=reduce_ws[:bs * ncols].reshape(bs, ncols))
            out[b0:b0 + bs, layout.cols] = sums
    finally:
        _workspace_checkin(gather_ws)
        _workspace_checkin(reduce_ws)
    return out


@width_contract(inputs="i8", weights="i8", accum="i64",
                returns="_spmm_gather_fast",
                params={"activations": "inputs"})
def spmm_gather(plan: KernelPlan, activations: np.ndarray,
                impl: Optional[str] = None) -> np.ndarray:
    """``activations @ W`` via MUX-select gather (int64, bit-exact).

    ``activations``: integer ``(batch, in_dim)``.  Returns ``(batch,
    out_dim)`` int64, equal to ``activations @ plan.decode()`` exactly.
    """
    activations = _check_activations(plan, activations)
    name = resolve_kernel(impl)
    tracer = get_tracer()
    if tracer.enabled:
        with tracer.span("kernel.spmm_gather", impl=name) as sp:
            sp.count(nnz=plan.nnz, batch=activations.shape[0], calls=1)
            return _GATHER_IMPLS[name](plan, activations)
    return _GATHER_IMPLS[name](plan, activations)


# ---------------------------------------------------------------------------
# spmm_bitserial — SRAM-style bit-plane x index-phase dataflow
# ---------------------------------------------------------------------------

@width_contract(inputs="i8", weights="i8", accum="i64",
                depth="MAX_REDUCTION_DEPTH",
                returns="from_partials",
                bounds={"input_bits": BITSERIAL_MAX_BITS},
                params={"activations": "inputs", "vals": "weights",
                        "plan.values": "weights"})
def _spmm_bitserial_reference(plan: KernelPlan, activations: np.ndarray,
                              input_bits: int) -> np.ndarray:
    """Per-column, per-bit-plane loop, moved verbatim from
    ``SRAMSparsePE.matmul``."""
    planes = to_bit_planes(activations, input_bits)  # (bits, batch, in)
    batch = activations.shape[0]
    out = np.zeros((batch, plan.shape[1]), dtype=np.int64)
    for c, rows, vals in plan.column_slices():
        if len(rows) == 0:
            continue
        # Step 1+2: for each bit plane, comparator-gated partial products.
        partials = np.empty((input_bits, batch), dtype=np.int64)
        for b in range(input_bits):
            # All phases t of the index sweep contribute; entry (row i)
            # fires in phase t == intra index, receiving activation bit
            # planes[b][:, rows].  Summing over the sweep == one gather.
            partials[b] = planes[b][:, rows] @ vals
        # Step 3: shift accumulate (two's complement plane weights).
        out[:, c] = from_partials(partials, input_bits)
    return out


@width_contract(inputs="i8", weights="i8", accum="i64",
                depth="MAX_REDUCTION_DEPTH",
                returns="from_partials",
                bounds={"input_bits": BITSERIAL_MAX_BITS},
                params={"activations": "inputs",
                        "plan.gather_values": "weights"})
def _spmm_bitserial_fast(plan: KernelPlan, activations: np.ndarray,
                         input_bits: int) -> np.ndarray:
    """All bit planes, columns and batch rows in one tensor contraction."""
    planes = to_bit_planes(activations, input_bits)  # (bits, batch, in)
    batch = activations.shape[0]
    if plan.nnz == 0:
        return np.zeros((batch, plan.shape[1]), dtype=np.int64)
    gathered = planes[:, :, plan.gather_rows]  # (bits, batch, max_nnz, out)
    partials = np.einsum("abkc,kc->abc", gathered, plan.gather_values)
    return from_partials(partials, input_bits)


@width_contract(inputs="i8", weights="i8", accum="i64",
                depth="MAX_REDUCTION_DEPTH",
                returns="from_partials",
                bounds={"input_bits": BITSERIAL_MAX_BITS},
                params={"activations": "inputs", "layout.vals": "weights"})
def _spmm_bitserial_flat(plan: KernelPlan, activations: np.ndarray,
                         input_bits: int) -> np.ndarray:
    """Flat bit-plane stream over pooled scratch.

    Same fused gather/multiply/reduceat as :func:`_spmm_gather_flat`
    with the plane axis in front; the batch block is budgeted against
    ``input_bits`` times the stream width, so wide plans and deep bit
    depths automatically fall back to smaller, cache-resident blocks.
    """
    planes = to_bit_planes(activations, input_bits)  # (bits, batch, in)
    batch = activations.shape[0]
    out = np.zeros((batch, plan.shape[1]), dtype=np.int64)
    layout = plan.flat_layout
    if layout is None:
        return out
    padded = layout.rows.shape[0]
    ncols = layout.cols.shape[0]
    block = _flat_block(batch, input_bits * padded)
    gather_ws = _workspace_checkout(input_bits * block * padded)
    reduce_ws = _workspace_checkout(input_bits * block * ncols)
    try:
        for b0 in range(0, batch, block):
            pblk = planes[:, b0:b0 + block]
            bs = pblk.shape[1]
            # mode="clip": unbuffered out= path; indices never clip.
            prods = pblk.take(
                layout.rows, axis=2, mode="clip",
                out=gather_ws[:input_bits * bs * padded]
                .reshape(input_bits, bs, padded))
            prods *= layout.vals
            partials = np.add.reduceat(
                prods, layout.starts, axis=2,
                out=reduce_ws[:input_bits * bs * ncols]
                .reshape(input_bits, bs, ncols))
            out[b0:b0 + bs, layout.cols] = from_partials(partials,
                                                         input_bits)
    finally:
        _workspace_checkin(gather_ws)
        _workspace_checkin(reduce_ws)
    return out


@width_contract(inputs="i8", weights="i8", accum="i64",
                returns="_spmm_bitserial_fast",
                params={"activations": "inputs"})
def spmm_bitserial(plan: KernelPlan, activations: np.ndarray,
                   input_bits: int, impl: Optional[str] = None) -> np.ndarray:
    """``activations @ W`` via the bit-serial schedule (int64, bit-exact).

    Walks (reference), contracts (fast) or bucket-blocks (flat) the
    bit-plane x phase dataflow; either way the result equals
    ``activations @ plan.decode()`` exactly.
    """
    activations = _check_activations(plan, activations)
    name = resolve_kernel(impl)
    tracer = get_tracer()
    if tracer.enabled:
        with tracer.span("kernel.spmm_bitserial", impl=name,
                         input_bits=input_bits) as sp:
            sp.count(nnz=plan.nnz, batch=activations.shape[0], calls=1)
            return _BITSERIAL_IMPLS[name](plan, activations, input_bits)
    return _BITSERIAL_IMPLS[name](plan, activations, input_bits)


_GATHER_IMPLS = {
    "reference": _spmm_gather_reference,
    "fast": _spmm_gather_fast,
    "flat": _spmm_gather_flat,
}

_BITSERIAL_IMPLS = {
    "reference": _spmm_bitserial_reference,
    "fast": _spmm_bitserial_fast,
    "flat": _spmm_bitserial_flat,
}
