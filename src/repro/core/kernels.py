"""Sparse-PE compute kernels: one contract, two interchangeable implementations.

Both PE functional models reduce to the same two primitives:

* :func:`spmm_gather` — the MRAM near-memory dataflow (Fig. 5): per stored
  (weight, index) pair the activation-buffer MUX gathers ``x[group*m + idx]``
  and the shift-and-accumulators fold the products per output column.
* :func:`spmm_bitserial` — the SRAM in-memory dataflow (Fig. 3): activations
  stream as two's-complement bit planes, comparator-gated partial products
  are adder-tree-summed per plane, and the shift accumulator recombines the
  planes.

Each primitive ships in two implementations selected by the ``impl``
argument, the ``REPRO_KERNEL`` environment variable, or the default:

``reference``
    The readable per-column Python loops the PE models originally inlined.
    One numpy call per output column (and per bit plane for the SRAM
    kernel) — easy to audit against the paper's dataflow description, slow.

``fast``
    Fully vectorized.  A :class:`KernelPlan` built once at ``load()`` time
    flattens the CSC columns into contiguous ``values`` / ``row_indices`` /
    ``col_ptr`` arrays plus a zero-padded ``(max_nnz, out_dim)`` gather
    matrix, so an entire matmul is one fancy-index gather plus one einsum —
    and the SRAM bit-plane loop collapses into a single
    ``(bits, batch, nnz)``-shaped tensor contraction.

The two implementations are bit-identical on int64 (enforced by
``tests/test_kernels_differential.py``), and the choice is observably pure:
stats charging lives in the PE models and is analytical (derived from nnz,
geometry and batch — never from loop trip counts), so switching kernels can
never change reported cycles, energy or any other hardware number.
"""

from __future__ import annotations

import dataclasses
import os
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..obs import get_tracer
from .bitserial import from_partials, to_bit_planes
from .widths import BITSERIAL_MAX_BITS, width_contract

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .csc import CSCMatrix

#: Environment variable selecting the process-wide default implementation.
KERNEL_ENV_VAR = "REPRO_KERNEL"

#: Implementation used when neither ``impl`` nor the env var says otherwise.
DEFAULT_KERNEL = "fast"

#: The recognised implementation names.
KERNEL_IMPLEMENTATIONS = ("reference", "fast")


def resolve_kernel(impl: Optional[str] = None) -> str:
    """Resolve an implementation name: argument > ``REPRO_KERNEL`` > default."""
    name = impl or os.environ.get(KERNEL_ENV_VAR) or DEFAULT_KERNEL
    if name not in KERNEL_IMPLEMENTATIONS:
        raise ValueError(
            f"unknown kernel implementation {name!r}; "
            f"choose from {KERNEL_IMPLEMENTATIONS}")
    return name


def require_integer_activations(activations: np.ndarray, pe_name: str) -> None:
    """Reject float activations up front (silent truncation is a footgun)."""
    if not np.issubdtype(np.asarray(activations).dtype, np.integer):
        raise TypeError(f"{pe_name} consumes integer activations")


def require_integer_values(values: np.ndarray, context: str) -> np.ndarray:
    """Reject float weight/index arrays before an ``astype`` truncates them.

    The runtime counterpart of lint rule R1: every array entering the
    kernel plan must already be integer (quantize first), so the int64
    casts inside the plan builder are always exact.  Returns the array
    (as ``np.asarray``) for call-site convenience.
    """
    values = np.asarray(values)
    if values.dtype == np.bool_:
        raise TypeError(
            f"{context} stores integer values; got booleans "
            "(cast explicitly if 0/1 planes are intended)")
    if values.dtype == object:
        # np.asarray falls back to object for ints beyond int64 and for
        # ragged/mixed inputs; neither can enter the kernel plan exactly.
        raise TypeError(
            f"{context} stores integer values; got object dtype "
            "(ints beyond int64 or mixed element types)")
    # Empty arrays default to float64 without meaning it; nothing to truncate.
    if values.size and not np.issubdtype(values.dtype, np.integer):
        raise TypeError(
            f"{context} stores integer values; got dtype {values.dtype} "
            f"(quantize before encoding)")
    if values.ndim == 0:
        # Python ints and 0-d arrays normalise to a 0-d int64 array, so
        # scalars flow through the same dtype path as 1-d+ inputs.
        return values.astype(np.int64)
    return values


@dataclasses.dataclass(frozen=True)
class KernelPlan:
    """A CSC matrix flattened into kernel-ready arrays, built once per load.

    ``values`` / ``row_indices`` / ``col_ptr`` are the classic compressed
    sparse column triplet (``col_ptr`` has ``out_dim + 1`` entries; column
    ``c`` owns the half-open slice ``col_ptr[c]:col_ptr[c+1]``).  On top of
    that, ``gather_rows`` / ``gather_values`` are the same data padded into
    dense ``(max_nnz, out_dim)`` matrices — padding slots carry row 0 with
    value 0, so they gather a real activation but contribute nothing — which
    is what lets the fast kernels run the whole matmul as one gather + one
    contraction.
    """

    shape: Tuple[int, int]
    values: np.ndarray        # (nnz,) int64 — non-zero weights, column-major
    row_indices: np.ndarray   # (nnz,) int64 — original (dense) row of each value
    col_ptr: np.ndarray       # (out_dim + 1,) int64 — column start offsets
    gather_rows: np.ndarray   # (max_nnz, out_dim) int64 — padded row indices
    gather_values: np.ndarray  # (max_nnz, out_dim) int64 — padded values

    # ------------------------------------------------------------ construction
    @classmethod
    def from_columns(cls, columns: Sequence[Tuple[np.ndarray, np.ndarray]],
                     shape: Tuple[int, int]) -> "KernelPlan":
        """Build a plan from per-column ``(row_indices, values)`` pairs."""
        out_dim = shape[1]
        if len(columns) != out_dim:
            raise ValueError(f"{len(columns)} columns for shape {shape}")
        counts = np.array([len(rows) for rows, _ in columns], dtype=np.int64)
        col_ptr = np.zeros(out_dim + 1, dtype=np.int64)
        np.cumsum(counts, out=col_ptr[1:])
        nnz = int(col_ptr[-1])
        if nnz:
            row_indices = np.concatenate(
                [require_integer_values(rows, "KernelPlan row indices")
                 .astype(np.int64) for rows, _ in columns])
            values = np.concatenate(
                [require_integer_values(vals, "KernelPlan values")
                 .astype(np.int64) for _, vals in columns])
        else:
            row_indices = np.zeros(0, dtype=np.int64)
            values = np.zeros(0, dtype=np.int64)

        max_nnz = int(counts.max()) if out_dim else 0
        gather_rows = np.zeros((max_nnz, out_dim), dtype=np.int64)
        gather_values = np.zeros((max_nnz, out_dim), dtype=np.int64)
        for c in range(out_dim):
            lo, hi = col_ptr[c], col_ptr[c + 1]
            gather_rows[:hi - lo, c] = row_indices[lo:hi]
            gather_values[:hi - lo, c] = values[lo:hi]
        return cls(shape=shape, values=values, row_indices=row_indices,
                   col_ptr=col_ptr, gather_rows=gather_rows,
                   gather_values=gather_values)

    @classmethod
    def from_csc(cls, csc: "CSCMatrix") -> "KernelPlan":
        """Flatten a :class:`~repro.core.csc.CSCMatrix` into a plan."""
        m = csc.pattern.m
        return cls.from_columns(
            [(col.row_indices(m), col.values) for col in csc.columns],
            csc.shape)

    # -------------------------------------------------------------- inspection
    @property
    def nnz(self) -> int:
        return len(self.values)

    @property
    def max_column_nnz(self) -> int:
        return self.gather_rows.shape[0]

    def column_slices(self) -> Iterator[Tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(column, row_indices, values)`` — the reference kernels'
        view of the plan, identical to walking ``csc.columns``."""
        for c in range(self.shape[1]):
            lo, hi = self.col_ptr[c], self.col_ptr[c + 1]
            yield c, self.row_indices[lo:hi], self.values[lo:hi]

    def decode(self) -> np.ndarray:
        """Scatter the plan back to the dense ``(in_dim, out_dim)`` matrix."""
        dense = np.zeros(self.shape, dtype=np.int64)
        if self.nnz:
            col_ids = np.repeat(np.arange(self.shape[1], dtype=np.int64),
                                np.diff(self.col_ptr))
            dense[self.row_indices, col_ids] = self.values
        return dense


def _check_activations(plan: KernelPlan, activations: np.ndarray) -> np.ndarray:
    activations = np.atleast_2d(np.asarray(activations))
    if activations.shape[1] != plan.shape[0]:
        raise ValueError(
            f"activation dim {activations.shape[1]} != matrix in_dim "
            f"{plan.shape[0]}")
    return activations


# ---------------------------------------------------------------------------
# spmm_gather — MRAM-style MUX-select dataflow
# ---------------------------------------------------------------------------

@width_contract(inputs="i8", weights="i8", accum="i64",
                depth="MAX_REDUCTION_DEPTH",
                returns="depth * inputs * weights",
                params={"activations": "inputs", "vals": "weights",
                        "plan.values": "weights"})
def _spmm_gather_reference(plan: KernelPlan,
                           activations: np.ndarray) -> np.ndarray:
    """Per-column loop, moved verbatim from ``MRAMSparsePE.matmul``."""
    batch = activations.shape[0]
    out = np.zeros((batch, plan.shape[1]), dtype=np.int64)
    for c, rows, vals in plan.column_slices():
        if len(rows) == 0:
            continue
        # Stage 2: MUX-select activations by (group, intra-index).
        selected = activations[:, rows].astype(np.int64)
        # Stage 3: parallel shift-and-accumulate, then adder-tree fold.
        out[:, c] = selected @ vals
    return out


@width_contract(inputs="i8", weights="i8", accum="i64",
                depth="MAX_REDUCTION_DEPTH",
                returns="depth * inputs * weights",
                params={"activations": "inputs",
                        "plan.gather_values": "weights"})
def _spmm_gather_fast(plan: KernelPlan, activations: np.ndarray) -> np.ndarray:
    """One fancy-index gather + one einsum over the padded plan."""
    batch = activations.shape[0]
    if plan.nnz == 0:
        return np.zeros((batch, plan.shape[1]), dtype=np.int64)
    gathered = activations.astype(np.int64)[:, plan.gather_rows]
    return np.einsum("bkc,kc->bc", gathered, plan.gather_values)


@width_contract(inputs="i8", weights="i8", accum="i64",
                returns="_spmm_gather_fast",
                params={"activations": "inputs"})
def spmm_gather(plan: KernelPlan, activations: np.ndarray,
                impl: Optional[str] = None) -> np.ndarray:
    """``activations @ W`` via MUX-select gather (int64, bit-exact).

    ``activations``: integer ``(batch, in_dim)``.  Returns ``(batch,
    out_dim)`` int64, equal to ``activations @ plan.decode()`` exactly.
    """
    activations = _check_activations(plan, activations)
    name = resolve_kernel(impl)
    tracer = get_tracer()
    if tracer.enabled:
        with tracer.span("kernel.spmm_gather", impl=name) as sp:
            sp.count(nnz=plan.nnz, batch=activations.shape[0], calls=1)
            return _GATHER_IMPLS[name](plan, activations)
    return _GATHER_IMPLS[name](plan, activations)


# ---------------------------------------------------------------------------
# spmm_bitserial — SRAM-style bit-plane x index-phase dataflow
# ---------------------------------------------------------------------------

@width_contract(inputs="i8", weights="i8", accum="i64",
                depth="MAX_REDUCTION_DEPTH",
                returns="from_partials",
                bounds={"input_bits": BITSERIAL_MAX_BITS},
                params={"activations": "inputs", "vals": "weights",
                        "plan.values": "weights"})
def _spmm_bitserial_reference(plan: KernelPlan, activations: np.ndarray,
                              input_bits: int) -> np.ndarray:
    """Per-column, per-bit-plane loop, moved verbatim from
    ``SRAMSparsePE.matmul``."""
    planes = to_bit_planes(activations, input_bits)  # (bits, batch, in)
    batch = activations.shape[0]
    out = np.zeros((batch, plan.shape[1]), dtype=np.int64)
    for c, rows, vals in plan.column_slices():
        if len(rows) == 0:
            continue
        # Step 1+2: for each bit plane, comparator-gated partial products.
        partials = np.empty((input_bits, batch), dtype=np.int64)
        for b in range(input_bits):
            # All phases t of the index sweep contribute; entry (row i)
            # fires in phase t == intra index, receiving activation bit
            # planes[b][:, rows].  Summing over the sweep == one gather.
            partials[b] = planes[b][:, rows] @ vals
        # Step 3: shift accumulate (two's complement plane weights).
        out[:, c] = from_partials(partials, input_bits)
    return out


@width_contract(inputs="i8", weights="i8", accum="i64",
                depth="MAX_REDUCTION_DEPTH",
                returns="from_partials",
                bounds={"input_bits": BITSERIAL_MAX_BITS},
                params={"activations": "inputs",
                        "plan.gather_values": "weights"})
def _spmm_bitserial_fast(plan: KernelPlan, activations: np.ndarray,
                         input_bits: int) -> np.ndarray:
    """All bit planes, columns and batch rows in one tensor contraction."""
    planes = to_bit_planes(activations, input_bits)  # (bits, batch, in)
    batch = activations.shape[0]
    if plan.nnz == 0:
        return np.zeros((batch, plan.shape[1]), dtype=np.int64)
    gathered = planes[:, :, plan.gather_rows]  # (bits, batch, max_nnz, out)
    partials = np.einsum("abkc,kc->abc", gathered, plan.gather_values)
    return from_partials(partials, input_bits)


@width_contract(inputs="i8", weights="i8", accum="i64",
                returns="_spmm_bitserial_fast",
                params={"activations": "inputs"})
def spmm_bitserial(plan: KernelPlan, activations: np.ndarray,
                   input_bits: int, impl: Optional[str] = None) -> np.ndarray:
    """``activations @ W`` via the bit-serial schedule (int64, bit-exact).

    Walks (reference) or contracts (fast) the bit-plane x phase dataflow;
    either way the result equals ``activations @ plan.decode()`` exactly.
    """
    activations = _check_activations(plan, activations)
    name = resolve_kernel(impl)
    tracer = get_tracer()
    if tracer.enabled:
        with tracer.span("kernel.spmm_bitserial", impl=name,
                         input_bits=input_bits) as sp:
            sp.count(nnz=plan.nnz, batch=activations.shape[0], calls=1)
            return _BITSERIAL_IMPLS[name](plan, activations, input_bits)
    return _BITSERIAL_IMPLS[name](plan, activations, input_bits)


_GATHER_IMPLS = {
    "reference": _spmm_gather_reference,
    "fast": _spmm_gather_fast,
}

_BITSERIAL_IMPLS = {
    "reference": _spmm_bitserial_reference,
    "fast": _spmm_bitserial_fast,
}
