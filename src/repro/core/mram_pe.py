"""Near-memory MRAM sparse PE (paper Fig. 5) — functional + pipeline model.

Organisation (Sec. 3.2): a 1024x512 STT-MRAM sub-array split into a sparse
weight section and an index section, plus digital periphery — row/column
decoders and drivers, sense amplifiers, a MUX into the activation buffer,
parallel shift-and-accumulators and an adder tree.  Computation is
near-memory: the array only stores; all MACs happen in the periphery.

Dataflow (Fig. 5 (4)/(5)): for each occupied row, the decoder activates the
row; the sense amplifiers read out the row's (weight, index) pairs; the
index values drive the activation-buffer MUX to *select* the activations the
non-zero weights pair with (this is where N:M sparsity pays off: the dense
activation buffer shrinks from ``M`` candidates to the ``N`` selected per
group — the figure's ``4*16*N*9 -> 4*2*N*9`` annotation for 2:16); the
parallel shift-and-accumulator multiplies each pair by shift-add over the
weight bits.  The three stages — (read idx + weight) -> (fetch activation)
-> (shift-acc) — are pipelined with an initiation interval of one row.

Cycle model: a row occupies the shift-add stage for ``weight_bits`` cycles
(serial shift-add over bit planes), stages overlap, so a sweep of ``R``
occupied rows takes ``(R + pipeline_depth - 1) * weight_bits`` cycles.

Writes are the expensive operation: every stored bit costs the MTJ set/reset
energy (Table 2: 0.048 pJ/bit) and the long MRAM write pulse — the reason
the *frozen backbone* lives here while the learnable path lives in SRAM.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from ..sparsity.nm import NMPattern
from .csc import CSCMatrix
from .kernels import KernelPlan, require_integer_activations, spmm_gather
from .stats import PEStats
from .widths import width_contract

PIPELINE_DEPTH = 3  # read idx/weight -> fetch activation -> shift-acc


@dataclasses.dataclass(frozen=True)
class MRAMPEConfig:
    """Geometry of one MRAM sparse PE (defaults = the paper's 1024x512 array)."""

    rows: int = 1024
    row_bits: int = 512
    weight_bits: int = 8
    index_bits: int = 4
    input_bits: int = 8

    @property
    def pairs_per_row(self) -> int:
        """(weight, index) pairs stored per physical row."""
        return self.row_bits // (self.weight_bits + self.index_bits)

    @property
    def pair_capacity(self) -> int:
        return self.rows * self.pairs_per_row

    @property
    def array_bits(self) -> int:
        return self.rows * self.row_bits

    def __post_init__(self):
        if self.pairs_per_row < 1:
            raise ValueError("row too narrow for a single (weight, index) pair")


class MRAMSparsePE:
    """Functional + cycle model of the near-memory MRAM sparse PE."""

    def __init__(self, config: Optional[MRAMPEConfig] = None,
                 kernel: Optional[str] = None):
        self.config = config or MRAMPEConfig()
        self.kernel = kernel  # None -> REPRO_KERNEL env var -> default
        self.csc: Optional[CSCMatrix] = None
        self.stats = PEStats()
        self._plan: Optional[KernelPlan] = None
        self._dense_cache: Optional[np.ndarray] = None
        self._rows_used = 0

    # ------------------------------------------------------------------ load
    def load(self, matrix: np.ndarray, pattern: NMPattern,
             strict: bool = True) -> None:
        """CSC-encode and store an integer ``(in_dim, out_dim)`` matrix.

        Charges MTJ write traffic.  For the continual-learning studies this
        happens exactly once (offline backbone deployment); the training loop
        never writes here.
        """
        cfg = self.config
        matrix = np.asarray(matrix)
        bits = cfg.weight_bits
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        if matrix.size and (matrix.min() < lo or matrix.max() > hi):
            raise ValueError(f"weights outside signed {bits}-bit range")
        csc = CSCMatrix.from_dense(matrix, pattern, strict=strict)
        if csc.nnz > cfg.pair_capacity:
            raise ValueError(
                f"compressed matrix needs {csc.nnz} pairs; PE holds "
                f"{cfg.pair_capacity} — tile the matrix first")
        if pattern.index_bits > cfg.index_bits:
            raise ValueError(
                f"pattern {pattern} needs {pattern.index_bits}-bit indices")

        self.csc = csc
        self._plan = KernelPlan.from_csc(csc)
        self._dense_cache = self._plan.decode()
        # Integer ceil-div: rows = ceil(nnz / pairs_per_row), float-free.
        self._rows_used = -(-csc.nnz // cfg.pairs_per_row)

        self.stats.weight_bits_written += csc.nnz * cfg.weight_bits
        self.stats.index_bits_written += csc.nnz * cfg.index_bits

    @property
    def loaded(self) -> bool:
        return self.csc is not None

    @property
    def rows_used(self) -> int:
        return self._rows_used

    def occupancy(self) -> float:
        if self.csc is None:
            return 0.0
        # A utilization *ratio* is float by design, not datapath arithmetic.
        return self.csc.nnz / self.config.pair_capacity  # repro-lint: disable-line=R1

    # ---------------------------------------------------------------- matmul
    @width_contract(inputs="i8", weights="i8", accum="i64",
                    returns="spmm_gather",
                    params={"activations": "inputs"})
    def matmul(self, activations: np.ndarray) -> np.ndarray:
        """Sparse matmul ``activations @ W`` through the near-memory pipeline.

        ``activations``: integer ``(batch, in_dim)``.  The dense activation
        vector is held in the activation buffer; per stored pair the MUX
        gathers ``x[group * m + index]`` and the shift-and-accumulator forms
        the product.  Bit-exact with the dense integer matmul.
        """
        if self.csc is None:
            raise RuntimeError("load() a weight matrix first")
        csc = self.csc
        activations = np.atleast_2d(np.asarray(activations))
        batch, in_dim = activations.shape
        if in_dim != csc.shape[0]:
            raise ValueError(
                f"activation dim {in_dim} != matrix in_dim {csc.shape[0]}")
        require_integer_activations(activations, "MRAM PE")

        out = spmm_gather(self._plan, activations, impl=self.kernel)

        self._charge_matmul_stats(batch)
        return out

    def _charge_matmul_stats(self, batch: int) -> None:
        cfg = self.config
        csc = self.csc
        rows = self._rows_used
        if rows == 0:
            return
        sweep = (rows + PIPELINE_DEPTH - 1) * cfg.weight_bits
        self.stats.cycles += sweep * batch
        self.stats.weight_bits_read += csc.nnz * cfg.weight_bits * batch
        self.stats.index_bits_read += csc.nnz * cfg.index_bits * batch
        self.stats.activation_bits_read += csc.nnz * cfg.input_bits * batch
        self.stats.mux_ops += csc.nnz * batch
        self.stats.macs += csc.nnz * batch
        self.stats.dense_equivalent_macs += csc.shape[0] * csc.shape[1] * batch
        self.stats.shift_acc_ops += csc.nnz * batch
        self.stats.adder_tree_ops += rows * batch
        self.stats.pipeline_stalls += (PIPELINE_DEPTH - 1) * batch

    def dense_weight(self) -> np.ndarray:
        if self._dense_cache is None:
            raise RuntimeError("load() a weight matrix first")
        return self._dense_cache


class MRAMDensePE:
    """Dense near-memory MRAM PE — the ISCAS'23-style no-sparsity baseline.

    Stores the full (zero-including) matrix; every row sweep reads all
    weights and executes all MACs.
    """

    def __init__(self, config: Optional[MRAMPEConfig] = None):
        self.config = config or MRAMPEConfig()
        self.weight: Optional[np.ndarray] = None
        self.stats = PEStats()
        self._rows_used = 0

    @property
    def weights_per_row(self) -> int:
        return self.config.row_bits // self.config.weight_bits

    @property
    def weight_capacity(self) -> int:
        return self.config.rows * self.weights_per_row

    def load(self, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix)
        if matrix.size > self.weight_capacity:
            raise ValueError(
                f"matrix with {matrix.size} weights exceeds capacity "
                f"{self.weight_capacity}")
        self.weight = matrix.astype(np.int64)
        self._rows_used = -(-matrix.size // self.weights_per_row)
        self.stats.weight_bits_written += matrix.size * self.config.weight_bits

    @width_contract(inputs="i8", weights="i8", accum="i64",
                    depth="MAX_REDUCTION_DEPTH",
                    returns="depth * inputs * weights",
                    params={"activations": "inputs",
                            "self.weight": "weights"})
    def matmul(self, activations: np.ndarray) -> np.ndarray:
        if self.weight is None:
            raise RuntimeError("load() a weight matrix first")
        activations = np.atleast_2d(np.asarray(activations))
        require_integer_activations(activations, "MRAM PE")
        activations = activations.astype(np.int64)
        batch = activations.shape[0]
        out = activations @ self.weight

        cfg = self.config
        rows = self._rows_used
        sweep = (rows + PIPELINE_DEPTH - 1) * cfg.weight_bits
        self.stats.cycles += sweep * batch
        self.stats.weight_bits_read += self.weight.size * cfg.weight_bits * batch
        self.stats.activation_bits_read += self.weight.size * cfg.input_bits * batch
        self.stats.macs += self.weight.size * batch
        self.stats.dense_equivalent_macs += self.weight.size * batch
        self.stats.shift_acc_ops += self.weight.size * batch
        self.stats.adder_tree_ops += rows * batch
        return out
