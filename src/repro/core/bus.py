"""Shared-bus interconnect model (paper Fig. 1: bus-connected cores/PEs).

The architecture connects PEs, the shared accumulators and the global
buffer over buses, and the scheduler broadcasts activations SIMT-style.
This module gives the bus a first-class model: width, per-bit transfer
energy, broadcast vs unicast accounting, and contention (a transfer
occupies the bus for ceil(bits/width) cycles; concurrent requests
serialize).  The design classes use the width constant directly; the
scheduler can attach a :class:`SharedBus` to also account interconnect
energy and utilization.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Tuple


@dataclasses.dataclass(frozen=True)
class BusConfig:
    """Bus parameters.

    ``energy_pj_per_bit_mm`` with ``avg_distance_mm`` gives the wire
    transfer energy (28 nm on-chip wires: ~0.05-0.2 pJ/bit/mm).
    """

    width_bits: int = 128
    energy_pj_per_bit_mm: float = 0.1
    avg_distance_mm: float = 2.0

    def __post_init__(self):
        if self.width_bits <= 0:
            raise ValueError("bus width must be positive")
        if self.energy_pj_per_bit_mm < 0 or self.avg_distance_mm < 0:
            raise ValueError("energies/distances must be non-negative")

    @property
    def energy_pj_per_bit(self) -> float:
        return self.energy_pj_per_bit_mm * self.avg_distance_mm


@dataclasses.dataclass
class Transfer:
    """One logged bus transaction."""

    tag: str
    bits: int
    receivers: int
    start_cycle: float
    cycles: float

    @property
    def end_cycle(self) -> float:
        return self.start_cycle + self.cycles


class SharedBus:
    """A serializing broadcast bus with energy/utilization accounting.

    Broadcast semantics (the SIMT case): one transfer delivers the same
    bits to any number of receivers in the same cycles — wire energy is
    charged once for the trunk plus a small per-receiver tap charge.
    """

    #: fraction of the trunk energy charged per extra receiver tap
    TAP_ENERGY_FRACTION = 0.05

    def __init__(self, config: Optional[BusConfig] = None):
        self.config = config or BusConfig()
        self.transfers: List[Transfer] = []
        self._cursor = 0.0

    # -------------------------------------------------------------- requests
    def transfer_cycles(self, bits: int) -> float:
        """Cycles one transaction of ``bits`` occupies the bus."""
        if bits < 0:
            raise ValueError("bits must be non-negative")
        return math.ceil(bits / self.config.width_bits)

    def request(self, tag: str, bits: int, receivers: int = 1,
                at_cycle: Optional[float] = None) -> Transfer:
        """Schedule a transfer; it starts when the bus frees up.

        ``at_cycle`` is the earliest the data is available; contention with
        previously scheduled transfers pushes the start later.
        """
        if receivers < 1:
            raise ValueError("a transfer needs at least one receiver")
        earliest = self._cursor if at_cycle is None \
            else max(self._cursor, at_cycle)
        cycles = self.transfer_cycles(bits)
        transfer = Transfer(tag=tag, bits=bits, receivers=receivers,
                            start_cycle=earliest, cycles=cycles)
        self.transfers.append(transfer)
        self._cursor = transfer.end_cycle
        return transfer

    # ------------------------------------------------------------- accounting
    def total_cycles(self) -> float:
        return self._cursor

    def busy_cycles(self) -> float:
        return sum(t.cycles for t in self.transfers)

    def utilization(self) -> float:
        """Busy fraction of the bus's makespan."""
        total = self.total_cycles()
        return self.busy_cycles() / total if total else 0.0

    def energy_pj(self) -> float:
        """Wire energy: trunk once per transfer + per-receiver taps."""
        e_bit = self.config.energy_pj_per_bit
        total = 0.0
        for t in self.transfers:
            taps = (t.receivers - 1) * self.TAP_ENERGY_FRACTION
            total += t.bits * e_bit * (1.0 + taps)
        return total

    def traffic_by_tag(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for t in self.transfers:
            out[t.tag] = out.get(t.tag, 0) + t.bits
        return out

    def reset(self) -> None:
        self.transfers.clear()
        self._cursor = 0.0


def broadcast_vs_unicast(bits: int, receivers: int,
                         config: Optional[BusConfig] = None
                         ) -> Tuple[float, float]:
    """(broadcast energy, unicast energy) for delivering ``bits`` to
    ``receivers`` PEs — quantifies why the SIMT broadcast matters."""
    config = config or BusConfig()
    bus = SharedBus(config)
    bus.request("broadcast", bits, receivers=receivers)
    e_broadcast = bus.energy_pj()
    bus.reset()
    for i in range(receivers):
        bus.request(f"unicast{i}", bits, receivers=1)
    return e_broadcast, bus.energy_pj()
