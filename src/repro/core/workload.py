"""Workload descriptors: a network as a list of GEMM layer shapes.

The accelerator studies need each layer's GEMM geometry (reduction dim,
output dim, number of activation vectors per inference) plus whether the
layer belongs to the frozen backbone (MRAM-resident) or the learnable
Rep-Net path (SRAM-resident).  Two constructors are provided:

* :func:`extract_repnet_workload` walks an actual :class:`RepNetModel`
  (the trainable numpy one), so the small models used in tests/examples are
  evaluated mechanically, and
* :func:`paper_workload` reproduces the paper's evaluation target —
  ImageNet ResNet-50 (~25.5 M parameters, "around 26 MB" INT8) plus six
  Rep-Net modules at ~5% of the backbone size — for the Fig. 7/8 studies.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional

from ..nn.functional import conv_output_size
from ..repnet.model import RepNetModel
from ..sparsity.nm import NMPattern


@dataclasses.dataclass(frozen=True)
class LayerWorkload:
    """One GEMM-shaped layer.

    ``positions`` is the number of input vectors streamed per inference
    (``OH*OW`` for a convolution lowered by im2col, 1 for a linear layer).
    """

    name: str
    in_dim: int
    out_dim: int
    positions: int = 1
    learnable: bool = False

    def __post_init__(self):
        if self.in_dim <= 0 or self.out_dim <= 0 or self.positions <= 0:
            raise ValueError(f"invalid layer geometry: {self}")

    @property
    def weights(self) -> int:
        return self.in_dim * self.out_dim

    @property
    def macs(self) -> int:
        """Dense MACs per inference."""
        return self.weights * self.positions


@dataclasses.dataclass
class Workload:
    """A full network inference/training workload."""

    name: str
    layers: List[LayerWorkload]

    # ------------------------------------------------------------- totals
    @property
    def total_weights(self) -> int:
        return sum(l.weights for l in self.layers)

    @property
    def learnable_weights(self) -> int:
        return sum(l.weights for l in self.layers if l.learnable)

    @property
    def frozen_weights(self) -> int:
        return self.total_weights - self.learnable_weights

    @property
    def learnable_fraction(self) -> float:
        return self.learnable_weights / self.total_weights if self.layers else 0.0

    @property
    def total_macs(self) -> int:
        return sum(l.macs for l in self.layers)

    @property
    def learnable_macs(self) -> int:
        return sum(l.macs for l in self.layers if l.learnable)

    def dense_bytes(self, weight_bits: int = 8) -> int:
        return self.total_weights * weight_bits // 8

    def compressed_bits(self, pattern: Optional[NMPattern],
                        weight_bits: int = 8, index_bits: int = 4,
                        scope: str = "all") -> int:
        """Storage bits under N:M compression.

        ``scope``: 'all', 'frozen' (backbone only) or 'learnable'.
        ``pattern=None`` returns the dense storage (no index overhead).
        """
        if scope == "all":
            weights = self.total_weights
        elif scope == "frozen":
            weights = self.frozen_weights
        elif scope == "learnable":
            weights = self.learnable_weights
        else:
            raise ValueError(f"unknown scope {scope!r}")
        if pattern is None:
            return weights * weight_bits
        kept = int(weights * pattern.density)
        return kept * (weight_bits + index_bits)

    def subset(self, learnable: bool) -> "Workload":
        return Workload(
            name=f"{self.name}:{'learnable' if learnable else 'frozen'}",
            layers=[l for l in self.layers if l.learnable == learnable])


# ------------------------------------------------------- model extraction
def extract_repnet_workload(model: RepNetModel, image_size: int,
                            name: str = "repnet") -> Workload:
    """Derive the layer workloads of a trainable :class:`RepNetModel`.

    Walks the backbone stem/blocks and the Rep-Net stem/modules/connectors,
    tracking spatial resolution through strides exactly as the forward pass
    does.
    """
    layers: List[LayerWorkload] = []
    bb = model.backbone
    size = image_size

    stem = bb.stem
    size = conv_output_size(size, stem.kernel_size, stem.stride, stem.padding)
    layers.append(LayerWorkload("backbone.stem", stem.in_channels * 9,
                                stem.out_channels, size * size, False))

    for i, block in enumerate(bb.blocks):
        c1, c2 = block.conv1, block.conv2
        size1 = conv_output_size(size, c1.kernel_size, c1.stride, c1.padding)
        layers.append(LayerWorkload(
            f"backbone.block{i}.conv1", c1.in_channels * 9, c1.out_channels,
            size1 * size1, False))
        layers.append(LayerWorkload(
            f"backbone.block{i}.conv2", c2.in_channels * 9, c2.out_channels,
            size1 * size1, False))
        if block.shortcut is not None:
            layers.append(LayerWorkload(
                f"backbone.block{i}.shortcut", block.shortcut.in_channels,
                block.shortcut.out_channels, size1 * size1, False))
        size = size1

    # Rep-Net path (learnable): stem at full resolution, then modules that
    # track the backbone's resolution schedule.
    rep_w = model.repnet_width
    layers.append(LayerWorkload("repnet.stem", model.rep_stem.in_channels,
                                rep_w, image_size * image_size, True))
    rsize = image_size
    for i, (mod, conn) in enumerate(zip(model.rep_modules, model.connectors)):
        rsize = rsize // mod.pool_stride if mod.pool_stride > 1 else rsize
        layers.append(LayerWorkload(
            f"repnet.connector{i}", conn.proj.in_channels, rep_w,
            rsize * rsize, True))
        layers.append(LayerWorkload(
            f"repnet.module{i}.conv3", rep_w * 9, rep_w, rsize * rsize, True))
        layers.append(LayerWorkload(
            f"repnet.module{i}.conv1", rep_w, rep_w, rsize * rsize, True))

    # Shared classifier (learnable, trained per task).
    for task in model.tasks or []:
        head = model.head(task)
        layers.append(LayerWorkload(
            f"classifier.{task}", head.in_features, head.out_features, 1, True))
    if not model.tasks:
        layers.append(LayerWorkload(
            "classifier", model.feature_dim, 10, 1, True))

    return Workload(name=name, layers=layers)


# ---------------------------------------------------- paper-scale workload
def _bottleneck(layers: List[LayerWorkload], stage: str, idx: int,
                in_ch: int, mid_ch: int, out_ch: int, size: int,
                stride: int, project: bool) -> int:
    """Append one ResNet-50 bottleneck block; returns the output size."""
    out_size = size // stride
    layers.append(LayerWorkload(f"{stage}.{idx}.conv1x1a", in_ch, mid_ch,
                                out_size * out_size, False))
    layers.append(LayerWorkload(f"{stage}.{idx}.conv3x3", mid_ch * 9, mid_ch,
                                out_size * out_size, False))
    layers.append(LayerWorkload(f"{stage}.{idx}.conv1x1b", mid_ch, out_ch,
                                out_size * out_size, False))
    if project:
        layers.append(LayerWorkload(f"{stage}.{idx}.proj", in_ch, out_ch,
                                    out_size * out_size, False))
    return out_size


def paper_workload(repnet_width: int = 128, num_classes: int = 100) -> Workload:
    """ImageNet ResNet-50 backbone + six Rep-Net modules (the paper's target).

    Matches the paper's storage claim: the dense INT8 RepNet model needs
    "around 26MB", exceeding one 16 MB core — so the dense baselines use a
    dual-core configuration.
    """
    layers: List[LayerWorkload] = []
    # Stem: 7x7/2 conv, 224 -> 112, then 3x3/2 maxpool -> 56.
    layers.append(LayerWorkload("stem.conv7", 3 * 49, 64, 112 * 112, False))
    size = 56

    stage_cfg = [  # (blocks, mid, out, stride of first block)
        ("stage1", 3, 64, 256, 1),
        ("stage2", 4, 128, 512, 2),
        ("stage3", 6, 256, 1024, 2),
        ("stage4", 3, 512, 2048, 2),
    ]
    in_ch = 64
    for stage, blocks, mid, out, stride in stage_cfg:
        for b in range(blocks):
            s = stride if b == 0 else 1
            size = _bottleneck(layers, stage, b, in_ch, mid, out, size, s,
                               project=(b == 0))
            in_ch = out

    layers.append(LayerWorkload("fc", 2048, 1000, 1, False))

    # Six Rep-Net modules: pool + 3x3 conv + 1x1 conv at the resolutions of
    # the backbone tap points, plus 1x1 connectors; ~5% of backbone weights.
    tap_sizes = [56, 56, 28, 28, 14, 7]
    tap_channels = [256, 256, 512, 512, 1024, 2048]
    w = repnet_width
    layers.append(LayerWorkload("repnet.stem", 3, w, 112 * 112, True))
    for i, (ts, tc) in enumerate(zip(tap_sizes, tap_channels)):
        layers.append(LayerWorkload(f"repnet.connector{i}", tc, w,
                                    ts * ts, True))
        layers.append(LayerWorkload(f"repnet.module{i}.conv3", w * 9, w,
                                    ts * ts, True))
        layers.append(LayerWorkload(f"repnet.module{i}.conv1", w, w,
                                    ts * ts, True))
    layers.append(LayerWorkload("classifier", 2048 + w, num_classes, 1, True))

    return Workload(name="resnet50-repnet@imagenet", layers=layers)
