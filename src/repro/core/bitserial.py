"""Bit-serial integer arithmetic helpers.

Both PE designs process INT8 activations bit-serially (Sec. 3.1): activations
stream one bit per cycle on the input word lines, in-array AND gates form
1-bit partial products, and a shift accumulator re-weights each bit plane.
These helpers decompose integers into two's-complement bit planes and fold
partial sums back together, so the PE simulators can model the per-cycle
dataflow exactly while remaining bit-true to an ordinary integer matmul.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .widths import BITSERIAL_MAX_BITS, width_contract


@width_contract(inputs="i16", returns="u1",
                bounds={"bits": BITSERIAL_MAX_BITS},
                params={"values": "inputs"})
def to_bit_planes(values: np.ndarray, bits: int = 8) -> np.ndarray:
    """Two's-complement bit planes of an integer array.

    Returns an array of shape ``(bits,) + values.shape`` with plane ``b``
    holding bit ``b`` (LSB first).  Values must fit in ``bits`` bits signed.
    """
    values = np.asarray(values)
    if not np.issubdtype(values.dtype, np.integer):
        raise TypeError(f"bit-serial streaming needs integer data, got {values.dtype}")
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if values.min(initial=0) < lo or values.max(initial=0) > hi:
        raise ValueError(f"values outside signed {bits}-bit range [{lo}, {hi}]")
    # Masking with 2**bits - 1 IS the two's-complement wrap for negatives.
    unsigned = values.astype(np.int64) & ((1 << bits) - 1)
    shifts = np.arange(bits, dtype=np.int64).reshape((bits,) + (1,) * values.ndim)
    return (unsigned[np.newaxis, ...] >> shifts) & 1


@width_contract(returns="1 << (BITSERIAL_MAX_BITS - 1)",
                bounds={"bit": 15, "bits": BITSERIAL_MAX_BITS})
def plane_weight(bit: int, bits: int) -> int:
    """Arithmetic weight of bit plane ``bit`` in two's complement.

    The MSB carries ``-2**(bits-1)``; every other plane ``+2**bit``.  The
    shift accumulator applies exactly these weights ("shift accumulate for
    input precision compensation", Sec. 3.1).
    """
    if bit == bits - 1:
        return -(1 << bit)
    return 1 << bit


_PLANE_WEIGHTS: dict = {}


@width_contract(returns="1 << (BITSERIAL_MAX_BITS - 1)",
                bounds={"bits": BITSERIAL_MAX_BITS})
def plane_weights(bits: int) -> np.ndarray:
    """The vector of all ``bits`` plane weights (cached, read-only)."""
    weights = _PLANE_WEIGHTS.get(bits)
    if weights is None:
        weights = np.array([plane_weight(b, bits) for b in range(bits)],
                           dtype=np.int64)
        weights.setflags(write=False)
        _PLANE_WEIGHTS[bits] = weights
    return weights


@width_contract(inputs="i32", weights="i16", accum="i64",
                depth="BITSERIAL_MAX_BITS",
                returns="depth * weights * inputs",
                params={"partials": "inputs"})
def from_partials(partials: np.ndarray, bits: int) -> np.ndarray:
    """Recombine per-bit-plane partial sums into the final integer result.

    ``partials`` has shape ``(bits,) + result_shape``; plane ``b`` is the
    adder-tree output for input bit ``b``.
    """
    partials = np.asarray(partials)
    if partials.shape[0] != bits:
        raise ValueError(f"expected {bits} planes, got {partials.shape[0]}")
    return np.tensordot(plane_weights(bits), partials.astype(np.int64),
                        axes=([0], [0]))


def weight_bit_planes(weights: np.ndarray, bits: int = 8
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """Split signed weights into (magnitude planes, sign) — used by designs
    that store sign-magnitude; provided for completeness/ablations."""
    weights = np.asarray(weights)
    sign = np.sign(weights).astype(np.int64)
    mag = np.abs(weights).astype(np.int64)
    if mag.max(initial=0) >= (1 << (bits - 1)):
        raise ValueError(f"magnitudes exceed {bits - 1} bits")
    planes = np.empty((bits - 1,) + weights.shape, dtype=np.int64)
    for b in range(bits - 1):
        planes[b] = (mag >> b) & 1
    return planes, sign
