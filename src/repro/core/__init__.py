"""The paper's primary contribution: the hybrid MRAM-SRAM sparse PIM model.

Functional layer (bit-exact integer execution):
:class:`SRAMSparsePE`, :class:`MRAMSparsePE`, :class:`TransposedSRAMPE`,
:class:`HybridAccelerator`.

Analytical layer (paper-scale area/power/EDP):
:class:`DenseCIMDesign`, :class:`HybridSparseDesign`, with
:func:`paper_workload` describing the evaluation target.
"""

from .accelerator import HybridAccelerator, MappedGemm
from .concurrency import guarded_by, holds_no_locks
from .effects import effects, reentrant
from .bitcell_array import BitCellArray, BitLevelSparsePE
from .bitserial import from_partials, plane_weight, to_bit_planes
from .bus import BusConfig, SharedBus, broadcast_vs_unicast
from .design_space import DesignPoint, explore, pareto_front
from .fault_injection import (classification_flip_rate, gemm_error_study,
                              inject_weight_bit_flips)
from .csc import CSCColumn, CSCMatrix, tile_matrix
from .kernels import (DEFAULT_KERNEL, KERNEL_ENV_VAR, KERNEL_IMPLEMENTATIONS,
                      KernelPlan, resolve_kernel, spmm_bitserial, spmm_gather)
from .designs import DenseCIMDesign, HybridSparseDesign, PerfReport
from .mapper import (CoreConfig, HybridMapper, MappingPlan, Tile,
                     dense_core_requirement, tile_layer_shapes)
from .mram_pe import (PIPELINE_DEPTH, MRAMDensePE, MRAMPEConfig,
                      MRAMSparsePE)
from .scheduler import LayerSchedule, ScheduleResult, SIMTScheduler
from .sram_pe import DenseDigitalPE, SRAMPEConfig, SRAMSparsePE
from .stats import PEStats
from .transpose_pe import BackpropEngine, TransposedSRAMPE
from .write_verify import (WriteReport, WriteVerifyController,
                           deployment_write_study)
from .workload import (LayerWorkload, Workload, extract_repnet_workload,
                       paper_workload)

__all__ = [
    "CSCMatrix", "CSCColumn", "tile_matrix",
    "KernelPlan", "spmm_gather", "spmm_bitserial", "resolve_kernel",
    "DEFAULT_KERNEL", "KERNEL_ENV_VAR", "KERNEL_IMPLEMENTATIONS",
    "to_bit_planes", "from_partials", "plane_weight",
    "SRAMPEConfig", "SRAMSparsePE", "DenseDigitalPE",
    "MRAMPEConfig", "MRAMSparsePE", "MRAMDensePE", "PIPELINE_DEPTH",
    "TransposedSRAMPE", "BackpropEngine",
    "PEStats",
    "LayerWorkload", "Workload", "extract_repnet_workload", "paper_workload",
    "CoreConfig", "HybridMapper", "MappingPlan", "Tile", "tile_layer_shapes",
    "dense_core_requirement",
    "SIMTScheduler", "ScheduleResult", "LayerSchedule",
    "DenseCIMDesign", "HybridSparseDesign", "PerfReport",
    "HybridAccelerator", "MappedGemm",
    "WriteVerifyController", "WriteReport", "deployment_write_study",
    "BitCellArray", "BitLevelSparsePE",
    "inject_weight_bit_flips", "gemm_error_study", "classification_flip_rate",
    "BusConfig", "SharedBus", "broadcast_vs_unicast",
    "DesignPoint", "explore", "pareto_front",
    "reentrant", "effects",
    "guarded_by", "holds_no_locks",
]
