"""Write-verify-retry controller for the MRAM deployment path.

STT-MRAM switching is stochastic ("instability", paper Sec. 1): at finite
write current a pulse switches the MTJ only with probability < 1, so
production macros write with a verify-and-retry loop — write the row, read
it back through the sense amplifiers, re-pulse only the failed bits.  This
module models that loop over the :class:`~repro.energy.mtj.MTJ` compact
model, both Monte-Carlo (bit-level simulation) and analytically (expected
attempts/energy), so the one-time backbone-deployment cost and its
reliability can be quantified.

The hybrid design's framing: this machinery (and its energy/latency) is
paid **once** per deployed backbone; the learning path never touches it —
one more reason weight updates belong in SRAM.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from ..energy.mtj import MTJ, MTJParams


@dataclasses.dataclass
class WriteReport:
    """Outcome of writing a block of bits with verify-retry."""

    bits: int
    attempts: int              # total write pulses issued (incl. retries)
    failures: int              # bits still wrong after max_retries
    energy_pj: float
    verify_reads: int

    @property
    def retry_rate(self) -> float:
        if self.bits == 0:
            return 0.0
        return (self.attempts - self.bits) / self.bits

    @property
    def bit_error_rate(self) -> float:
        if self.bits == 0:
            return 0.0
        return self.failures / self.bits


class WriteVerifyController:
    """Write-verify-retry over stochastic MTJ switching.

    Parameters
    ----------
    params:
        MTJ device parameters (defaults reproduce Table 2).
    write_current_ua:
        Drive current; lower currents save energy per pulse but raise the
        retry rate — the knob the ablation sweeps.
    max_retries:
        Re-pulses per bit before declaring a (rare) hard failure.
    """

    def __init__(self, params: MTJParams = MTJParams(),
                 write_current_ua: Optional[float] = None,
                 pulse_ns: Optional[float] = None, max_retries: int = 3):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.params = params
        self.pulse_ns = pulse_ns if pulse_ns is not None else params.write_pulse_ns
        if write_current_ua is None:
            # default drive: write voltage over mean resistance
            mean_r = (params.resistance_p_ohm + params.resistance_ap_ohm) / 2
            write_current_ua = params.write_voltage_v / mean_r * 1e6
        self.write_current_ua = write_current_ua
        self.max_retries = max_retries
        ref = MTJ(params)
        self._p_switch = ref.switching_probability(self.write_current_ua,
                                                   self.pulse_ns)
        self._pulse_energy_pj = (params.write_voltage_v
                                 * self.write_current_ua * 1e-6
                                 * self.pulse_ns * 1e-9 * 1e12)

    # --------------------------------------------------------------- analytic
    @property
    def switch_probability(self) -> float:
        return self._p_switch

    def expected_attempts_per_bit(self) -> float:
        """E[pulses per toggling bit] under verify-retry (truncated geometric)."""
        p = self._p_switch
        if p <= 0:
            return float(self.max_retries + 1)
        q = 1.0 - p
        n = self.max_retries + 1
        # E[min(Geom(p), n)] = (1 - q^n) / p
        return (1.0 - q ** n) / p

    def expected_failure_rate(self) -> float:
        """P(bit still wrong after all retries)."""
        return (1.0 - self._p_switch) ** (self.max_retries + 1)

    def expected_energy_pj_per_bit(self) -> float:
        return self.expected_attempts_per_bit() * self._pulse_energy_pj

    # ------------------------------------------------------------ Monte Carlo
    def write_bits(self, current: np.ndarray, target: np.ndarray,
                   rng: Optional[np.random.Generator] = None) -> Tuple[
                       np.ndarray, WriteReport]:
        """Write ``target`` bits over ``current`` bits with verify-retry.

        Returns ``(resulting_bits, report)``.  Bits already in the target
        state cost nothing (the verify read screens them out first).
        """
        rng = rng or np.random.default_rng(0)
        current = np.asarray(current).astype(np.int8).copy()
        target = np.asarray(target).astype(np.int8)
        if current.shape != target.shape:
            raise ValueError("current/target shape mismatch")

        pending = current != target
        attempts = 0
        verify_reads = 1  # initial screening read
        for _ in range(self.max_retries + 1):
            n = int(pending.sum())
            if n == 0:
                break
            attempts += n
            switched = rng.random(n) < self._p_switch
            idx = np.nonzero(pending)
            ok_idx = tuple(axis[switched] for axis in idx)
            current[ok_idx] = target[ok_idx]
            pending = current != target
            verify_reads += 1

        report = WriteReport(
            bits=int(target.size),
            attempts=attempts,
            failures=int(pending.sum()),
            energy_pj=attempts * self._pulse_energy_pj,
            verify_reads=verify_reads)
        return current, report


def deployment_write_study(total_bits: int,
                           params: MTJParams = MTJParams(),
                           max_retries: int = 3) -> dict:
    """Expected cost of deploying ``total_bits`` into MRAM with verify-retry.

    Analytic composition (no Monte-Carlo), assuming half the bits toggle
    (random data over an erased array averages to ~0.5 toggling).
    """
    ctrl = WriteVerifyController(params, max_retries=max_retries)
    toggling = total_bits / 2.0
    return {
        "switch_probability": ctrl.switch_probability,
        "expected_attempts_per_bit": ctrl.expected_attempts_per_bit(),
        "expected_failure_rate": ctrl.expected_failure_rate(),
        "total_write_energy_pj": toggling * ctrl.expected_energy_pj_per_bit(),
        "energy_pj_per_bit": ctrl.expected_energy_pj_per_bit(),
    }
