"""Bit-serial digital SRAM sparse PE (paper Fig. 3) — functional + cycle model.

Physical organisation (Sec. 3.1): a 128x96 bit-cell array organised as 8
column groups, each row of a group holding a 12-bit (8-bit weight, 4-bit
index) pair; per column group an index generator, 128x8 comparators and a
128-input 8-bit adder tree; a shift accumulator for bit-serial input
precision compensation and a row-wise accumulator for uneven column
sparsity.

Dataflow model (documented interpretation of the paper's Steps 1-3):

* The CSC-compressed entries of each logical output column are packed
  contiguously down a column group; a group's entries for input-group ``g``
  occupy consecutive physical rows.
* Activations stream bit-serially on the shared input word lines; the 8T
  bit-cells AND the input bit with each stored weight bit (Step 1 — parallel
  in-memory dot products).
* Each column group's index generator sweeps the intra-group index phase
  ``t = 0..m-1``; the per-row comparators fire when the stored 4-bit index
  matches ``t``, gating that row's partial product into the adder tree
  (Step 2 — index generation and compare).  Gating *accumulation* this way is
  exactly why CSC (and not CSR) is the right compression: multiplication
  against the shared word line is preserved, only the column-sum is
  re-ordered in time.
* The adder tree sums the gated products and the shift accumulator applies
  the two's-complement bit weighting (Step 3); when a logical column's
  compressed entries straddle two column groups (uneven sparsity), the
  row-wise accumulator merges the two partial sums.

Per input vector the PE therefore spends ``pattern.m * input_bits`` cycles
(index phases x bit planes), with every column group operating in parallel.

The functional result is bit-exact with the integer matmul of the decoded
sparse matrix — a property-based test enforces this.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from ..sparsity.nm import NMPattern
from .bitserial import from_partials, to_bit_planes
from .csc import CSCMatrix
from .kernels import (KernelPlan, require_integer_activations,
                      spmm_bitserial)
from .stats import PEStats
from .widths import width_contract


@dataclasses.dataclass(frozen=True)
class SRAMPEConfig:
    """Geometry of one SRAM sparse PE (defaults = the paper's 128x96 macro)."""

    rows: int = 128
    lanes: int = 8          # column groups (weight+index pairs per row)
    weight_bits: int = 8
    index_bits: int = 4
    input_bits: int = 8

    @property
    def pair_capacity(self) -> int:
        """Total (weight, index) pairs the array stores."""
        return self.rows * self.lanes

    @property
    def array_bits(self) -> int:
        """Total bit-cells, weight + index sections (128x96 by default)."""
        return self.rows * self.lanes * (self.weight_bits + self.index_bits)

    def __post_init__(self):
        if self.rows <= 0 or self.lanes <= 0:
            raise ValueError("rows and lanes must be positive")
        if (1 << self.index_bits) < 2:
            raise ValueError("index_bits too small")


@dataclasses.dataclass
class _Placement:
    """Where one logical column's compressed entries landed."""

    column: int
    lane_spans: List[Tuple[int, int, int]]  # (lane, start_row, count)

    @property
    def spans_lanes(self) -> bool:
        return len(self.lane_spans) > 1


class SRAMSparsePE:
    """Functional + cycle-accurate model of the SRAM sparse PE."""

    def __init__(self, config: Optional[SRAMPEConfig] = None,
                 kernel: Optional[str] = None):
        self.config = config or SRAMPEConfig()
        self.kernel = kernel  # None -> REPRO_KERNEL env var -> default
        self.csc: Optional[CSCMatrix] = None
        self.placements: List[_Placement] = []
        self.stats = PEStats()
        self._plan: Optional[KernelPlan] = None
        self._dense_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ load
    def load(self, matrix: np.ndarray, pattern: NMPattern,
             strict: bool = True) -> None:
        """CSC-encode an integer ``(in_dim, out_dim)`` matrix and map it.

        Charges the write traffic (weight + index bits) to the stats block —
        this is the cost that makes SRAM the right home for the learnable
        path (fast, cheap writes) and is central to the Fig. 8 EDP study.
        """
        cfg = self.config
        matrix = np.asarray(matrix)
        self._check_range(matrix)
        csc = CSCMatrix.from_dense(matrix, pattern, strict=strict)
        if csc.nnz > cfg.pair_capacity:
            raise ValueError(
                f"compressed matrix needs {csc.nnz} pairs; PE holds "
                f"{cfg.pair_capacity} — tile the matrix first")
        if pattern.index_bits > cfg.index_bits:
            raise ValueError(
                f"pattern {pattern} needs {pattern.index_bits}-bit indices; "
                f"PE provides {cfg.index_bits}")

        # Column-major packing with spill into the next lane.
        placements: List[_Placement] = []
        lane, row = 0, 0
        for c, col in enumerate(csc.columns):
            remaining = col.nnz
            spans: List[Tuple[int, int, int]] = []
            while remaining > 0:
                if lane >= cfg.lanes:
                    raise ValueError("packing overflow despite capacity check")
                take = min(remaining, cfg.rows - row)
                if take > 0:
                    spans.append((lane, row, take))
                    row += take
                    remaining -= take
                if row == cfg.rows:
                    lane, row = lane + 1, 0
            placements.append(_Placement(column=c, lane_spans=spans))

        self.csc = csc
        self.placements = placements
        self._plan = KernelPlan.from_csc(csc)
        self._dense_cache = self._plan.decode()

        self.stats.weight_bits_written += csc.nnz * cfg.weight_bits
        self.stats.index_bits_written += csc.nnz * cfg.index_bits

    def _check_range(self, matrix: np.ndarray) -> None:
        bits = self.config.weight_bits
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        if matrix.size and (matrix.min() < lo or matrix.max() > hi):
            raise ValueError(f"weights outside signed {bits}-bit range")

    @property
    def loaded(self) -> bool:
        return self.csc is not None

    def occupancy(self) -> float:
        """Fraction of (weight, index) pairs in use."""
        if self.csc is None:
            return 0.0
        # A utilization *ratio* is float by design, not datapath arithmetic.
        return self.csc.nnz / self.config.pair_capacity  # repro-lint: disable-line=R1

    # ---------------------------------------------------------------- matmul
    @width_contract(inputs="i8", weights="i8", accum="i64",
                    returns="spmm_bitserial",
                    params={"activations": "inputs"})
    def matmul(self, activations: np.ndarray) -> np.ndarray:
        """Sparse matrix multiplication ``activations @ W`` on the PE.

        ``activations``: integer ``(batch, in_dim)`` within ``input_bits``
        signed range.  Returns int64 ``(batch, out_dim)``.

        The computation walks the actual dataflow — bit planes x index
        phases x comparator gating — and the final numbers equal
        ``activations @ dense`` exactly.
        """
        if self.csc is None:
            raise RuntimeError("load() a weight matrix first")
        cfg = self.config
        csc = self.csc
        activations = np.atleast_2d(np.asarray(activations))
        batch, in_dim = activations.shape
        if in_dim != csc.shape[0]:
            raise ValueError(
                f"activation dim {in_dim} != matrix in_dim {csc.shape[0]}")
        require_integer_activations(activations, "SRAM PE")

        out = spmm_bitserial(self._plan, activations, cfg.input_bits,
                             impl=self.kernel)

        self._charge_matmul_stats(batch)
        return out

    def _charge_matmul_stats(self, batch: int) -> None:
        cfg = self.config
        csc = self.csc
        pattern = csc.pattern
        sweep_cycles = pattern.m * cfg.input_bits
        lanes_used = len({span[0] for p in self.placements for span in p.lane_spans})

        self.stats.cycles += sweep_cycles * batch
        self.stats.activation_bits_read += csc.shape[0] * cfg.input_bits * batch
        self.stats.macs += csc.nnz * batch
        self.stats.dense_equivalent_macs += csc.shape[0] * csc.shape[1] * batch
        # Each stored weight participates in its matching phase on every bit
        # plane; comparators evaluate every phase.
        self.stats.weight_bits_read += csc.nnz * cfg.weight_bits * cfg.input_bits * batch
        self.stats.index_bits_read += csc.nnz * cfg.index_bits * pattern.m * batch
        self.stats.comparator_ops += csc.nnz * pattern.m * batch
        self.stats.adder_tree_ops += lanes_used * sweep_cycles * batch
        self.stats.shift_acc_ops += lanes_used * sweep_cycles * batch
        spill_columns = sum(1 for p in self.placements if p.spans_lanes)
        self.stats.rowwise_acc_ops += spill_columns * cfg.input_bits * batch

    # ------------------------------------------------------------- dense ref
    def dense_weight(self) -> np.ndarray:
        """Decoded dense matrix (for verification)."""
        if self._dense_cache is None:
            raise RuntimeError("load() a weight matrix first")
        return self._dense_cache

    # --------------------------------------------------------------- updates
    def update_weights(self, matrix: np.ndarray, pattern: NMPattern,
                       strict: bool = True) -> None:
        """In-place weight rewrite (one training step's weight update).

        Functionally identical to :meth:`load`; kept separate so callers'
        intent (initial mapping vs. learning update) is explicit in traces.
        """
        self.load(matrix, pattern, strict=strict)


class DenseDigitalPE:
    """Dense bit-serial digital PIM PE — the no-sparsity-support baseline.

    Models macros like the ISSCC'21 SRAM CIM [29]: the whole (zero-including)
    matrix is stored and every MAC is executed.  Used by the baseline columns
    of Fig. 7/8 and by the sparse-vs-dense ablation benches.
    """

    def __init__(self, rows: int = 128, cols: int = 8, weight_bits: int = 8,
                 input_bits: int = 8):
        self.rows = rows
        self.cols = cols
        self.weight_bits = weight_bits
        self.input_bits = input_bits
        self.weight: Optional[np.ndarray] = None
        self.stats = PEStats()

    @property
    def array_bits(self) -> int:
        return self.rows * self.cols * self.weight_bits

    def load(self, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix)
        if matrix.shape[0] > self.rows or matrix.shape[1] > self.cols:
            raise ValueError(
                f"matrix {matrix.shape} exceeds PE geometry "
                f"({self.rows}x{self.cols})")
        self.weight = matrix.astype(np.int64)
        self.stats.weight_bits_written += matrix.size * self.weight_bits

    @width_contract(inputs="i8", weights="i8", accum="i64",
                    depth="MAX_REDUCTION_DEPTH",
                    returns="from_partials",
                    params={"activations": "inputs",
                            "self.weight": "weights"})
    def matmul(self, activations: np.ndarray) -> np.ndarray:
        if self.weight is None:
            raise RuntimeError("load() a weight matrix first")
        activations = np.atleast_2d(np.asarray(activations))
        batch, in_dim = activations.shape
        if in_dim != self.weight.shape[0]:
            raise ValueError("activation dim mismatch")

        planes = to_bit_planes(activations, self.input_bits)
        partials = np.stack([planes[b] @ self.weight
                             for b in range(self.input_bits)])
        out = from_partials(partials, self.input_bits)

        self.stats.cycles += self.input_bits * batch
        self.stats.activation_bits_read += in_dim * self.input_bits * batch
        self.stats.macs += self.weight.size * batch
        self.stats.dense_equivalent_macs += self.weight.size * batch
        self.stats.weight_bits_read += (
            self.weight.size * self.weight_bits * self.input_bits * batch)
        self.stats.adder_tree_ops += self.weight.shape[1] * self.input_bits * batch
        self.stats.shift_acc_ops += self.weight.shape[1] * self.input_bits * batch
        return out
