"""``python -m repro.corpus`` — generate / verify the pattern corpus.

.. code-block:: bash

    python -m repro.corpus                         # stats table to stdout
    python -m repro.corpus --out MANIFEST.json     # write the manifest
    python -m repro.corpus --check MANIFEST.json   # regenerate + compare
    python -m repro.corpus --stats stats.txt       # write the stats table
    python -m repro.corpus --workers 4             # sharded generation
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from .manifest import (MANIFEST_PATH, build_manifest, check_manifest,
                       render_stats_table, save_manifest)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.corpus",
        description="Deterministic DLMC-style sparse weight-pattern corpus "
                    "with a content-hash manifest.")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="regenerate the corpus and write the manifest "
                             f"here (committed copy: {MANIFEST_PATH})")
    parser.add_argument("--check", default=None, metavar="PATH",
                        help="regenerate and verify byte-identity against "
                             "this committed manifest (exit 2 on drift)")
    parser.add_argument("--stats", default=None, metavar="PATH",
                        help="write the per-item structure table here "
                             "instead of stdout")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="shard generation across N processes "
                             "(bit-identical to serial; default 1)")
    args = parser.parse_args(argv)

    if args.check is not None:
        problems = check_manifest(args.check, workers=args.workers)
        if problems:
            print(f"corpus drift against {args.check}:", file=sys.stderr)
            for line in problems:
                print(f"  {line}", file=sys.stderr)
            return 2
        print(f"corpus matches {args.check} byte-for-byte")
        return 0

    manifest = build_manifest(workers=args.workers)
    if args.out is not None:
        save_manifest(manifest, args.out)
        print(f"wrote {len(manifest['items'])} item hashes to {args.out}")
    table = render_stats_table(manifest)
    if args.stats is not None:
        path = pathlib.Path(args.stats)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(table + "\n")
        print(f"wrote corpus stats to {args.stats}")
    elif args.out is None:
        print(table)
    return 0


if __name__ == "__main__":
    sys.exit(main())
