"""Deterministic sparse-pattern generators for the benchmark corpus.

Every generator is a pure function of an explicit seeded
``numpy.random.Generator`` plus the target shape; the per-item stream
(:func:`item_seed`) is derived from :data:`CORPUS_SEED` and a SHA-256
of the item *name* alone, so items can be generated in any order, in
any process, and come out bit-identical.

Values are always non-zero int8-range integers (``|w| in [1, 127]``),
so an item's nnz equals the number of structurally-kept positions and
densities are exact by construction (the magnitude classes keep an
exact top-``k`` by absolute value with stable index tie-break).
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, Iterator, NamedTuple, Tuple

import numpy as np

from ..core.effects import reentrant
from ..sparsity.nm import NMPattern, compute_nm_mask

#: Root seed pinned in the committed manifest; bump only together with a
#: regenerated manifest + benchmark baseline (see docs/METHODOLOGY.md).
CORPUS_SEED = 20260808

#: (in_dim, out_dim) geometries: the paper's two PE configurations plus
#: two larger layers where cache behaviour starts to dominate.
SHAPES: Tuple[Tuple[int, int], ...] = (
    (128, 8), (256, 32), (512, 64), (1024, 128))

#: Fraction of blocks kept by the block-sparse classes.
BLOCK_DENSITY = 0.25

#: Density of the pathological uniform-random class.
RAND_DENSITY = 0.30


class CorpusItem(NamedTuple):
    """One corpus entry: a pattern class instantiated at one shape."""

    name: str            # e.g. "mag_25_256x32"
    pattern_class: str   # e.g. "mag_25"
    shape: Tuple[int, int]


def _dense_values(rng: np.random.Generator,
                  shape: Tuple[int, int]) -> np.ndarray:
    """A dense matrix of non-zero int8-range values (``|w| in [1,127]``)."""
    mags = rng.integers(1, 128, size=shape, dtype=np.int64)
    signs = rng.integers(0, 2, size=shape, dtype=np.int64) * 2 - 1
    return mags * signs


def _nm(rng: np.random.Generator, shape: Tuple[int, int],
        pattern: NMPattern) -> np.ndarray:
    """N:M structured: exactly ``n`` survivors per aligned group of ``m``
    down the input dimension (magnitude saliency, stable ties)."""
    dense = _dense_values(rng, shape)
    mask = compute_nm_mask(np.abs(dense), pattern, axis=0)
    return dense * mask.astype(np.int64)


def _magnitude(rng: np.random.Generator, shape: Tuple[int, int],
               density: float) -> np.ndarray:
    """Unstructured magnitude pruning keeping an exact global top-``k``."""
    dense = _dense_values(rng, shape)
    keep = int(round(density * dense.size))
    order = np.argsort(-np.abs(dense), axis=None, kind="stable")
    mask = np.zeros(dense.size, dtype=np.int64)
    mask[order[:keep]] = 1
    return dense * mask.reshape(shape)


def _block(rng: np.random.Generator, shape: Tuple[int, int],
           block: int) -> np.ndarray:
    """Structured block sparsity: keep an exact fraction of aligned
    ``block x block`` tiles (shapes here are all multiples of 8)."""
    dense = _dense_values(rng, shape)
    grid = (shape[0] // block, shape[1] // block)
    nblocks = grid[0] * grid[1]
    keep = int(round(BLOCK_DENSITY * nblocks))
    chosen = rng.permutation(nblocks)[:keep]
    block_mask = np.zeros(nblocks, dtype=np.int64)
    block_mask[chosen] = 1
    mask = np.kron(block_mask.reshape(grid),
                   np.ones((block, block), dtype=np.int64))
    return dense * mask


def _uniform_random(rng: np.random.Generator,
                    shape: Tuple[int, int]) -> np.ndarray:
    """Pathological scatter: an exact-count uniform-random support set."""
    dense = _dense_values(rng, shape)
    keep = int(round(RAND_DENSITY * dense.size))
    chosen = rng.permutation(dense.size)[:keep]
    mask = np.zeros(dense.size, dtype=np.int64)
    mask[chosen] = 1
    return dense * mask.reshape(shape)


def pattern_classes() -> Dict[str, Callable[
        [np.random.Generator, Tuple[int, int]], np.ndarray]]:
    """Ordered mapping of pattern-class name -> generator callable."""
    return {
        "nm_1_4": lambda rng, s: _nm(rng, s, NMPattern(1, 4)),
        "nm_2_4": lambda rng, s: _nm(rng, s, NMPattern(2, 4)),
        "nm_1_8": lambda rng, s: _nm(rng, s, NMPattern(1, 8)),
        "nm_2_16": lambda rng, s: _nm(rng, s, NMPattern(2, 16)),
        "mag_50": lambda rng, s: _magnitude(rng, s, 0.50),
        "mag_25": lambda rng, s: _magnitude(rng, s, 0.25),
        "mag_10": lambda rng, s: _magnitude(rng, s, 0.10),
        "block_4x4": lambda rng, s: _block(rng, s, 4),
        "block_8x8": lambda rng, s: _block(rng, s, 8),
        "rand_30": _uniform_random,
    }


def corpus_items() -> Tuple[CorpusItem, ...]:
    """The full corpus, in deterministic (class, shape) order."""
    items = []
    for cls in pattern_classes():
        for shape in SHAPES:
            items.append(CorpusItem(
                name=f"{cls}_{shape[0]}x{shape[1]}",
                pattern_class=cls, shape=shape))
    return tuple(items)


def item_seed(name: str) -> np.random.SeedSequence:
    """The item's seed: root seed + a stable hash of the name alone.

    Independent of enumeration order and worker sharding, so serial and
    pooled generation produce identical matrices.
    """
    digest = hashlib.sha256(name.encode("ascii")).digest()
    entropy = int.from_bytes(digest[:8], "big")
    return np.random.SeedSequence([CORPUS_SEED, entropy])


@reentrant(reason="corpus items must be a function of (seed, name) alone "
                  "so serial and sharded regeneration stay byte-identical")
def generate(item: CorpusItem) -> np.ndarray:
    """Generate one corpus matrix (int64 storage, int8-range values)."""
    classes = pattern_classes()
    rng = np.random.default_rng(item_seed(item.name))
    return classes[item.pattern_class](rng, item.shape)


def generate_item(name: str) -> np.ndarray:
    """Generate a corpus matrix by item name (raises on unknown names)."""
    for item in corpus_items():
        if item.name == name:
            return generate(item)
    raise KeyError(f"unknown corpus item {name!r}")


def iter_matrices() -> Iterator[Tuple[CorpusItem, np.ndarray]]:
    """Yield ``(item, matrix)`` pairs in deterministic corpus order."""
    for item in corpus_items():
        yield item, generate(item)
