"""Content-hash manifest: the corpus' byte-for-byte reproducibility pin.

The manifest records one SHA-256 per corpus item (over dtype, shape and
raw bytes) plus per-item structure statistics.  CI's ``corpus-check``
job regenerates the corpus from the pinned seed and ``cmp``s the result
against the committed copy — any drift in numpy, the generators or the
seed derivation fails the build instead of silently invalidating the
per-pattern benchmark baselines.

Generation shards across worker processes exactly like the DSE engine
(order-preserving ``pool.map`` over a pure top-level worker, serial
fallback when no pool can be created), so ``--workers N`` is
bit-identical to serial.
"""

from __future__ import annotations

import concurrent.futures
import hashlib
import json
import pathlib
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.effects import reentrant
from ..harness.reporting import format_table
from .generators import (CORPUS_SEED, CorpusItem, corpus_items, generate)

#: Schema tag of the manifest document.
MANIFEST_SCHEMA = "repro.corpus/manifest/1"

#: Repo-relative home of the committed manifest.
MANIFEST_PATH = "benchmarks/corpus/CORPUS_MANIFEST.json"


def content_hash(matrix: np.ndarray) -> str:
    """SHA-256 over dtype, shape and C-order bytes (layout-independent)."""
    h = hashlib.sha256()
    h.update(f"{matrix.dtype.str}|{matrix.shape}".encode("ascii"))
    h.update(np.ascontiguousarray(matrix).tobytes())
    return h.hexdigest()


@reentrant(reason="the process-pool worker entry point: entries must be "
                  "a function of the item alone so workers=1 and "
                  "workers=N manifests are byte-identical")
def _describe_item(item: CorpusItem) -> Dict[str, object]:
    """Worker entry point (module-level: picklable by the process pool)."""
    matrix = generate(item)
    nnz = int(np.count_nonzero(matrix))
    counts = np.count_nonzero(matrix, axis=0)
    return {
        "name": item.name,
        "pattern_class": item.pattern_class,
        "shape": list(item.shape),
        "nnz": nnz,
        "density": round(nnz / matrix.size, 6),
        "col_nnz_min": int(counts.min()),
        "col_nnz_max": int(counts.max()),
        "sha256": content_hash(matrix),
    }


def _describe_many(items: Sequence[CorpusItem],
                   workers: int) -> List[Dict[str, object]]:
    """Describe items in input order, sharded when ``workers > 1``."""
    if workers <= 1 or len(items) <= 1:
        return [_describe_item(item) for item in items]
    chunksize = max(1, len(items) // (workers * 4))
    try:
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers) as pool:
            return list(pool.map(_describe_item, items,
                                 chunksize=chunksize))
    except (OSError, concurrent.futures.process.BrokenProcessPool,
            PermissionError):
        # No usable process pool here — same results, just serial.
        return [_describe_item(item) for item in items]


def build_manifest(workers: int = 1) -> Dict[str, object]:
    """Generate the full corpus and return its manifest document."""
    return {
        "schema": MANIFEST_SCHEMA,
        "seed": CORPUS_SEED,
        "items": _describe_many(corpus_items(), workers),
    }


def render_manifest(manifest: Dict[str, object]) -> str:
    """The canonical byte representation the CI job ``cmp``s."""
    return json.dumps(manifest, indent=2, sort_keys=True) + "\n"


def save_manifest(manifest: Dict[str, object], path: str) -> None:
    """Write the canonical rendering to ``path`` (creating parents)."""
    p = pathlib.Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(render_manifest(manifest))


def load_manifest(path: str) -> Dict[str, object]:
    """Load a committed manifest document."""
    with open(path) as f:
        return json.load(f)


def check_manifest(path: str, workers: int = 1) -> List[str]:
    """Regenerate the corpus and diff against the committed manifest.

    Returns a list of human-readable mismatch lines (empty == clean).
    The comparison is on the canonical rendering, so schema drift,
    reordering, stat changes and hash changes all count.
    """
    committed = render_manifest(load_manifest(path))
    fresh = build_manifest(workers=workers)
    if committed == render_manifest(fresh):
        return []
    by_name = {e["name"]: e for e in load_manifest(path).get("items", [])}
    problems: List[str] = []
    for entry in fresh["items"]:
        old = by_name.pop(entry["name"], None)
        if old is None:
            problems.append(f"{entry['name']}: missing from manifest")
        elif old != entry:
            changed = sorted(k for k in entry if old.get(k) != entry[k])
            problems.append(
                f"{entry['name']}: drifted ({', '.join(changed)})")
    for name in sorted(by_name):
        problems.append(f"{name}: in manifest but not in corpus")
    if not problems:
        problems.append("manifest header drifted (schema or seed)")
    return problems


def render_stats_table(manifest: Optional[Dict[str, object]] = None) -> str:
    """Fixed-width per-item structure table (the CI stats artifact)."""
    manifest = manifest if manifest is not None else build_manifest()
    rows = []
    for entry in manifest["items"]:
        rows.append([
            entry["name"], entry["pattern_class"],
            f"{entry['shape'][0]}x{entry['shape'][1]}",
            entry["nnz"], entry["density"],
            f"{entry['col_nnz_min']}..{entry['col_nnz_max']}",
            entry["sha256"][:12],
        ])
    return format_table(
        ["Item", "Class", "Shape", "nnz", "Density", "Col nnz", "SHA-256"],
        rows, title=f"Sparse pattern corpus (seed {manifest['seed']})")
