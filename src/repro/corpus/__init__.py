"""DLMC-style sparse weight-pattern corpus (deterministic, hash-pinned).

A small benchmark corpus in the spirit of the DLMC sparse-matrix
collection: every (pattern-class x shape) pair yields one int8-range
weight matrix generated from a pinned seed, so kernel throughput can be
tracked per *pattern class* instead of only at the paper's two
geometries.  The generator set spans the regimes compressed-CIM
accelerators are evaluated on:

* ``nm_N_M`` — N:M structured sparsity (the paper's own regime),
* ``mag_P`` — unstructured magnitude pruning at P% density,
* ``block_BxB`` — structured block sparsity,
* ``rand_30`` — pathological uniform-random scatter (worst-case
  locality for any plan-based kernel).

Every item's RNG stream is derived from :data:`CORPUS_SEED` and a hash
of the item name alone — never from enumeration order or worker count —
so regeneration is byte-identical serial or sharded, and the committed
manifest of content hashes (:data:`repro.corpus.manifest.MANIFEST_PATH`)
pins the corpus in CI.
"""

from .generators import (BLOCK_DENSITY, CORPUS_SEED, RAND_DENSITY, SHAPES,
                         CorpusItem, corpus_items, generate, generate_item,
                         item_seed, pattern_classes)
from .manifest import (MANIFEST_PATH, MANIFEST_SCHEMA, build_manifest,
                       check_manifest, content_hash, load_manifest,
                       render_manifest, render_stats_table, save_manifest)

__all__ = [
    "BLOCK_DENSITY", "CORPUS_SEED", "RAND_DENSITY", "SHAPES", "CorpusItem",
    "corpus_items", "generate", "generate_item", "item_seed",
    "pattern_classes",
    "MANIFEST_PATH", "MANIFEST_SCHEMA", "build_manifest", "check_manifest",
    "content_hash", "load_manifest", "render_manifest", "render_stats_table",
    "save_manifest",
]
