"""Job lifecycle for the async endpoints (``/v1/sweep``, ``/v1/experiment``).

A :class:`Job` is one accepted request flowing through the states::

    queued -> running -> done | failed
    queued -> cancelled                 (cancellation is queue-removal only)

Jobs execute on a small ``ThreadPoolExecutor`` — the heavy lifting inside
a sweep already shards across *processes* via the engine's ``workers``
parameter, so the thread pool only bounds how many requests run
concurrently.  Each job runs under its **own** context-local tracer
(:func:`repro.obs.use_tracer`), so ``GET /v1/jobs/<id>/trace`` can export
a per-request Chrome trace that never interleaves with other jobs.

Cancellation semantics: only ``queued`` jobs can be cancelled — a running
sweep is a single engine call with no safe preemption point, and a
finished job is immutable.  The runner re-checks the state under the
store lock before flipping to ``running``, so a cancel that lands first
always wins.

Durations use ``time.perf_counter_ns()`` (monotonic; wall-clock
``time.time`` is banned for durations by lint rule R4).
"""

from __future__ import annotations

import concurrent.futures
import threading
import time
from typing import Callable, Dict, List, Optional

from ..obs import Tracer, use_tracer
from .schemas import JOB_SCHEMA, JOBS_SCHEMA

#: The job states, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job can no longer leave.
TERMINAL_STATES = ("done", "failed", "cancelled")


class Job:
    """One accepted async request and everything it accumulates."""

    __slots__ = ("id", "kind", "request", "trace_id", "state", "result",
                 "error", "tracer", "queued_ns", "started_ns",
                 "finished_ns")

    def __init__(self, job_id: str, kind: str, request: Dict[str, object],
                 trace_id: str):
        self.id = job_id
        self.kind = kind
        self.request = request
        self.trace_id = trace_id
        self.state = "queued"
        self.result: Optional[Dict[str, object]] = None
        self.error: Optional[Dict[str, object]] = None
        self.tracer = Tracer(enabled=True)
        self.queued_ns = time.perf_counter_ns()
        self.started_ns: Optional[int] = None
        self.finished_ns: Optional[int] = None

    def doc(self) -> Dict[str, object]:
        """The public job document (``GET /v1/jobs/<id>``)."""
        doc: Dict[str, object] = {
            "schema": JOB_SCHEMA,
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "trace_id": self.trace_id,
            "request": self.request,
        }
        if self.started_ns is not None and self.finished_ns is not None:
            doc["elapsed_ms"] = (self.finished_ns - self.started_ns) / 1e6
        if self.error is not None:
            doc["error"] = self.error
        return doc


class JobStore:
    """Thread-safe registry + executor for async jobs."""

    def __init__(self, workers: int = 2):
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}        # insertion = submission order
        self._seq = 0
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(1, workers), thread_name_prefix="repro-serve-job")

    # ---------------------------------------------------------------- submit
    def submit(self, kind: str, request: Dict[str, object], trace_id: str,
               runner: Callable[[Job], Dict[str, object]]) -> Job:
        """Register a job and hand it to the executor; returns it queued.

        ``runner(job)`` computes the result document; it runs on an
        executor thread under the job's context-local tracer.  Exceptions
        become the job's structured ``error`` (state ``failed``) — they
        never propagate into the serving thread.
        """
        with self._lock:
            self._seq += 1
            job = Job(f"job-{self._seq:06d}", kind, request, trace_id)
            self._jobs[job.id] = job
        self._executor.submit(self._run, job, runner)
        return job

    def _run(self, job: Job,
             runner: Callable[[Job], Dict[str, object]]) -> None:
        with self._lock:
            if job.state != "queued":          # cancelled while queued
                return
            job.state = "running"
            job.started_ns = time.perf_counter_ns()
        try:
            with use_tracer(job.tracer):
                with job.tracer.span(f"serve.job.{job.kind}", job=job.id,
                                     trace_id=job.trace_id):
                    result = runner(job)
        except Exception as exc:  # noqa: BLE001 — jobs must fail structured
            with self._lock:
                job.error = {"type": type(exc).__name__, "message": str(exc)}
                job.state = "failed"
                job.finished_ns = time.perf_counter_ns()
            return
        with self._lock:
            job.result = result
            job.state = "done"
            job.finished_ns = time.perf_counter_ns()

    # ---------------------------------------------------------------- access
    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def cancel(self, job_id: str) -> Optional[bool]:
        """True = cancelled; False = too late (running/terminal);
        None = no such job."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            if job.state != "queued":
                return False
            job.state = "cancelled"
            job.finished_ns = time.perf_counter_ns()
            return True

    def list_doc(self) -> Dict[str, object]:
        """``GET /v1/jobs``: every job, in submission order."""
        with self._lock:
            jobs = [job.doc() for job in self._jobs.values()]
        return {"schema": JOBS_SCHEMA, "jobs": jobs}

    def counts(self) -> Dict[str, int]:
        with self._lock:
            counts = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                counts[job.state] += 1
        return counts

    # ------------------------------------------------------------- lifecycle
    def shutdown(self, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait)
