"""Job lifecycle for the async endpoints (``/v1/sweep``, ``/v1/experiment``).

A :class:`Job` is one accepted request flowing through the states::

    queued -> running -> done | failed
    queued -> cancelled                 (cancellation is queue-removal only)

Jobs execute on a small ``ThreadPoolExecutor`` — the heavy lifting inside
a sweep already shards across *processes* via the engine's ``workers``
parameter, so the thread pool only bounds how many requests run
concurrently.  Each job runs under its **own** context-local tracer
(:func:`repro.obs.use_tracer`), so ``GET /v1/jobs/<id>/trace`` can export
a per-request Chrome trace that never interleaves with other jobs.

Cancellation semantics: only ``queued`` jobs can be cancelled — a running
sweep is a single engine call with no safe preemption point, and a
finished job is immutable.  The runner re-checks the state under the
store lock before flipping to ``running``, so a cancel that lands first
always wins.

Concurrency discipline (verified by ``repro.lint --concurrency``): a
job's mutable fields are guarded by the owning store's ``_lock`` —
declared with ``@guarded_by`` below — and every externally visible
document is a *snapshot* built while holding it (:meth:`JobStore.doc`,
:meth:`JobStore.result_doc`).  Handing callers a live :class:`Job` to
read field-by-field would tear: state could flip between reading
``state`` and reading ``result``.

The registry is bounded: beyond ``max_jobs`` entries, the oldest
*terminal* jobs (done/failed/cancelled — never live ones) are pruned at
submission time, so ``/v1/jobs`` memory cannot grow without bound under
sustained traffic.

Durations use ``time.perf_counter_ns()`` (monotonic; wall-clock
``time.time`` is banned for durations by lint rule R4).
"""

from __future__ import annotations

import concurrent.futures
import threading
import time
from typing import Callable, Dict, Optional

from ..core.concurrency import guarded_by, holds_no_locks
from ..obs import Tracer, use_tracer
from .schemas import JOB_SCHEMA, JOBS_SCHEMA

#: The job states, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job can no longer leave.
TERMINAL_STATES = ("done", "failed", "cancelled")

#: Default bound on the job registry (oldest terminal jobs pruned beyond).
DEFAULT_MAX_JOBS = 1024


@guarded_by("JobStore._lock", "state", "result", "error", "started_ns",
            "finished_ns")
class Job:
    """One accepted async request and everything it accumulates.

    ``id``/``kind``/``request``/``trace_id``/``tracer``/``queued_ns`` are
    immutable after construction; the lifecycle fields declared in
    ``@guarded_by`` above belong to the owning :class:`JobStore`'s lock.
    """

    __slots__ = ("id", "kind", "request", "trace_id", "state", "result",
                 "error", "tracer", "queued_ns", "started_ns",
                 "finished_ns")

    def __init__(self, job_id: str, kind: str, request: Dict[str, object],
                 trace_id: str):
        self.id = job_id
        self.kind = kind
        self.request = request
        self.trace_id = trace_id
        self.state = "queued"
        self.result: Optional[Dict[str, object]] = None
        self.error: Optional[Dict[str, object]] = None
        self.tracer = Tracer(enabled=True)
        self.queued_ns = time.perf_counter_ns()
        self.started_ns: Optional[int] = None
        self.finished_ns: Optional[int] = None

    def _doc(self) -> Dict[str, object]:
        """The public job document — callers hold ``JobStore._lock``.

        Private on purpose: every call site sits inside the store's
        lock, which is exactly what lets R11's entry-lockset analysis
        prove the lifecycle-field reads here are guarded.  External
        callers go through :meth:`JobStore.doc`.
        """
        doc: Dict[str, object] = {
            "schema": JOB_SCHEMA,
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "trace_id": self.trace_id,
            "request": self.request,
        }
        if self.started_ns is not None and self.finished_ns is not None:
            doc["elapsed_ms"] = (self.finished_ns - self.started_ns) / 1e6
        if self.error is not None:
            doc["error"] = self.error
        return doc


@guarded_by("_lock", "_jobs", "_seq", "_pruned")
class JobStore:
    """Thread-safe bounded registry + executor for async jobs."""

    def __init__(self, workers: int = 2, max_jobs: int = DEFAULT_MAX_JOBS):
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}        # insertion = submission order
        self._seq = 0
        self._pruned = 0
        self.max_jobs = max(1, max_jobs)
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(1, workers), thread_name_prefix="repro-serve-job")

    # ---------------------------------------------------------------- submit
    @holds_no_locks(reason="hands work to the executor, which may block "
                           "briefly on its internal queue")
    def submit(self, kind: str, request: Dict[str, object], trace_id: str,
               runner: Callable[[Job], Dict[str, object]]) -> Job:
        """Register a job and hand it to the executor; returns it queued.

        ``runner(job)`` computes the result document; it runs on an
        executor thread under the job's context-local tracer.  Exceptions
        become the job's structured ``error`` (state ``failed``) — they
        never propagate into the serving thread.
        """
        with self._lock:
            self._seq += 1
            job = Job(f"job-{self._seq:06d}", kind, request, trace_id)
            self._jobs[job.id] = job
            self._prune_locked()
        self._executor.submit(self._run, job, runner)
        return job

    def _prune_locked(self) -> None:
        """Evict oldest *terminal* jobs beyond ``max_jobs`` (lock held).

        Live jobs (queued/running) are never evicted — under a burst of
        in-flight work the registry may transiently exceed the cap
        rather than drop observable state.
        """
        if len(self._jobs) <= self.max_jobs:
            return
        terminal = [job.id for job in self._jobs.values()
                    if job.state in TERMINAL_STATES]
        for job_id in terminal:
            if len(self._jobs) <= self.max_jobs:
                break
            del self._jobs[job_id]
            self._pruned += 1

    def _run(self, job: Job,
             runner: Callable[[Job], Dict[str, object]]) -> None:
        with self._lock:
            if job.state != "queued":          # cancelled while queued
                return
            job.state = "running"
            job.started_ns = time.perf_counter_ns()
        try:
            with use_tracer(job.tracer):
                with job.tracer.span(f"serve.job.{job.kind}", job=job.id,
                                     trace_id=job.trace_id):
                    result = runner(job)
        except Exception as exc:  # noqa: BLE001 — jobs must fail structured
            with self._lock:
                job.error = {"type": type(exc).__name__, "message": str(exc)}
                job.state = "failed"
                job.finished_ns = time.perf_counter_ns()
            return
        with self._lock:
            job.result = result
            job.state = "done"
            job.finished_ns = time.perf_counter_ns()

    # ---------------------------------------------------------------- access
    def get(self, job_id: str) -> Optional[Job]:
        """The live job object — for identity/tracer access, not state.

        Reading lifecycle fields off the returned object would race;
        use :meth:`doc` / :meth:`result_doc` for consistent snapshots.
        """
        with self._lock:
            return self._jobs.get(job_id)

    def doc(self, job_id: str) -> Optional[Dict[str, object]]:
        """A consistent public job document, built under the lock."""
        with self._lock:
            job = self._jobs.get(job_id)
            return job._doc() if job is not None else None

    def result_doc(self, job_id: str) -> Optional[Dict[str, object]]:
        """An atomic ``{state, result, error}`` snapshot of one job."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            return {"state": job.state, "result": job.result,
                    "error": job.error}

    def cancel(self, job_id: str) -> Optional[str]:
        """``"cancelled"`` on success, the blocking state (``running`` /
        terminal) when too late, None when no such job exists."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            if job.state != "queued":
                return job.state
            job.state = "cancelled"
            job.finished_ns = time.perf_counter_ns()
            return "cancelled"

    def list_doc(self) -> Dict[str, object]:
        """``GET /v1/jobs``: every job, in submission order."""
        with self._lock:
            jobs = [job._doc() for job in self._jobs.values()]
        return {"schema": JOBS_SCHEMA, "jobs": jobs}

    def counts(self) -> Dict[str, int]:
        with self._lock:
            counts = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                counts[job.state] += 1
            counts["max_jobs"] = self.max_jobs
            counts["pruned"] = self._pruned
        return counts

    # ------------------------------------------------------------- lifecycle
    @holds_no_locks(reason="joins executor worker threads")
    def shutdown(self, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait)
