"""``repro.serve`` — simulation-as-a-service over the DSE engine.

A stdlib-only HTTP/JSON front end (ROADMAP item 2) turning the
reproduction's reentrant library calls into a service:

* ``POST /v1/evaluate`` — one design config; requests arriving within a
  batching window coalesce into a single sharded engine call
  (:mod:`repro.serve.batching`), and responses are served from the same
  content-hash :class:`~repro.dse.cache.DiskCache` the CLI sweeps use —
  one cache, keyed by canonical-JSON SHA-256, warmed from either side.
* ``POST /v1/sweep`` / ``POST /v1/experiment`` — async jobs
  (:mod:`repro.serve.jobs`) over ``run_sweep`` and the fig7/fig8/table2
  harness builders, with ``GET /v1/jobs/<id>`` lifecycle endpoints,
  results, cancellation, and per-job Chrome trace export.
* Every request gets a trace ID; spans record under context-local
  tracers (:func:`repro.obs.use_tracer`), never the process-global one.

The served results are **byte-identical** to direct library calls — the
differential suite (``tests/test_serve_differential.py``) and the
concurrency suite (``tests/test_serve_concurrency.py``) certify it, and
the effect verifier (``python -m repro.lint --effects``) proves the
handlers' evaluation path reentrant.

Entry point: ``python -m repro.serve`` (or ``python -m repro serve``).
"""

from .api import ROUTES, ServeApp, ServeServer, make_server
from .batching import DEFAULT_WINDOW_S, BatchingQueue
from .jobs import JOB_STATES, Job, JobStore
from .schemas import (ERROR_SCHEMA, EVALUATE_SCHEMA, EXPERIMENT_NAMES,
                      HEALTH_SCHEMA, JOB_RESULT_SCHEMA, JOB_SCHEMA,
                      JOBS_SCHEMA, MAX_BODY_BYTES, STATS_SCHEMA, SchemaError,
                      SWEEP_LEVERS, build_sweep_spec, error_doc,
                      validate_evaluate_request, validate_experiment_request,
                      validate_sweep_request)

__all__ = [
    "ServeApp", "ServeServer", "make_server", "ROUTES",
    "BatchingQueue", "DEFAULT_WINDOW_S",
    "Job", "JobStore", "JOB_STATES",
    "SchemaError", "error_doc", "build_sweep_spec",
    "validate_evaluate_request", "validate_sweep_request",
    "validate_experiment_request",
    "ERROR_SCHEMA", "EVALUATE_SCHEMA", "JOB_SCHEMA", "JOBS_SCHEMA",
    "JOB_RESULT_SCHEMA", "HEALTH_SCHEMA", "STATS_SCHEMA",
    "EXPERIMENT_NAMES", "SWEEP_LEVERS", "MAX_BODY_BYTES",
]
