"""The HTTP/JSON API: routing, the application object, the server.

Layering (everything below the handler is plain-function testable):

* :class:`ServeApp` — owns the shared :class:`~repro.dse.cache.DiskCache`
  (the *same* content-hash cache ``python -m repro.dse`` uses, so HTTP
  and CLI warm each other), the :class:`~.batching.BatchingQueue`, and
  the :class:`~.jobs.JobStore`.  ``dispatch(method, path, body)`` is the
  whole API as a pure-ish call: ``(status, document)`` out.
* :class:`_Handler` — the thin ``http.server`` adapter: reads the body
  (bounded by ``max_body_bytes``), calls ``dispatch``, writes JSON.
  ``ThreadingHTTPServer`` gives one thread per request; all shared state
  sits behind the app's locks.

Every request gets a trace ID (``req-<seq>``, deterministic per server).
Evaluate requests with ``"trace": true`` run under a context-local
tracer (:func:`repro.obs.use_tracer`) and get their spans back inline;
job traces are exported as Chrome ``trace_events`` documents via
``GET /v1/jobs/<id>/trace``.

Error discipline: *every* failure path returns a structured JSON error
document (:func:`~.schemas.error_doc`) — schema violations as 4xx,
unexpected exceptions as a 500 with the exception class name, never a
traceback in the body.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from .. import __version__
from ..core.concurrency import guarded_by
from ..dse.cache import DiskCache
from ..dse.engine import frontier_doc, run_sweep
from ..dse.spec import config_key
from ..obs import Tracer, to_trace_events, use_tracer
from .batching import DEFAULT_WINDOW_S, BatchingQueue, BatchTimeout
from .jobs import DEFAULT_MAX_JOBS, Job, JobStore
from .schemas import (EVALUATE_SCHEMA, HEALTH_SCHEMA, JOB_RESULT_SCHEMA,
                      JOB_SCHEMA, MAX_BODY_BYTES, STATS_SCHEMA, SchemaError,
                      build_sweep_spec, error_doc, validate_evaluate_request,
                      validate_experiment_request, validate_sweep_request)

#: The endpoint table (method, path template, summary) — also what the
#: CLI banner and METHODOLOGY §12 print, so docs and code cannot drift.
ROUTES = (
    ("POST", "/v1/evaluate", "evaluate one design config (batched+cached)"),
    ("POST", "/v1/sweep", "submit a sweep job (SweepSpec overlay)"),
    ("POST", "/v1/experiment", "submit an experiment job (fig7|fig8|table2)"),
    ("GET", "/v1/jobs", "list jobs in submission order"),
    ("GET", "/v1/jobs/<id>", "job status document"),
    ("GET", "/v1/jobs/<id>/result", "job result (409 until finished)"),
    ("GET", "/v1/jobs/<id>/trace", "job Chrome trace_events export"),
    ("POST", "/v1/jobs/<id>/cancel", "cancel a queued job"),
    ("GET", "/v1/health", "liveness + version"),
    ("GET", "/v1/stats", "cache / batching / job counters"),
)


def _run_sweep_job(app: "ServeApp", job: Job) -> Dict[str, object]:
    """Job runner: one sweep through the shared engine + cache."""
    spec = build_sweep_spec(job.request)
    result = run_sweep(spec=spec, workers=int(job.request["workers"]),
                       cache=app.cache)
    doc: Dict[str, object] = {
        "configs": result["configs"],
        "errors": len(result["errors"]),
        "cache": result["cache"],
        "frontier": frontier_doc(result),
    }
    if job.request.get("records"):
        doc["records"] = result["records"]
    return doc


def _run_experiment_job(app: "ServeApp", job: Job) -> Dict[str, object]:
    """Job runner: one harness build (fig7 / fig8 / table2)."""
    from ..harness.fig7 import build_fig7
    from ..harness.fig8 import build_fig8
    from ..harness.table2 import build_table2

    builders = {"fig7": build_fig7, "fig8": build_fig8,
                "table2": build_table2}
    name = str(job.request["experiment"])
    return {"experiment": name, "result": builders[name]()}


@guarded_by("_lock", "_trace_seq")
class ServeApp:
    """Application state + the ``dispatch`` entry point."""

    def __init__(self, cache: Optional[DiskCache] = None,
                 window_s: float = DEFAULT_WINDOW_S,
                 engine_workers: int = 1,
                 job_workers: int = 2,
                 max_body_bytes: int = MAX_BODY_BYTES,
                 max_jobs: int = DEFAULT_MAX_JOBS):
        self.cache = cache if cache is not None else DiskCache()
        self.queue = BatchingQueue(cache=self.cache, window_s=window_s,
                                   workers=engine_workers)
        self.jobs = JobStore(workers=job_workers, max_jobs=max_jobs)
        self.max_body_bytes = max_body_bytes
        self._lock = threading.Lock()
        self._trace_seq = 0

    # -------------------------------------------------------------- plumbing
    def next_trace_id(self) -> str:
        with self._lock:
            self._trace_seq += 1
            return f"req-{self._trace_seq:06d}"

    def parse_body(self, raw: bytes) -> object:
        if len(raw) > self.max_body_bytes:
            raise SchemaError("too-large",
                              f"request body exceeds {self.max_body_bytes} "
                              "bytes", status=413)
        if not raw:
            raise SchemaError("bad-json", "request body is empty")
        try:
            return json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise SchemaError("bad-json",
                              f"request body is not valid JSON: {exc}") \
                from exc

    # -------------------------------------------------------------- dispatch
    def dispatch(self, method: str, path: str,
                 raw_body: bytes = b"") -> Tuple[int, Dict[str, object]]:
        """Route one request; always returns ``(status, json_doc)``."""
        try:
            return self._route(method, path, raw_body)
        except SchemaError as exc:
            return exc.status, exc.doc()
        except Exception as exc:  # noqa: BLE001 — no tracebacks on the wire
            return 500, error_doc("internal",
                                  f"{type(exc).__name__}: {exc}")

    def _route(self, method: str, path: str,
               raw_body: bytes) -> Tuple[int, Dict[str, object]]:
        path = path.split("?", 1)[0].rstrip("/") or "/"
        parts = [p for p in path.split("/") if p]

        if parts == ["v1", "evaluate"]:
            self._require(method, "POST", path)
            return self.handle_evaluate(self.parse_body(raw_body))
        if parts == ["v1", "sweep"]:
            self._require(method, "POST", path)
            return self.handle_sweep(self.parse_body(raw_body))
        if parts == ["v1", "experiment"]:
            self._require(method, "POST", path)
            return self.handle_experiment(self.parse_body(raw_body))
        if parts == ["v1", "jobs"]:
            self._require(method, "GET", path)
            return 200, self.jobs.list_doc()
        if len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            self._require(method, "GET", path)
            return self.handle_job_get(parts[2])
        if len(parts) == 4 and parts[:2] == ["v1", "jobs"] \
                and parts[3] in ("result", "trace", "cancel"):
            expected = "POST" if parts[3] == "cancel" else "GET"
            self._require(method, expected, path)
            handler = {"result": self.handle_job_result,
                       "trace": self.handle_job_trace,
                       "cancel": self.handle_job_cancel}[parts[3]]
            return handler(parts[2])
        if parts == ["v1", "health"]:
            self._require(method, "GET", path)
            return 200, {"schema": HEALTH_SCHEMA, "ok": True,
                         "version": __version__}
        if parts == ["v1", "stats"]:
            self._require(method, "GET", path)
            return 200, {"schema": STATS_SCHEMA,
                         "cache": self.cache.stats(),
                         "batching": self.queue.stats(),
                         "jobs": self.jobs.counts()}
        raise SchemaError("not-found", f"no such endpoint: {path}",
                          status=404)

    @staticmethod
    def _require(method: str, expected: str, path: str) -> None:
        if method != expected:
            raise SchemaError("method-not-allowed",
                              f"{path} requires {expected}, got {method}",
                              status=405)

    # -------------------------------------------------------------- handlers
    def handle_evaluate(self, body: object) -> Tuple[int, Dict[str, object]]:
        request = validate_evaluate_request(body)
        config = request["config"]
        key = config_key(config)
        trace_id = self.next_trace_id()
        tracer = Tracer(enabled=bool(request["trace"]))
        try:
            with use_tracer(tracer):
                with tracer.span("serve.request", endpoint="/v1/evaluate",
                                 trace_id=trace_id):
                    with tracer.span("serve.queue.wait"):
                        record, served, batch = self.queue.submit(key, config)
        except BatchTimeout as exc:
            raise SchemaError("batch-timeout", str(exc), status=503) from exc
        doc: Dict[str, object] = {
            "schema": EVALUATE_SCHEMA,
            "trace_id": trace_id,
            "key": key,
            "cache": served,
            "record": record,
            "batch": {"index": batch.get("index"),
                      "requests": batch.get("requests"),
                      "unique": batch.get("unique")},
        }
        if request["trace"]:
            doc["trace"] = {"spans": to_trace_events(tracer)["traceEvents"],
                            "batch_spans": batch.get("spans", [])}
        return 200, doc

    def handle_sweep(self, body: object) -> Tuple[int, Dict[str, object]]:
        request = validate_sweep_request(body)
        job = self.jobs.submit(
            "sweep", request, self.next_trace_id(),
            lambda j: _run_sweep_job(self, j))
        return 202, self._job_doc(job.id)

    def handle_experiment(self, body: object
                          ) -> Tuple[int, Dict[str, object]]:
        request = validate_experiment_request(body)
        job = self.jobs.submit(
            "experiment", request, self.next_trace_id(),
            lambda j: _run_experiment_job(self, j))
        return 202, self._job_doc(job.id)

    def handle_job_get(self, job_id: str) -> Tuple[int, Dict[str, object]]:
        return 200, self._job_doc(job_id)

    def handle_job_result(self, job_id: str
                          ) -> Tuple[int, Dict[str, object]]:
        snapshot = self.jobs.result_doc(job_id)
        if snapshot is None:
            raise SchemaError("not-found", f"no such job: {job_id}",
                              status=404)
        if snapshot["state"] == "done":
            return 200, {"schema": JOB_RESULT_SCHEMA, "id": job_id,
                         "result": snapshot["result"]}
        if snapshot["state"] == "failed":
            return 200, {"schema": JOB_RESULT_SCHEMA, "id": job_id,
                         "error": snapshot["error"]}
        raise SchemaError("not-finished",
                          f"job {job_id} is {snapshot['state']}; result "
                          "exists only for done/failed jobs", status=409)

    def handle_job_trace(self, job_id: str) -> Tuple[int, Dict[str, object]]:
        job = self._job(job_id)
        return 200, to_trace_events(job.tracer,
                                    process_name=f"repro-serve {job.id}")

    def handle_job_cancel(self, job_id: str
                          ) -> Tuple[int, Dict[str, object]]:
        outcome = self.jobs.cancel(job_id)
        if outcome is None:
            raise SchemaError("not-found", f"no such job: {job_id}",
                              status=404)
        if outcome != "cancelled":
            raise SchemaError("not-cancellable",
                              f"job {job_id} is {outcome}; only queued "
                              "jobs can be cancelled", status=409)
        return 200, {"schema": JOB_SCHEMA, "id": job_id, "state": "cancelled"}

    def _job_doc(self, job_id: str) -> Dict[str, object]:
        """A consistent job snapshot from the store, or a structured 404."""
        doc = self.jobs.doc(job_id)
        if doc is None:
            raise SchemaError("not-found", f"no such job: {job_id}",
                              status=404)
        return doc

    def _job(self, job_id: str) -> Job:
        """The live job — only for immutable fields (``tracer``, ``id``).

        Lifecycle state must come from :meth:`JobStore.doc` /
        :meth:`JobStore.result_doc`; reading it off the live object
        races (and R11 flags it).
        """
        job = self.jobs.get(job_id)
        if job is None:
            raise SchemaError("not-found", f"no such job: {job_id}",
                              status=404)
        return job

    # ------------------------------------------------------------- lifecycle
    def shutdown(self) -> None:
        self.queue.shutdown()
        self.jobs.shutdown(wait=False)


class _Handler(BaseHTTPRequestHandler):
    """http.server adapter over :meth:`ServeApp.dispatch`."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:          # noqa: N802 — http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:         # noqa: N802 — http.server API
        self._dispatch("POST")

    # Wrong-verb requests still get structured JSON 405s, never the
    # BaseHTTPRequestHandler HTML error page.
    def do_PUT(self) -> None:          # noqa: N802 — http.server API
        self._dispatch("PUT")

    def do_DELETE(self) -> None:       # noqa: N802 — http.server API
        self._dispatch("DELETE")

    def do_PATCH(self) -> None:        # noqa: N802 — http.server API
        self._dispatch("PATCH")

    def _dispatch(self, method: str) -> None:
        app: ServeApp = self.server.app  # type: ignore[attr-defined]
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        # Refuse to even read an oversized body: cap the read, let the
        # app's size check reject it structurally.
        raw = self.rfile.read(min(length, app.max_body_bytes + 1)) \
            if length > 0 else b""
        if length > len(raw):
            # Oversized body left unread on the socket: this connection
            # cannot be reused for another request.
            self.close_connection = True
        status, doc = app.dispatch(method, self.path, raw)
        payload = json.dumps(doc, indent=1, default=str).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        if isinstance(doc, dict) and "trace_id" in doc:
            self.send_header("X-Repro-Trace-Id", str(doc["trace_id"]))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)


class ServeServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the app (one thread per request)."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], app: ServeApp,
                 verbose: bool = False):
        super().__init__(address, _Handler)
        self.app = app
        self.verbose = verbose


def make_server(host: str = "127.0.0.1", port: int = 8321,
                app: Optional[ServeApp] = None,
                verbose: bool = False) -> ServeServer:
    """Bind a server (``port=0`` picks a free port; see ``server_port``)."""
    return ServeServer((host, port), app if app is not None else ServeApp(),
                       verbose=verbose)
