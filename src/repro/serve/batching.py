"""The coalescing batch queue behind ``POST /v1/evaluate``.

Evaluate requests arriving within one *batching window* are coalesced
into a **single sharded engine call** (:func:`repro.dse.engine.
evaluate_batch`): the first submission opens a window, every request
landing inside it joins the batch, identical configs (same content-hash
key) collapse to one evaluation, and each waiting client gets its own
copy of the record for its key.  The window closes after ``window_s``
seconds or when ``max_batch`` distinct requests are queued, whichever
comes first.

Correctness model: the per-point evaluator is a pure function of the
config (certified by lint rule R8) and the engine's cache is
content-hashed, so *when* a request is evaluated — alone, in a batch, or
served from cache — cannot change its bytes.  Batching only changes
latency and work, never results; ``tests/test_serve_differential.py``
and ``tests/test_serve_concurrency.py`` pin both halves of that claim.

The worker thread runs each batch under its own context-local tracer
(:func:`repro.obs.use_tracer`), so engine spans land on the batch, and
every client of the batch gets the same batch summary back without ever
touching another request's tracer.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

from ..core.concurrency import guarded_by, holds_no_locks
from ..dse.cache import DiskCache
from ..dse.engine import evaluate_batch
from ..obs import Tracer, summarize, use_tracer

#: Default batching window, seconds (25 ms: long enough to coalesce a
#: burst, short enough to stay interactive).
DEFAULT_WINDOW_S = 0.025

#: Default cap on requests per batch.
DEFAULT_MAX_BATCH = 256

#: Default bound on how long one submission waits for its record.  A
#: healthy batch completes in well under a second of queueing plus the
#: engine call; a minute means the worker thread died or wedged, and the
#: handler must return a structured 503 instead of hanging forever.
DEFAULT_SUBMIT_TIMEOUT_S = 60.0


class BatchTimeout(RuntimeError):
    """A submission's completion event never fired within the timeout."""


class _PendingRequest:
    """One waiting client: its keyed config and a completion event."""

    __slots__ = ("key", "config", "event", "record", "served", "batch")

    def __init__(self, key: str, config: Dict[str, object]):
        self.key = key
        self.config = config
        self.event = threading.Event()
        self.record: Optional[Dict[str, object]] = None
        self.served: Optional[str] = None
        self.batch: Optional[Dict[str, object]] = None


@guarded_by("_cond", "_pending", "_closed", "requests", "batches",
            "evaluated", "coalesced")
class BatchingQueue:
    """Coalesce evaluate requests into single cache-through engine calls.

    ``submit`` blocks the calling (request-handler) thread until its
    record is ready; one daemon worker thread drains windows.  All
    counters are cumulative and guarded by the queue lock:

    * ``requests`` — submissions accepted;
    * ``batches`` — engine calls made;
    * ``evaluated`` — distinct keys handed to the engine (after
      within-batch dedup, before the cache);
    * ``coalesced`` — requests that shared an engine call with at least
      one other request for the same key (``requests - sum(unique)``).
    """

    def __init__(self, cache: Optional[DiskCache] = None,
                 window_s: float = DEFAULT_WINDOW_S,
                 workers: int = 1,
                 max_batch: int = DEFAULT_MAX_BATCH,
                 submit_timeout_s: float = DEFAULT_SUBMIT_TIMEOUT_S):
        self.cache = cache
        self.window_s = max(0.0, window_s)
        self.workers = max(1, workers)
        self.max_batch = max(1, max_batch)
        self.submit_timeout_s = max(0.001, submit_timeout_s)
        self._cond = threading.Condition()
        self._pending: List[_PendingRequest] = []
        self._closed = False
        self.requests = 0
        self.batches = 0
        self.evaluated = 0
        self.coalesced = 0
        self._thread = threading.Thread(target=self._drain, daemon=True,
                                        name="repro-serve-batcher")
        self._thread.start()

    # ---------------------------------------------------------------- client
    @holds_no_locks(reason="parks the request-handler thread on the "
                           "completion event until the batch lands")
    def submit(self, key: str, config: Dict[str, object]
               ) -> Tuple[Dict[str, object], str, Dict[str, object]]:
        """Block until ``config`` (already normalized, content-keyed) is
        evaluated; returns ``(record, "hit"|"miss", batch_info)``.

        Raises :class:`BatchTimeout` when no record arrives within
        ``submit_timeout_s`` — a dead or wedged worker thread must
        surface as a structured 503, never strand the handler forever.
        """
        request = _PendingRequest(key, config)
        with self._cond:
            if self._closed:
                raise RuntimeError("batching queue is shut down")
            self._pending.append(request)
            self.requests += 1
            self._cond.notify_all()
        if not request.event.wait(timeout=self.submit_timeout_s):
            raise BatchTimeout(
                f"no batch served key {request.key} within "
                f"{self.submit_timeout_s:g}s — the batching worker is "
                "dead or wedged")
        if request.record is None:
            error = dict((request.batch or {}).get("error") or {})
            raise RuntimeError(
                "batch evaluation failed: "
                f"{error.get('type', 'unknown')}: {error.get('message', '')}")
        return request.record, request.served or "miss", request.batch or {}

    def stats(self) -> Dict[str, object]:
        with self._cond:
            return {"requests": self.requests, "batches": self.batches,
                    "evaluated": self.evaluated,
                    "coalesced": self.coalesced,
                    "window_s": self.window_s,
                    "max_batch": self.max_batch,
                    "submit_timeout_s": self.submit_timeout_s}

    # ---------------------------------------------------------------- worker
    def _drain(self) -> None:
        while True:
            batch = self._collect()
            if batch is None:
                return
            if batch:
                self._run_batch(batch)

    def _collect(self) -> Optional[List[_PendingRequest]]:
        """One window's worth of requests (None = queue shut down)."""
        with self._cond:
            while not self._pending and not self._closed:
                self._cond.wait()
            if not self._pending and self._closed:
                return None
            deadline = time.monotonic() + self.window_s
            while len(self._pending) < self.max_batch and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(timeout=remaining)
            batch = self._pending
            self._pending = []
            return batch

    def _run_batch(self, batch: List[_PendingRequest]) -> None:
        # Within-batch dedup by content key, first-arrival order.
        keyed: List[Tuple[str, Dict[str, object]]] = []
        seen: Dict[str, bool] = {}
        for request in batch:
            if request.key not in seen:
                seen[request.key] = True
                keyed.append((request.key, request.config))

        tracer = Tracer(enabled=True)
        try:
            with use_tracer(tracer):
                with tracer.span("serve.batch", requests=len(batch),
                                 unique=len(keyed)):
                    records, served = evaluate_batch(
                        keyed, workers=self.workers, cache=self.cache)
            failure: Optional[Dict[str, object]] = None
        except Exception as exc:  # noqa: BLE001 — waiters must be released
            records, served = {}, {}
            failure = {"type": type(exc).__name__, "message": str(exc)}

        with self._cond:
            self.batches += 1
            self.evaluated += len(keyed)
            self.coalesced += len(batch) - len(keyed)
            index = self.batches
        info = {
            "index": index,
            "requests": len(batch),
            "unique": len(keyed),
            "spans": summarize(tracer)["spans"],
        }
        if failure is not None:
            info = dict(info, error=failure)
        for request in batch:
            request.record = records.get(request.key)
            request.served = served.get(request.key)
            request.batch = info
            request.event.set()

    # ------------------------------------------------------------- lifecycle
    @holds_no_locks(reason="joins the worker thread")
    def shutdown(self) -> None:
        """Stop accepting work; drain what is queued; join the worker."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._thread.join(timeout=10)
