"""Request/response schemas for the ``repro.serve`` HTTP API.

Every request body is validated by a pure function in this module before
any work happens; every failure raises :class:`SchemaError`, which the
HTTP layer renders as a *structured* 4xx JSON document — a client never
sees a traceback.  The validators are ``@reentrant``-contracted: they are
part of the serve hot path the effect verifier (rule R8) certifies, and
their outputs are pure functions of the request body.

Validation is deliberately two-layered, mirroring the sweep engine:

* **shape** errors (non-object body, unknown/missing fields, uncoercible
  types — anything :func:`repro.dse.spec.normalize_config` rejects) are
  schema errors -> HTTP 4xx;
* **value** errors (a config that normalizes but names a nonsense
  pattern or device) flow through to evaluation and come back as the
  same per-config *error records* a sweep produces — byte-identical to
  the direct library call, which is what the differential suite pins.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Optional, Tuple

from ..core.effects import reentrant
from ..dse.spec import CONFIG_KEYS, PRESETS, SweepSpec, normalize_config

#: Schema tags stamped into response documents.
ERROR_SCHEMA = "repro.serve/error/1"
EVALUATE_SCHEMA = "repro.serve/evaluate/1"
JOB_SCHEMA = "repro.serve/job/1"
JOBS_SCHEMA = "repro.serve/jobs/1"
JOB_RESULT_SCHEMA = "repro.serve/job-result/1"
HEALTH_SCHEMA = "repro.serve/health/1"
STATS_SCHEMA = "repro.serve/stats/1"

#: Largest request body the server reads, in bytes (oversized -> 413).
MAX_BODY_BYTES = 1 << 20

#: Experiment names ``POST /v1/experiment`` accepts.
EXPERIMENT_NAMES = ("fig7", "fig8", "table2")

#: Sweep-overlay lever names (the SweepSpec fields a request may override).
SWEEP_LEVERS = ("patterns", "bus_bits", "mram_rows", "weight_bits",
                "devices")

#: Cap on per-request engine workers (one HTTP client must not be able to
#: fork an unbounded process pool on the server).
MAX_SWEEP_WORKERS = 16


class SchemaError(Exception):
    """A request that fails validation; carries the HTTP status + doc."""

    def __init__(self, code: str, message: str, status: int = 400,
                 field: Optional[str] = None):
        super().__init__(message)
        self.code = code
        self.status = status
        self.field = field

    def doc(self) -> Dict[str, object]:
        return error_doc(self.code, str(self), field=self.field)


@reentrant(reason="error documents must be a pure function of the "
                  "failure, so identical bad requests get identical "
                  "bodies")
def error_doc(code: str, message: str,
              field: Optional[str] = None) -> Dict[str, object]:
    """The structured error body every non-2xx response carries."""
    error: Dict[str, object] = {"code": code, "message": message}
    if field is not None:
        error["field"] = field
    return {"schema": ERROR_SCHEMA, "error": error}


def _require_object(value: object, what: str) -> Mapping[str, object]:
    if not isinstance(value, Mapping):
        raise SchemaError("bad-request",
                          f"{what} must be a JSON object, "
                          f"got {type(value).__name__}", field=what)
    return value


def _reject_unknown(body: Mapping[str, object], allowed: Tuple[str, ...],
                    what: str) -> None:
    unknown = sorted(k for k in body if k not in allowed)
    if unknown:
        raise SchemaError(
            "unknown-field",
            f"unknown {what} field(s): {', '.join(unknown)} "
            f"(allowed: {', '.join(allowed)})", field=unknown[0])


def _bool_field(body: Mapping[str, object], name: str,
                default: bool = False) -> bool:
    value = body.get(name, default)
    if not isinstance(value, bool):
        raise SchemaError("bad-request",
                          f"{name!r} must be a boolean, "
                          f"got {type(value).__name__}", field=name)
    return value


@reentrant(reason="the evaluate handler's input contract: normalization "
                  "must match what a direct library call would do, or "
                  "the differential guarantee is void")
def validate_evaluate_request(body: object) -> Dict[str, object]:
    """Normalize a ``POST /v1/evaluate`` body.

    Returns ``{"config": <normalized config>, "trace": bool}``.  The
    config is normalized with the *same* ``normalize_config`` the sweep
    engine and cache key use, so shape failures here are exactly the
    configs ``run_sweep`` would refuse up front.
    """
    request = _require_object(body, "request")
    _reject_unknown(request, ("config", "trace"), "request")
    if "config" not in request:
        raise SchemaError("bad-request", "request needs a 'config' object",
                          field="config")
    config = _require_object(request["config"], "config")
    _reject_unknown(config, CONFIG_KEYS, "config")
    try:
        normalized = normalize_config(config)
    except (ValueError, TypeError) as exc:
        raise SchemaError("bad-config", f"config does not normalize: {exc}",
                          field="config") from exc
    return {"config": normalized,
            "trace": _bool_field(request, "trace")}


@reentrant(reason="sweep submissions must map to the same SweepSpec a "
                  "CLI invocation with the same levers would build")
def validate_sweep_request(body: object) -> Dict[str, object]:
    """Normalize a ``POST /v1/sweep`` body.

    Shape: ``{"preset": "smoke", "overrides": {lever: [...]}, "workers":
    1, "records": false}`` — the preset names a base
    :class:`~repro.dse.spec.SweepSpec` and the overlay replaces whole
    levers, exactly like the ``python -m repro.dse`` flags.
    """
    request = _require_object(body, "request")
    _reject_unknown(request, ("preset", "overrides", "workers", "records"),
                    "request")
    preset = request.get("preset", "smoke")
    if not isinstance(preset, str) or preset not in PRESETS:
        raise SchemaError("bad-request",
                          f"unknown preset {preset!r} "
                          f"(known: {', '.join(sorted(PRESETS))})",
                          field="preset")
    overrides = _require_object(request.get("overrides", {}), "overrides")
    _reject_unknown(overrides, SWEEP_LEVERS, "overrides")
    clean_overrides: Dict[str, object] = {}
    for lever in SWEEP_LEVERS:
        if lever not in overrides:
            continue
        values = overrides[lever]
        if not isinstance(values, (list, tuple)) or not values:
            raise SchemaError("bad-request",
                              f"override {lever!r} must be a non-empty "
                              "array", field=lever)
        clean_overrides[lever] = list(values)
    workers = request.get("workers", 1)
    if not isinstance(workers, int) or isinstance(workers, bool) \
            or not 1 <= workers <= MAX_SWEEP_WORKERS:
        raise SchemaError("bad-request",
                          f"'workers' must be an integer in "
                          f"1..{MAX_SWEEP_WORKERS}", field="workers")
    normalized = {"preset": preset, "overrides": clean_overrides,
                  "workers": workers,
                  "records": _bool_field(request, "records")}
    build_sweep_spec(normalized)      # raises SchemaError on bad levers
    return normalized


@reentrant(reason="the job runner rebuilds the spec from the stored "
                  "request doc; both sides must construct identically")
def build_sweep_spec(request: Mapping[str, object]) -> SweepSpec:
    """The :class:`SweepSpec` a normalized sweep request names."""
    spec = PRESETS[str(request["preset"])]
    overrides = dict(request.get("overrides") or {})
    if not overrides:
        return spec
    try:
        return dataclasses.replace(
            spec, **{k: tuple(v) for k, v in sorted(overrides.items())})
    except (ValueError, TypeError) as exc:
        raise SchemaError("bad-config",
                          f"sweep overrides do not form a valid spec: "
                          f"{exc}", field="overrides") from exc


@reentrant(reason="experiment requests are a closed enum; normalization "
                  "is a pure lookup")
def validate_experiment_request(body: object) -> Dict[str, object]:
    """Normalize a ``POST /v1/experiment`` body.

    Shape: ``{"experiment": "fig7" | "fig8" | "table2"}``.
    """
    request = _require_object(body, "request")
    _reject_unknown(request, ("experiment",), "request")
    experiment = request.get("experiment")
    if not isinstance(experiment, str) or experiment not in EXPERIMENT_NAMES:
        raise SchemaError("bad-request",
                          f"'experiment' must be one of "
                          f"{', '.join(EXPERIMENT_NAMES)}",
                          field="experiment")
    return {"experiment": experiment}
