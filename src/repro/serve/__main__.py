"""``python -m repro.serve`` — run the simulation service.

.. code-block:: bash

    python -m repro.serve --port 8321                 # default cache
    python -m repro.serve --port 0                    # pick a free port
    python -m repro.serve --window-ms 50 --workers 4  # wider batches
    python -m repro.serve --no-cache                  # always recompute

    curl -s -X POST localhost:8321/v1/evaluate -d '{
      "config": {"pattern": "1:8", "bus_bits": 128, "mram_rows": 1024,
                 "weight_bits": 8, "device": "nominal"}}'
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..dse.cache import DEFAULT_CACHE_DIR, DiskCache, NullCache
from .api import ROUTES, ServeApp, make_server


def build_app(args: argparse.Namespace) -> ServeApp:
    if args.no_cache:
        cache: DiskCache = NullCache()
    else:
        cache = DiskCache(args.cache_dir, refresh=args.refresh)
    return ServeApp(cache=cache,
                    window_s=args.window_ms / 1000.0,
                    engine_workers=args.workers,
                    job_workers=args.job_workers,
                    max_jobs=args.max_jobs)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Async batched simulation-as-a-service over the DSE "
                    "engine and the experiment harness (stdlib-only "
                    "HTTP/JSON API).")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8321,
                        help="bind port; 0 picks a free one (default: 8321)")
    parser.add_argument("--window-ms", type=float, default=25.0,
                        metavar="MS",
                        help="evaluate-batching window in milliseconds "
                             "(default: 25)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="engine worker processes per coalesced batch "
                             "(default: 1)")
    parser.add_argument("--job-workers", type=int, default=2, metavar="N",
                        help="concurrent sweep/experiment jobs (default: 2)")
    parser.add_argument("--max-jobs", type=int, default=1024, metavar="N",
                        help="job-registry bound; oldest finished jobs are "
                             "pruned beyond it (default: 1024)")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        metavar="DIR",
                        help=f"record cache root, shared with python -m "
                             f"repro.dse (default: {DEFAULT_CACHE_DIR})")
    parser.add_argument("--no-cache", action="store_true",
                        help="neither read nor write the record cache")
    parser.add_argument("--refresh", action="store_true",
                        help="ignore cached records but refill the cache")
    parser.add_argument("--verbose", action="store_true",
                        help="log every request to stderr")
    args = parser.parse_args(argv)

    app = build_app(args)
    server = make_server(args.host, args.port, app, verbose=args.verbose)
    host, port = server.server_address[:2]
    print(f"repro.serve listening on http://{host}:{port}  "
          f"(cache: {app.cache.stats()['root'] if app.cache.enabled else 'off'}, "
          f"window: {args.window_ms:g} ms)", flush=True)
    for method, path, summary in ROUTES:
        print(f"  {method:4s} {path:24s} {summary}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down", file=sys.stderr)
    finally:
        server.shutdown()
        server.server_close()
        app.shutdown()
    return 0


if __name__ == "__main__":
    sys.exit(main())
