"""Reverse-mode automatic differentiation over numpy arrays.

This module is the foundation of the training substrate used to reproduce the
algorithm side of the paper (N:M sparse Rep-Net continual learning).  It
implements a small but complete autograd engine: each :class:`Tensor` wraps a
``numpy.ndarray`` and records the operation that produced it, so that
``Tensor.backward`` can propagate gradients through arbitrary DAGs of the
supported operations.

Design notes
------------
* Gradients are accumulated into ``Tensor.grad`` (a plain ndarray), mirroring
  the PyTorch convention used by the paper's training recipes.
* Broadcasting is fully supported; :func:`unbroadcast` folds gradients back to
  the shape of the broadcast operand.
* Only float64/float32 tensors participate in autograd.  Integer tensors are
  allowed as data carriers (e.g. labels, sparse indices) but never require
  gradients.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

Arrayish = Union["Tensor", np.ndarray, float, int, list, tuple]

#: Default dtype for parameters and factory functions.  float32 halves memory
#: traffic in the conv-heavy training loops; gradient-check tests override it
#: per-parameter with float64 where tight numerical agreement is required.
DEFAULT_DTYPE = np.float32


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast dimensions.

    Numpy broadcasting either prepends new axes or stretches size-1 axes; the
    adjoint of both is a sum along the corresponding axes.
    """
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along stretched (size-1) axes.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: Arrayish, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    arr = np.asarray(value, dtype=dtype)
    if dtype is None and arr.dtype == np.float16:
        arr = arr.astype(np.float32)
    return arr


def astensor(value: Arrayish) -> "Tensor":
    """Coerce any array-like value to a :class:`Tensor` (no copy if already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


class Tensor:
    """A numpy-backed tensor with reverse-mode autograd.

    Parameters
    ----------
    data:
        Anything ``np.asarray`` accepts.  Floating point data defaults to
        ``float64`` unless an explicit dtype is embedded in the input.
    requires_grad:
        Whether gradients should be accumulated for this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")
    __array_priority__ = 100.0  # ensure ndarray.__mul__ defers to Tensor

    def __init__(self, data: Arrayish, requires_grad: bool = False, name: str = ""):
        self.data = _as_array(data)
        if requires_grad and not np.issubdtype(self.data.dtype, np.floating):
            raise TypeError(
                f"only floating point tensors can require gradients, got {self.data.dtype}"
            )
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._backward = None
        self._prev: Tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------ meta
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_flag})"

    def item(self) -> float:
        return self.data.item()

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def astype(self, dtype) -> "Tensor":
        out = Tensor(self.data.astype(dtype))
        return out

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------- graph ops
    def _make_child(self, data: np.ndarray, parents: Sequence["Tensor"]) -> "Tensor":
        requires = any(p.requires_grad for p in parents) and not no_grad.active()
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._prev = tuple(parents)
        return out

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to ones (so ``loss.backward()`` works for scalars and
        acts as a sum-of-outputs seed otherwise).
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"seed gradient shape {grad.shape} != tensor shape {self.data.shape}"
                )

        # Topological order over the DAG reachable from self.
        topo: list[Tensor] = []
        visited = set()
        stack: list[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------ arithmetic
    def __add__(self, other: Arrayish) -> "Tensor":
        other = astensor(other)
        out = self._make_child(self.data + other.data, (self, other))
        if out.requires_grad:
            def _backward(g: np.ndarray) -> None:
                if self.requires_grad:
                    self._accumulate(unbroadcast(g, self.shape))
                if other.requires_grad:
                    other._accumulate(unbroadcast(g, other.shape))
            out._backward = _backward
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = self._make_child(-self.data, (self,))
        if out.requires_grad:
            def _backward(g: np.ndarray) -> None:
                self._accumulate(-g)
            out._backward = _backward
        return out

    def __sub__(self, other: Arrayish) -> "Tensor":
        return self + (-astensor(other))

    def __rsub__(self, other: Arrayish) -> "Tensor":
        return astensor(other) + (-self)

    def __mul__(self, other: Arrayish) -> "Tensor":
        other = astensor(other)
        out = self._make_child(self.data * other.data, (self, other))
        if out.requires_grad:
            def _backward(g: np.ndarray) -> None:
                if self.requires_grad:
                    self._accumulate(unbroadcast(g * other.data, self.shape))
                if other.requires_grad:
                    other._accumulate(unbroadcast(g * self.data, other.shape))
            out._backward = _backward
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: Arrayish) -> "Tensor":
        other = astensor(other)
        out = self._make_child(self.data / other.data, (self, other))
        if out.requires_grad:
            def _backward(g: np.ndarray) -> None:
                if self.requires_grad:
                    self._accumulate(unbroadcast(g / other.data, self.shape))
                if other.requires_grad:
                    other._accumulate(
                        unbroadcast(-g * self.data / (other.data ** 2), other.shape)
                    )
            out._backward = _backward
        return out

    def __rtruediv__(self, other: Arrayish) -> "Tensor":
        return astensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out = self._make_child(self.data ** exponent, (self,))
        if out.requires_grad:
            def _backward(g: np.ndarray) -> None:
                self._accumulate(g * exponent * self.data ** (exponent - 1))
            out._backward = _backward
        return out

    def __matmul__(self, other: Arrayish) -> "Tensor":
        other = astensor(other)
        out = self._make_child(self.data @ other.data, (self, other))
        if out.requires_grad:
            def _backward(g: np.ndarray) -> None:
                a, b = self.data, other.data
                if self.requires_grad:
                    if b.ndim == 1:
                        ga = np.outer(g, b) if a.ndim == 2 else g[..., None] * b
                    elif a.ndim == 1:
                        ga = g @ b.swapaxes(-1, -2)
                    else:
                        ga = g @ b.swapaxes(-1, -2)
                    self._accumulate(unbroadcast(ga.reshape(a.shape) if ga.shape != a.shape and ga.size == a.size else ga, a.shape))
                if other.requires_grad:
                    if a.ndim == 1:
                        gb = np.outer(a, g) if b.ndim == 2 else a[..., None] * g
                    elif b.ndim == 1:
                        gb = (a.swapaxes(-1, -2) @ g[..., None])[..., 0] if a.ndim > 2 else a.swapaxes(-1, -2) @ g
                    else:
                        gb = a.swapaxes(-1, -2) @ g
                    other._accumulate(unbroadcast(gb.reshape(b.shape) if gb.shape != b.shape and gb.size == b.size else gb, b.shape))
            out._backward = _backward
        return out

    # ---------------------------------------------------------- elementwise
    def exp(self) -> "Tensor":
        out = self._make_child(np.exp(self.data), (self,))
        if out.requires_grad:
            def _backward(g: np.ndarray) -> None:
                self._accumulate(g * out.data)
            out._backward = _backward
        return out

    def log(self) -> "Tensor":
        out = self._make_child(np.log(self.data), (self,))
        if out.requires_grad:
            def _backward(g: np.ndarray) -> None:
                self._accumulate(g / self.data)
            out._backward = _backward
        return out

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        out = self._make_child(np.tanh(self.data), (self,))
        if out.requires_grad:
            def _backward(g: np.ndarray) -> None:
                self._accumulate(g * (1.0 - out.data ** 2))
            out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        out = self._make_child(1.0 / (1.0 + np.exp(-self.data)), (self,))
        if out.requires_grad:
            def _backward(g: np.ndarray) -> None:
                self._accumulate(g * out.data * (1.0 - out.data))
            out._backward = _backward
        return out

    def relu(self) -> "Tensor":
        out = self._make_child(np.maximum(self.data, 0.0), (self,))
        if out.requires_grad:
            mask = self.data > 0
            def _backward(g: np.ndarray) -> None:
                self._accumulate(g * mask)
            out._backward = _backward
        return out

    def abs(self) -> "Tensor":
        out = self._make_child(np.abs(self.data), (self,))
        if out.requires_grad:
            sign = np.sign(self.data)
            def _backward(g: np.ndarray) -> None:
                self._accumulate(g * sign)
            out._backward = _backward
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        out = self._make_child(np.clip(self.data, low, high), (self,))
        if out.requires_grad:
            mask = (self.data >= low) & (self.data <= high)
            def _backward(g: np.ndarray) -> None:
                self._accumulate(g * mask)
            out._backward = _backward
        return out

    # ------------------------------------------------------------ reductions
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self._make_child(self.data.sum(axis=axis, keepdims=keepdims), (self,))
        if out.requires_grad:
            def _backward(g: np.ndarray) -> None:
                grad = g
                if axis is not None and not keepdims:
                    axes = axis if isinstance(axis, tuple) else (axis,)
                    axes = tuple(a % self.ndim for a in axes)
                    grad = np.expand_dims(grad, axis=tuple(sorted(axes)))
                self._accumulate(np.broadcast_to(grad, self.shape).astype(self.dtype))
            out._backward = _backward
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.size if axis is None else np.prod(
            [self.shape[a % self.ndim] for a in (axis if isinstance(axis, tuple) else (axis,))]
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(count))

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        out = self._make_child(out_data, (self,))
        if out.requires_grad:
            def _backward(g: np.ndarray) -> None:
                grad = g
                ref = out.data
                if axis is not None and not keepdims:
                    axes = axis if isinstance(axis, tuple) else (axis,)
                    axes = tuple(sorted(a % self.ndim for a in axes))
                    grad = np.expand_dims(grad, axis=axes)
                    ref = np.expand_dims(ref, axis=axes)
                mask = (self.data == ref)
                # Split gradient equally among ties, matching numerical tests.
                counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
                self._accumulate(np.broadcast_to(grad, self.shape) * mask / counts)
            out._backward = _backward
        return out

    # --------------------------------------------------------------- shaping
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = self._make_child(self.data.reshape(shape), (self,))
        if out.requires_grad:
            def _backward(g: np.ndarray) -> None:
                self._accumulate(g.reshape(self.shape))
            out._backward = _backward
        return out

    def flatten(self, start_dim: int = 0) -> "Tensor":
        lead = self.shape[:start_dim]
        return self.reshape(lead + (-1,))

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out = self._make_child(self.data.transpose(axes), (self,))
        if out.requires_grad:
            inverse = tuple(np.argsort(axes))
            def _backward(g: np.ndarray) -> None:
                self._accumulate(g.transpose(inverse))
            out._backward = _backward
        return out

    def __getitem__(self, idx) -> "Tensor":
        out = self._make_child(self.data[idx], (self,))
        if out.requires_grad:
            def _backward(g: np.ndarray) -> None:
                full = np.zeros_like(self.data)
                np.add.at(full, idx, g)
                self._accumulate(full)
            out._backward = _backward
        return out

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two (spatial) dimensions symmetrically."""
        if padding == 0:
            return self
        pads = [(0, 0)] * (self.ndim - 2) + [(padding, padding), (padding, padding)]
        out = self._make_child(np.pad(self.data, pads), (self,))
        if out.requires_grad:
            def _backward(g: np.ndarray) -> None:
                sl = (Ellipsis, slice(padding, -padding), slice(padding, -padding))
                self._accumulate(g[sl])
            out._backward = _backward
        return out

    # ----------------------------------------------------------- comparisons
    def __gt__(self, other: Arrayish) -> np.ndarray:
        return self.data > _as_array(other)

    def __lt__(self, other: Arrayish) -> np.ndarray:
        return self.data < _as_array(other)

    def argmax(self, axis=None) -> np.ndarray:
        return self.data.argmax(axis=axis)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing to each input."""
    tensors = [astensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    requires = any(t.requires_grad for t in tensors) and not no_grad.active()
    out = Tensor(data, requires_grad=requires)
    if requires:
        out._prev = tuple(tensors)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)
        def _backward(g: np.ndarray) -> None:
            for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if t.requires_grad:
                    sl = [slice(None)] * g.ndim
                    sl[axis] = slice(start, stop)
                    t._accumulate(g[tuple(sl)])
        out._backward = _backward
    return out


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    tensors = [astensor(t) for t in tensors]
    expanded = [t.reshape(t.shape[:axis] + (1,) + t.shape[axis:]) for t in tensors]
    return concatenate(expanded, axis=axis)


def zeros(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)


#: Seed of the fallback Generator :func:`randn` builds when no ``rng`` is
#: passed.  Library code must be reproducible by default (R4): an unseeded
#: Generator would make every bare ``randn`` call unrepeatable.  Note the
#: fallback is *fresh per call* — two bare calls return identical tensors;
#: pass an ``rng`` to draw a stream.
RANDN_FALLBACK_SEED: int = 0


def randn(*shape, rng: Optional[np.random.Generator] = None,
          requires_grad: bool = False) -> Tensor:
    rng = rng or np.random.default_rng(RANDN_FALLBACK_SEED)
    return Tensor(rng.standard_normal(shape), requires_grad=requires_grad)


class no_grad:
    """Context manager that marks a region as gradient-free.

    The engine builds graphs only from ``requires_grad`` tensors, so this is a
    lightweight switch that detaches module parameters on entry.  It exists to
    mirror the familiar API; evaluation loops in this codebase use it to make
    intent explicit and to skip graph construction costs.
    """

    _active = 0

    def __enter__(self):
        no_grad._active += 1
        return self

    def __exit__(self, *exc):
        no_grad._active -= 1
        return False

    @staticmethod
    def active() -> bool:
        return no_grad._active > 0
