"""Weight initialization strategies.

The layers default to Kaiming-uniform (matching their ReLU-heavy usage);
this module provides the full standard family for experiments that need a
different variance budget — notably the Rep-Net adaptor ablations, where a
near-zero final-projection init ("zero-init residual") makes the freshly
attached path start as an identity perturbation.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from .modules import Conv2d, Linear, Module, Parameter

#: Seed of the fallback Generator every initializer builds when called
#: without an explicit ``rng``.  The fallback exists so ad-hoc scripts get
#: reproducible weights by default; note it is constructed *fresh per
#: call*, so two bare calls to the same initializer produce identical
#: draws.  Experiments that need independent streams must pass their own
#: seeded ``np.random.Generator`` (the harness configs all do).
DEFAULT_INIT_SEED: int = 0


def _fan_in_out(param: Parameter) -> Tuple[int, int]:
    shape = param.shape
    if len(shape) == 2:                       # Linear: (out, in)
        return shape[1], shape[0]
    if len(shape) == 4:                       # Conv: (out, in, kh, kw)
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"cannot infer fans for shape {shape}")


def kaiming_uniform_(param: Parameter,
                     rng: Optional[np.random.Generator] = None) -> None:
    """He/Kaiming uniform: U(-sqrt(6/fan_in), +sqrt(6/fan_in))."""
    rng = rng or np.random.default_rng(DEFAULT_INIT_SEED)
    fan_in, _ = _fan_in_out(param)
    bound = math.sqrt(6.0 / fan_in)
    param.data = rng.uniform(-bound, bound, size=param.shape).astype(
        param.dtype)


def kaiming_normal_(param: Parameter,
                    rng: Optional[np.random.Generator] = None) -> None:
    """He/Kaiming normal: N(0, 2/fan_in)."""
    rng = rng or np.random.default_rng(DEFAULT_INIT_SEED)
    fan_in, _ = _fan_in_out(param)
    std = math.sqrt(2.0 / fan_in)
    param.data = (rng.standard_normal(param.shape) * std).astype(param.dtype)


def xavier_uniform_(param: Parameter,
                    rng: Optional[np.random.Generator] = None) -> None:
    """Glorot uniform: U(+-sqrt(6/(fan_in+fan_out)))."""
    rng = rng or np.random.default_rng(DEFAULT_INIT_SEED)
    fan_in, fan_out = _fan_in_out(param)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    param.data = rng.uniform(-bound, bound, size=param.shape).astype(
        param.dtype)


def xavier_normal_(param: Parameter,
                   rng: Optional[np.random.Generator] = None) -> None:
    """Glorot normal: N(0, 2/(fan_in+fan_out))."""
    rng = rng or np.random.default_rng(DEFAULT_INIT_SEED)
    fan_in, fan_out = _fan_in_out(param)
    std = math.sqrt(2.0 / (fan_in + fan_out))
    param.data = (rng.standard_normal(param.shape) * std).astype(param.dtype)


def orthogonal_(param: Parameter,
                rng: Optional[np.random.Generator] = None,
                gain: float = 1.0) -> None:
    """Orthogonal init (QR of a Gaussian matrix), gain-scaled."""
    rng = rng or np.random.default_rng(DEFAULT_INIT_SEED)
    shape = param.shape
    flat = (shape[0], int(np.prod(shape[1:])))
    a = rng.standard_normal(flat)
    q, r = np.linalg.qr(a.T if flat[0] < flat[1] else a)
    q = q.T if flat[0] < flat[1] else q
    q = q[:flat[0], :flat[1]]
    # sign-correct so the distribution is uniform over orthogonal matrices
    d = np.sign(np.diag(r))
    d[d == 0] = 1.0
    q = q * d[:q.shape[1]][None, :] if q.shape[1] == len(d) else q
    param.data = (gain * q.reshape(shape)).astype(param.dtype)


def zeros_(param: Parameter) -> None:
    """Zero init — for 'identity-start' residual/adaptor projections."""
    param.data = np.zeros(param.shape, dtype=param.dtype)


def constant_(param: Parameter, value: float) -> None:
    param.data = np.full(param.shape, value, dtype=param.dtype)


def init_model(model: Module, strategy: str = "kaiming_uniform",
               rng: Optional[np.random.Generator] = None) -> None:
    """Re-initialize every Linear/Conv2d weight of ``model``.

    ``strategy``: one of kaiming_uniform, kaiming_normal, xavier_uniform,
    xavier_normal, orthogonal.  Biases are zeroed.
    """
    fns = {
        "kaiming_uniform": kaiming_uniform_,
        "kaiming_normal": kaiming_normal_,
        "xavier_uniform": xavier_uniform_,
        "xavier_normal": xavier_normal_,
        "orthogonal": orthogonal_,
    }
    if strategy not in fns:
        raise ValueError(f"unknown strategy {strategy!r}; "
                         f"choose from {sorted(fns)}")
    rng = rng or np.random.default_rng(DEFAULT_INIT_SEED)
    fn = fns[strategy]
    for _, mod in model.named_modules():
        if isinstance(mod, (Linear, Conv2d)):
            fn(mod.weight, rng)
            if mod.bias is not None:
                zeros_(mod.bias)
