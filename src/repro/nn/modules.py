"""Layer/module system: composable building blocks with named parameters.

Mirrors the familiar ``torch.nn`` layout closely enough that the paper's
Rep-Net recipe translates directly, while staying small and explicit.  Every
module tracks its :class:`Parameter` tensors so optimizers, the N:M pruner and
the INT8 quantizer can discover them by name.
"""

from __future__ import annotations

import math
import pickle
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import functional as F
from .tensor import DEFAULT_DTYPE, Tensor, no_grad


class Parameter(Tensor):
    """A trainable tensor.  ``trainable=False`` freezes it (backbone weights)."""

    __slots__ = ("trainable",)

    def __init__(self, data, trainable: bool = True):
        super().__init__(np.asarray(data, dtype=DEFAULT_DTYPE), requires_grad=trainable)
        self.trainable = trainable

    def freeze(self) -> None:
        self.trainable = False
        self.requires_grad = False
        self.grad = None

    def unfreeze(self) -> None:
        self.trainable = True
        self.requires_grad = True


class Module:
    """Base class: tracks sub-modules and parameters by attribute name."""

    def __init__(self):
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------- traversal
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, p in self._parameters.items():
            yield (prefix + name, p)
        for name, mod in self._modules.items():
            yield from mod.named_parameters(prefix + name + ".")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def trainable_parameters(self) -> List[Parameter]:
        return [p for p in self.parameters() if p.trainable]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for name, mod in self._modules.items():
            yield from mod.named_modules(prefix + name + ".")

    def modules(self) -> List["Module"]:
        return [m for _, m in self.named_modules()]

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    def num_parameters(self, trainable_only: bool = False) -> int:
        params = self.trainable_parameters() if trainable_only else self.parameters()
        return int(sum(p.size for p in params))

    # ----------------------------------------------------------------- modes
    def train(self) -> "Module":
        object.__setattr__(self, "training", True)
        for m in self._modules.values():
            m.train()
        return self

    def eval(self) -> "Module":
        object.__setattr__(self, "training", False)
        for m in self._modules.values():
            m.eval()
        return self

    def freeze(self) -> "Module":
        """Freeze every parameter (used for the fixed backbone on MRAM PEs)."""
        for p in self.parameters():
            p.freeze()
        return self

    def unfreeze(self) -> "Module":
        for p in self.parameters():
            p.unfreeze()
        return self

    # ------------------------------------------------------------------ call
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------ state dict
    def state_dict(self) -> Dict[str, np.ndarray]:
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        for name, mod in self.named_modules():
            if isinstance(mod, BatchNorm2d):
                key = (name + ".") if name else ""
                state[key + "running_mean"] = mod.running_mean.copy()
                state[key + "running_var"] = mod.running_var.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        for name, value in state.items():
            if name in params:
                if params[name].shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: {params[name].shape} vs {value.shape}"
                    )
                params[name].data = value.copy()
        for name, mod in self.named_modules():
            if isinstance(mod, BatchNorm2d):
                key = (name + ".") if name else ""
                if key + "running_mean" in state:
                    mod.running_mean = state[key + "running_mean"].copy()
                    mod.running_var = state[key + "running_var"].copy()

    def save(self, path: str) -> None:
        with open(path, "wb") as f:
            pickle.dump(self.state_dict(), f)

    def load(self, path: str) -> None:
        with open(path, "rb") as f:
            self.load_state_dict(pickle.load(f))


# ------------------------------------------------------------------- layers
def _kaiming_uniform(shape: Tuple[int, ...], fan_in: int,
                     rng: np.random.Generator) -> np.ndarray:
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


_default_rng = np.random.default_rng(0)


def set_seed(seed: int) -> None:
    """Reset the global initialisation RNG (tests/experiments call this)."""
    global _default_rng
    _default_rng = np.random.default_rng(seed)


class Linear(Module):
    """Fully connected layer ``y = x @ W.T + b`` with Kaiming-uniform init."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or _default_rng
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(_kaiming_uniform((out_features, in_features), in_features, rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self):
        return f"Linear({self.in_features}, {self.out_features})"


class Conv2d(Module):
    """2D convolution layer; its flattened weight matrix is the PIM mapping unit."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or _default_rng
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            _kaiming_uniform((out_channels, in_channels, kernel_size, kernel_size),
                             fan_in, rng))
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride,
                        padding=self.padding)

    def weight_matrix(self) -> np.ndarray:
        """GEMM view of the kernel: ``(out_channels, in_channels*k*k)``."""
        return self.weight.data.reshape(self.out_channels, -1)

    def __repr__(self):
        return (f"Conv2d({self.in_channels}, {self.out_channels}, "
                f"k={self.kernel_size}, s={self.stride}, p={self.padding})")


class BatchNorm2d(Module):
    """Batch normalisation over ``(N, C, H, W)`` with running statistics."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))
        self.running_mean = np.zeros(num_features, dtype=DEFAULT_DTYPE)
        self.running_var = np.ones(num_features, dtype=DEFAULT_DTYPE)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects (N,C,H,W), got {x.shape}")
        if self.training and not no_grad.active():
            mean = x.data.mean(axis=(0, 2, 3), dtype=np.float64).astype(self.running_mean.dtype)
            var = x.data.var(axis=(0, 2, 3), dtype=np.float64).astype(self.running_var.dtype)
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * mean
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * var
            mu = x.mean(axis=(0, 2, 3), keepdims=True)
            centered = x - mu
            v = (centered * centered).mean(axis=(0, 2, 3), keepdims=True)
            xhat = centered / (v + self.eps) ** 0.5
        else:
            mu = self.running_mean.reshape(1, -1, 1, 1)
            v = self.running_var.reshape(1, -1, 1, 1)
            xhat = (x - Tensor(mu)) / Tensor(np.sqrt(v + self.eps).astype(mu.dtype))
        w = self.weight.reshape(1, -1, 1, 1)
        b = self.bias.reshape(1, -1, 1, 1)
        return xhat * w + b

    def __repr__(self):
        return f"BatchNorm2d({self.num_features})"


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self):
        return "ReLU()"


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self):
        return f"MaxPool2d(k={self.kernel_size}, s={self.stride})"


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self):
        return f"AvgPool2d(k={self.kernel_size}, s={self.stride})"


class GlobalAvgPool2d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)

    def __repr__(self):
        return "GlobalAvgPool2d()"


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(start_dim=1)

    def __repr__(self):
        return "Flatten()"


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        mask = (self.rng.random(x.shape) >= self.p) / (1.0 - self.p)
        return x * Tensor(mask)

    def __repr__(self):
        return f"Dropout(p={self.p})"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            setattr(self, f"layer{i}", layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __getitem__(self, idx: int) -> Module:
        return self.layers[idx]

    def __len__(self) -> int:
        return len(self.layers)

    def __repr__(self):
        inner = ", ".join(repr(l) for l in self.layers)
        return f"Sequential({inner})"
