"""Neural-network functional primitives built on the autograd :class:`Tensor`.

Convolution is implemented with an explicit im2col/col2im pair, which is both
the fastest pure-numpy formulation and exactly the lowering the accelerator
model uses: a convolution becomes a GEMM whose weight matrix is what gets
N:M-sparsified, CSC-compressed and mapped onto the PIM PEs
(see :mod:`repro.core.mapper`).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .tensor import Tensor, astensor, unbroadcast


# --------------------------------------------------------------------- im2col
def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window sweep."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution produces empty output: size={size} kernel={kernel} "
            f"stride={stride} padding={padding}"
        )
    return out


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, padding: int) -> np.ndarray:
    """Rearrange image patches into columns.

    Parameters
    ----------
    x: ``(N, C, H, W)`` input batch.

    Returns
    -------
    ``(N * OH * OW, C * KH * KW)`` patch matrix.
    """
    n, c, h, w = x.shape
    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(w, kw, stride, padding)
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride]            # (n, c, oh, ow, kh, kw)
    return windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * oh * ow, c * kh * kw)


def col2im(cols: np.ndarray, x_shape: Tuple[int, int, int, int],
           kh: int, kw: int, stride: int, padding: int) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back into an image."""
    n, c, h, w = x_shape
    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(w, kw, stride, padding)
    cols = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for i in range(kh):
        i_max = i + stride * oh
        for j in range(kw):
            j_max = j + stride * ow
            padded[:, :, i:i_max:stride, j:j_max:stride] += cols[:, :, i, j, :, :]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


# ---------------------------------------------------------------- convolution
def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: int = 1, padding: int = 0) -> Tensor:
    """2D convolution, ``x (N,C,H,W)`` * ``weight (F,C,KH,KW)`` -> ``(N,F,OH,OW)``."""
    x = astensor(x)
    weight = astensor(weight)
    n, c, h, w = x.shape
    f, wc, kh, kw = weight.shape
    if wc != c:
        raise ValueError(f"channel mismatch: input has {c}, weight expects {wc}")
    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(w, kw, stride, padding)

    cols = im2col(x.data, kh, kw, stride, padding)            # (N*OH*OW, C*KH*KW)
    wmat = weight.data.reshape(f, -1)                          # (F, C*KH*KW)
    out_data = cols @ wmat.T                                   # (N*OH*OW, F)
    if bias is not None:
        out_data = out_data + bias.data
    out_data = out_data.reshape(n, oh, ow, f).transpose(0, 3, 1, 2)

    parents = [x, weight] + ([bias] if bias is not None else [])
    out = x._make_child(out_data, parents)
    if out.requires_grad:
        def _backward(g: np.ndarray) -> None:
            g2 = g.transpose(0, 2, 3, 1).reshape(-1, f)        # (N*OH*OW, F)
            if weight.requires_grad:
                gw = (g2.T @ cols).reshape(weight.shape)
                weight._accumulate(gw)
            if bias is not None and bias.requires_grad:
                bias._accumulate(g2.sum(axis=0))
            if x.requires_grad:
                gcols = g2 @ wmat                              # (N*OH*OW, C*KH*KW)
                x._accumulate(col2im(gcols, x.shape, kh, kw, stride, padding))
        out._backward = _backward
    return out


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x (N, in)`` @ ``weight.T (in, out)`` + bias."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


# -------------------------------------------------------------------- pooling
def max_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) windows."""
    stride = stride or kernel
    n, c, h, w = x.shape
    oh = conv_output_size(h, kernel, stride, 0)
    ow = conv_output_size(w, kernel, stride, 0)
    cols = im2col(x.data.reshape(n * c, 1, h, w), kernel, kernel, stride, 0)
    cols = cols.reshape(n * c * oh * ow, kernel * kernel)
    arg = cols.argmax(axis=1)
    out_data = cols[np.arange(cols.shape[0]), arg].reshape(n, c, oh, ow)

    out = x._make_child(out_data, (x,))
    if out.requires_grad:
        def _backward(g: np.ndarray) -> None:
            gcols = np.zeros((cols.shape[0], kernel * kernel), dtype=g.dtype)
            gcols[np.arange(cols.shape[0]), arg] = g.reshape(-1)
            gx = col2im(gcols, (n * c, 1, h, w), kernel, kernel, stride, 0)
            x._accumulate(gx.reshape(x.shape))
        out._backward = _backward
    return out


def avg_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Average pooling; used by the Rep-Net adaptor's downsampling stage."""
    stride = stride or kernel
    n, c, h, w = x.shape
    oh = conv_output_size(h, kernel, stride, 0)
    ow = conv_output_size(w, kernel, stride, 0)
    cols = im2col(x.data.reshape(n * c, 1, h, w), kernel, kernel, stride, 0)
    out_data = cols.mean(axis=1).reshape(n, c, oh, ow)

    out = x._make_child(out_data, (x,))
    if out.requires_grad:
        def _backward(g: np.ndarray) -> None:
            gcols = np.repeat(g.reshape(-1, 1), kernel * kernel, axis=1) / (kernel * kernel)
            gx = col2im(gcols, (n * c, 1, h, w), kernel, kernel, stride, 0)
            x._accumulate(gx.reshape(x.shape))
        out._backward = _backward
    return out


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Reduce each channel's spatial map to a single value: ``(N,C,H,W) -> (N,C)``."""
    return x.mean(axis=(2, 3))


# ------------------------------------------------------------- nonlinearities
def relu(x: Tensor) -> Tensor:
    return x.relu()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    e = shifted.exp()
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


# -------------------------------------------------------------------- losses
def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits (N, K)`` and integer ``targets (N,)``."""
    targets = np.asarray(targets)
    if targets.ndim != 1:
        raise ValueError(f"targets must be a 1-D class-index array, got {targets.shape}")
    n = logits.shape[0]
    logp = log_softmax(logits, axis=-1)
    picked = logp[np.arange(n), targets]
    return -picked.mean()


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    diff = pred - astensor(target)
    return (diff * diff).mean()


def accuracy(logits: Tensor, targets: np.ndarray) -> float:
    """Top-1 accuracy as a plain float (no graph)."""
    pred = logits.data.argmax(axis=-1)
    return float((pred == np.asarray(targets)).mean())
