"""Optimizers and learning-rate schedules for the training substrate.

Only parameters with ``trainable=True`` are updated, which is how the
continual-learning setup keeps the MRAM-resident backbone frozen while the
SRAM-resident Rep-Net path learns.  Each optimizer also supports an optional
per-parameter binary ``mask`` so that N:M-pruned weights stay exactly zero
during sparse fine-tuning (the pruner installs these masks).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

import numpy as np

from .modules import Parameter


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: List[Parameter] = [p for p in params]
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self._masks: Dict[int, np.ndarray] = {}

    def set_mask(self, param: Parameter, mask: np.ndarray) -> None:
        """Constrain ``param`` to the support of ``mask`` (1 = keep)."""
        if mask.shape != param.shape:
            raise ValueError(f"mask shape {mask.shape} != param shape {param.shape}")
        self._masks[id(param)] = mask.astype(param.dtype)

    def _masked(self, param: Parameter, update: np.ndarray) -> np.ndarray:
        mask = self._masks.get(id(param))
        return update if mask is None else update * mask

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with momentum, Nesterov and decoupled weight decay."""

    def __init__(self, params: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0,
                 nesterov: bool = False):
        super().__init__(params, lr)
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov requires momentum > 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for p in self.params:
            if not p.trainable or p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v = self._velocity.get(id(p))
                v = self.momentum * v + g if v is not None else g.copy()
                self._velocity[id(p)] = v
                g = g + self.momentum * v if self.nesterov else v
            p.data = p.data - self.lr * self._masked(p, g)
            mask = self._masks.get(id(p))
            if mask is not None:
                p.data = p.data * mask


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        for p in self.params:
            if not p.trainable or p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m = self._m.get(id(p), np.zeros_like(p.data))
            v = self._v.get(id(p), np.zeros_like(p.data))
            m = b1 * m + (1 - b1) * g
            v = b2 * v + (1 - b2) * g * g
            self._m[id(p)], self._v[id(p)] = m, v
            m_hat = m / (1 - b1 ** self._t)
            v_hat = v / (1 - b2 ** self._t)
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            p.data = p.data - self.lr * self._masked(p, update)
            mask = self._masks.get(id(p))
            if mask is not None:
                p.data = p.data * mask


class LRScheduler:
    """Base LR schedule; mutates ``optimizer.lr`` on :meth:`step`."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self.get_lr()

    def get_lr(self) -> float:
        raise NotImplementedError


class StepLR(LRScheduler):
    """Multiply the LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base LR down to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        t = min(self.epoch, self.t_max)
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1 + math.cos(math.pi * t / self.t_max))


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in-place so their global L2 norm is at most ``max_norm``."""
    params = [p for p in params if p.grad is not None]
    total = math.sqrt(sum(float((p.grad ** 2).sum()) for p in params))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad = p.grad * scale
    return total
