"""Numpy training substrate: tensors, autograd, layers, optimizers, data.

This package replaces the PyTorch/GPU stack the paper used (see DESIGN.md,
"Substitutions"): it provides exactly the operations the Rep-Net continual
learning recipe needs, with reverse-mode autograd verified against numerical
differentiation in the test suite.
"""

from . import functional, init
from .data import DataLoader, Dataset, Subset, TensorDataset, train_test_split
from .functional import (accuracy, avg_pool2d, conv2d, cross_entropy,
                         global_avg_pool2d, linear, log_softmax, max_pool2d,
                         mse_loss, relu, softmax)
from .modules import (AvgPool2d, BatchNorm2d, Conv2d, Dropout, Flatten,
                      GlobalAvgPool2d, Linear, MaxPool2d, Module, Parameter,
                      ReLU, Sequential, set_seed)
from .optim import (SGD, Adam, CosineAnnealingLR, LRScheduler, Optimizer,
                    StepLR, clip_grad_norm)
from .summary import LayerSummary, format_summary, summarize
from .tensor import Tensor, astensor, concatenate, no_grad, ones, randn, stack, zeros

__all__ = [
    "Tensor", "astensor", "concatenate", "stack", "zeros", "ones", "randn",
    "no_grad", "functional", "init",
    "Module", "Parameter", "Linear", "Conv2d", "BatchNorm2d", "ReLU",
    "MaxPool2d", "AvgPool2d", "GlobalAvgPool2d", "Flatten", "Dropout",
    "Sequential", "set_seed",
    "Optimizer", "SGD", "Adam", "LRScheduler", "StepLR", "CosineAnnealingLR",
    "clip_grad_norm",
    "Dataset", "TensorDataset", "Subset", "DataLoader", "train_test_split",
    "cross_entropy", "mse_loss", "accuracy", "softmax", "log_softmax",
    "conv2d", "linear", "relu", "max_pool2d", "avg_pool2d", "global_avg_pool2d",
    "summarize", "format_summary", "LayerSummary",
]
