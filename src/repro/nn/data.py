"""Dataset/DataLoader pipeline used by all training experiments."""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np


class Dataset:
    """Abstract indexable dataset of ``(input, label)`` pairs."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, idx: int) -> Tuple[np.ndarray, int]:
        raise NotImplementedError


class TensorDataset(Dataset):
    """In-memory dataset over aligned arrays ``inputs (N, ...)`` / ``labels (N,)``."""

    def __init__(self, inputs: np.ndarray, labels: np.ndarray):
        inputs = np.asarray(inputs)
        labels = np.asarray(labels)
        if len(inputs) != len(labels):
            raise ValueError(f"inputs ({len(inputs)}) and labels ({len(labels)}) disagree")
        self.inputs = inputs
        self.labels = labels

    def __len__(self) -> int:
        return len(self.inputs)

    def __getitem__(self, idx: int) -> Tuple[np.ndarray, int]:
        return self.inputs[idx], int(self.labels[idx])

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1 if len(self.labels) else 0


class Subset(Dataset):
    """View of a dataset restricted to ``indices``."""

    def __init__(self, dataset: Dataset, indices: Sequence[int]):
        self.dataset = dataset
        self.indices = list(indices)

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, idx: int):
        return self.dataset[self.indices[idx]]


def train_test_split(dataset: TensorDataset, test_fraction: float = 0.2,
                     rng: Optional[np.random.Generator] = None
                     ) -> Tuple[TensorDataset, TensorDataset]:
    """Shuffle and split an in-memory dataset (stratification-free)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = rng or np.random.default_rng(0)
    order = rng.permutation(len(dataset))
    cut = int(len(dataset) * (1.0 - test_fraction))
    train_idx, test_idx = order[:cut], order[cut:]
    return (TensorDataset(dataset.inputs[train_idx], dataset.labels[train_idx]),
            TensorDataset(dataset.inputs[test_idx], dataset.labels[test_idx]))


class DataLoader:
    """Mini-batch iterator with optional shuffling.

    Yields ``(batch_inputs, batch_labels)`` as plain ndarrays; training loops
    wrap inputs in :class:`repro.nn.Tensor` themselves so evaluation paths can
    stay graph-free.
    """

    def __init__(self, dataset: Dataset, batch_size: int = 32,
                 shuffle: bool = False, drop_last: bool = False,
                 rng: Optional[np.random.Generator] = None):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.rng = rng or np.random.default_rng(0)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self.rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            idx = order[start:start + self.batch_size]
            if self.drop_last and len(idx) < self.batch_size:
                break
            # Fast path for TensorDataset: fancy-index the backing arrays.
            base = self.dataset
            if isinstance(base, TensorDataset):
                yield base.inputs[idx], base.labels[idx]
            elif isinstance(base, Subset) and isinstance(base.dataset, TensorDataset):
                real = np.asarray(base.indices)[idx]
                yield base.dataset.inputs[real], base.dataset.labels[real]
            else:
                items = [self.dataset[int(i)] for i in idx]
                xs = np.stack([x for x, _ in items])
                ys = np.array([y for _, y in items])
                yield xs, ys
