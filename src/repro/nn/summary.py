"""Model summary: parameters, MACs, and output shapes per layer.

A small introspection utility (in the spirit of ``torchsummary``) used to
sanity-check that :func:`repro.core.workload.extract_repnet_workload` agrees
with what the network actually computes, and to print the parameter budget
tables the experiments reference (e.g. the ~5% learnable fraction).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from .functional import conv_output_size
from .modules import (AvgPool2d, BatchNorm2d, Conv2d, Dropout, Flatten,
                      GlobalAvgPool2d, Linear, MaxPool2d, Module, ReLU,
                      Sequential)


@dataclasses.dataclass
class LayerSummary:
    """One row of the summary table."""

    name: str
    kind: str
    output_shape: Tuple[int, ...]
    params: int
    trainable_params: int
    macs: int


def _shape_after(mod: Module, shape: Tuple[int, ...]) -> Tuple[int, ...]:
    """Propagate a (C, H, W) or (F,) feature shape through one module."""
    if isinstance(mod, Conv2d):
        c, h, w = shape
        oh = conv_output_size(h, mod.kernel_size, mod.stride, mod.padding)
        ow = conv_output_size(w, mod.kernel_size, mod.stride, mod.padding)
        return (mod.out_channels, oh, ow)
    if isinstance(mod, (MaxPool2d, AvgPool2d)):
        c, h, w = shape
        oh = conv_output_size(h, mod.kernel_size, mod.stride, 0)
        ow = conv_output_size(w, mod.kernel_size, mod.stride, 0)
        return (c, oh, ow)
    if isinstance(mod, GlobalAvgPool2d):
        return (shape[0],)
    if isinstance(mod, Flatten):
        return (int(np.prod(shape)),)
    if isinstance(mod, Linear):
        return (mod.out_features,)
    return shape  # ReLU / BN / Dropout keep the shape


def _macs_of(mod: Module, in_shape: Tuple[int, ...],
             out_shape: Tuple[int, ...]) -> int:
    if isinstance(mod, Conv2d):
        _, oh, ow = out_shape
        return mod.out_channels * oh * ow * mod.in_channels \
            * mod.kernel_size ** 2
    if isinstance(mod, Linear):
        return mod.in_features * mod.out_features
    return 0


def summarize(model: Module, input_shape: Tuple[int, ...]
              ) -> List[LayerSummary]:
    """Summaries for a :class:`Sequential`-style model.

    ``input_shape`` excludes the batch dimension, e.g. ``(3, 16, 16)``.
    Nested Sequentials are flattened; non-shape-bearing composite modules
    are reported as single rows with their parameter totals.
    """
    rows: List[LayerSummary] = []
    shape = tuple(input_shape)

    def visit(mod: Module, name: str) -> None:
        nonlocal shape
        if isinstance(mod, Sequential):
            for i, sub in enumerate(mod.layers):
                visit(sub, f"{name}.{i}" if name else str(i))
            return
        in_shape = shape
        shape = _shape_after(mod, shape)
        params = mod.num_parameters()
        rows.append(LayerSummary(
            name=name or type(mod).__name__,
            kind=type(mod).__name__,
            output_shape=shape,
            params=params,
            trainable_params=mod.num_parameters(trainable_only=True),
            macs=_macs_of(mod, in_shape, shape)))

    visit(model, "")
    return rows


def format_summary(rows: List[LayerSummary],
                   title: str = "Model summary") -> str:
    """Render the summary rows as a text table with totals."""
    header = f"{'layer':24s} {'type':16s} {'output':>16s} {'params':>10s} " \
             f"{'train':>10s} {'MACs':>12s}"
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.name:24s} {r.kind:16s} {str(r.output_shape):>16s} "
            f"{r.params:>10d} {r.trainable_params:>10d} {r.macs:>12d}")
    total = sum(r.params for r in rows)
    train = sum(r.trainable_params for r in rows)
    macs = sum(r.macs for r in rows)
    lines.append("-" * len(header))
    lines.append(f"{'TOTAL':24s} {'':16s} {'':>16s} {total:>10d} "
                 f"{train:>10d} {macs:>12d}")
    if total:
        lines.append(f"trainable fraction: {train / total:.1%}")
    return "\n".join(lines)
