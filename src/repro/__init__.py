"""repro — MRAM-SRAM hybrid sparse PIM accelerator for on-device learning.

A full reproduction of *"Efficient Memory Integration: MRAM-SRAM Hybrid
Accelerator for Sparse On-Device Learning"* (DAC 2024): the N:M-sparse
Rep-Net continual-learning algorithm stack, bit-exact functional simulators
of both sparse PIM PE circuits, and the architecture-level area/power/EDP
models behind the paper's evaluation.

Sub-packages
------------
``repro.nn``        numpy autograd training substrate
``repro.sparsity``  N:M structured sparsity (masks, saliency, pruning)
``repro.quant``     INT8 quantization (observers, PTQ)
``repro.repnet``    Rep-Net continual learning (backbone + adaptors)
``repro.datasets``  synthetic base/downstream task generators
``repro.core``      the hybrid accelerator (CSC, PEs, mapper, designs)
``repro.energy``    device/circuit/architecture cost models
``repro.harness``   regenerates every paper table and figure
"""

__version__ = "1.0.0"

from . import core, datasets, energy, harness, nn, quant, repnet, sparsity

__all__ = ["nn", "sparsity", "quant", "repnet", "datasets", "core",
           "energy", "harness", "__version__"]
