"""The N:M pruning workflow: select masks, pin them through fine-tuning.

Combines the pieces of :mod:`repro.sparsity.nm` and
:mod:`repro.sparsity.saliency` into the two flows the paper runs:

* ``prune_model`` — one-shot magnitude N:M pruning (applied to the PTQ'd
  backbone before mapping it to MRAM PEs).
* :class:`NMPruner` — gradient-calibrated mask selection followed by masked
  fine-tuning of the learnable (Rep-Net) parameters; the mask is installed
  into the optimizer so pruned weights stay exactly zero.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..nn.data import DataLoader
from ..nn.modules import Conv2d, Linear, Module, Parameter
from ..nn.optim import Optimizer
from .nm import NMPattern, apply_nm_mask, compute_nm_mask, verify_nm
from .saliency import one_epoch_gradient_saliency


def prunable_parameters(model: Module,
                        min_reduction_dim: int = 0
                        ) -> List[Tuple[str, Parameter]]:
    """Weight matrices/kernels of Linear and Conv2d layers (never biases/BN).

    ``min_reduction_dim`` skips layers whose GEMM reduction dimension is
    smaller than the N:M group size: pruning a 3-wide group to 1:8 is
    degenerate (it deletes most of the layer's inputs outright), and such
    tiny layers are mapped to plain digital logic rather than the sparse PE
    arrays anyway.
    """
    out = []
    for name, mod in model.named_modules():
        if isinstance(mod, Linear):
            reduction = mod.in_features
        elif isinstance(mod, Conv2d):
            reduction = mod.in_channels * mod.kernel_size ** 2
        else:
            continue
        if reduction < min_reduction_dim:
            continue
        prefix = (name + ".") if name else ""
        out.append((prefix + "weight", mod.weight))
    return out


def prune_model(model: Module, pattern: NMPattern,
                trainable_only: bool = False) -> Dict[str, np.ndarray]:
    """One-shot magnitude N:M pruning of every prunable layer.

    Returns the masks by parameter name so callers can install them into an
    optimizer or verify them later.
    """
    masks: Dict[str, np.ndarray] = {}
    for name, param in prunable_parameters(model,
                                           min_reduction_dim=pattern.m):
        if trainable_only and not param.trainable:
            continue
        mask = compute_nm_mask(np.abs(param.data), pattern)
        param.data = apply_nm_mask(param.data, mask)
        masks[name] = mask
    return masks


class NMPruner:
    """Gradient-calibrated N:M mask selection for the learnable path.

    Implements the paper's Sec. 5.1 recipe: a one-epoch gradient pass ranks
    weights, the top-N per group survive, and the surviving support is frozen
    while fine-tuning proceeds.
    """

    def __init__(self, model: Module, pattern: NMPattern,
                 trainable_only: bool = True):
        self.model = model
        self.pattern = pattern
        self.trainable_only = trainable_only
        self.masks: Dict[str, np.ndarray] = {}

    def _targets(self) -> List[Tuple[str, Parameter]]:
        candidates = prunable_parameters(self.model,
                                         min_reduction_dim=self.pattern.m)
        return [(n, p) for n, p in candidates
                if p.trainable or not self.trainable_only]

    def calibrate(self, loader: DataLoader, max_batches: int = 0
                  ) -> Dict[str, np.ndarray]:
        """Run the one-epoch gradient pass and compute masks."""
        targets = self._targets()
        if not targets:
            raise RuntimeError("model has no prunable trainable parameters")
        scores = one_epoch_gradient_saliency(
            self.model, [p for _, p in targets], loader, max_batches=max_batches)
        self.masks = {}
        for name, param in targets:
            mask = compute_nm_mask(scores[id(param)], self.pattern)
            self.masks[name] = mask
        return self.masks

    def calibrate_magnitude(self) -> Dict[str, np.ndarray]:
        """Fallback mask selection from weight magnitude only (no data needed)."""
        self.masks = {name: compute_nm_mask(np.abs(p.data), self.pattern)
                      for name, p in self._targets()}
        return self.masks

    def apply(self, optimizer: Optional[Optimizer] = None) -> None:
        """Zero pruned weights and (optionally) pin the mask in the optimizer."""
        if not self.masks:
            raise RuntimeError("call calibrate() or calibrate_magnitude() first")
        by_name = dict(self._targets())
        for name, mask in self.masks.items():
            param = by_name[name]
            param.data = apply_nm_mask(param.data, mask)
            if optimizer is not None:
                optimizer.set_mask(param, mask)

    def verify(self) -> bool:
        """Check every masked parameter still satisfies the N:M constraint."""
        by_name = dict(self._targets())
        return all(verify_nm(by_name[name].data, self.pattern)
                   for name in self.masks)

    def sparsity_report(self) -> Dict[str, float]:
        """Per-layer achieved sparsity (fraction of zeros)."""
        by_name = dict(self._targets())
        return {name: float((by_name[name].data == 0).mean())
                for name in self.masks}
