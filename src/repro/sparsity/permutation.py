"""Channel permutations for N:M sparsity (the paper's reference [19]).

N:M masks keep the top-N entries of every *aligned* group of M reduction
channels; when salient weights cluster inside a group, good weights get
dropped.  Pool et al. (NeurIPS'21, cited by the paper) show that permuting
the reduction channels before grouping recovers much of that loss — and the
permutation is free for the hardware: weights are reordered once offline,
and the PE's existing index/MUX machinery gathers activations in permuted
order.

This module implements retained-saliency evaluation and a swap-based local
search (with random restarts) over channel permutations, plus the helpers
to apply a permutation consistently to weights and activations.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .nm import NMPattern


def retained_saliency(saliency: np.ndarray, pattern: NMPattern) -> float:
    """Total saliency kept by the N:M mask (grouping along axis 0).

    Rows not filling a final group are padded with zero saliency, matching
    :func:`repro.sparsity.compute_nm_mask`.
    """
    saliency = np.atleast_2d(np.asarray(saliency, dtype=np.float64))
    rows, cols = saliency.shape
    m, n = pattern.m, pattern.n
    pad = (-rows) % m
    if pad:
        saliency = np.pad(saliency, ((0, pad), (0, 0)))
    groups = saliency.reshape(-1, m, cols)
    # top-n per (group, column): partial sort along the group axis
    part = np.partition(groups, m - n, axis=1)[:, m - n:, :]
    return float(part.sum())


def apply_permutation(matrix: np.ndarray, perm: np.ndarray,
                      axis: int = 0) -> np.ndarray:
    """Reorder ``matrix`` along ``axis`` by ``perm`` (a copy)."""
    perm = np.asarray(perm)
    if sorted(perm.tolist()) != list(range(matrix.shape[axis])):
        raise ValueError("perm is not a permutation of the axis indices")
    return np.take(matrix, perm, axis=axis)


def invert_permutation(perm: np.ndarray) -> np.ndarray:
    """The inverse permutation (activations are gathered with this)."""
    perm = np.asarray(perm)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(len(perm))
    return inv


def find_channel_permutation(saliency: np.ndarray, pattern: NMPattern,
                             iterations: int = 2000, restarts: int = 2,
                             rng: Optional[np.random.Generator] = None
                             ) -> Tuple[np.ndarray, float]:
    """Search for a channel permutation maximizing retained saliency.

    Swap-based stochastic hill climbing with random restarts (the greedy
    channel-swap strategy of [19], simplified): propose a random pair swap,
    keep it if retained saliency does not decrease.

    Returns ``(perm, retained)`` where ``retained >= `` the identity
    permutation's retained saliency (identity is always a candidate).
    """
    saliency = np.atleast_2d(np.asarray(saliency, dtype=np.float64))
    rows = saliency.shape[0]
    rng = rng or np.random.default_rng(0)

    best_perm = np.arange(rows)
    best_score = retained_saliency(saliency, pattern)

    for restart in range(restarts):
        if restart == 0:
            perm = np.arange(rows)
        else:
            perm = rng.permutation(rows)
        current = saliency[perm]
        score = retained_saliency(current, pattern)
        for _ in range(iterations):
            i, j = rng.integers(0, rows, size=2)
            if i == j:
                continue
            perm[i], perm[j] = perm[j], perm[i]
            current[[i, j]] = current[[j, i]]
            new_score = retained_saliency(current, pattern)
            if new_score >= score:
                score = new_score
            else:  # revert
                perm[i], perm[j] = perm[j], perm[i]
                current[[i, j]] = current[[j, i]]
        if score > best_score:
            best_score = score
            best_perm = perm.copy()

    return best_perm, best_score


def permutation_gain(saliency: np.ndarray, pattern: NMPattern,
                     iterations: int = 2000,
                     rng: Optional[np.random.Generator] = None) -> float:
    """Relative retained-saliency improvement of the found permutation.

    0.0 means the identity grouping was already optimal (or the search
    found nothing better); 0.05 means 5% more saliency survives pruning.
    """
    base = retained_saliency(saliency, pattern)
    if base == 0:
        return 0.0
    _, best = find_channel_permutation(saliency, pattern,
                                       iterations=iterations, rng=rng)
    return best / base - 1.0
