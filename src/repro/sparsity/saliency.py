"""Weight-importance estimation for N:M mask selection.

The paper (Sec. 5.1): "we initially conducted a one-epoch gradient calculation
across all weights on the RepNet path to identify the most crucial N weights
among every consecutive M weights, based on magnitude."  We implement both
criteria:

* :func:`magnitude_saliency` — |w| (used for the PTQ backbone).
* :class:`GradientSaliency` — accumulates |g| over one calibration epoch and
  scores each weight by |w| * |g_accumulated| (first-order Taylor importance),
  the gradient-informed variant used before fine-tuning the Rep-Net path.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

from ..nn import functional as F
from ..nn.data import DataLoader
from ..nn.modules import Module, Parameter
from ..nn.tensor import Tensor


def magnitude_saliency(weights: np.ndarray) -> np.ndarray:
    """Plain |w| importance."""
    return np.abs(np.asarray(weights))


class GradientSaliency:
    """Accumulate gradient magnitudes over a calibration pass.

    Usage::

        sal = GradientSaliency(params)
        for x, y in loader:
            loss = F.cross_entropy(model(Tensor(x)), y)
            model.zero_grad()
            loss.backward()
            sal.accumulate()
        scores = sal.scores()
    """

    def __init__(self, params: Iterable[Parameter]):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("GradientSaliency needs at least one parameter")
        self._accum: Dict[int, np.ndarray] = {
            id(p): np.zeros_like(p.data) for p in self.params}
        self.steps = 0

    def accumulate(self) -> None:
        """Fold the current ``.grad`` of every tracked parameter into the score."""
        for p in self.params:
            if p.grad is not None:
                self._accum[id(p)] += np.abs(p.grad)
        self.steps += 1

    def scores(self) -> Dict[int, np.ndarray]:
        """Per-parameter saliency: |w| * mean|g|.

        Keys are ``id(param)`` so callers can look scores up without relying
        on names.
        """
        if self.steps == 0:
            raise RuntimeError("no gradients accumulated; run a calibration pass first")
        out = {}
        for p in self.params:
            mean_grad = self._accum[id(p)] / self.steps
            out[id(p)] = np.abs(p.data) * (mean_grad + 1e-12)
        return out


def one_epoch_gradient_saliency(model: Module, params: Iterable[Parameter],
                                loader: DataLoader,
                                max_batches: int = 0) -> Dict[int, np.ndarray]:
    """Run the paper's one-epoch calibration and return saliency scores.

    ``max_batches`` (0 = whole epoch) caps the pass for the fast test paths.
    """
    sal = GradientSaliency(params)
    was_training = model.training
    model.train()
    for batch_idx, (x, y) in enumerate(loader):
        if max_batches and batch_idx >= max_batches:
            break
        logits = model(Tensor(x))
        loss = F.cross_entropy(logits, y)
        model.zero_grad()
        loss.backward()
        sal.accumulate()
    if not was_training:
        model.eval()
    return sal.scores()
