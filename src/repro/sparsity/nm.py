"""N:M structured sparsity: mask search, application and verification.

The paper uses the NVIDIA-style N:M pattern (Sec. 2.3): within every group of
``m`` *contiguous, aligned* elements along the input dimension, at most ``n``
are non-zero.  The PE circuits store one 4-bit index per kept weight, so
``m <= 16`` ("up to N:16 structured sparsity", Sec. 3.1).

Mask search follows the paper's recipe (Sec. 5.1): a saliency score per weight
(magnitude, or magnitude x accumulated gradient from a one-epoch calibration
pass) ranks the elements of each group, and the top-``n`` survive.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

#: Index bit width supported by both PE designs (4-bit -> groups up to 16).
MAX_GROUP_SIZE = 16
INDEX_BITS = 4


@dataclasses.dataclass(frozen=True)
class NMPattern:
    """An ``n:m`` structured sparsity pattern (``n`` kept out of every ``m``).

    ``NMPattern(1, 4)`` is the paper's "1:4" (75% sparse); ``NMPattern(2, 4)``
    is NVIDIA Ampere's 2:4.
    """

    n: int
    m: int

    def __post_init__(self):
        if self.m < 1 or self.n < 1:
            raise ValueError(f"n and m must be >= 1, got {self.n}:{self.m}")
        if self.n > self.m:
            raise ValueError(f"n ({self.n}) cannot exceed m ({self.m})")
        if self.m > MAX_GROUP_SIZE:
            raise ValueError(
                f"group size {self.m} exceeds the {INDEX_BITS}-bit index range "
                f"(max {MAX_GROUP_SIZE})")

    @property
    def sparsity(self) -> float:
        """Fraction of weights that are zero, e.g. 0.75 for 1:4."""
        return 1.0 - self.n / self.m

    @property
    def density(self) -> float:
        return self.n / self.m

    @property
    def index_bits(self) -> int:
        """Bits needed to address a position within one group."""
        return max(1, int(np.ceil(np.log2(self.m))))

    def __str__(self) -> str:
        return f"{self.n}:{self.m}"

    @classmethod
    def parse(cls, text: str) -> "NMPattern":
        """Parse '1:4'-style strings (as used in the paper's tables)."""
        try:
            n_str, m_str = text.split(":")
            return cls(int(n_str), int(m_str))
        except (ValueError, AttributeError) as exc:
            raise ValueError(f"cannot parse N:M pattern from {text!r}") from exc


def _pad_to_groups(flat: np.ndarray, m: int) -> Tuple[np.ndarray, int]:
    """Pad a 1-D-per-row matrix so columns divide into groups of ``m``."""
    rows, cols = flat.shape
    pad = (-cols) % m
    if pad:
        flat = np.pad(flat, ((0, 0), (0, pad)))
    return flat, pad


def compute_nm_mask(saliency: np.ndarray, pattern: NMPattern,
                    axis: int = -1) -> np.ndarray:
    """Return a {0,1} mask keeping the top-``n`` saliency entries per group.

    Parameters
    ----------
    saliency:
        Non-negative importance scores, same shape as the weight tensor.
        For conv kernels ``(F, C, KH, KW)`` the grouping runs along the
        flattened ``C*KH*KW`` input dimension — exactly the GEMM row the PE
        compresses (see :mod:`repro.core.csc`).
    pattern:
        The N:M pattern.
    axis:
        Axis along which groups are formed after moving it last.

    Ties are broken towards the lower index to keep the mask deterministic.
    """
    saliency = np.asarray(saliency)
    if saliency.ndim == 0:
        raise ValueError("saliency must be at least 1-D")

    if saliency.ndim > 2:
        # Conv kernel: flatten everything after the output-channel dim.
        orig_shape = saliency.shape
        flat = saliency.reshape(orig_shape[0], -1)
        mask = compute_nm_mask(flat, pattern, axis=-1)
        return mask.reshape(orig_shape)

    moved = np.moveaxis(np.atleast_2d(saliency), axis, -1)
    flat = moved.reshape(-1, moved.shape[-1])
    padded, pad = _pad_to_groups(flat, pattern.m)
    rows, cols = padded.shape
    groups = padded.reshape(rows, cols // pattern.m, pattern.m)

    # argsort descending, stable -> ties keep lower index.
    order = np.argsort(-groups, axis=-1, kind="stable")
    ranks = np.empty_like(order)
    np.put_along_axis(ranks, order, np.arange(pattern.m)[None, None, :], axis=-1)
    mask = (ranks < pattern.n).astype(np.float64)

    mask = mask.reshape(rows, cols)
    if pad:
        mask = mask[:, :-pad]
    mask = mask.reshape(moved.shape)
    mask = np.moveaxis(mask, -1, axis)
    return mask.reshape(saliency.shape)


def apply_nm_mask(weights: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Elementwise weight * mask (copies; does not mutate)."""
    if weights.shape != mask.shape:
        raise ValueError(f"weight shape {weights.shape} != mask shape {mask.shape}")
    return weights * mask


def verify_nm(matrix: np.ndarray, pattern: NMPattern, axis: int = -1) -> bool:
    """Check that every aligned group of ``m`` has at most ``n`` non-zeros."""
    matrix = np.asarray(matrix)
    if matrix.ndim > 2:
        matrix = matrix.reshape(matrix.shape[0], -1)
    moved = np.moveaxis(np.atleast_2d(matrix), axis, -1)
    flat = moved.reshape(-1, moved.shape[-1])
    padded, _ = _pad_to_groups(flat, pattern.m)
    groups = padded.reshape(padded.shape[0], -1, pattern.m)
    nnz = (groups != 0).sum(axis=-1)
    return bool((nnz <= pattern.n).all())


def nm_sparsify(weights: np.ndarray, pattern: NMPattern,
                saliency: Optional[np.ndarray] = None,
                axis: int = -1) -> Tuple[np.ndarray, np.ndarray]:
    """One-shot N:M pruning: returns ``(masked_weights, mask)``.

    Defaults to magnitude saliency, the paper's criterion for the PTQ'd
    backbone; pass an explicit saliency for the gradient-informed Rep-Net
    selection.  ``axis=0`` groups down the rows — the PIM ``(in, out)``
    orientation used by :mod:`repro.core`.
    """
    saliency = np.abs(weights) if saliency is None else np.asarray(saliency)
    if saliency.shape != weights.shape:
        raise ValueError(
            f"saliency shape {saliency.shape} != weight shape {weights.shape}")
    mask = compute_nm_mask(saliency, pattern, axis=axis)
    return apply_nm_mask(weights, mask), mask


def sparsity_ratio(matrix: np.ndarray) -> float:
    """Fraction of exactly-zero entries."""
    matrix = np.asarray(matrix)
    if matrix.size == 0:
        return 0.0
    return float((matrix == 0).mean())
