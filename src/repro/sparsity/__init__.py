"""N:M structured sparsity: patterns, masks, saliency and pruning workflows."""

from .nm import (INDEX_BITS, MAX_GROUP_SIZE, NMPattern, apply_nm_mask,
                 compute_nm_mask, nm_sparsify, sparsity_ratio, verify_nm)
from .permutation import (apply_permutation, find_channel_permutation,
                          invert_permutation, permutation_gain,
                          retained_saliency)
from .pruner import NMPruner, prunable_parameters, prune_model
from .saliency import (GradientSaliency, magnitude_saliency,
                       one_epoch_gradient_saliency)

__all__ = [
    "NMPattern", "compute_nm_mask", "apply_nm_mask", "nm_sparsify",
    "verify_nm", "sparsity_ratio", "MAX_GROUP_SIZE", "INDEX_BITS",
    "magnitude_saliency", "GradientSaliency", "one_epoch_gradient_saliency",
    "NMPruner", "prune_model", "prunable_parameters",
    "find_channel_permutation", "apply_permutation", "invert_permutation",
    "retained_saliency", "permutation_gain",
]
