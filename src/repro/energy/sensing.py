"""Digital read-path robustness: sense margin under device variation.

Background (paper Sec. 2): analog PIM suffers accuracy loss from ADC noise;
MRAM's binary AP/P states enable *all-digital* readout through a sense
amplifier comparing the cell current against a reference.  Robustness then
hinges on the sense margin — the current gap between the two states — and
on how much device-to-device resistance variation erodes it.

This module computes the read bit-error rate (BER) analytically under
Gaussian resistance variation and shows the TMR the paper's device offers
(R_AP/R_P ~ 2x) leaves orders-of-magnitude margin, validating the
fully-digital design choice.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict

from scipy.stats import norm

from .mtj import MTJParams
from .units import UA_PER_A

# --------------------------------------------------------------------------
# Read-path resolutions this model charges for.  These must agree with the
# datapath width contracts in repro.core (single source of truth:
# repro/core/widths.py) — lint rule R7 cross-checks them, so a datapath
# width change that would invalidate the sensing model is a lint error.
# --------------------------------------------------------------------------

#: Stored weight resolution per (weight, index) pair (= widths.WEIGHT_BITS).
SENSED_WEIGHT_BITS = 8

#: Stored index resolution per pair (= widths.INDEX_BITS).
SENSED_INDEX_BITS = 4

#: The all-digital sense amplifier resolves ONE bit per cell — no ADC.
#: (= widths.PARTIAL_PRODUCT_BITS; the BER model below is only valid for
#: binary AP/P discrimination.)
SENSE_AMP_RESOLUTION_BITS = 1


@dataclasses.dataclass(frozen=True)
class SenseConfig:
    """Read-path parameters."""

    read_voltage_v: float = 0.1
    resistance_sigma: float = 0.05    # relative (5%) device variation
    sense_offset_ua: float = 0.5      # SA input-referred offset (1-sigma)

    def __post_init__(self):
        if not 0 <= self.resistance_sigma < 0.5:
            raise ValueError("relative sigma must be in [0, 0.5)")


def state_currents_ua(params: MTJParams = MTJParams(),
                      config: SenseConfig = SenseConfig()) -> Dict[str, float]:
    """Mean read currents of the P and AP states and the midpoint reference."""
    i_p = config.read_voltage_v / params.resistance_p_ohm * UA_PER_A
    i_ap = config.read_voltage_v / params.resistance_ap_ohm * UA_PER_A
    return {"i_p_ua": i_p, "i_ap_ua": i_ap, "i_ref_ua": (i_p + i_ap) / 2.0}


def read_bit_error_rate(params: MTJParams = MTJParams(),
                        config: SenseConfig = SenseConfig()) -> float:
    """P(sense amplifier resolves the wrong state).

    Model: cell resistance ~ N(R, (sigma*R)^2) per state; the SA compares
    the cell current against the midpoint reference with its own Gaussian
    offset.  BER = average of the two states' miscompare probabilities.
    """
    cur = state_currents_ua(params, config)
    i_ref = cur["i_ref_ua"]

    def miss(mean_r: float) -> float:
        i_mean = config.read_voltage_v / mean_r * UA_PER_A
        # first-order: dI/I = -dR/R -> sigma_I = sigma_rel * I
        sigma_i = math.sqrt((config.resistance_sigma * i_mean) ** 2
                            + config.sense_offset_ua ** 2)
        if sigma_i == 0:
            return 0.0
        # P state current is above the reference; AP below
        z = abs(i_mean - i_ref) / sigma_i
        return float(norm.sf(z))

    ber_p = miss(params.resistance_p_ohm)
    ber_ap = miss(params.resistance_ap_ohm)
    return (ber_p + ber_ap) / 2.0


def margin_study(params: MTJParams = MTJParams()) -> Dict[str, float]:
    """BER across variation levels — the 'digital is robust' evidence."""
    out = {}
    for sigma in (0.02, 0.05, 0.10, 0.15):
        cfg = SenseConfig(resistance_sigma=sigma)
        out[f"ber@sigma={sigma:.2f}"] = read_bit_error_rate(params, cfg)
    cur = state_currents_ua(params)
    out["sense_margin_ua"] = cur["i_p_ua"] - cur["i_ap_ua"]
    out["tmr"] = ((params.resistance_ap_ohm - params.resistance_p_ohm)
                  / params.resistance_p_ohm)
    return out
