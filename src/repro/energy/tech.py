"""Technology constants — the paper's Table 2, plus documented assumptions.

The paper's numbers come from Cadence Spectre / HSPICE runs on the TSMC 28 nm
PDK composed through NVSIM/PIMA-SIM.  We cannot run those tools offline, so
this module *is* the substitution (DESIGN.md): the published per-component
area/power values are taken as calibrated leaf constants, and everything
else (per-op energies, leakage, write characteristics) is derived from them
plus clearly-marked literature-typical assumptions.

Every dataclass field that is a direct Table 2 entry says so in its comment;
every assumption says ``ASSUMPTION`` and cites its rationale.
"""

from __future__ import annotations

import dataclasses

from .units import PJ_PER_J, W_PER_MW

#: System clock for the digital logic.  ASSUMPTION: 28 nm digital PIM macros
#: ([29], [14]) run 0.2-1 GHz; we use 500 MHz throughout.
CLOCK_HZ: float = 500e6

#: Seconds per cycle at :data:`CLOCK_HZ`.
CYCLE_S: float = 1.0 / CLOCK_HZ


@dataclasses.dataclass(frozen=True)
class SRAMPESpec:
    """SRAM sparse PE: 128x96 PIM array + digital periphery (Table 2, left)."""

    # --- areas, mm^2 (Table 2) ---
    decoder_area: float = 0.0168
    bitcell_area: float = 0.0231          # whole 128x96 array
    shift_acc_area: float = 0.0148
    index_decoder_area: float = 0.06      # 128x8 comparators + index generators
    adder_area: float = 0.14              # 8x 128-input 8-bit adder trees

    # --- powers, mW when active (Table 2) ---
    decoder_power: float = 0.96
    bitcell_power: float = 1.2
    shift_acc_power: float = 4.2
    index_decoder_power: float = 7.4
    adder_power: float = 12.11

    # --- geometry ---
    rows: int = 128
    lanes: int = 8
    weight_bits: int = 8
    index_bits: int = 4

    # --- write path.  ASSUMPTION: 28 nm SRAM write ~1 cycle, ~2 fJ/bit
    # (consistent with the Table 2 global-buffer access energy scale). ---
    write_energy_pj_per_bit: float = 0.002
    write_latency_cycles: int = 1

    # --- leakage.  ASSUMPTION: 28 nm PIM SRAM (8T compute cells + 6T index
    # cells, no power gating while data must be retained) leaks O(10) mW/MB
    # at nominal voltage.  This constant is what makes the SRAM-only
    # baseline leakage-dominated in Fig. 7. ---
    leakage_mw_per_mb: float = 8.0

    @property
    def total_area(self) -> float:
        """mm^2 of one PE (sum of Table 2 components)."""
        return (self.decoder_area + self.bitcell_area + self.shift_acc_area
                + self.index_decoder_area + self.adder_area)

    @property
    def active_power_mw(self) -> float:
        """mW when the PE computes (sum of Table 2 components)."""
        return (self.decoder_power + self.bitcell_power + self.shift_acc_power
                + self.index_decoder_power + self.adder_power)

    @property
    def array_bits(self) -> int:
        return self.rows * self.lanes * (self.weight_bits + self.index_bits)

    @property
    def storage_bytes(self) -> int:
        return self.array_bits // 8

    @property
    def leakage_mw(self) -> float:
        """Standby leakage of one PE's array."""
        return self.leakage_mw_per_mb * self.storage_bytes / (1 << 20)


@dataclasses.dataclass(frozen=True)
class MRAMPESpec:
    """MRAM sparse PE: 1024x512 STT-MRAM sub-array + periphery (Table 2, right)."""

    # --- areas, mm^2 (Table 2) ---
    array_area: float = 0.00686           # 1024x512 MTJ array
    shift_acc_area: float = 0.00258       # parallel shift accumulators
    col_decoder_area: float = 0.0243      # column decoder + driver
    row_decoder_area: float = 0.0037      # row decoder + driver
    adder_tree_area: float = 0.044

    # --- powers, mW when active (Table 2; array itself listed as '-') ---
    shift_acc_power: float = 0.834
    col_decoder_power: float = 1.58
    row_decoder_power: float = 0.68
    adder_tree_power: float = 16.3

    # --- MTJ device (Table 2) ---
    resistance_p_ohm: float = 4408.0      # parallel state
    resistance_ap_ohm: float = 8759.0     # anti-parallel state
    write_energy_pj_per_bit: float = 0.048  # single-bit set/reset energy

    # --- geometry ---
    rows: int = 1024
    row_bits: int = 512
    weight_bits: int = 8
    index_bits: int = 4

    # --- write latency.  ASSUMPTION: STT-MRAM write pulse ~10 ns (literature
    # range 3-30 ns), i.e. 5 cycles at 500 MHz — the latency half of the
    # "MRAM writes are expensive" asymmetry driving Fig. 8. ---
    write_latency_cycles: int = 5

    # --- leakage.  The MTJ array is non-volatile (no retention leakage);
    # only the CMOS periphery leaks.  ASSUMPTION: power-gated periphery
    # leaks ~0.01% of its active power per sub-array. ---
    periphery_leakage_mw: float = 0.002

    @property
    def total_area(self) -> float:
        """mm^2 of one PE (sum of Table 2 components)."""
        return (self.array_area + self.shift_acc_area + self.col_decoder_area
                + self.row_decoder_area + self.adder_tree_area)

    @property
    def active_power_mw(self) -> float:
        return (self.shift_acc_power + self.col_decoder_power
                + self.row_decoder_power + self.adder_tree_power)

    @property
    def array_bits(self) -> int:
        return self.rows * self.row_bits

    @property
    def storage_bytes(self) -> int:
        return self.array_bits // 8

    @property
    def tmr(self) -> float:
        """Tunnel magnetoresistance ratio (R_AP - R_P) / R_P."""
        return (self.resistance_ap_ohm - self.resistance_p_ohm) / self.resistance_p_ohm


@dataclasses.dataclass(frozen=True)
class GlobalSpec:
    """Shared core-level blocks (Table 2 bottom rows + assumptions)."""

    buffer_area: float = 0.0065           # Table 2: global buffer, mm^2
    buffer_energy_pj_per_bit: float = 0.0008  # Table 2: 0.0004 mW/bit/access
                                              # at 500 MHz -> 0.8 fJ ~ 0.0008 pJ
    relu_area: float = 0.00719            # Table 2: global ReLU
    relu_power_mw: float = 0.12

    # ASSUMPTION: scheduler + bus + misc control adds ~10% of PE area.
    control_overhead_fraction: float = 0.10


@dataclasses.dataclass(frozen=True)
class TechnologyModel:
    """Bundle of all technology constants used by the cost models."""

    sram: SRAMPESpec = dataclasses.field(default_factory=SRAMPESpec)
    mram: MRAMPESpec = dataclasses.field(default_factory=MRAMPESpec)
    global_blocks: GlobalSpec = dataclasses.field(default_factory=GlobalSpec)
    clock_hz: float = CLOCK_HZ

    @property
    def cycle_s(self) -> float:
        return 1.0 / self.clock_hz

    def mw_to_pj_per_cycle(self, mw: float) -> float:
        """Convert an active-power figure (mW) to energy (pJ) per busy cycle."""
        return mw * W_PER_MW / self.clock_hz * PJ_PER_J


DEFAULT_TECH = TechnologyModel()
