"""Compact STT-MRAM magnetic tunnel junction (MTJ) device model.

The paper extracts SPICE-compatible STT-MRAM device models for circuit
simulation (Sec. 5.2).  Offline, we provide the standard compact model: a
two-state resistor (parallel P / anti-parallel AP) with TMR, a
spin-transfer-torque switching threshold, and thermally-activated switching
below threshold (Néel-Arrhenius).  The read path computes sense margins for
the sense amplifiers; the write path yields energy/latency for the cost
models and reproduces Table 2's device row (R_P = 4408 ohm,
R_AP = 8759 ohm, 0.048 pJ/bit set/reset).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Tuple

import numpy as np

from .units import A_PER_UA, PJ_PER_J, S_PER_NS, UA_PER_A

# Boltzmann constant (J/K)
K_B = 1.380649e-23


@dataclasses.dataclass(frozen=True)
class MTJParams:
    """Device parameters; defaults reproduce the paper's Table 2 entries."""

    resistance_p_ohm: float = 4408.0
    resistance_ap_ohm: float = 8759.0
    critical_current_ua: float = 30.0     # STT switching threshold current
    write_pulse_ns: float = 3.0           # nominal write pulse width
    write_voltage_v: float = 0.3          # write driver voltage
    thermal_stability: float = 60.0       # Delta = E_barrier / kT (retention)
    temperature_k: float = 300.0
    attempt_time_ns: float = 1.0          # tau_0 for thermal activation

    def __post_init__(self):
        if self.resistance_ap_ohm <= self.resistance_p_ohm:
            raise ValueError("AP resistance must exceed P resistance")
        if self.critical_current_ua <= 0:
            raise ValueError("critical current must be positive")


class MTJ:
    """One magnetic tunnel junction: binary state with read/write physics."""

    STATE_P = 0    # parallel, low resistance, logical '0' by convention
    STATE_AP = 1   # anti-parallel, high resistance, logical '1'

    def __init__(self, params: MTJParams = MTJParams(), state: int = STATE_P):
        self.params = params
        if state not in (self.STATE_P, self.STATE_AP):
            raise ValueError(f"invalid state {state}")
        self.state = state
        self.write_count = 0

    # ------------------------------------------------------------------ read
    @property
    def resistance_ohm(self) -> float:
        return (self.params.resistance_ap_ohm if self.state == self.STATE_AP
                else self.params.resistance_p_ohm)

    @property
    def tmr(self) -> float:
        p = self.params
        return (p.resistance_ap_ohm - p.resistance_p_ohm) / p.resistance_p_ohm

    def read_current_ua(self, read_voltage_v: float = 0.1) -> float:
        """Sense current at a (disturb-safe) read voltage."""
        return read_voltage_v / self.resistance_ohm * UA_PER_A

    def sense_margin_ua(self, read_voltage_v: float = 0.1) -> float:
        """Current difference between the two states the SA must resolve."""
        p = self.params
        i_p = read_voltage_v / p.resistance_p_ohm * UA_PER_A
        i_ap = read_voltage_v / p.resistance_ap_ohm * UA_PER_A
        return i_p - i_ap

    # ----------------------------------------------------------------- write
    def write_current_ua(self) -> float:
        """Current delivered by the write driver into the present state."""
        return self.params.write_voltage_v / self.resistance_ohm * UA_PER_A

    def switching_probability(self, current_ua: float,
                              pulse_ns: float) -> float:
        """P(switch) for a given drive current and pulse width.

        Above the critical current the device switches deterministically
        (precessional regime, probability ~1 for pulses >= the nominal
        width); below it, switching is thermally activated with the barrier
        lowered by the spin torque (Néel-Arrhenius).
        """
        p = self.params
        if current_ua >= p.critical_current_ua:
            # Precessional: switching time shrinks as overdrive grows.
            overdrive = current_ua / p.critical_current_ua
            t_switch = p.write_pulse_ns / overdrive
            return 1.0 if pulse_ns >= t_switch else pulse_ns / t_switch
        barrier = p.thermal_stability * (1.0 - current_ua / p.critical_current_ua)
        rate = (1.0 / p.attempt_time_ns) * math.exp(-barrier)
        return 1.0 - math.exp(-rate * pulse_ns)

    def write(self, target_state: int, rng: np.random.Generator = None,
              current_ua: float = None, pulse_ns: float = None) -> bool:
        """Attempt a write; returns True if the cell holds ``target_state``.

        With default drive (write voltage over the cell resistance, nominal
        pulse) the write is reliable; a weak drive can probabilistically
        fail — the write-failure injection tests use this.
        """
        if target_state not in (self.STATE_P, self.STATE_AP):
            raise ValueError(f"invalid target state {target_state}")
        if self.state == target_state:
            return True
        current = self.write_current_ua() if current_ua is None else current_ua
        pulse = self.params.write_pulse_ns if pulse_ns is None else pulse_ns
        prob = self.switching_probability(current, pulse)
        self.write_count += 1
        if rng is None or prob >= 1.0:
            switched = prob >= 0.5
        else:
            switched = bool(rng.random() < prob)
        if switched:
            self.state = target_state
        return self.state == target_state

    def write_energy_pj(self, current_ua: float = None,
                        pulse_ns: float = None) -> float:
        """Energy of one write pulse: V * I * t."""
        current = self.write_current_ua() if current_ua is None else current_ua
        pulse = self.params.write_pulse_ns if pulse_ns is None else pulse_ns
        return (self.params.write_voltage_v * current * A_PER_UA
                * pulse * S_PER_NS * PJ_PER_J)

    # ------------------------------------------------------------- retention
    def retention_years(self) -> float:
        """Expected thermal retention (tau_0 * exp(Delta))."""
        p = self.params
        seconds = p.attempt_time_ns * S_PER_NS * math.exp(p.thermal_stability)
        return seconds / (365.25 * 24 * 3600)


def table2_write_energy_check(params: MTJParams = MTJParams()
                              ) -> Tuple[float, float]:
    """Return (modelled average write energy pJ, Table 2 value 0.048 pJ).

    The average of the P->AP and AP->P pulse energies at the default drive
    should land near the published per-bit set/reset energy; the test suite
    asserts same order of magnitude.
    """
    cell = MTJ(params, state=MTJ.STATE_P)
    e_p = cell.write_energy_pj()
    cell.state = MTJ.STATE_AP
    e_ap = cell.write_energy_pj()
    return (e_p + e_ap) / 2.0, 0.048
