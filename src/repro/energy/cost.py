"""Energy/latency cost model: converts micro-architectural event counts and
analytical layer traffic into energy breakdowns.

Derivation of the per-op energies (documented so the numbers are auditable):

* A busy SRAM sparse PE draws the sum of its Table 2 component powers
  (~25.9 mW); in dense operation it completes ``rows * lanes`` bit-MACs per
  cycle = 128 8-bit MACs/cycle, giving ``e_mac_sram ~ 0.4 pJ``.
* In *sparse* operation the comparator gating idles most adder-tree inputs
  each phase, so MAC-related components scale with activity while the index
  decoder runs continuously; we fold this into a flat sparse overhead factor
  on the per-MAC energy.
* The MRAM near-memory periphery is conventional 28 nm digital logic, so its
  per-MAC energy is set comparable to the SRAM path (0.5 pJ) plus a per-row
  sensing/decode charge; MRAM's advantage is *leakage* (non-volatile array)
  and density, not per-op energy — consistent with the paper's Fig. 7
  narrative.
* Writes: SRAM ~2 fJ/bit and single-cycle; MRAM 48 fJ/bit (Table 2 MTJ
  set/reset) and a multi-cycle pulse — the asymmetry at the heart of the
  hybrid design.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from ..core.stats import PEStats
from .tech import DEFAULT_TECH, TechnologyModel

# --------------------------------------------------------------------------
# Arithmetic resolutions the per-op energies are derived for.  These must
# agree with the datapath width contracts in repro.core (single source of
# truth: repro/core/widths.py) — lint rule R7 cross-checks them, so e.g.
# widening activations to INT16 without re-deriving e_mac is a lint error.
# --------------------------------------------------------------------------

#: Weight operand width of one costed MAC (= widths.WEIGHT_BITS).
MAC_WEIGHT_BITS = 8

#: Activation operand width of one costed MAC (= widths.ACTIVATION_BITS).
MAC_ACTIVATION_BITS = 8

#: Accumulator width the shift-accumulate/adder-tree energies assume
#: (= widths.ACCUM_BITS; the functional simulator's int64).
MAC_ACCUMULATOR_BITS = 64


@dataclasses.dataclass
class EnergyBreakdown:
    """Energy in pJ split by source (the Fig. 7 leakage/read split)."""

    leakage_pj: float = 0.0
    compute_pj: float = 0.0   # "read" in the paper's plots: array reads + MACs
    write_pj: float = 0.0
    buffer_pj: float = 0.0

    @property
    def total_pj(self) -> float:
        return self.leakage_pj + self.compute_pj + self.write_pj + self.buffer_pj

    @property
    def read_pj(self) -> float:
        """Everything that is not leakage (the paper's 'Read' bar segment)."""
        return self.compute_pj + self.write_pj + self.buffer_pj

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            leakage_pj=self.leakage_pj + other.leakage_pj,
            compute_pj=self.compute_pj + other.compute_pj,
            write_pj=self.write_pj + other.write_pj,
            buffer_pj=self.buffer_pj + other.buffer_pj,
        )

    def scaled(self, factor: float) -> "EnergyBreakdown":
        return EnergyBreakdown(
            leakage_pj=self.leakage_pj * factor,
            compute_pj=self.compute_pj * factor,
            write_pj=self.write_pj * factor,
            buffer_pj=self.buffer_pj * factor,
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "leakage_pj": self.leakage_pj,
            "compute_pj": self.compute_pj,
            "write_pj": self.write_pj,
            "buffer_pj": self.buffer_pj,
            "total_pj": self.total_pj,
        }


class CostModel:
    """Per-op energies + converters from event counts to energy/latency."""

    #: Extra per-MAC energy factor in sparse mode (comparators + index
    #: decoders + partially-idle adder trees).
    SPARSE_OVERHEAD = 0.3

    def __init__(self, tech: TechnologyModel = DEFAULT_TECH):
        self.tech = tech
        sram, mram = tech.sram, tech.mram

        # Dense SRAM PIM: full array (rows*lanes weights) per weight_bits
        # cycles -> rows*lanes/weight_bits MACs per cycle.
        macs_per_cycle = sram.rows * sram.lanes / sram.weight_bits
        self.e_mac_sram_pj = tech.mw_to_pj_per_cycle(
            sram.active_power_mw) / macs_per_cycle

        # ASSUMPTION (see module docstring): MRAM near-memory digital MAC
        # costs about the same logic energy as the SRAM path.
        self.e_mac_mram_pj = 0.5
        # Per-row sensing + decode charge for the MRAM array.
        self.e_row_read_mram_pj = tech.mw_to_pj_per_cycle(
            mram.col_decoder_power + mram.row_decoder_power)

        self.e_write_sram_pj_per_bit = sram.write_energy_pj_per_bit
        self.e_write_mram_pj_per_bit = mram.write_energy_pj_per_bit
        self.e_buffer_pj_per_bit = tech.global_blocks.buffer_energy_pj_per_bit

    # ------------------------------------------------------------ converters
    def cycles_to_s(self, cycles: float) -> float:
        return cycles * self.tech.cycle_s

    def mac_energy_pj(self, macs: float, kind: str, sparse: bool = False) -> float:
        """Dynamic energy of ``macs`` real multiply-accumulates."""
        if kind == "sram":
            e = self.e_mac_sram_pj
        elif kind == "mram":
            e = self.e_mac_mram_pj
        else:
            raise ValueError(f"unknown memory kind {kind!r}")
        if sparse:
            e *= 1.0 + self.SPARSE_OVERHEAD
        return macs * e

    def write_energy_pj(self, bits: float, kind: str) -> float:
        if kind == "sram":
            return bits * self.e_write_sram_pj_per_bit
        if kind == "mram":
            return bits * self.e_write_mram_pj_per_bit
        raise ValueError(f"unknown memory kind {kind!r}")

    def write_latency_cycles(self, bits: float, kind: str,
                             parallel_arrays: int = 1) -> float:
        """Cycles to write ``bits`` given row-parallel write ports."""
        if parallel_arrays < 1:
            raise ValueError("parallel_arrays must be >= 1")
        if kind == "sram":
            spec = self.tech.sram
            row_bits = spec.lanes * (spec.weight_bits + spec.index_bits)
            per_row = spec.write_latency_cycles
        elif kind == "mram":
            spec = self.tech.mram
            row_bits = spec.row_bits
            per_row = spec.write_latency_cycles
        else:
            raise ValueError(f"unknown memory kind {kind!r}")
        rows = bits / (row_bits * parallel_arrays)
        return rows * per_row

    def buffer_energy_pj(self, bits: float) -> float:
        return bits * self.e_buffer_pj_per_bit

    def leakage_power_mw(self, sram_bytes: float, mram_arrays: int) -> float:
        """Standby power of the provisioned memories."""
        sram_leak = self.tech.sram.leakage_mw_per_mb * sram_bytes / (1 << 20)
        mram_leak = self.tech.mram.periphery_leakage_mw * mram_arrays
        return sram_leak + mram_leak

    # ------------------------------------------- functional-sim integration
    def pe_stats_energy(self, stats: PEStats, kind: str,
                        sparse: bool = True) -> EnergyBreakdown:
        """Energy breakdown (pJ) of a functional PE run's event counters."""
        compute = self.mac_energy_pj(stats.macs, kind, sparse=sparse)
        if kind == "mram":
            compute += stats.adder_tree_ops * self.e_row_read_mram_pj
        write = self.write_energy_pj(
            stats.weight_bits_written + stats.index_bits_written, kind)
        buffer = self.buffer_energy_pj(stats.activation_bits_read)
        return EnergyBreakdown(compute_pj=compute, write_pj=write,
                               buffer_pj=buffer)
