"""RRAM technology variant — the paper's portability claim, made concrete.

Sec. 3 of the paper: "this hybrid architecture could be adapted to different
NVM technologies, like MRAM or RRAM.  Here in this work, we use MRAM as a
digital NVM case study."  This module supplies the RRAM case study: a
two-state (HRS/LRS) resistive device compact model mirroring the
:class:`~repro.energy.mtj.MTJ` API, and an RRAM-flavoured
:class:`~repro.energy.tech.TechnologyModel` that drops into every design
class (``DenseCIMDesign``, ``HybridSparseDesign``) unchanged.

Literature-typical 28 nm HfOx constants (documented ASSUMPTIONs):

=====================  ==============  =================
property               STT-MRAM        RRAM (HfOx)
=====================  ==============  =================
write energy / bit     ~0.05 pJ        ~1-5 pJ (forming-free set/reset)
write latency          ~3-10 ns        ~50-100 ns
endurance (cycles)     1e12 - 1e15     1e6 - 1e9
density vs SRAM        ~0.5x           ~0.3x (4F^2-ish with selector)
=====================  ==============  =================

The asymmetries all point the same way: RRAM makes *writes even more
expensive* and adds a hard endurance wall — strengthening the paper's case
for keeping learning out of the NVM (see :mod:`repro.energy.endurance`).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Tuple

import numpy as np

from .tech import GlobalSpec, MRAMPESpec, SRAMPESpec, TechnologyModel
from .units import PJ_PER_J, S_PER_NS, UA_PER_A


@dataclasses.dataclass(frozen=True)
class RRAMParams:
    """HfOx-class bipolar RRAM device parameters (binary/digital use)."""

    resistance_lrs_ohm: float = 10e3      # low-resistance (SET) state
    resistance_hrs_ohm: float = 150e3     # high-resistance (RESET) state
    set_voltage_v: float = 1.2
    reset_voltage_v: float = 1.4
    write_pulse_ns: float = 50.0
    endurance_cycles: float = 1e7         # typical HfOx filamentary cell
    read_voltage_v: float = 0.2

    def __post_init__(self):
        if self.resistance_hrs_ohm <= self.resistance_lrs_ohm:
            raise ValueError("HRS resistance must exceed LRS resistance")
        if self.endurance_cycles <= 0:
            raise ValueError("endurance must be positive")


class RRAMCell:
    """One binary RRAM cell with endurance wear-out tracking."""

    STATE_LRS = 0     # logical '0': low resistance
    STATE_HRS = 1     # logical '1': high resistance

    def __init__(self, params: RRAMParams = RRAMParams(),
                 state: int = STATE_HRS):
        if state not in (self.STATE_LRS, self.STATE_HRS):
            raise ValueError(f"invalid state {state}")
        self.params = params
        self.state = state
        self.write_count = 0

    @property
    def resistance_ohm(self) -> float:
        return (self.params.resistance_hrs_ohm if self.state == self.STATE_HRS
                else self.params.resistance_lrs_ohm)

    @property
    def on_off_ratio(self) -> float:
        return self.params.resistance_hrs_ohm / self.params.resistance_lrs_ohm

    @property
    def worn_out(self) -> bool:
        """True once the cell exceeded its endurance budget."""
        return self.write_count >= self.params.endurance_cycles

    def read_current_ua(self) -> float:
        return self.params.read_voltage_v / self.resistance_ohm * UA_PER_A

    def write(self, target_state: int,
              rng: Optional[np.random.Generator] = None) -> bool:
        """Switch the cell; returns False once endurance is exhausted.

        Wear-out is modelled as a hard failure at the endurance limit, with
        an optional stochastic early-failure tail (log-normal, when ``rng``
        is given) reflecting cell-to-cell endurance variation.
        """
        if target_state not in (self.STATE_LRS, self.STATE_HRS):
            raise ValueError(f"invalid target state {target_state}")
        if self.state == target_state:
            return True
        self.write_count += 1
        limit = self.params.endurance_cycles
        if rng is not None:
            # ~0.5 decade sigma endurance variation.
            limit = limit * float(rng.lognormal(mean=0.0, sigma=0.5))
        if self.write_count >= limit:
            return False
        self.state = target_state
        return True

    def write_energy_pj(self) -> float:
        """SET/RESET pulse energy: V^2 / R * t (into the addressed state)."""
        p = self.params
        if self.state == self.STATE_HRS:   # SET: HRS -> LRS
            v, r = p.set_voltage_v, p.resistance_hrs_ohm
        else:                              # RESET: LRS -> HRS
            v, r = p.reset_voltage_v, p.resistance_lrs_ohm
        return v * v / r * p.write_pulse_ns * S_PER_NS * PJ_PER_J


def rram_pe_spec(params: RRAMParams = RRAMParams()) -> MRAMPESpec:
    """An NVM-PE spec with RRAM device characteristics.

    Reuses the MRAM PE's digital periphery (the near-memory compute is
    technology-agnostic, which is the paper's point) and swaps the
    array-level constants: ~0.6x the MTJ array area (denser 1T1R cell),
    higher write energy, and a longer write pulse.
    """
    cell = RRAMCell(params, state=RRAMCell.STATE_HRS)
    set_e = cell.write_energy_pj()
    cell.state = RRAMCell.STATE_LRS
    reset_e = cell.write_energy_pj()
    write_energy = (set_e + reset_e) / 2.0
    write_cycles = max(1, math.ceil(params.write_pulse_ns / 2.0))  # 500 MHz
    return dataclasses.replace(
        MRAMPESpec(),
        array_area=0.00686 * 0.6,
        resistance_p_ohm=params.resistance_lrs_ohm,
        resistance_ap_ohm=params.resistance_hrs_ohm,
        write_energy_pj_per_bit=write_energy,
        write_latency_cycles=write_cycles,
    )


def rram_technology(params: RRAMParams = RRAMParams()) -> TechnologyModel:
    """A drop-in :class:`TechnologyModel` with RRAM as the NVM.

    Usage::

        tech = rram_technology()
        design = HybridSparseDesign(NMPattern(1, 4), tech=tech)
    """
    return TechnologyModel(sram=SRAMPESpec(), mram=rram_pe_spec(params),
                           global_blocks=GlobalSpec())


def compare_nvm_write_cost(params: RRAMParams = RRAMParams()
                           ) -> Tuple[float, float]:
    """(RRAM write pJ/bit, MRAM write pJ/bit) — the portability trade-off."""
    return (rram_pe_spec(params).write_energy_pj_per_bit,
            MRAMPESpec().write_energy_pj_per_bit)
