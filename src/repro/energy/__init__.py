"""Device/circuit/architecture cost models (the NVSIM/PIMA-SIM substitution)."""

from .area import (MRAM_MACRO_UM2_PER_BIT, MRAM_SPARSE_PERIPHERY_FACTOR,
                   SRAM_MACRO_UM2_PER_BIT, AreaModel, AreaReport)
from .cost import CostModel, EnergyBreakdown
from .endurance import (ENDURANCE_CYCLES, EnduranceReport, endurance_report,
                        steps_per_continual_task, tasks_until_failure,
                        training_lifetime_study)
from .mtj import MTJ, MTJParams, table2_write_energy_check
from .rram import (RRAMCell, RRAMParams, compare_nvm_write_cost,
                   rram_pe_spec, rram_technology)
from .sensing import (SenseConfig, margin_study, read_bit_error_rate,
                      state_currents_ua)
from .tech import (CLOCK_HZ, CYCLE_S, DEFAULT_TECH, GlobalSpec, MRAMPESpec,
                   SRAMPESpec, TechnologyModel)

__all__ = [
    "TechnologyModel", "SRAMPESpec", "MRAMPESpec", "GlobalSpec",
    "DEFAULT_TECH", "CLOCK_HZ", "CYCLE_S",
    "MTJ", "MTJParams", "table2_write_energy_check",
    "CostModel", "EnergyBreakdown",
    "AreaModel", "AreaReport", "SRAM_MACRO_UM2_PER_BIT",
    "MRAM_MACRO_UM2_PER_BIT", "MRAM_SPARSE_PERIPHERY_FACTOR",
    "RRAMCell", "RRAMParams", "rram_pe_spec", "rram_technology",
    "compare_nvm_write_cost",
    "EnduranceReport", "endurance_report", "training_lifetime_study",
    "tasks_until_failure", "steps_per_continual_task", "ENDURANCE_CYCLES",
    "SenseConfig", "read_bit_error_rate", "state_currents_ua", "margin_study",
]
