"""Named unit-conversion constants for the energy/cost models.

House units (see docs/METHODOLOGY.md): energy in **pJ**, time in **ns** or
cycles, power in **mW**, current in **µA**, voltage in **V**, area in
**mm²**.  Device physics is naturally expressed in SI, so conversions are
unavoidable — but a bare ``1e-9`` inline is exactly the silent-magnitude
bug class the R2 lint rule exists to catch.  Every conversion therefore
goes through a constant defined (and named) here; the linter treats this
module, like :mod:`repro.energy.tech`, as the sanctioned home of magnitude
literals.
"""

from __future__ import annotations

#: Picojoules per joule (J → pJ).
PJ_PER_J: float = 1e12

#: Seconds per nanosecond (ns → s).
S_PER_NS: float = 1e-9

#: Microamps per amp (A → µA).
UA_PER_A: float = 1e6

#: Amps per microamp (µA → A).
A_PER_UA: float = 1e-6

#: Watts per milliwatt (mW → W).
W_PER_MW: float = 1e-3

#: Square millimetres per square micrometre (µm² → mm²).
MM2_PER_UM2: float = 1e-6
