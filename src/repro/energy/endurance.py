"""NVM endurance / device-lifetime analysis of the training configurations.

The paper's introduction: "the endurance of certain types of NVMs, like
RRAM, where each cell can sustain a finite number of write operations,
becomes a critical concern due to the frequent weight updates in the
training process."  This module quantifies that concern for every Fig. 8
training configuration: given a design's per-step write traffic to each
memory, how many training steps until the most-written cells exceed their
endurance — and what lifetime that means at a realistic step rate.

The hybrid design's answer is the whole point: its NVM is written exactly
once (deployment), so its lifetime is bounded by SRAM (effectively
unlimited), while in-place NVM fine-tuning burns through RRAM-class
endurance in hours-to-days of continual learning.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional

from ..core.workload import Workload
from ..sparsity.nm import NMPattern

#: Endurance budgets (write cycles per cell).  SRAM is unlimited for any
#: practical horizon; STT-MRAM and HfOx RRAM are literature-typical.
ENDURANCE_CYCLES = {
    "sram": float("inf"),
    "mram": 1e12,
    "rram": 1e7,
}

SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


@dataclasses.dataclass
class EnduranceReport:
    """Lifetime of one training configuration on one memory technology."""

    config: str
    memory: str
    writes_per_cell_per_step: float
    endurance_cycles: float
    steps_to_failure: float
    lifetime_years_at_10hz: float

    def as_dict(self) -> Dict:
        return dataclasses.asdict(self)


def _cell_writes_per_step(update_weights: int, total_cells: int,
                          batch_updates: int = 1) -> float:
    """Average writes per *weight cell* per training step.

    Every updated weight rewrites its cell once per step (weight update),
    plus once more for the transposed copy staged for the next step's
    backward — matching the write accounting in
    :meth:`repro.core.designs.DenseCIMDesign.training_step`.
    """
    if total_cells <= 0:
        raise ValueError("total_cells must be positive")
    return 2.0 * batch_updates * update_weights / total_cells


def endurance_report(config: str, memory: str, update_weights: int,
                     total_cells: int, step_rate_hz: float = 10.0
                     ) -> EnduranceReport:
    """Lifetime of a configuration writing ``update_weights`` per step into
    a memory of ``total_cells`` weight cells."""
    if memory not in ENDURANCE_CYCLES:
        raise ValueError(f"unknown memory {memory!r}; "
                         f"choose from {sorted(ENDURANCE_CYCLES)}")
    per_cell = _cell_writes_per_step(update_weights, total_cells)
    endurance = ENDURANCE_CYCLES[memory]
    if per_cell == 0 or math.isinf(endurance):
        steps = float("inf")
    else:
        # The *hottest* cells (the updated ones) fail first: each updated
        # cell takes 2 writes per step regardless of array size.
        steps = endurance / 2.0
    years = (steps / step_rate_hz / SECONDS_PER_YEAR
             if not math.isinf(steps) else float("inf"))
    return EnduranceReport(
        config=config, memory=memory,
        writes_per_cell_per_step=per_cell,
        endurance_cycles=endurance,
        steps_to_failure=steps,
        lifetime_years_at_10hz=years)


def training_lifetime_study(workload: Workload,
                            pattern: Optional[NMPattern] = None,
                            step_rate_hz: float = 10.0
                            ) -> List[EnduranceReport]:
    """Lifetime of the six Fig. 8 configurations + the RRAM what-ifs.

    Returns one report per (configuration, weight-memory) pair.  The hybrid
    rows use SRAM (their NVM is never written during learning); the
    baseline rows write their own storage technology in place.
    """
    pattern = pattern or NMPattern(1, 8)
    total = workload.total_weights
    learnable = workload.learnable_weights
    sparse_learnable = int(learnable * pattern.density)

    rows = [
        ("Finetune-all", "sram", total),
        ("Finetune-all", "mram", total),
        ("Finetune-all", "rram", total),
        ("RepNet dense", "sram", learnable),
        ("RepNet dense", "mram", learnable),
        ("RepNet dense", "rram", learnable),
        (f"Hybrid {pattern} (writes hit SRAM)", "sram", sparse_learnable),
    ]
    return [endurance_report(cfg, mem, upd, total, step_rate_hz)
            for cfg, mem, upd in rows]


def steps_per_continual_task(epochs: int = 30, samples: int = 2000,
                             batch: int = 32) -> int:
    """Training steps one downstream task costs (paper's 30-epoch recipe)."""
    return epochs * math.ceil(samples / batch)


def tasks_until_failure(report: EnduranceReport,
                        steps_per_task: Optional[int] = None) -> float:
    """How many downstream tasks a device survives before NVM wear-out."""
    steps_per_task = steps_per_task or steps_per_continual_task()
    if math.isinf(report.steps_to_failure):
        return float("inf")
    return report.steps_to_failure / steps_per_task
