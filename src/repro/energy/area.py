"""Area models for the design-space comparison (paper Fig. 7, right).

Two granularities are mixed, as the paper does:

* **Macro-scale effective densities** for multi-megabyte storage (the dense
  baselines and the hybrid's MRAM backbone store).  At NVSIM scale the
  periphery amortizes and what matters is µm²/bit *including* periphery.
  We anchor the SRAM density to the ISSCC'21-class all-digital SRAM CIM
  macro [29] and set the MRAM density from the paper's own observation that
  the ISCAS'23 MRAM design [30] "requires almost half the area" of [29] for
  the same model (calibrated constant, documented in EXPERIMENTS.md).
* **PE-level areas from Table 2** for the small number of SRAM sparse PEs
  the hybrid provisions (compute + active-layer working set + transposed
  buffers), where the compute periphery dominates.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from .tech import DEFAULT_TECH, TechnologyModel
from .units import MM2_PER_UM2

#: Effective macro density of the all-digital SRAM CIM baseline,
#: µm²/bit including periphery (anchored to [29]-class macros).
SRAM_MACRO_UM2_PER_BIT = 1.2

#: Effective macro density of the digital STT-MRAM CIM baseline.
#: Calibrated so the [30] baseline lands at ~48% of [29] (paper Fig. 7).
MRAM_MACRO_UM2_PER_BIT = 0.48 * SRAM_MACRO_UM2_PER_BIT

#: Extra periphery the *sparse* MRAM sub-arrays need on top of raw storage
#: (index decoding, activation MUX, parallel shift-accumulators, adder
#: trees), as a fraction of the storage area — from Table 2 the MRAM PE's
#: periphery is large relative to its array, amortized at macro scale.
MRAM_SPARSE_PERIPHERY_FACTOR = 0.7


@dataclasses.dataclass
class AreaReport:
    """Per-component area in mm²."""

    components: Dict[str, float]

    @property
    def total_mm2(self) -> float:
        return sum(self.components.values())

    def fraction(self, key: str) -> float:
        total = self.total_mm2
        return self.components.get(key, 0.0) / total if total else 0.0


class AreaModel:
    """Composes storage + periphery + global-block areas for a design."""

    def __init__(self, tech: TechnologyModel = DEFAULT_TECH):
        self.tech = tech

    def dense_macro_mm2(self, bits: float, kind: str) -> float:
        """Macro-scale storage area (periphery included) for a dense design."""
        if kind == "sram":
            return bits * SRAM_MACRO_UM2_PER_BIT * MM2_PER_UM2
        if kind == "mram":
            return bits * MRAM_MACRO_UM2_PER_BIT * MM2_PER_UM2
        raise ValueError(f"unknown memory kind {kind!r}")

    def dense_design_area(self, model_bits: float, kind: str) -> AreaReport:
        """Per-component mm² breakdown of a dense (baseline) design."""
        gb = self.tech.global_blocks
        storage = self.dense_macro_mm2(model_bits, kind)
        control = storage * gb.control_overhead_fraction
        return AreaReport({
            f"{kind}_macros": storage,
            "control": control,
            "global_buffer": gb.buffer_area,
            "global_relu": gb.relu_area,
        })

    def hybrid_design_area(self, backbone_compressed_bits: float,
                           n_sram_pes: int,
                           sram_storage_bits: float = 0.0) -> AreaReport:
        """The hybrid's mm² breakdown: MRAM sparse storage + Rep-Net SRAM
        storage + a fixed set of Table 2 SRAM sparse compute PEs."""
        gb = self.tech.global_blocks
        mram_storage = (backbone_compressed_bits * MRAM_MACRO_UM2_PER_BIT
                        * MM2_PER_UM2)
        mram_periphery = mram_storage * MRAM_SPARSE_PERIPHERY_FACTOR
        sram_storage = (sram_storage_bits * SRAM_MACRO_UM2_PER_BIT
                        * MM2_PER_UM2)
        sram_pes = n_sram_pes * self.tech.sram.total_area
        control = (mram_storage + mram_periphery + sram_storage + sram_pes) \
            * gb.control_overhead_fraction
        return AreaReport({
            "mram_storage": mram_storage,
            "mram_sparse_periphery": mram_periphery,
            "sram_storage": sram_storage,
            "sram_pes": sram_pes,
            "control": control,
            "global_buffer": gb.buffer_area,
            "global_relu": gb.relu_area,
        })
