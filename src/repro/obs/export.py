"""Exporters: Chrome ``trace_events`` JSON and flat per-phase summaries.

Two consumers of a finished :class:`~repro.obs.tracer.Tracer`:

* :func:`to_trace_events` / :func:`write_chrome_trace` — the Chrome
  ``chrome://tracing`` / Perfetto JSON object format: one complete
  (``"ph": "X"``) event per span, timestamps in microseconds relative to
  the tracer epoch, span attrs and counters in ``args``.
* :func:`summarize` — aggregation by span name (count, wall time, summed
  counters); :func:`repro.harness.reporting.render_trace_summary` renders
  it as the harness' fixed-width table.

:func:`validate_trace_events` is the schema check the unit tests and the
``repro.bench`` smoke trace share.
"""

from __future__ import annotations

import json
import pathlib
from numbers import Number
from typing import Dict, List, Optional, Union

from .tracer import Span, Tracer, get_tracer

#: Schema tag stamped into the exported trace's ``otherData``.
TRACE_SCHEMA = "repro.obs/1"


def _event_args(span: Span) -> Dict[str, object]:
    args: Dict[str, object] = {str(k): v for k, v in span.attrs.items()}
    for key, value in span.counters.items():
        args[str(key)] = value
    return args


def to_trace_events(tracer: Optional[Tracer] = None,
                    process_name: str = "repro") -> Dict[str, object]:
    """The Chrome trace-event *object format* document for a tracer's spans."""
    tracer = tracer or get_tracer()
    events: List[Dict[str, object]] = [{
        "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
        "args": {"name": process_name},
    }]
    for span in tracer.finished_spans():
        events.append({
            "name": span.name,
            "cat": span.name.split(".", 1)[0],
            "ph": "X",
            "pid": 0,
            "tid": span.tid,
            "ts": (span.start_ns - tracer.epoch_ns) / 1e3,
            "dur": span.duration_ns / 1e3,
            "args": _event_args(span),
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": TRACE_SCHEMA,
            "epoch_unix_ns": tracer.epoch_unix_ns,
            "spans": len(tracer.finished_spans()),
        },
    }


def write_chrome_trace(path: Union[str, pathlib.Path],
                       tracer: Optional[Tracer] = None,
                       process_name: str = "repro") -> pathlib.Path:
    """Serialize :func:`to_trace_events` to ``path``; returns the path."""
    p = pathlib.Path(path)
    if p.parent != pathlib.Path(""):
        p.parent.mkdir(parents=True, exist_ok=True)
    with open(p, "w") as f:
        json.dump(to_trace_events(tracer, process_name=process_name), f,
                  indent=1, default=str)
    return p


def validate_trace_events(doc: object) -> List[str]:
    """Schema problems of a trace-event document (empty list = valid)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"trace document must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing/invalid 'traceEvents' array"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                problems.append(f"{where}: missing {key!r}")
        ph = ev.get("ph")
        if ph == "X":
            for key in ("ts", "dur"):
                value = ev.get(key)
                if not isinstance(value, Number) or isinstance(value, bool):
                    problems.append(f"{where}: 'X' event needs numeric "
                                    f"{key!r}, got {value!r}")
                elif key == "dur" and value < 0:
                    problems.append(f"{where}: negative duration {value}")
        elif ph != "M":
            problems.append(f"{where}: unexpected phase {ph!r}")
        args = ev.get("args", {})
        if not isinstance(args, dict):
            problems.append(f"{where}: 'args' must be an object")
    return problems


# ---------------------------------------------------------------------------
# Flat summaries
# ---------------------------------------------------------------------------

def summarize(tracer: Optional[Tracer] = None) -> Dict[str, object]:
    """Aggregate finished spans by name: count, wall time, summed counters."""
    tracer = tracer or get_tracer()
    by_name: Dict[str, Dict[str, object]] = {}
    order: List[str] = []
    for span in tracer.finished_spans():
        entry = by_name.get(span.name)
        if entry is None:
            entry = {"name": span.name, "count": 0, "wall_ns": 0,
                     "counters": {}}
            by_name[span.name] = entry
            order.append(span.name)
        entry["count"] += 1
        entry["wall_ns"] += span.duration_ns
        counters: Dict[str, float] = entry["counters"]
        for key, value in span.counters.items():
            counters[key] = counters.get(key, 0) + value
    return {"schema": TRACE_SCHEMA,
            "spans": [by_name[name] for name in order]}
