"""Counter attachment points: snapshot/delta helpers for span counters.

The span counters are plain ``{name: number}`` dicts; this module turns
the repo's stats objects into those dicts and computes before/after
deltas, so an instrumentation site can attribute exactly the events that
happened *inside* a span:

.. code-block:: python

    before = flatten_stats(accel.stats())
    ... run the region ...
    span.count(**counter_delta(before, flatten_stats(accel.stats())))

Everything here is duck-typed on ``as_dict()`` (what
:class:`repro.core.stats.PEStats` and the energy breakdowns expose), so
``repro.obs`` stays dependency-free and import-cycle-free.
"""

from __future__ import annotations

from numbers import Number
from typing import Dict, Mapping


def as_counters(obj: object, prefix: str = "") -> Dict[str, float]:
    """Flatten a stats-like object into a numeric counter dict.

    Accepts mappings, objects with ``as_dict()``, or nested combinations
    (one level of nesting, e.g. ``{"sram": PEStats, "mram": PEStats}``);
    non-numeric leaves are dropped.
    """
    if hasattr(obj, "as_dict"):
        obj = obj.as_dict()
    out: Dict[str, float] = {}
    if not isinstance(obj, Mapping):
        return out
    for key, value in obj.items():
        name = f"{prefix}{key}"
        if hasattr(value, "as_dict") or isinstance(value, Mapping):
            out.update(as_counters(value, prefix=f"{name}."))
        elif isinstance(value, Number) and not isinstance(value, bool):
            out[name] = value
    return out


def flatten_stats(stats_by_kind: Mapping[str, object],
                  prefix: str = "") -> Dict[str, float]:
    """``{kind: PEStats}`` (the accelerator's ``stats()``) -> flat counters."""
    return as_counters(stats_by_kind, prefix=prefix)


def counter_delta(before: Mapping[str, float],
                  after: Mapping[str, float]) -> Dict[str, float]:
    """Per-key ``after - before`` (keys only in ``after`` count from 0)."""
    return {key: value - before.get(key, 0)
            for key, value in after.items()}


def nonzero(counters: Mapping[str, float]) -> Dict[str, float]:
    """Drop zero-valued counters (keeps exported span args readable)."""
    return {k: v for k, v in counters.items() if v}
